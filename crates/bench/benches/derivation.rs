//! Criterion benches for the end-to-end constraint derivation — the
//! polynomial-complexity claim of thesis Sec. 5.6.1, measured per
//! benchmark circuit, plus an ablation of the relaxation-order policy
//! (tightest-first vs the arc picked by naive label order — Fig. 5.23's
//! point that order changes the work done).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use si_core::derive_timing_constraints;

fn bench_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("derive_timing_constraints");
    group.sample_size(10);
    for bench in si_suite::benchmarks() {
        let Ok((stg, library)) = bench.circuit() else {
            continue;
        };
        group.bench_function(bench.name, |b| {
            b.iter_batched(
                || (stg.clone(), library.clone()),
                |(stg, library)| derive_timing_constraints(&stg, &library).expect("derives"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_baseline_only(c: &mut Criterion) {
    // The baseline (Keller et al.) set needs only projection, no
    // relaxation loop: the gap to the full derivation is the cost of the
    // paper's contribution.
    let mut group = c.benchmark_group("baseline_projection_only");
    group.sample_size(10);
    for name in ["imec-ram-read-sbuf", "fifo", "trimos-send"] {
        let bench = si_suite::benchmark(name).expect("bundled");
        let Ok((stg, library)) = bench.circuit() else {
            continue;
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let components = stg.mg_components(4096).expect("free choice");
                let mut count = 0usize;
                for a in stg.gate_signals() {
                    let gate = library.gate(stg.signal_name(a)).expect("present");
                    let ctx = si_core::GateContext::bind(gate, &stg).expect("binds");
                    for component in &components {
                        if let Ok(local) = si_core::LocalStg::project_from(component, &ctx) {
                            count += local.input_to_input_arcs().len();
                        }
                    }
                }
                count
            })
        });
    }
    group.finish();
}

fn bench_order_ablation(c: &mut Criterion) {
    // Sec. 5.5 ablation: cost of the two relaxation-order policies.
    use si_core::{derive_timing_constraints_with_order, RelaxationOrder};
    let mut group = c.benchmark_group("relaxation_order");
    group.sample_size(10);
    let bench = si_suite::benchmark("imec-ram-read-sbuf").expect("bundled");
    let Ok((stg, library)) = bench.circuit() else {
        return;
    };
    for (name, order) in [
        ("tightest_first", RelaxationOrder::TightestFirst),
        ("lexicographic", RelaxationOrder::Lexicographic),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                derive_timing_constraints_with_order(&stg, &library, order)
                    .expect("derives")
                    .constraints
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_derivation,
    bench_baseline_only,
    bench_order_ablation
);
criterion_main!(benches);

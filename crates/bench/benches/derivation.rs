//! Criterion benches for the end-to-end constraint derivation — the
//! polynomial-complexity claim of thesis Sec. 5.6.1, measured per
//! benchmark circuit, plus an ablation of the relaxation-order policy
//! (tightest-first vs the arc picked by naive label order — Fig. 5.23's
//! point that order changes the work done) and the staged-engine
//! configurations (cache, parallel fan-out) against the seed path.
//!
//! Circuits that fail to load PANIC with the circuit name — a broken
//! bundled benchmark must fail the bench run loudly, never shrink it.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use si_core::{derive_timing_constraints, Engine, EngineConfig};

/// Loads a benchmark circuit or panics with its name: the benches must
/// never silently skip a broken circuit.
fn load(bench: &si_suite::Benchmark) -> (si_stg::Stg, si_boolean::GateLibrary) {
    bench
        .circuit()
        .unwrap_or_else(|e| panic!("benchmark `{}` failed to load: {e}", bench.name))
}

fn bench_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("derive_timing_constraints");
    group.sample_size(10);
    for bench in si_suite::benchmarks() {
        let (stg, library) = load(&bench);
        group.bench_function(bench.name, |b| {
            b.iter_batched(
                || (stg.clone(), library.clone()),
                |(stg, library)| derive_timing_constraints(&stg, &library).expect("derives"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_engine_configs(c: &mut Criterion) {
    // The refactor's measurable effects on the gold circuit: sequential
    // uncached (the seed path), sequential with a warm shared cache, and
    // the parallel fan-out.
    let bench = si_suite::benchmark("imec-ram-read-sbuf").expect("bundled");
    let (stg, library) = load(&bench);
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("sequential_uncached", |b| {
        b.iter(|| {
            Engine::new(EngineConfig::reference())
                .run(&stg, &library)
                .expect("derives")
                .report
                .constraints
                .len()
        })
    });
    let warm = Engine::new(EngineConfig::default());
    warm.run(&stg, &library).expect("derives"); // prime the cache
    group.bench_function("sequential_warm_cache", |b| {
        b.iter(|| {
            warm.run(&stg, &library)
                .expect("derives")
                .report
                .constraints
                .len()
        })
    });
    let parallel = Engine::new(EngineConfig::parallel(0));
    group.bench_function("parallel_cold_cache", |b| {
        b.iter(|| {
            parallel.clear_cache();
            parallel
                .run(&stg, &library)
                .expect("derives")
                .report
                .constraints
                .len()
        })
    });
    group.finish();
}

fn bench_engine_suite_batch(c: &mut Criterion) {
    // The full 13-benchmark batch through one shared engine — the
    // headline wall-clock number of the staged refactor.
    let mut group = c.benchmark_group("suite_batch");
    group.sample_size(10);
    for (name, config) in [
        ("sequential_uncached", EngineConfig::reference()),
        ("parallel_cached", EngineConfig::parallel(0)),
    ] {
        group.bench_function(name, |b| {
            let engine = Engine::new(config);
            b.iter(|| {
                si_suite::run_suite(&engine)
                    .unwrap_or_else(|e| panic!("suite batch failed: {e}"))
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_incremental_regeneration(c: &mut Criterion) {
    // The PR's reuse layers A/B'd on the relaxation-heavy gold circuit:
    // cold derivation with trials regenerated from scratch vs derived
    // incrementally from their predecessors, and the warm full-suite pass
    // under the cache-only (PR-2) configuration vs the full stack
    // (incremental + delta tier + projection memo).
    let bench = si_suite::benchmark("imec-ram-read-sbuf").expect("bundled");
    let (stg, library) = load(&bench);
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    for (name, incremental) in [("cold_scratch", false), ("cold_incremental", true)] {
        let engine = Engine::new(EngineConfig {
            incremental,
            memo_projection: false,
            ..EngineConfig::default()
        });
        group.bench_function(name, |b| {
            b.iter(|| {
                engine.clear_cache();
                engine
                    .run(&stg, &library)
                    .expect("derives")
                    .report
                    .constraints
                    .len()
            })
        });
    }
    for (name, config) in [
        (
            "warm_suite_cache_only",
            EngineConfig {
                incremental: false,
                memo_projection: false,
                ..EngineConfig::default()
            },
        ),
        ("warm_suite_full_reuse", EngineConfig::default()),
    ] {
        let engine = Engine::new(config);
        si_suite::run_suite(&engine).unwrap_or_else(|e| panic!("priming pass failed: {e}"));
        group.bench_function(name, |b| {
            b.iter(|| {
                si_suite::run_suite(&engine)
                    .unwrap_or_else(|e| panic!("warm suite failed: {e}"))
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_baseline_only(c: &mut Criterion) {
    // The baseline (Keller et al.) set needs only projection, no
    // relaxation loop: the gap to the full derivation is the cost of the
    // paper's contribution.
    let mut group = c.benchmark_group("baseline_projection_only");
    group.sample_size(10);
    for name in ["imec-ram-read-sbuf", "fifo", "trimos-send"] {
        let bench = si_suite::benchmark(name).expect("bundled");
        let (stg, library) = load(&bench);
        group.bench_function(name, |b| {
            b.iter(|| {
                let components = stg.mg_components(4096).expect("free choice");
                let mut count = 0usize;
                for a in stg.gate_signals() {
                    let gate = library.gate(stg.signal_name(a)).expect("present");
                    let ctx = si_core::GateContext::bind(gate, &stg).expect("binds");
                    for component in &components {
                        if let Ok(local) = si_core::LocalStg::project_from(component, &ctx) {
                            count += local.input_to_input_arcs().len();
                        }
                    }
                }
                count
            })
        });
    }
    group.finish();
}

fn bench_order_ablation(c: &mut Criterion) {
    // Sec. 5.5 ablation: cost of the two relaxation-order policies.
    use si_core::{derive_timing_constraints_with_order, RelaxationOrder};
    let mut group = c.benchmark_group("relaxation_order");
    group.sample_size(10);
    let bench = si_suite::benchmark("imec-ram-read-sbuf").expect("bundled");
    let (stg, library) = load(&bench);
    for (name, order) in [
        ("tightest_first", RelaxationOrder::TightestFirst),
        ("lexicographic", RelaxationOrder::Lexicographic),
        ("contraction_first", RelaxationOrder::ContractionFirst),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                derive_timing_constraints_with_order(&stg, &library, order)
                    .expect("derives")
                    .constraints
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_relax_sched(c: &mut Criterion) {
    // The trial scheduler's payoff on the canonical diverging specimen
    // (seed 189, gate `o2`): the old harness answer — exhaust a clamped
    // 400-iteration budget — against the scheduler's watchdog bail-out at
    // the real default budget. Both runs end in an error by design; the
    // measurement is the wall clock to reach the deterministic verdict.
    use si_core::DivergencePolicy;
    use si_corpus::{generate, CorpusSpec};
    let spec = CorpusSpec::from_seed(189, 12);
    let circuit = generate(&spec, 189);
    let library = si_synth::synthesize(&circuit.stg, EngineConfig::default().global_sg_budget)
        .expect("seed 189 synthesizes");
    let mut group = c.benchmark_group("relax_sched");
    group.sample_size(10);
    group.bench_function("seed189_exhaust_budget400", |b| {
        let engine = Engine::new(EngineConfig {
            expand_budget: 400,
            divergence_policy: DivergencePolicy::Exhaust,
            ..EngineConfig::default()
        });
        b.iter(|| engine.run(&circuit.stg, &library).expect_err("exhausts"))
    });
    group.bench_function("seed189_scheduler_bail", |b| {
        let engine = Engine::new(EngineConfig::default());
        b.iter(|| engine.run(&circuit.stg, &library).expect_err("diverges"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_derivation,
    bench_engine_configs,
    bench_engine_suite_batch,
    bench_incremental_regeneration,
    bench_baseline_only,
    bench_order_ablation,
    bench_relax_sched
);
criterion_main!(benches);

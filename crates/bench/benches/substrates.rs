//! Criterion benches for the substrates: state-graph generation, MG
//! decomposition, projection, redundancy elimination, two-level
//! minimization and the event simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use si_sim::{simulate, DelayModel};
use si_stg::{MgStg, StateGraph};

fn bench_state_graph(c: &mut Criterion) {
    let stg = si_stg::parse_astg(si_stg::IMEC_RAM_READ_SBUF_G).expect("valid");
    c.bench_function("state_graph/imec-ram-read-sbuf", |b| {
        b.iter(|| {
            StateGraph::of_stg(&stg, 1_000_000)
                .expect("consistent")
                .state_count()
        })
    });
}

fn bench_projection(c: &mut Criterion) {
    let stg = si_stg::parse_astg(si_stg::IMEC_RAM_READ_SBUF_G).expect("valid");
    let mg = MgStg::from_stg_mg(&stg).expect("marked graph");
    let i0 = stg.signal_by_name("i0").expect("declared");
    let pre = stg.signal_by_name("precharged").expect("declared");
    let wenin = stg.signal_by_name("wenin").expect("declared");
    c.bench_function("projection/imec-gate-i0", |b| {
        b.iter(|| mg.project_on_gate(i0, &[pre, wenin]).expect("projects"))
    });
}

fn bench_decomposition(c: &mut Criterion) {
    let stg = si_suite::benchmark("nowick")
        .expect("bundled")
        .stg()
        .unwrap_or_else(|e| panic!("benchmark `nowick` failed to load: {e}"));
    c.bench_function("hack_decomposition/nowick", |b| {
        b.iter(|| stg.mg_components(4096).expect("free choice").len())
    });
}

fn bench_minimization(c: &mut Criterion) {
    // Exact QM on a 6-variable majority-of-three-pairs function.
    let n = 6usize;
    let f = |s: u64| {
        let pairs = [(0, 1), (2, 3), (4, 5)];
        pairs
            .iter()
            .filter(|&&(a, b)| (s >> a) & 1 == 1 && (s >> b) & 1 == 1)
            .count()
            >= 2
    };
    let on: Vec<u64> = (0..(1u64 << n)).filter(|&s| f(s)).collect();
    c.bench_function("qm_irredundant_cover/6var", |b| {
        b.iter(|| si_boolean::irredundant_cover(&on, &[], n))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let (stg, library) = si_suite::benchmark("fifo")
        .expect("bundled")
        .circuit()
        .unwrap_or_else(|e| panic!("benchmark `fifo` failed to load: {e}"));
    let delays = DelayModel::uniform(40.0, 2.0, 80.0);
    c.bench_function("event_sim/fifo-200-transitions", |b| {
        b.iter(|| {
            simulate(&stg, &library, &delays, 200)
                .expect("simulates")
                .fired
        })
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let stg = si_stg::parse_astg(si_stg::IMEC_RAM_READ_SBUF_G).expect("valid");
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    group.bench_function("imec-ram-read-sbuf", |b| {
        b.iter(|| {
            si_synth::synthesize(&stg, 1_000_000)
                .expect("CSC")
                .gates
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_state_graph,
    bench_projection,
    bench_decomposition,
    bench_minimization,
    bench_simulation,
    bench_synthesis
);
criterion_main!(benches);

//! `corpus_bench` — the sharded corpus runner's contract and speedup,
//! measured and written as a machine-readable artifact.
//!
//! Generates an `N`-circuit synthetic manifest (canonical
//! [`CorpusSpec::from_seed`] derivation, seeds `1..=N`), then runs it
//! three ways through [`si_suite::run_corpus`]:
//!
//! 1. **sequential reference** — a fresh engine, an explicit
//!    `run_corpus_entry` loop in manifest order;
//! 2. **sharded cold** — a fresh engine, `--jobs` worker shards;
//! 3. **sharded warm** — the same engine again (structural caches hot).
//!
//! Every sharded row's payload (constraint report, lint findings, error
//! value) is asserted **bit-identical** to the sequential reference —
//! the row-order merge contract — and the wall clocks plus the
//! cold-speedup ratio land in a `BENCH_table72.json`-style JSON artifact
//! (default `BENCH_corpus.json`). The measured speedup is honest: on a
//! single-CPU host it hovers near 1×; the ≥2× circuit-level scaling
//! shows up from 2+ cores (gate fan-out inside these small circuits is
//! too shallow to parallelize — sharding across circuits is the lever).
//!
//! Exit codes: `0` contract holds, `1` sharded output diverged from the
//! sequential reference, `3` usage error.

use std::process::ExitCode;
use std::time::Instant;

use si_core::{Engine, EngineConfig};
use si_corpus::{corpus_name, generate, harness_config, CorpusSpec};
use si_suite::{run_corpus, run_corpus_entry, CorpusEntry, CorpusOutcome};

const USAGE: &str = "\
usage: corpus_bench [--circuits N] [--jobs J] [--max-signals K] [--json [PATH]]

Runs an N-circuit seeded synthetic corpus sharded over J workers against
a sequential single-engine reference loop, asserts row-for-row payload
identity, and records the wall clocks in a JSON artifact.

OPTIONS:
        --circuits <N>     manifest size (default 1000, seeds 1..=N)
    -j, --jobs <J>         worker shards (default 8, 0 = one per CPU)
        --max-signals <K>  generator signal-count bound (default 10)
        --json [PATH]      artifact path (default BENCH_corpus.json)
    -h, --help             print this help and exit
";

fn json_str(s: &str) -> String {
    format!("\"{}\"", si_lint::json_escape(s))
}

/// The comparable payload of one row: everything except wall times and
/// cache counters (which legitimately differ across schedules).
fn payload(outcome: &CorpusOutcome) -> String {
    match outcome {
        Ok(row) => format!("{}|{:?}|{:?}", row.name, row.report.report, row.lint),
        Err(e) => format!("err|{e:?}"),
    }
}

fn main() -> ExitCode {
    let mut circuits: u64 = 1000;
    let mut jobs: usize = 8;
    let mut max_signals: usize = 10;
    let mut json_path = "BENCH_corpus.json".to_string();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter().peekable();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        let result: Result<(), String> = match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--circuits" => value("--circuits").and_then(|v| {
                circuits = v.parse().map_err(|_| format!("bad --circuits `{v}`"))?;
                Ok(())
            }),
            "-j" | "--jobs" => value("--jobs").and_then(|v| {
                jobs = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
                Ok(())
            }),
            "--max-signals" => value("--max-signals").and_then(|v| {
                max_signals = v.parse().map_err(|_| format!("bad --max-signals `{v}`"))?;
                Ok(())
            }),
            "--json" => {
                if let Some(next) = it.peek() {
                    if !next.starts_with('-') {
                        json_path = it.next().expect("peeked").clone();
                    }
                }
                Ok(())
            }
            other => Err(format!("unknown argument `{other}`")),
        };
        if let Err(e) = result {
            eprintln!("corpus_bench: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(3);
        }
    }

    println!("generating {circuits}-circuit manifest (max {max_signals} signals)…");
    let generated = Instant::now();
    let manifest: Vec<CorpusEntry> = (1..=circuits)
        .map(|seed| {
            let c = generate(&CorpusSpec::from_seed(seed, max_signals), seed);
            CorpusEntry {
                name: corpus_name(seed),
                stg_text: c.g_text,
                eqn_text: None,
            }
        })
        .collect();
    let generated = generated.elapsed();

    // Sequential reference: fresh engine, explicit row-order loop. All
    // engines run with the divergence bail-out forced on — see
    // `si_corpus::harness_config` for why corpus sweeps need it.
    let seq_engine = Engine::new(harness_config(EngineConfig::default()));
    let seq_started = Instant::now();
    let seq: Vec<CorpusOutcome> = manifest
        .iter()
        .map(|entry| run_corpus_entry(&seq_engine, entry))
        .collect();
    let seq_wall = seq_started.elapsed();

    // Sharded, cold then warm, on one fresh engine.
    let shard_engine = Engine::new(harness_config(EngineConfig::default()));
    let cold_started = Instant::now();
    let cold = run_corpus(&shard_engine, &manifest, jobs);
    let cold_wall = cold_started.elapsed();
    let warm_started = Instant::now();
    let warm = run_corpus(&shard_engine, &manifest, jobs);
    let warm_wall = warm_started.elapsed();

    let identical = seq.len() == cold.len()
        && seq.len() == warm.len()
        && seq.iter().zip(&cold).all(|(a, b)| payload(a) == payload(b))
        && seq.iter().zip(&warm).all(|(a, b)| payload(a) == payload(b));
    let derived = seq.iter().filter(|o| o.is_ok()).count();
    let errored = seq.len() - derived;
    let speedup_cold = seq_wall.as_secs_f64() / cold_wall.as_secs_f64().max(1e-9);
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);

    println!(
        "{derived}/{} derived ({errored} load/derive errors), generation {:.2}s",
        seq.len(),
        generated.as_secs_f64()
    );
    println!(
        "sequential {:.3}s | sharded --jobs {jobs} cold {:.3}s ({speedup_cold:.2}x) warm {:.3}s | {host_cpus} CPU(s)",
        seq_wall.as_secs_f64(),
        cold_wall.as_secs_f64(),
        warm_wall.as_secs_f64()
    );
    println!(
        "row contract: {}",
        if identical {
            "sharded output bit-identical to the sequential reference"
        } else {
            "VIOLATED — sharded output differs from the sequential reference"
        }
    );

    let json = format!(
        "{{\"bench\":{},\"circuits\":{circuits},\"jobs\":{jobs},\"max_signals\":{max_signals},\
         \"host_cpus\":{host_cpus},\"derived\":{derived},\"errored\":{errored},\
         \"generate_wall_us\":{},\"seq_wall_us\":{},\"shard_cold_wall_us\":{},\
         \"shard_warm_wall_us\":{},\"speedup_cold\":{speedup_cold:.4},\"identical\":{identical}}}\n",
        json_str("corpus_sharding"),
        generated.as_micros(),
        seq_wall.as_micros(),
        cold_wall.as_micros(),
        warm_wall.as_micros(),
    );
    if let Err(e) = std::fs::write(&json_path, json) {
        eprintln!("corpus_bench: cannot write `{json_path}`: {e}");
    } else {
        println!("wrote {json_path}");
    }
    if identical {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

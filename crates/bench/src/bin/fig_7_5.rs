//! Regenerates thesis Fig. 7.5: circuit error rate versus technology node
//! (90 → 32 nm) on a one-million-gate die, for the unbuffered fork
//! (`un-buf`) and the fork with one repeater on the direct wire (`buf-1`).
//! The constraint set is the FIFO's, as in the thesis simulation. The
//! derivation runs through the shared staged [`Engine`] (like the table
//! binaries), so it reports per-stage metrics and benefits from the
//! state-graph/projection caches.

use si_bench::{engine_metrics_line, strong_constraint_gates};
use si_core::{Engine, EngineConfig};
use si_sim::{circuit_error_rate, ErrorRateConfig, ForkStyle, NODES};

fn main() {
    let bench = si_suite::benchmark("fifo").expect("bundled");
    let (stg, library) = bench.circuit().expect("loads");
    let engine = Engine::new(EngineConfig::parallel(0));
    let out = engine.run(&stg, &library).expect("derives");
    let report = &out.report;
    let gates = strong_constraint_gates(&stg, report);
    println!(
        "Fig. 7.5 — error rate vs technology ({} strong constraints, 1M gates)",
        gates.len()
    );
    println!("{:<8} {:>10} {:>10}", "node", "un-buf", "buf-1");
    for tech in NODES {
        let unbuf = circuit_error_rate(
            &tech,
            &ErrorRateConfig::new(1_000_000, ForkStyle::Unbuffered),
            &gates,
        );
        let buf = circuit_error_rate(
            &tech,
            &ErrorRateConfig::new(1_000_000, ForkStyle::BufferedDirect),
            &gates,
        );
        println!(
            "{:>5}nm {:>9.2}% {:>9.2}%",
            tech.node_nm,
            100.0 * unbuf,
            100.0 * buf
        );
    }
    println!("\nExpected shape (thesis): both series rise as the node shrinks;");
    println!("buf-1 lies above un-buf at every node.");
    println!("{}", engine_metrics_line(&out));
}

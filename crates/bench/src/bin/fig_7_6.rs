//! Regenerates thesis Fig. 7.6: circuit error rate versus die scale
//! (0.5 M → 4 M gates) at the 90 nm node, `un-buf` and `buf-1` series.
//! The derivation runs through the shared staged [`Engine`], reporting
//! per-stage metrics like the table binaries.

use si_bench::{engine_metrics_line, strong_constraint_gates};
use si_core::{Engine, EngineConfig};
use si_sim::{circuit_error_rate, ErrorRateConfig, ForkStyle, NODES};

fn main() {
    let bench = si_suite::benchmark("fifo").expect("bundled");
    let (stg, library) = bench.circuit().expect("loads");
    let engine = Engine::new(EngineConfig::parallel(0));
    let out = engine.run(&stg, &library).expect("derives");
    let report = &out.report;
    let gates = strong_constraint_gates(&stg, report);
    let tech = NODES[0]; // 90 nm

    println!(
        "Fig. 7.6 — error rate vs scale at 90nm ({} strong constraints)",
        gates.len()
    );
    println!("{:<10} {:>10} {:>10}", "gates", "un-buf", "buf-1");
    for n in [500_000u64, 1_000_000, 2_000_000, 4_000_000] {
        let unbuf = circuit_error_rate(
            &tech,
            &ErrorRateConfig::new(n, ForkStyle::Unbuffered),
            &gates,
        );
        let buf = circuit_error_rate(
            &tech,
            &ErrorRateConfig::new(n, ForkStyle::BufferedDirect),
            &gates,
        );
        println!(
            "{:>7}k {:>9.2}% {:>9.2}%",
            n / 1000,
            100.0 * unbuf,
            100.0 * buf
        );
    }
    println!("\nExpected shape (thesis): error rate grows with the gate count.");
    println!("{}", engine_metrics_line(&out));
}

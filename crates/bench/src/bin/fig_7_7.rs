//! Regenerates thesis Fig. 7.7: the cycle-time penalty of padding the
//! FIFO's strong constraints, per technology node, for the two delay
//! element types: a repeater (delays both edges of the padded signal) and
//! a current-starved element (delays only the constrained edge,
//! Fig. 7.4). Padding positions come from the Sec. 5.7 greedy planner;
//! the pad magnitude counters the maximum direct-wire delay at each node.

use si_bench::engine_metrics_line;
use si_core::{plan_padding, AdversaryOracle, Engine, EngineConfig, PaddingPosition};
use si_sim::{cycle_time, DelayAssignment, NODES};
use si_stg::MgStg;

fn main() {
    let bench = si_suite::benchmark("fifo").expect("bundled");
    let (stg, library) = bench.circuit().expect("loads");
    // The shared staged engine (like the table binaries): per-stage
    // metrics plus the state-graph and projection caches.
    let engine = Engine::new(EngineConfig::parallel(0));
    let out = engine.run(&stg, &library).expect("derives");
    let report = &out.report;
    let oracle = AdversaryOracle::new(&stg);
    let plan = plan_padding(&stg, &oracle, &report.constraints, 5);
    let mg = MgStg::from_stg_mg(&stg).expect("the FIFO STG is a marked graph");

    println!(
        "Fig. 7.7 — delay penalty of padding ({} pads)",
        plan.entries.len()
    );
    println!("{:<8} {:>16} {:>12}", "node", "current-starved", "repeater");

    for tech in NODES {
        // Pad magnitude: enough to out-delay the longest plausible local
        // wire (the thesis counters the maximum wire-length delay).
        let pad = tech.wire_delay(100.0);
        let base_delay = DelayAssignment::uniform(tech.gate_delay_ps);
        let base = cycle_time(&mg, &base_delay).expect("cyclic");

        let mut starved = base_delay.clone();
        let mut repeater = base_delay.clone();
        for (c, pos) in &plan.entries {
            let signal = match pos {
                PaddingPosition::Wire { from, .. } => from.clone(),
                PaddingPosition::GateOutput { gate } => gate.clone(),
            };
            // The current-starved element delays only the constrained
            // edge: the `after` transition's polarity on the padded signal.
            let edge = format!("{}{}", signal, c.after.polarity);
            starved.pad_label(&edge, pad);
            repeater.pad_signal(&mg, &signal, pad);
        }
        let t_starved = cycle_time(&mg, &starved).expect("cyclic");
        let t_repeater = cycle_time(&mg, &repeater).expect("cyclic");
        println!(
            "{:>5}nm {:>15.1}% {:>11.1}%",
            tech.node_nm,
            100.0 * (t_starved - base) / base,
            100.0 * (t_repeater - base) / base,
        );
    }
    println!("\nExpected shape (thesis): the repeater penalty dominates the");
    println!("current-starved penalty at every node.");
    println!("{}", engine_metrics_line(&out));
}

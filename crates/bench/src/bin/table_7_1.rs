//! Regenerates thesis Table 7.1 and the Fig. 7.3 narrative: the FIFO
//! (chu150-flavour) design example of Ch. 7.1. Prints the derived relative
//! timing constraints, each mapped to its wire-vs-adversary-path delay
//! relation, the per-gate relaxation trace (`--trace`), and the greedy
//! padding plan of Sec. 5.7 for the strong constraints.

use si_core::{derive_timing_constraints, plan_padding, AdversaryOracle, TraceEvent};
use si_stg::TransitionLabel;

fn main() {
    let trace_mode = std::env::args().any(|a| a == "--trace");
    let bench = si_suite::benchmark("fifo").expect("bundled");
    let (stg, library) = bench.circuit().expect("loads");
    let report = derive_timing_constraints(&stg, &library).expect("derives");
    let oracle = AdversaryOracle::new(&stg);

    println!("Design example: FIFO latch controller (thesis Ch. 7.1)");
    println!(
        "{} gates, {} reachable states, {} baseline constraints, {} after relaxation\n",
        stg.gate_signals().len(),
        report.state_count,
        report.baseline.len(),
        report.constraints.len()
    );

    println!("Table 7.1 — list of timing constraints (wire < adversary path)");
    println!("{:<24} adversary path", "wire");
    for c in &report.constraints {
        let (Some(x), Some(y)) = (lookup(&stg, c, true), lookup(&stg, c, false)) else {
            continue;
        };
        let wire = format!("{} -> gate {}", c.before, c.gate);
        match oracle.path(x, y) {
            Some(path) => {
                let suffix = if path.through_env {
                    " (crosses ENV)"
                } else {
                    ""
                };
                println!("{:<24} {}{}", wire, path.hops.join(" => "), suffix);
            }
            None => println!("{:<24} (no structural path)", wire),
        }
    }

    println!("\nPadding plan for strong (level <= 5) constraints, Sec. 5.7:");
    let plan = plan_padding(&stg, &oracle, &report.constraints, 5);
    if plan.entries.is_empty() {
        println!("  (none needed: all adversary paths are long or cross the environment)");
    }
    for (c, pos) in &plan.entries {
        println!("  {c}  ->  pad {pos:?}");
    }

    if trace_mode {
        println!("\nRelaxation trace (the Fig. 7.3 procedure):");
        for event in &report.trace {
            match event {
                TraceEvent::Relaxed { gate, arc, case } => {
                    println!("  [{gate}] relax {arc}: case {case}");
                }
                TraceEvent::MadeConcurrentWithOutput { gate, transition } => {
                    println!("  [{gate}] {transition} made concurrent with the output");
                }
                TraceEvent::Decomposed { gate, parts } => {
                    println!("  [{gate}] OR-causality decomposition into {parts} sub-STGs");
                }
                TraceEvent::ConstraintEmitted { constraint } => {
                    println!("  constraint: {constraint}");
                }
                TraceEvent::Fallback { gate, reason } => {
                    println!("  [{gate}] fallback: {reason}");
                }
                TraceEvent::Diverged { gate, witness } => {
                    println!("  [{gate}] diverged: {witness}");
                }
            }
        }
    } else {
        println!("\n(run with --trace for the per-gate Fig. 7.3 relaxation narrative)");
    }
}

fn lookup(stg: &si_stg::Stg, c: &si_core::Constraint, before: bool) -> Option<TransitionLabel> {
    let a = if before { &c.before } else { &c.after };
    let sig = stg.signal_by_name(&a.signal)?;
    Some(TransitionLabel::new(sig, a.polarity, a.occurrence))
}

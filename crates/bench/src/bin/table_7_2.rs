//! Regenerates thesis Table 7.2: for all thirteen benchmarks, the number
//! of timing constraints before relaxation (the Keller-et-al. adversary
//! path conditions), after relaxation, the `≤5`- and `≤3`-level buckets,
//! the implementation-STG state count and the CPU time; the bottom line is
//! the total after/before ratio — the paper's headline ≈40 % reduction.
//!
//! All rows run through **one shared engine** (parallel per-gate fan-out,
//! state-graph cache shared across circuits); footers compare the
//! engine's wall-clock against the seed's sequential uncached path, the
//! cold-pass effect of σ-space exploration, and the warm-path effect of
//! the reuse layers (incremental regeneration + classification,
//! projection memo, conformance cache) against the cache-only
//! configuration.
//!
//! `--json [PATH]` additionally writes the whole run — rows, per-stage
//! wall times, cache-tier traffic, cold/warm suite totals — as one JSON
//! object (default `BENCH_table72.json`), so future changes diff perf
//! machine-readably instead of quoting footer text.

use std::time::{Duration, Instant};

use si_bench::table_row_report;
use si_core::{derive_timing_constraints, Engine, EngineConfig, EngineReport};

/// The PR 3 warm full-suite wall-clock this PR optimizes against
/// (microseconds); kept in the JSON so the ratio is self-describing.
const PR3_WARM_BASELINE_US: u64 = 6800;

fn json_str(s: &str) -> String {
    format!("\"{}\"", si_lint::json_escape(s))
}

/// The per-stage/per-tier metrics of one engine run as a JSON fragment.
fn report_json(out: &EngineReport) -> String {
    let stages: Vec<String> = out
        .stages
        .iter()
        .map(|s| {
            format!(
                "{{\"stage\":{},\"wall_us\":{},\"states_explored\":{},\"sg_cache_hits\":{},\"sg_cache_misses\":{},\"sg_delta_hits\":{},\"sg_inc_derived\":{},\"proj_memo_hits\":{},\"proj_memo_misses\":{},\"conf_cache_hits\":{},\"conf_cache_misses\":{},\"conf_inc_classified\":{}}}",
                json_str(s.stage.name()),
                s.wall.as_micros(),
                s.states_explored,
                s.sg_cache_hits,
                s.sg_cache_misses,
                s.sg_delta_hits,
                s.sg_inc_derived,
                s.proj_memo_hits,
                s.proj_memo_misses,
                s.conf_cache_hits,
                s.conf_cache_misses,
                s.conf_inc_classified,
            )
        })
        .collect();
    format!(
        "\"total_wall_us\":{},\"fanout_wall_us\":{},\"stages\":[{}]",
        out.total_wall.as_micros(),
        out.fanout_wall.as_micros(),
        stages.join(",")
    )
}

fn cache_json(stats: &si_core::CacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"entries\":{},\"delta_hits\":{},\"delta_entries\":{},\"inc_derived\":{}}}",
        stats.hits, stats.misses, stats.entries, stats.delta_hits, stats.delta_entries,
        stats.inc_derived,
    )
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(
                    args.next()
                        .unwrap_or_else(|| "BENCH_table72.json".to_string()),
                );
            }
            other => {
                eprintln!("table_7_2: unknown argument `{other}` (expected `--json [PATH]`)");
                std::process::exit(3);
            }
        }
    }

    let engine = Engine::new(EngineConfig::parallel(0));
    println!("Table 7.2 — Comparison of the timing constraints");
    println!(
        "{:<20} {:>3} {:>4} {:>5} {:>7} | {:>7} {:>6} | {:>8} {:>7} | {:>8} {:>7} | {:>8}",
        "Name",
        "in",
        "out",
        "gate",
        "states",
        "adv.bef",
        "adv.aft",
        "<=5.bef",
        "<=5.aft",
        "<=3.bef",
        "<=3.aft",
        "CPU(s)"
    );
    let (mut tb, mut ta) = (0usize, 0usize);
    let (mut t5b, mut t5a, mut t3b, mut t3a) = (0usize, 0usize, 0usize, 0usize);
    let mut row_objects: Vec<String> = Vec::new();
    let engine_started = Instant::now();
    for bench in si_suite::benchmarks() {
        match table_row_report(&engine, &bench) {
            Ok((row, out)) => {
                tb += row.before;
                ta += row.after;
                t5b += row.lvl5.0;
                t5a += row.lvl5.1;
                t3b += row.lvl3.0;
                t3a += row.lvl3.1;
                println!(
                    "{:<20} {:>3} {:>4} {:>5} {:>7} | {:>7} {:>6} | {:>8} {:>7} | {:>8} {:>7} | {:>8.3}",
                    row.name, row.inputs, row.outputs, row.gates, row.states, row.before,
                    row.after, row.lvl5.0, row.lvl5.1, row.lvl3.0, row.lvl3.1, row.cpu
                );
                row_objects.push(format!(
                    "{{\"name\":{},\"inputs\":{},\"outputs\":{},\"gates\":{},\"states\":{},\"before\":{},\"after\":{},\"lvl5_before\":{},\"lvl5_after\":{},\"lvl3_before\":{},\"lvl3_after\":{},\"cpu_seconds\":{:.6},{}}}",
                    json_str(&row.name),
                    row.inputs,
                    row.outputs,
                    row.gates,
                    row.states,
                    row.before,
                    row.after,
                    row.lvl5.0,
                    row.lvl5.1,
                    row.lvl3.0,
                    row.lvl3.1,
                    row.cpu,
                    report_json(&out),
                ));
            }
            Err(e) => println!("{:<20} ERROR: {e}", bench.name),
        }
    }
    println!();
    let pct = |a: usize, b: usize| {
        if b == 0 {
            100.0
        } else {
            100.0 * a as f64 / b as f64
        }
    };
    println!(
        "Total ratio after/before = {:.1}%   (<=5 level: {:.1}%, <=3 level: {:.1}%)",
        pct(ta, tb),
        pct(t5a, t5b),
        pct(t3a, t3b),
    );
    println!("Thesis totals for reference: 63.9% (all), 60.0% (<=5), 57.5% (<=3)");

    let engine_wall = engine_started.elapsed();
    let cache = engine.cache_stats();
    let projections = engine.projection_stats();
    let conformance = engine.conformance_stats();
    println!();
    let jobs = match engine.config().jobs {
        0 => format!(
            "auto ({})",
            std::thread::available_parallelism().map_or(1, usize::from)
        ),
        n => n.to_string(),
    };
    println!(
        "Engine: {jobs} jobs, SG cache {} hits / {} misses ({:.0}% hit rate, {} entries), \
         conformance cache {} hits / {} misses ({} entries)",
        cache.hits,
        cache.misses,
        100.0 * cache.hit_ratio(),
        cache.entries,
        conformance.hits,
        conformance.misses,
        conformance.entries,
    );

    // The before/after comparison of the refactor: the same thirteen
    // rows through the seed's sequential uncached path — including the
    // constraint-level classification the engine loop pays for, so both
    // sides measure the same load + derive + classify scope. A circuit
    // that fails to load or derive panics with its name — a partial seed
    // run would make the ratio below apples-to-oranges.
    let seed_started = Instant::now();
    for bench in si_suite::benchmarks() {
        let (stg, library) = bench
            .circuit()
            .unwrap_or_else(|e| panic!("benchmark `{}` failed to load: {e}", bench.name));
        let report = derive_timing_constraints(&stg, &library)
            .unwrap_or_else(|e| panic!("benchmark `{}` failed to derive: {e}", bench.name));
        let oracle = si_core::AdversaryOracle::new(&stg);
        for level in [5u32, 3] {
            std::hint::black_box(report.constraints_within_level(
                &report.baseline,
                &oracle,
                &stg,
                level,
            ));
            std::hint::black_box(report.constraints_within_level(
                &report.constraints,
                &oracle,
                &stg,
                level,
            ));
        }
    }
    let seed_wall = seed_started.elapsed();
    println!(
        "Suite wall-clock: engine {engine_wall:.2?} vs seed sequential {seed_wall:.2?} ({:.2}x)",
        seed_wall.as_secs_f64() / engine_wall.as_secs_f64().max(1e-9),
    );

    // Cold pass: a fresh engine's first full-suite run, classic marking
    // keys vs σ (firing count vector) keys — this PR's cold-side change.
    let cold_suite = |config: EngineConfig| -> Duration {
        let engine = Engine::new(config);
        let started = Instant::now();
        si_suite::run_suite(&engine).unwrap_or_else(|e| panic!("cold pass failed: {e}"));
        started.elapsed()
    };
    let cold_classic = cold_suite(EngineConfig {
        sigma_cold: false,
        ..EngineConfig::default()
    });
    let cold_sigma = cold_suite(EngineConfig::default());
    println!(
        "Cold suite: marking-keyed {cold_classic:.2?} vs sigma-keyed {cold_sigma:.2?} ({:.2}x)",
        cold_classic.as_secs_f64() / cold_sigma.as_secs_f64().max(1e-9),
    );

    // The before/after of the reuse layers on the *warm* path: the PR-2
    // configuration (structural SG cache only) against the full stack
    // (incremental regeneration + classification, delta tier, projection
    // memo, conformance cache). Each engine is primed by one cold suite
    // pass, then timed warm.
    let warm_suite = |config: EngineConfig| -> Duration {
        let engine = Engine::new(config);
        si_suite::run_suite(&engine).unwrap_or_else(|e| panic!("priming pass failed: {e}"));
        let started = Instant::now();
        si_suite::run_suite(&engine).unwrap_or_else(|e| panic!("warm pass failed: {e}"));
        started.elapsed()
    };
    let pr2_warm = warm_suite(EngineConfig {
        incremental: false,
        memo_projection: false,
        incremental_classify: false,
        sigma_cold: false,
        ..EngineConfig::default()
    });
    let full_warm = warm_suite(EngineConfig::default());
    println!(
        "Warm suite: cache-only {pr2_warm:.2?} vs incremental+memoized {full_warm:.2?} ({:.2}x)",
        pr2_warm.as_secs_f64() / full_warm.as_secs_f64().max(1e-9),
    );
    println!(
        "Warm suite vs PR 3 baseline ({:.1} ms): {full_warm:.2?} ({:.2}x)",
        PR3_WARM_BASELINE_US as f64 / 1000.0,
        PR3_WARM_BASELINE_US as f64 / 1e6 / full_warm.as_secs_f64().max(1e-9),
    );

    if let Some(path) = json_path {
        let json = format!(
            "{{\"table\":\"7.2\",\"jobs\":{},\"rows\":[{}],\"totals\":{{\"before\":{tb},\"after\":{ta},\"ratio_pct\":{:.1},\"lvl5_pct\":{:.1},\"lvl3_pct\":{:.1}}},\"cache\":{},\"projections\":{},\"conformance\":{},\"suite\":{{\"engine_wall_us\":{},\"seed_wall_us\":{},\"cold_classic_us\":{},\"cold_sigma_us\":{},\"warm_cache_only_us\":{},\"warm_full_us\":{},\"pr3_warm_baseline_us\":{PR3_WARM_BASELINE_US},\"warm_vs_pr3\":{:.2}}}}}",
            engine.config().jobs,
            row_objects.join(","),
            pct(ta, tb),
            pct(t5a, t5b),
            pct(t3a, t3b),
            cache_json(&cache),
            cache_json(&projections),
            cache_json(&conformance),
            engine_wall.as_micros(),
            seed_wall.as_micros(),
            cold_classic.as_micros(),
            cold_sigma.as_micros(),
            pr2_warm.as_micros(),
            full_warm.as_micros(),
            PR3_WARM_BASELINE_US as f64 / 1e6 / full_warm.as_secs_f64().max(1e-9),
        );
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("table_7_2: cannot write `{path}`: {e}");
            std::process::exit(2);
        }
        println!("Wrote {path}");
    }
}

//! Regenerates thesis Table 7.2: for all thirteen benchmarks, the number
//! of timing constraints before relaxation (the Keller-et-al. adversary
//! path conditions), after relaxation, the `≤5`- and `≤3`-level buckets,
//! the implementation-STG state count and the CPU time; the bottom line is
//! the total after/before ratio — the paper's headline ≈40 % reduction.
//!
//! All rows run through **one shared engine** (parallel per-gate fan-out,
//! state-graph cache shared across circuits); footers compare the
//! engine's wall-clock against the seed's sequential uncached path and
//! the warm-path effect of the incremental + projection-memo layers
//! against the cache-only configuration.

use std::time::Instant;

use si_bench::table_row_with;
use si_core::{derive_timing_constraints, Engine, EngineConfig};

fn main() {
    let engine = Engine::new(EngineConfig::parallel(0));
    println!("Table 7.2 — Comparison of the timing constraints");
    println!(
        "{:<20} {:>3} {:>4} {:>5} {:>7} | {:>7} {:>6} | {:>8} {:>7} | {:>8} {:>7} | {:>8}",
        "Name",
        "in",
        "out",
        "gate",
        "states",
        "adv.bef",
        "adv.aft",
        "<=5.bef",
        "<=5.aft",
        "<=3.bef",
        "<=3.aft",
        "CPU(s)"
    );
    let (mut tb, mut ta) = (0usize, 0usize);
    let (mut t5b, mut t5a, mut t3b, mut t3a) = (0usize, 0usize, 0usize, 0usize);
    let engine_started = Instant::now();
    for bench in si_suite::benchmarks() {
        match table_row_with(&engine, &bench) {
            Ok((row, _)) => {
                tb += row.before;
                ta += row.after;
                t5b += row.lvl5.0;
                t5a += row.lvl5.1;
                t3b += row.lvl3.0;
                t3a += row.lvl3.1;
                println!(
                    "{:<20} {:>3} {:>4} {:>5} {:>7} | {:>7} {:>6} | {:>8} {:>7} | {:>8} {:>7} | {:>8.3}",
                    row.name, row.inputs, row.outputs, row.gates, row.states, row.before,
                    row.after, row.lvl5.0, row.lvl5.1, row.lvl3.0, row.lvl3.1, row.cpu
                );
            }
            Err(e) => println!("{:<20} ERROR: {e}", bench.name),
        }
    }
    println!();
    let pct = |a: usize, b: usize| {
        if b == 0 {
            100.0
        } else {
            100.0 * a as f64 / b as f64
        }
    };
    println!(
        "Total ratio after/before = {:.1}%   (<=5 level: {:.1}%, <=3 level: {:.1}%)",
        pct(ta, tb),
        pct(t5a, t5b),
        pct(t3a, t3b),
    );
    println!("Thesis totals for reference: 63.9% (all), 60.0% (<=5), 57.5% (<=3)");

    let engine_wall = engine_started.elapsed();
    let cache = engine.cache_stats();
    println!();
    let jobs = match engine.config().jobs {
        0 => format!(
            "auto ({})",
            std::thread::available_parallelism().map_or(1, usize::from)
        ),
        n => n.to_string(),
    };
    println!(
        "Engine: {jobs} jobs, SG cache {} hits / {} misses ({:.0}% hit rate, {} entries)",
        cache.hits,
        cache.misses,
        100.0 * cache.hit_ratio(),
        cache.entries,
    );

    // The before/after comparison of the refactor: the same thirteen
    // rows through the seed's sequential uncached path — including the
    // constraint-level classification the engine loop pays for, so both
    // sides measure the same load + derive + classify scope. A circuit
    // that fails to load or derive panics with its name — a partial seed
    // run would make the ratio below apples-to-oranges.
    let seed_started = Instant::now();
    for bench in si_suite::benchmarks() {
        let (stg, library) = bench
            .circuit()
            .unwrap_or_else(|e| panic!("benchmark `{}` failed to load: {e}", bench.name));
        let report = derive_timing_constraints(&stg, &library)
            .unwrap_or_else(|e| panic!("benchmark `{}` failed to derive: {e}", bench.name));
        let oracle = si_core::AdversaryOracle::new(&stg);
        for level in [5u32, 3] {
            std::hint::black_box(report.constraints_within_level(
                &report.baseline,
                &oracle,
                &stg,
                level,
            ));
            std::hint::black_box(report.constraints_within_level(
                &report.constraints,
                &oracle,
                &stg,
                level,
            ));
        }
    }
    let seed_wall = seed_started.elapsed();
    println!(
        "Suite wall-clock: engine {engine_wall:.2?} vs seed sequential {seed_wall:.2?} ({:.2}x)",
        seed_wall.as_secs_f64() / engine_wall.as_secs_f64().max(1e-9),
    );

    // The before/after of this PR's reuse layers on the *warm* path: the
    // PR-2 configuration (structural SG cache only) against the full
    // stack (incremental regeneration + delta tier + projection memo).
    // Each engine is primed by one cold suite pass, then timed warm.
    let warm_suite = |config: EngineConfig| {
        let engine = Engine::new(config);
        si_suite::run_suite(&engine).unwrap_or_else(|e| panic!("priming pass failed: {e}"));
        let started = Instant::now();
        si_suite::run_suite(&engine).unwrap_or_else(|e| panic!("warm pass failed: {e}"));
        started.elapsed()
    };
    let pr2_warm = warm_suite(EngineConfig {
        incremental: false,
        memo_projection: false,
        ..EngineConfig::default()
    });
    let full_warm = warm_suite(EngineConfig::default());
    println!(
        "Warm suite: cache-only {pr2_warm:.2?} vs incremental+memoized {full_warm:.2?} ({:.2}x)",
        pr2_warm.as_secs_f64() / full_warm.as_secs_f64().max(1e-9),
    );
}

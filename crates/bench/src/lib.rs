//! Shared plumbing for the table/figure regeneration binaries and the
//! Criterion benches. Each binary in `src/bin/` regenerates one table or
//! figure of the paper's evaluation chapter; see `EXPERIMENTS.md` at the
//! workspace root for paper-vs-measured notes.

use si_core::{
    AdversaryOracle, Constraint, ConstraintReport, Engine, EngineConfig, EngineReport, Stage,
};
use si_stg::Stg;
use std::collections::BTreeSet;

/// One-line per-stage metrics summary of an engine run, shared by the
/// figure/table binaries so every driver reports the pipeline the same
/// way (jobs, fan-out wall, projection memo and state-graph cache
/// traffic, incremental derivations).
pub fn engine_metrics_line(out: &EngineReport) -> String {
    let zero = |stage: Stage| {
        out.stage(stage)
            .copied()
            .unwrap_or_else(|| panic!("stage {} missing from report", stage.name()))
    };
    let project = zero(Stage::Project);
    let relax = zero(Stage::Relax);
    format!(
        "engine: {} jobs, fan-out {:.2?}; project {:.2?} (memo {}h/{}m), \
         relax {:.2?} (SG {}h/{}m, {} delta hits, {} incremental; \
         conf {}h/{}m, {} copied)",
        out.jobs,
        out.fanout_wall,
        project.wall,
        project.proj_memo_hits,
        project.proj_memo_misses,
        relax.wall,
        relax.sg_cache_hits,
        relax.sg_cache_misses,
        relax.sg_delta_hits,
        relax.sg_inc_derived,
        relax.conf_cache_hits,
        relax.conf_cache_misses,
        relax.conf_inc_classified,
    )
}

/// A derived row of Table 7.2.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Gates (non-input signals).
    pub gates: usize,
    /// Reachable states of the implementation STG.
    pub states: usize,
    /// Adversary-path constraints before relaxation.
    pub before: usize,
    /// Constraints after relaxation.
    pub after: usize,
    /// `≤ 5`-level constraints before / after.
    pub lvl5: (usize, usize),
    /// `≤ 3`-level constraints before / after.
    pub lvl3: (usize, usize),
    /// CPU seconds.
    pub cpu: f64,
}

/// Runs the full derivation for one benchmark through a fresh sequential
/// [`Engine`] and classifies constraint levels (Table 7.2 columns).
///
/// # Errors
///
/// Propagates derivation errors as strings (harness-level reporting).
pub fn table_row(bench: &si_suite::Benchmark) -> Result<(TableRow, ConstraintReport), String> {
    table_row_with(&Engine::new(EngineConfig::default()), bench)
}

/// [`table_row`] through a caller-supplied engine: batch drivers share one
/// engine (one cache, one job pool) across all thirteen rows.
///
/// # Errors
///
/// Propagates derivation errors as strings (harness-level reporting).
pub fn table_row_with(
    engine: &Engine,
    bench: &si_suite::Benchmark,
) -> Result<(TableRow, ConstraintReport), String> {
    let (row, out) = table_row_report(engine, bench)?;
    Ok((row, out.report))
}

/// [`table_row_with`] keeping the whole [`EngineReport`] — per-stage wall
/// times and cache traffic included — for machine-readable bench output
/// (`table_7_2 --json`).
///
/// # Errors
///
/// Propagates derivation errors as strings (harness-level reporting).
pub fn table_row_report(
    engine: &Engine,
    bench: &si_suite::Benchmark,
) -> Result<(TableRow, EngineReport), String> {
    let (stg, library) = bench
        .circuit_with_budget(engine.config().global_sg_budget)
        .map_err(|e| e.to_string())?;
    let started = std::time::Instant::now();
    let out = engine.run(&stg, &library).map_err(|e| e.to_string())?;
    let cpu = started.elapsed().as_secs_f64();
    let report = &out.report;
    let oracle = AdversaryOracle::new(&stg);

    let within = |set: &BTreeSet<Constraint>, max: u32| {
        report
            .constraints_within_level(set, &oracle, &stg, max)
            .len()
    };
    let row = TableRow {
        name: bench.name.to_string(),
        inputs: stg.signals_of_kind(si_stg::SignalKind::Input).len(),
        outputs: stg.signals_of_kind(si_stg::SignalKind::Output).len(),
        gates: stg.gate_signals().len(),
        states: report.state_count,
        before: report.baseline.len(),
        after: report.constraints.len(),
        lvl5: (within(&report.baseline, 5), within(&report.constraints, 5)),
        lvl3: (within(&report.baseline, 3), within(&report.constraints, 3)),
        cpu,
    };
    Ok((row, out))
}

/// Adversary-path gate counts of the strong (gate-only) constraints of a
/// report — the per-constraint input of the error-rate model.
pub fn strong_constraint_gates(stg: &Stg, report: &ConstraintReport) -> Vec<u32> {
    let oracle = AdversaryOracle::new(stg);
    report
        .constraints
        .iter()
        .filter_map(|c| {
            let x = label_of(stg, c, true)?;
            let y = label_of(stg, c, false)?;
            let path = oracle.path(x, y)?;
            (!path.through_env).then_some(path.gates)
        })
        .collect()
}

fn label_of(stg: &Stg, c: &Constraint, before: bool) -> Option<si_stg::TransitionLabel> {
    let a = if before { &c.before } else { &c.after };
    let sig = stg.signal_by_name(&a.signal)?;
    Some(si_stg::TransitionLabel::new(sig, a.polarity, a.occurrence))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gold_row_matches_thesis_table() {
        let bench = si_suite::benchmark("imec-ram-read-sbuf").expect("bundled");
        let (row, _) = table_row(&bench).expect("derives");
        assert_eq!((row.before, row.after, row.states), (19, 12, 112));
        assert_eq!((row.inputs, row.outputs, row.gates), (5, 5, 11));
    }

    #[test]
    fn shared_engine_row_matches_fresh_engine_row() {
        let bench = si_suite::benchmark("imec-ram-read-sbuf").expect("bundled");
        let engine = Engine::new(EngineConfig::parallel(2));
        let (row, report) = table_row_with(&engine, &bench).expect("derives");
        let (fresh_row, fresh_report) = table_row(&bench).expect("derives");
        assert_eq!(report, fresh_report);
        assert_eq!(
            (row.before, row.after, row.states),
            (fresh_row.before, fresh_row.after, fresh_row.states)
        );
    }

    #[test]
    fn level_buckets_are_nested() {
        for bench in si_suite::benchmarks() {
            let (row, _) = table_row(&bench).expect("derives");
            assert!(
                row.lvl3.0 <= row.lvl5.0 && row.lvl5.0 <= row.before,
                "{row:?}"
            );
            assert!(
                row.lvl3.1 <= row.lvl5.1 && row.lvl5.1 <= row.after,
                "{row:?}"
            );
        }
    }

    #[test]
    fn strong_constraints_exist_for_the_fifo() {
        let bench = si_suite::benchmark("fifo").expect("bundled");
        let (stg, library) = bench.circuit().expect("loads");
        let report = si_core::derive_timing_constraints(&stg, &library).expect("derives");
        let gates = strong_constraint_gates(&stg, &report);
        assert!(!gates.is_empty());
        assert!(gates.iter().all(|&g| g >= 1));
    }
}

use std::fmt;

use crate::cube::Cube;

/// A cover: a set of cubes over `n` variables, read as their Boolean sum
/// (thesis Sec. 2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cover {
    n: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// Builds a cover from cubes over `n` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn new(n: usize, cubes: Vec<Cube>) -> Self {
        assert!(n <= 64, "at most 64 variables are supported");
        Self { n, cubes }
    }

    /// The constant-0 cover over `n` variables.
    pub fn zero(n: usize) -> Self {
        Self::new(n, Vec::new())
    }

    /// The constant-1 cover over `n` variables.
    pub fn one(n: usize) -> Self {
        Self::new(n, vec![Cube::top()])
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// The cubes (clauses) of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Whether the cover evaluates to 1 in `state`.
    pub fn eval(&self, state: u64) -> bool {
        self.cubes.iter().any(|c| c.eval(state))
    }

    /// Enumerates the on-set minterms (over all `2^n` states).
    pub fn on_set(&self) -> Vec<u64> {
        (0u64..(1u64 << self.n)).filter(|&s| self.eval(s)).collect()
    }

    /// Whether two covers denote the same function (exhaustive over `2^n`).
    pub fn equivalent(&self, other: &Cover) -> bool {
        self.n == other.n && (0u64..(1u64 << self.n)).all(|s| self.eval(s) == other.eval(s))
    }

    /// The set of variables the function actually depends on, as a bit mask
    /// (semantic support: flipping the variable changes the output for some
    /// state).
    pub fn semantic_support(&self) -> u64 {
        let mut support = 0u64;
        for v in 0..self.n {
            let bit = 1u64 << v;
            for s in 0u64..(1u64 << self.n) {
                if self.eval(s) != self.eval(s ^ bit) {
                    support |= bit;
                    break;
                }
            }
        }
        support
    }

    /// Whether variable `var` is a redundant literal source: the function
    /// does not depend on it (thesis Sec. 5.3.2 requires gates without
    /// redundant literals).
    pub fn is_redundant_var(&self, var: usize) -> bool {
        self.semantic_support() & (1u64 << var) == 0
    }

    /// The irredundant prime cover of the complement (`f̄`), computed
    /// exactly over the `2^n` state space.
    ///
    /// # Panics
    ///
    /// Panics if `n > 20` (exact enumeration).
    pub fn complement(&self) -> Cover {
        let off: Vec<u64> = (0..(1u64 << self.n)).filter(|&s| !self.eval(s)).collect();
        crate::qm::irredundant_cover(&off, &[], self.n)
    }

    /// The Shannon cofactor `f|_{var=value}` as a cover over the same
    /// variable space (the fixed variable no longer appears).
    pub fn cofactor(&self, var: usize, value: bool) -> Cover {
        let cubes = self
            .cubes
            .iter()
            .filter_map(|c| match c.literal(var) {
                Some(v) if v != value => None, // conflicting literal: drops out
                Some(_) => Some(c.without(var)),
                None => Some(*c),
            })
            .collect();
        Cover::new(self.n, cubes)
    }

    /// Whether the cover denotes the constant-1 function.
    pub fn is_tautology(&self) -> bool {
        (0u64..(1u64 << self.n)).all(|s| self.eval(s))
    }

    /// Formats the cover with the given variable names (`a*b' + c`).
    pub fn display<'a>(&'a self, names: &'a [String]) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Cover, &'a [String]);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0.cubes.is_empty() {
                    return write!(f, "0");
                }
                for (i, c) in self.0.cubes.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{}", c.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        ["a", "b", "c"].iter().map(|s| s.to_string()).collect()
    }

    /// The thesis Fig. 2.1 gate: fa↑ = a·b + c.
    fn fig_2_1_up() -> Cover {
        Cover::new(
            3,
            vec![
                Cube::from_literals(3, &[(0, true), (1, true)]),
                Cube::from_literals(3, &[(2, true)]),
            ],
        )
    }

    #[test]
    fn eval_is_disjunction_of_cubes() {
        let f = fig_2_1_up();
        assert!(f.eval(0b011));
        assert!(f.eval(0b100));
        assert!(!f.eval(0b010));
        assert!(!f.eval(0b000));
    }

    #[test]
    fn on_set_enumerates_minterms() {
        let f = fig_2_1_up();
        let on = f.on_set();
        // a·b + c over 3 vars: ab=11 (2 states) plus c=1 (4 states), overlap 2.
        assert_eq!(on.len(), 5);
        assert!(on.contains(&0b011));
        assert!(on.contains(&0b111));
        assert!(on.contains(&0b100));
    }

    #[test]
    fn constants() {
        assert!(Cover::one(3).eval(0));
        assert!(!Cover::zero(3).eval(0));
        assert_eq!(Cover::zero(3).on_set().len(), 0);
        assert_eq!(Cover::one(3).on_set().len(), 8);
    }

    #[test]
    fn semantic_support_detects_redundant_literal() {
        // f = a·b + a·b' = a: b is redundant (thesis Fig. 5.12 situation).
        let f = Cover::new(
            2,
            vec![
                Cube::from_literals(2, &[(0, true), (1, true)]),
                Cube::from_literals(2, &[(0, true), (1, false)]),
            ],
        );
        assert!(f.is_redundant_var(1));
        assert!(!f.is_redundant_var(0));
    }

    #[test]
    fn equivalence_is_semantic() {
        let f = fig_2_1_up();
        // a·b + c == a·b·c' + c
        let g = Cover::new(
            3,
            vec![
                Cube::from_literals(3, &[(0, true), (1, true), (2, false)]),
                Cube::from_literals(3, &[(2, true)]),
            ],
        );
        assert!(f.equivalent(&g));
        assert!(!f.equivalent(&Cover::zero(3)));
    }

    #[test]
    fn complement_is_exact() {
        let f = fig_2_1_up();
        let g = f.complement();
        for s in 0u64..8 {
            assert_ne!(f.eval(s), g.eval(s), "state {s:b}");
        }
        // Complement of a complement is equivalent to the original.
        assert!(f.equivalent(&g.complement()));
    }

    #[test]
    fn cofactor_obeys_shannon_expansion() {
        let f = fig_2_1_up();
        for var in 0..3 {
            let f1 = f.cofactor(var, true);
            let f0 = f.cofactor(var, false);
            for s in 0u64..8 {
                let expected = if s & (1 << var) != 0 {
                    f1.eval(s)
                } else {
                    f0.eval(s)
                };
                assert_eq!(f.eval(s), expected, "var {var} state {s:b}");
            }
        }
    }

    #[test]
    fn tautology_detection() {
        assert!(Cover::one(3).is_tautology());
        assert!(!fig_2_1_up().is_tautology());
        // a + a' is a tautology.
        let t = Cover::new(
            1,
            vec![
                Cube::from_literals(1, &[(0, true)]),
                Cube::from_literals(1, &[(0, false)]),
            ],
        );
        assert!(t.is_tautology());
    }

    #[test]
    fn display_matches_thesis_notation() {
        assert_eq!(fig_2_1_up().display(&names()).to_string(), "a*b + c");
        assert_eq!(Cover::zero(3).display(&names()).to_string(), "0");
    }
}

use std::fmt;

/// A cube: a set of literals over at most 64 variables, with no variable
/// appearing both positively and negatively (thesis Sec. 2.1).
///
/// A cube denotes the Boolean product of its literals; the empty cube is the
/// constant 1. States are packed as `u64` bit vectors, bit `i` holding the
/// value of variable `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cube {
    pos: u64,
    neg: u64,
}

impl Cube {
    /// The empty cube (constant 1).
    pub fn top() -> Self {
        Self::default()
    }

    /// Builds a cube from `(variable, positive)` literal pairs.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is `>= n`, `n > 64`, or a variable appears
    /// with both polarities.
    pub fn from_literals(n: usize, literals: &[(usize, bool)]) -> Self {
        assert!(n <= 64, "at most 64 variables are supported");
        let mut cube = Self::default();
        for &(var, positive) in literals {
            assert!(var < n, "variable {var} out of range (n = {n})");
            let bit = 1u64 << var;
            if positive {
                assert_eq!(
                    cube.neg & bit,
                    0,
                    "variable {var} appears with both polarities"
                );
                cube.pos |= bit;
            } else {
                assert_eq!(
                    cube.pos & bit,
                    0,
                    "variable {var} appears with both polarities"
                );
                cube.neg |= bit;
            }
        }
        cube
    }

    /// Builds a cube from a minterm `value` over the variables in `care`
    /// (bits outside `care` are don't-care in the cube).
    pub fn from_minterm(value: u64, care: u64) -> Self {
        Self {
            pos: value & care,
            neg: !value & care,
        }
    }

    /// The set of variables constrained by this cube, as a bit mask.
    pub fn support(&self) -> u64 {
        self.pos | self.neg
    }

    /// Number of literals.
    pub fn literal_count(&self) -> u32 {
        self.support().count_ones()
    }

    /// Polarity of `var` in this cube: `Some(true)` positive, `Some(false)`
    /// negative, `None` absent.
    pub fn literal(&self, var: usize) -> Option<bool> {
        let bit = 1u64 << var;
        if self.pos & bit != 0 {
            Some(true)
        } else if self.neg & bit != 0 {
            Some(false)
        } else {
            None
        }
    }

    /// Iterates over the `(variable, positive)` literals in index order.
    pub fn literals(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        let support = self.support();
        (0..64).filter_map(move |v| {
            let bit = 1u64 << v;
            if support & bit == 0 {
                None
            } else {
                Some((v, self.pos & bit != 0))
            }
        })
    }

    /// Whether the cube evaluates to 1 in `state`.
    pub fn eval(&self, state: u64) -> bool {
        (state & self.pos) == self.pos && (state & self.neg) == 0
    }

    /// Whether `self` is covered by `other` (`self ⊑ other`): every literal
    /// of `other` appears in `self`.
    pub fn covered_by(&self, other: &Cube) -> bool {
        (other.pos & !self.pos) == 0 && (other.neg & !self.neg) == 0
    }

    /// Removes `var`'s literal, widening the cube.
    pub fn without(&self, var: usize) -> Cube {
        let bit = !(1u64 << var);
        Cube {
            pos: self.pos & bit,
            neg: self.neg & bit,
        }
    }

    /// Consensus-style merge used by Quine–McCluskey: if the two cubes have
    /// the same support and differ in exactly one variable's polarity,
    /// returns the common widened cube.
    pub fn merge_one_apart(&self, other: &Cube) -> Option<Cube> {
        if self.support() != other.support() {
            return None;
        }
        let diff = self.pos ^ other.pos;
        if diff.count_ones() == 1 && (self.neg ^ other.neg) == diff {
            let bit = !diff;
            Some(Cube {
                pos: self.pos & bit,
                neg: self.neg & bit,
            })
        } else {
            None
        }
    }

    /// Formats the cube with the given variable names, thesis style
    /// (`a*b'`); the empty cube prints as `1`.
    pub fn display<'a>(&'a self, names: &'a [String]) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Cube, &'a [String]);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0.support() == 0 {
                    return write!(f, "1");
                }
                let mut first = true;
                for (v, positive) in self.0.literals() {
                    if !first {
                        write!(f, "*")?;
                    }
                    first = false;
                    write!(f, "{}{}", self.1[v], if positive { "" } else { "'" })?;
                }
                Ok(())
            }
        }
        D(self, names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_literals() {
        let c = Cube::from_literals(3, &[(0, true), (2, false)]); // a * c'
        assert!(c.eval(0b001));
        assert!(c.eval(0b011));
        assert!(!c.eval(0b101)); // c = 1
        assert!(!c.eval(0b000)); // a = 0
    }

    #[test]
    fn top_cube_is_constant_one() {
        assert!(Cube::top().eval(0));
        assert!(Cube::top().eval(u64::MAX));
        assert_eq!(Cube::top().literal_count(), 0);
    }

    #[test]
    fn containment_follows_literal_subsets() {
        let ab = Cube::from_literals(3, &[(0, true), (1, true)]);
        let a = Cube::from_literals(3, &[(0, true)]);
        assert!(ab.covered_by(&a));
        assert!(!a.covered_by(&ab));
        assert!(ab.covered_by(&ab));
        assert!(ab.covered_by(&Cube::top()));
    }

    #[test]
    #[should_panic(expected = "both polarities")]
    fn conflicting_literals_panic() {
        Cube::from_literals(2, &[(0, true), (0, false)]);
    }

    #[test]
    fn merge_one_apart_widens() {
        let n = 3;
        let c0 = Cube::from_minterm(0b011, 0b111); // a b c'
        let c1 = Cube::from_minterm(0b111, 0b111); // a b c
        let merged = c0.merge_one_apart(&c1).expect("one apart");
        assert_eq!(merged, Cube::from_literals(n, &[(0, true), (1, true)]));
        // Two apart: no merge.
        let c2 = Cube::from_minterm(0b100, 0b111);
        assert_eq!(c0.merge_one_apart(&c2), None);
        // Different support: no merge.
        let c3 = Cube::from_literals(n, &[(0, true)]);
        assert_eq!(c0.merge_one_apart(&c3), None);
    }

    #[test]
    fn minterm_round_trip() {
        let c = Cube::from_minterm(0b101, 0b111);
        assert!(c.eval(0b101));
        assert!(!c.eval(0b111));
        assert!(!c.eval(0b100));
        assert_eq!(c.literal(0), Some(true));
        assert_eq!(c.literal(1), Some(false));
        assert_eq!(c.literal(2), Some(true));
    }

    #[test]
    fn display_uses_thesis_notation() {
        let names: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let c = Cube::from_literals(3, &[(0, true), (1, false)]);
        assert_eq!(c.display(&names).to_string(), "a*b'");
        assert_eq!(Cube::top().display(&names).to_string(), "1");
    }
}

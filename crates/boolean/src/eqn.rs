//! The restricted EQN netlist format of the thesis tool (Sec. 7.3.1).
//!
//! One line per gate, sum-of-products, no brackets:
//!
//! ```text
//! C = A*B' + A*C + B'*C;
//! ```
//!
//! Literals are joined by `*`, product terms by `+`, negation is a `'`
//! suffix, and every equation ends with `;`. The equation gives the gate's
//! pull-up function `f↑` (with feedback literals allowed, so sequential
//! gates such as C-elements are expressible).

use std::error::Error;
use std::fmt;

/// One gate equation: output name and sum-of-products over
/// `(input name, positive)` literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqnGate {
    /// The gate's output signal name.
    pub output: String,
    /// Product terms; each term is a list of literals.
    pub terms: Vec<Vec<(String, bool)>>,
}

/// A parsed EQN netlist.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Netlist {
    /// Gates in file order.
    pub gates: Vec<EqnGate>,
}

impl Netlist {
    /// Finds a gate by output name.
    pub fn gate(&self, output: &str) -> Option<&EqnGate> {
        self.gates.iter().find(|g| g.output == output)
    }
}

/// Errors from [`parse_eqn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEqnError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseEqnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eqn parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseEqnError {}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '[' || c == ']'
}

/// Parses a restricted EQN netlist.
///
/// Statements may span lines; each must end with `;`. Lines starting with
/// `#` are comments.
///
/// # Errors
///
/// Returns [`ParseEqnError`] on malformed input (missing `=`, brackets,
/// conflicting literals, empty terms, duplicate gate outputs).
pub fn parse_eqn(text: &str) -> Result<Netlist, ParseEqnError> {
    let mut gates: Vec<EqnGate> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 1usize;

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if pending.is_empty() {
            pending_line = lineno;
        }
        pending.push(' ');
        pending.push_str(line);
        while let Some(semi) = pending.find(';') {
            let stmt: String = pending[..semi].to_string();
            pending = pending[semi + 1..].to_string();
            let gate = parse_statement(&stmt, pending_line)?;
            if gates.iter().any(|g| g.output == gate.output) {
                return Err(ParseEqnError {
                    line: pending_line,
                    message: format!("duplicate gate `{}`", gate.output),
                });
            }
            gates.push(gate);
            pending_line = lineno;
        }
    }
    if !pending.trim().is_empty() {
        return Err(ParseEqnError {
            line: pending_line,
            message: "statement does not end with `;`".to_string(),
        });
    }
    Ok(Netlist { gates })
}

fn parse_statement(stmt: &str, line: usize) -> Result<EqnGate, ParseEqnError> {
    let err = |message: String| ParseEqnError { line, message };
    if stmt.contains('(') || stmt.contains(')') {
        return Err(err(
            "brackets are not allowed in the restricted EQN format".into()
        ));
    }
    let (lhs, rhs) = stmt
        .split_once('=')
        .ok_or_else(|| err("missing `=`".into()))?;
    let output = lhs.trim();
    if output.is_empty() || !output.chars().all(is_name_char) {
        return Err(err(format!("bad gate name `{output}`")));
    }
    let mut terms = Vec::new();
    for term in rhs.split('+') {
        let mut literals = Vec::new();
        for lit in term.split('*') {
            let lit = lit.trim();
            if lit.is_empty() {
                return Err(err("empty literal".into()));
            }
            let (name, positive) = match lit.strip_suffix('\'') {
                Some(name) => (name.trim(), false),
                None => (lit, true),
            };
            if name.is_empty() || !name.chars().all(is_name_char) {
                return Err(err(format!("bad literal `{lit}`")));
            }
            if literals
                .iter()
                .any(|&(ref n, p)| n == name && p != positive)
            {
                return Err(err(format!("conflicting literals on `{name}`")));
            }
            if !literals
                .iter()
                .any(|&(ref n, p)| n == name && p == positive)
            {
                literals.push((name.to_string(), positive));
            }
        }
        if literals.is_empty() {
            return Err(err("empty product term".into()));
        }
        terms.push(literals);
    }
    if terms.is_empty() {
        return Err(err("empty right-hand side".into()));
    }
    Ok(EqnGate {
        output: output.to_string(),
        terms,
    })
}

/// Writes a netlist back in the restricted EQN format.
pub fn write_eqn(netlist: &Netlist) -> String {
    let mut out = String::new();
    for g in &netlist.gates {
        out.push_str(&g.output);
        out.push_str(" = ");
        for (i, term) in g.terms.iter().enumerate() {
            if i > 0 {
                out.push_str(" + ");
            }
            for (j, (name, positive)) in term.iter().enumerate() {
                if j > 0 {
                    out.push('*');
                }
                out.push_str(name);
                if !positive {
                    out.push('\'');
                }
            }
        }
        out.push_str(";\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_c_element() {
        let net = parse_eqn("C = A*B' + A*C + B'*C;").expect("valid");
        assert_eq!(net.gates.len(), 1);
        let g = &net.gates[0];
        assert_eq!(g.output, "C");
        assert_eq!(g.terms.len(), 3);
        assert_eq!(
            g.terms[0],
            vec![("A".to_string(), true), ("B".to_string(), false)]
        );
    }

    #[test]
    fn parses_thesis_imec_netlist_fragment() {
        let text = "\
i0 = precharged + wenin';
ack = i0' + map0';
i2 = csc0' * map0';
wsen = wsldin' * i2';
prnot = i4* precharged + i4 * prnot + precharged * prnot;
";
        let net = parse_eqn(text).expect("valid");
        assert_eq!(net.gates.len(), 5);
        assert_eq!(net.gate("prnot").expect("exists").terms.len(), 3);
        assert_eq!(
            net.gate("ack").expect("exists").terms,
            vec![
                vec![("i0".to_string(), false)],
                vec![("map0".to_string(), false)]
            ]
        );
    }

    #[test]
    fn rejects_brackets() {
        let err = parse_eqn("C = A*(B + C);").unwrap_err();
        assert!(err.message.contains("brackets"));
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse_eqn("C = A*B").is_err());
    }

    #[test]
    fn rejects_conflicting_literals() {
        assert!(parse_eqn("C = A*A';").is_err());
    }

    #[test]
    fn rejects_duplicate_gate() {
        assert!(parse_eqn("C = A; C = B;").is_err());
    }

    #[test]
    fn multi_line_statement() {
        let net = parse_eqn("C = A*B +\n  A*C;\n").expect("valid");
        assert_eq!(net.gates[0].terms.len(), 2);
    }

    #[test]
    fn round_trips_through_writer() {
        let text = "i0 = precharged + wenin';\nack = i0' + map0';\n";
        let net = parse_eqn(text).expect("valid");
        let written = write_eqn(&net);
        assert_eq!(parse_eqn(&written).expect("valid"), net);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let net = parse_eqn("# header\n\nC = A;\n# trailer\n").expect("valid");
        assert_eq!(net.gates.len(), 1);
    }
}

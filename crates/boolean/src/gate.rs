//! Gate-level view: pull-up / pull-down covers over a named support set.

use std::collections::BTreeSet;

use crate::cover::Cover;
use crate::cube::Cube;
use crate::eqn::{EqnGate, Netlist};
use crate::qm::{expand_cover, irredundant_cover, MAX_EXACT_VARS};

/// A gate: a single-output Boolean (possibly sequential) element described
/// by an irredundant prime cover of its on-set (`f↑`, the pull-up function)
/// and of its off-set (`f↓`, the pull-down function) — thesis Sec. 2.1.
///
/// `vars` names the support; sequential gates include the output itself
/// (feedback literal). Cover variable `i` corresponds to `vars[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Output signal name.
    pub output: String,
    /// Support variable names; covers index into this list.
    pub vars: Vec<String>,
    /// Pull-up function `f↑` (on-set cover).
    pub up: Cover,
    /// Pull-down function `f↓` (off-set cover).
    pub down: Cover,
}

impl Gate {
    /// Builds a gate from an on-set cover; the pull-down cover is derived as
    /// an irredundant prime cover of the complement. Past
    /// [`MAX_EXACT_VARS`] support variables the exact minimization is
    /// replaced by [`expand_cover`] (still irredundant and deterministic,
    /// no longer exact-minimal).
    ///
    /// # Panics
    ///
    /// Panics if the support exceeds 20 variables.
    pub fn from_up_cover(output: impl Into<String>, vars: Vec<String>, up: Cover) -> Self {
        let n = vars.len();
        assert!(n <= 20, "gate support is capped at 20 variables");
        let off: Vec<u64> = (0..(1u64 << n)).filter(|&s| !up.eval(s)).collect();
        let on: Vec<u64> = (0..(1u64 << n)).filter(|&s| up.eval(s)).collect();
        // Re-minimize the on-set too, so `up` is an irredundant prime cover.
        let (up, down) = if n <= MAX_EXACT_VARS {
            (
                irredundant_cover(&on, &[], n),
                irredundant_cover(&off, &[], n),
            )
        } else {
            (expand_cover(&on, &off, n), expand_cover(&off, &on, n))
        };
        Self {
            output: output.into(),
            vars,
            up,
            down,
        }
    }

    /// The fan-in signal names: the support minus the output feedback
    /// literal.
    pub fn fanin(&self) -> Vec<&str> {
        self.vars
            .iter()
            .map(String::as_str)
            .filter(|&v| v != self.output)
            .collect()
    }

    /// Index of `name` in the support, if present.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// Evaluates `f↑` with `values(name)` supplying each support variable.
    pub fn eval_up(&self, values: impl Fn(&str) -> bool) -> bool {
        self.up.eval(self.pack(values))
    }

    /// Evaluates `f↓` with `values(name)` supplying each support variable.
    pub fn eval_down(&self, values: impl Fn(&str) -> bool) -> bool {
        self.down.eval(self.pack(values))
    }

    /// Packs named values into the cover's bit order.
    pub fn pack(&self, values: impl Fn(&str) -> bool) -> u64 {
        let mut state = 0u64;
        for (i, v) in self.vars.iter().enumerate() {
            if values(v) {
                state |= 1u64 << i;
            }
        }
        state
    }

    /// Whether any support variable is semantically redundant in both
    /// covers (thesis Sec. 5.3.2: relaxation assumes no redundant literals).
    pub fn has_redundant_literal(&self) -> bool {
        (0..self.vars.len()).any(|v| self.up.is_redundant_var(v) && self.down.is_redundant_var(v))
    }
}

/// A circuit as a set of gates keyed by output name (the thesis circuit
/// `C = (A, φ)` restricted to its gate equations).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GateLibrary {
    /// Gates in definition order.
    pub gates: Vec<Gate>,
}

impl GateLibrary {
    /// Builds the library from a parsed EQN netlist, deriving `f↓` covers by
    /// complementation.
    ///
    /// # Panics
    ///
    /// Panics if a gate's support exceeds 20 variables.
    pub fn from_netlist(netlist: &Netlist) -> Self {
        let gates = netlist.gates.iter().map(gate_from_eqn).collect();
        Self { gates }
    }

    /// Finds a gate by output name.
    pub fn gate(&self, output: &str) -> Option<&Gate> {
        self.gates.iter().find(|g| g.output == output)
    }

    /// All signal names referenced anywhere (outputs and fan-ins), sorted.
    pub fn signal_names(&self) -> Vec<String> {
        let mut names: BTreeSet<String> = BTreeSet::new();
        for g in &self.gates {
            names.insert(g.output.clone());
            for v in &g.vars {
                names.insert(v.clone());
            }
        }
        names.into_iter().collect()
    }
}

fn gate_from_eqn(eqn: &EqnGate) -> Gate {
    // Collect support in first-appearance order for stable cover layouts.
    let mut vars: Vec<String> = Vec::new();
    for term in &eqn.terms {
        for (name, _) in term {
            if !vars.contains(name) {
                vars.push(name.clone());
            }
        }
    }
    let n = vars.len();
    let cubes: Vec<Cube> = eqn
        .terms
        .iter()
        .map(|term| {
            let lits: Vec<(usize, bool)> = term
                .iter()
                .map(|(name, pos)| {
                    (
                        vars.iter().position(|v| v == name).expect("collected"),
                        *pos,
                    )
                })
                .collect();
            Cube::from_literals(n, &lits)
        })
        .collect();
    Gate::from_up_cover(eqn.output.clone(), vars, Cover::new(n, cubes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqn::parse_eqn;

    fn c_element() -> Gate {
        let net = parse_eqn("c = a*b + a*c + b*c;").expect("valid");
        GateLibrary::from_netlist(&net).gates[0].clone()
    }

    #[test]
    fn c_element_covers() {
        let g = c_element();
        // f↓ of a majority gate is the minority: a'·b' + a'·c' + b'·c'.
        assert_eq!(g.down.cubes().len(), 3);
        assert!(g.eval_up(|v| v == "a" || v == "b"));
        assert!(!g.eval_up(|v| v == "a"));
        assert!(g.eval_down(|_| false));
        assert!(!g.eval_down(|v| v == "a" || v == "c"));
        // up and down are complementary everywhere.
        for s in 0u64..8 {
            assert_ne!(g.up.eval(s), g.down.eval(s));
        }
    }

    #[test]
    fn fanin_excludes_feedback() {
        let g = c_element();
        assert_eq!(g.fanin(), vec!["a", "b"]);
        assert_eq!(g.vars, vec!["a", "b", "c"]);
    }

    #[test]
    fn sr_latch_covers_match_thesis_fig_5_4() {
        // The thesis SR-latch example (Sec. 2.1): fa↑ = a·b + c with
        // fa↓ = a'·c' + b'·c'. Using the thesis gate `a` with inputs b, c:
        // actually the Fig. 2.1 gate: f↑ = a·b + c (a is the output).
        let net = parse_eqn("a = a*b + c;").expect("valid");
        let g = &GateLibrary::from_netlist(&net).gates[0];
        let names = g.vars.clone();
        let down = g.down.display(&names).to_string();
        // f↓ = a'·c' + b'·c' (order of cubes is deterministic).
        assert!(down.contains("c'"), "down cover was {down}");
        for s in 0u64..8 {
            assert_ne!(g.up.eval(s), g.down.eval(s));
        }
    }

    #[test]
    fn redundant_literal_is_detected() {
        // o = b·p + b  — p is redundant (thesis Fig. 5.12).
        let net = parse_eqn("o = b*p + b;").expect("valid");
        let gate = gate_from_eqn(&net.gates[0]);
        assert!(gate.has_redundant_literal());
        let healthy = c_element();
        assert!(!healthy.has_redundant_literal());
    }

    #[test]
    fn library_signal_names() {
        let net = parse_eqn("x = a*b;\ny = x + a;\n").expect("valid");
        let lib = GateLibrary::from_netlist(&net);
        assert_eq!(lib.signal_names(), vec!["a", "b", "x", "y"]);
        assert!(lib.gate("x").is_some());
        assert!(lib.gate("zz").is_none());
    }

    #[test]
    fn combinational_gate_has_complementary_covers() {
        let net = parse_eqn("z = a*b' + c;").expect("valid");
        let g = &GateLibrary::from_netlist(&net).gates[0];
        for s in 0u64..8 {
            assert_ne!(g.up.eval(s), g.down.eval(s));
        }
    }
}

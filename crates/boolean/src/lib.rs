//! Cubes, covers, two-level minimization and the restricted EQN netlist
//! format used by the thesis tool (Sec. 7.3.1).
//!
//! Logic functions follow the thesis definitions (Sec. 2.1): a *cube* is a
//! conflict-free set of literals, a *cover* is a set of cubes read as their
//! Boolean sum, and a gate is described by an irredundant prime cover of its
//! on-set (`f↑`) and of its off-set (`f↓`). Prime generation and irredundant
//! cover selection use the Quine–McCluskey procedure, which is exact and more
//! than fast enough for the hand-sized support sets of SI control gates.
//!
//! # Example
//!
//! ```
//! use si_boolean::{Cover, Cube};
//!
//! // f = a·b + c over variables [a, b, c]
//! let f = Cover::new(3, vec![Cube::from_literals(3, &[(0, true), (1, true)]),
//!                            Cube::from_literals(3, &[(2, true)])]);
//! assert!(f.eval(0b011)); // a=1 b=1 c=0
//! assert!(f.eval(0b100)); // c=1
//! assert!(!f.eval(0b001)); // a=1 only
//! ```

mod cover;
mod cube;
mod eqn;
mod gate;
mod qm;

pub use cover::Cover;
pub use cube::Cube;
pub use eqn::{parse_eqn, write_eqn, EqnGate, Netlist, ParseEqnError};
pub use gate::{Gate, GateLibrary};
pub use qm::{expand_cover, irredundant_cover, prime_implicants, MAX_EXACT_VARS};

//! Quine–McCluskey prime generation and irredundant cover selection.
//!
//! Exact two-level minimization: good enough for the small support sets of
//! SI control gates (the thesis benchmarks stay below 8 literals per gate).

use std::collections::BTreeSet;

use crate::cover::Cover;
use crate::cube::Cube;

/// Generates all prime implicants of the incompletely specified function
/// with the given `on`-set and `dc` (don't-care) minterms over `n` variables.
///
/// # Panics
///
/// Panics if `n > 20` (the procedure enumerates minterms).
pub fn prime_implicants(on: &[u64], dc: &[u64], n: usize) -> Vec<Cube> {
    assert!(n <= 20, "QM minterm enumeration is capped at 20 variables");
    let care = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut current: BTreeSet<Cube> = on
        .iter()
        .chain(dc.iter())
        .map(|&m| Cube::from_minterm(m, care))
        .collect();
    let mut primes: BTreeSet<Cube> = BTreeSet::new();

    while !current.is_empty() {
        let cubes: Vec<Cube> = current.iter().copied().collect();
        let mut merged_flags = vec![false; cubes.len()];
        let mut next: BTreeSet<Cube> = BTreeSet::new();
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if let Some(m) = cubes[i].merge_one_apart(&cubes[j]) {
                    merged_flags[i] = true;
                    merged_flags[j] = true;
                    next.insert(m);
                }
            }
        }
        for (i, cube) in cubes.iter().enumerate() {
            if !merged_flags[i] {
                primes.insert(*cube);
            }
        }
        current = next;
    }

    // A prime must cover at least one on-set minterm (not only don't-cares).
    primes
        .into_iter()
        .filter(|p| on.iter().any(|&m| p.eval(m)))
        .collect()
}

/// Produces an irredundant prime cover of the function with the given
/// on-set and don't-care set (thesis `f↑` / `f↓` form).
///
/// Selection: essential primes first, then greedy largest-cover, then a
/// reverse-order redundancy prune, which guarantees irredundancy.
///
/// # Panics
///
/// Panics if `n > 20`.
pub fn irredundant_cover(on: &[u64], dc: &[u64], n: usize) -> Cover {
    if on.is_empty() {
        return Cover::zero(n);
    }
    let primes = prime_implicants(on, dc, n);
    let covers_of: Vec<Vec<usize>> = on
        .iter()
        .map(|&m| (0..primes.len()).filter(|&i| primes[i].eval(m)).collect())
        .collect();

    let mut chosen: Vec<usize> = Vec::new();
    let mut covered = vec![false; on.len()];

    // Essential primes: sole cover of some minterm.
    for (mi, cs) in covers_of.iter().enumerate() {
        if cs.len() == 1 && !chosen.contains(&cs[0]) {
            chosen.push(cs[0]);
            let p = &primes[cs[0]];
            for (k, &m) in on.iter().enumerate() {
                if p.eval(m) {
                    covered[k] = true;
                }
            }
            let _ = mi;
        }
    }

    // Greedy: repeatedly take the prime covering the most uncovered minterms,
    // breaking ties toward fewer literals, then lower index (deterministic).
    while covered.iter().any(|&b| !b) {
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (i, p) in primes.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let gain = on
                .iter()
                .enumerate()
                .filter(|&(k, &m)| !covered[k] && p.eval(m))
                .count();
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bg, bi)) => {
                    gain > bg
                        || (gain == bg && primes[i].literal_count() < primes[bi].literal_count())
                }
            };
            if better {
                best = Some((gain, i));
            }
        }
        let (_, i) = best.expect("primes cover the on-set");
        chosen.push(i);
        for (k, &m) in on.iter().enumerate() {
            if primes[i].eval(m) {
                covered[k] = true;
            }
        }
    }

    // Prune: drop any cube whose minterms are covered by the rest.
    let mut keep: Vec<usize> = chosen.clone();
    let mut i = keep.len();
    while i > 0 {
        i -= 1;
        let candidate = keep[i];
        let rest: Vec<usize> = keep.iter().copied().filter(|&j| j != candidate).collect();
        let still_covered = on
            .iter()
            .all(|&m| !primes[candidate].eval(m) || rest.iter().any(|&j| primes[j].eval(m)));
        if still_covered && !rest.is_empty() {
            keep.remove(i);
        }
    }

    keep.sort_unstable();
    Cover::new(n, keep.into_iter().map(|i| primes[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth_table(f: impl Fn(u64) -> bool, n: usize) -> (Vec<u64>, Vec<u64>) {
        let on: Vec<u64> = (0..(1u64 << n)).filter(|&s| f(s)).collect();
        (on, Vec::new())
    }

    #[test]
    fn primes_of_majority_function() {
        // maj(a,b,c): primes are ab, ac, bc.
        let (on, dc) = truth_table(|s| (s & 1) + ((s >> 1) & 1) + ((s >> 2) & 1) >= 2, 3);
        let primes = prime_implicants(&on, &dc, 3);
        assert_eq!(primes.len(), 3);
        assert!(primes.iter().all(|p| p.literal_count() == 2));
    }

    #[test]
    fn cover_reproduces_function() {
        for n in 1..=4usize {
            // Deterministic pseudo-random functions.
            for seed in 0..8u64 {
                let f = |s: u64| (s.wrapping_mul(seed * 2 + 7) ^ (s >> 1)) & 1 == 1;
                let (on, dc) = truth_table(f, n);
                let cover = irredundant_cover(&on, &dc, n);
                for s in 0..(1u64 << n) {
                    assert_eq!(cover.eval(s), f(s), "n={n} seed={seed} s={s:b}");
                }
            }
        }
    }

    #[test]
    fn cover_is_irredundant() {
        let (on, dc) = truth_table(|s| (s & 1) + ((s >> 1) & 1) + ((s >> 2) & 1) >= 2, 3);
        let cover = irredundant_cover(&on, &dc, 3);
        // Removing any cube must break the cover.
        for skip in 0..cover.cubes().len() {
            let reduced: Vec<Cube> = cover
                .cubes()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, c)| *c)
                .collect();
            let reduced = Cover::new(3, reduced);
            assert!(
                on.iter().any(|&m| !reduced.eval(m)),
                "cube {skip} was redundant"
            );
        }
    }

    #[test]
    fn dont_cares_enlarge_primes() {
        // on = {11}, dc = {01, 10}: with don't-cares, f can be covered by
        // single-literal primes instead of the two-literal minterm.
        let on = vec![0b11];
        let dc = vec![0b01, 0b10];
        let cover = irredundant_cover(&on, &dc, 2);
        assert!(cover.cubes().iter().all(|c| c.literal_count() <= 1));
        assert!(cover.eval(0b11));
    }

    #[test]
    fn constant_functions() {
        assert_eq!(irredundant_cover(&[], &[], 3), Cover::zero(3));
        let on: Vec<u64> = (0..8).collect();
        let cover = irredundant_cover(&on, &[], 3);
        assert_eq!(cover.cubes().len(), 1);
        assert_eq!(cover.cubes()[0].literal_count(), 0);
    }

    #[test]
    fn primes_must_touch_on_set() {
        // All minterms are don't-cares except one off minterm: no primes.
        let primes = prime_implicants(&[], &[0b0, 0b1], 1);
        assert!(primes.is_empty());
    }

    #[test]
    fn xor_needs_all_minterm_cubes() {
        let (on, dc) = truth_table(|s| ((s & 1) ^ ((s >> 1) & 1)) == 1, 2);
        let cover = irredundant_cover(&on, &dc, 2);
        assert_eq!(cover.cubes().len(), 2);
        assert!(cover.cubes().iter().all(|c| c.literal_count() == 2));
    }
}

//! Quine–McCluskey prime generation and irredundant cover selection.
//!
//! Exact two-level minimization: good enough for the small support sets of
//! SI control gates (the thesis benchmarks stay below 8 literals per gate).

use std::collections::BTreeSet;

use crate::cover::Cover;
use crate::cube::Cube;

/// Generates all prime implicants of the incompletely specified function
/// with the given `on`-set and `dc` (don't-care) minterms over `n` variables.
///
/// # Panics
///
/// Panics if `n > 20` (the procedure enumerates minterms).
pub fn prime_implicants(on: &[u64], dc: &[u64], n: usize) -> Vec<Cube> {
    assert!(n <= 20, "QM minterm enumeration is capped at 20 variables");
    let care = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut current: BTreeSet<Cube> = on
        .iter()
        .chain(dc.iter())
        .map(|&m| Cube::from_minterm(m, care))
        .collect();
    let mut primes: BTreeSet<Cube> = BTreeSet::new();

    while !current.is_empty() {
        let cubes: Vec<Cube> = current.iter().copied().collect();
        let mut merged_flags = vec![false; cubes.len()];
        let mut next: BTreeSet<Cube> = BTreeSet::new();
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if let Some(m) = cubes[i].merge_one_apart(&cubes[j]) {
                    merged_flags[i] = true;
                    merged_flags[j] = true;
                    next.insert(m);
                }
            }
        }
        for (i, cube) in cubes.iter().enumerate() {
            if !merged_flags[i] {
                primes.insert(*cube);
            }
        }
        current = next;
    }

    // A prime must cover at least one on-set minterm (not only don't-cares).
    primes
        .into_iter()
        .filter(|p| on.iter().any(|&m| p.eval(m)))
        .collect()
}

/// Variable-count threshold up to which exact Quine–McCluskey
/// minimization stays cheap. The minterm ladder touches up to `3^n`
/// subcubes with quadratic merging per level; past 8 variables a
/// don't-care-rich function takes minutes, so callers switch to the
/// off-set-driven [`expand_cover`] there.
pub const MAX_EXACT_VARS: usize = 8;

/// Produces an irredundant prime cover of the function with the given
/// on-set and don't-care set (thesis `f↑` / `f↓` form).
///
/// Selection: essential primes first, then greedy largest-cover, then a
/// reverse-order redundancy prune, which guarantees irredundancy.
///
/// # Panics
///
/// Panics if `n > 20`.
pub fn irredundant_cover(on: &[u64], dc: &[u64], n: usize) -> Cover {
    if on.is_empty() {
        return Cover::zero(n);
    }
    let primes = prime_implicants(on, dc, n);
    select_irredundant(&primes, on, n)
}

/// Produces an irredundant prime cover by greedy literal expansion
/// against an explicit off-set, for variable counts where exact QM
/// minterm enumeration is intractable (`n > `[`MAX_EXACT_VARS`]).
///
/// Each on-set minterm is widened into a prime implicant — literals are
/// dropped in ascending variable order while the cube stays disjoint
/// from every `off` minterm — and the same essential/greedy/prune
/// selection as [`irredundant_cover`] keeps the result irredundant.
/// Cost is `O(|on| · n · |off|)`: linear in the off-set instead of
/// exponential in `n`, at the price of exact minimality (the chosen
/// primes depend on the expansion order). Deterministic for fixed
/// inputs. Minterms outside `on ∪ off` are don't-cares.
///
/// # Panics
///
/// Panics if `n > 64` or `on` and `off` intersect.
pub fn expand_cover(on: &[u64], off: &[u64], n: usize) -> Cover {
    assert!(n <= 64, "at most 64 variables are supported");
    if on.is_empty() {
        return Cover::zero(n);
    }
    let care = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut sorted_on: Vec<u64> = on.iter().map(|&m| m & care).collect();
    sorted_on.sort_unstable();
    sorted_on.dedup();
    let mut primes: BTreeSet<Cube> = BTreeSet::new();
    for &m in &sorted_on {
        let mut cube = Cube::from_minterm(m, care);
        assert!(
            !off.iter().any(|&o| cube.eval(o & care)),
            "on-set and off-set intersect at minterm {m:b}"
        );
        // One ascending pass yields a prime: once dropping `var` hits the
        // off-set it keeps hitting it under any further widening.
        for var in 0..n {
            let wider = cube.without(var);
            if wider != cube && !off.iter().any(|&o| wider.eval(o & care)) {
                cube = wider;
            }
        }
        primes.insert(cube);
    }
    let primes: Vec<Cube> = primes.into_iter().collect();
    select_irredundant(&primes, &sorted_on, n)
}

/// Essential-first, then greedy largest-cover, then reverse-order prune —
/// the selection shared by [`irredundant_cover`] and [`expand_cover`].
fn select_irredundant(primes: &[Cube], on: &[u64], n: usize) -> Cover {
    let covers_of: Vec<Vec<usize>> = on
        .iter()
        .map(|&m| (0..primes.len()).filter(|&i| primes[i].eval(m)).collect())
        .collect();

    let mut chosen: Vec<usize> = Vec::new();
    let mut covered = vec![false; on.len()];

    // Essential primes: sole cover of some minterm.
    for (mi, cs) in covers_of.iter().enumerate() {
        if cs.len() == 1 && !chosen.contains(&cs[0]) {
            chosen.push(cs[0]);
            let p = &primes[cs[0]];
            for (k, &m) in on.iter().enumerate() {
                if p.eval(m) {
                    covered[k] = true;
                }
            }
            let _ = mi;
        }
    }

    // Greedy: repeatedly take the prime covering the most uncovered minterms,
    // breaking ties toward fewer literals, then lower index (deterministic).
    while covered.iter().any(|&b| !b) {
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (i, p) in primes.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let gain = on
                .iter()
                .enumerate()
                .filter(|&(k, &m)| !covered[k] && p.eval(m))
                .count();
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bg, bi)) => {
                    gain > bg
                        || (gain == bg && primes[i].literal_count() < primes[bi].literal_count())
                }
            };
            if better {
                best = Some((gain, i));
            }
        }
        let (_, i) = best.expect("primes cover the on-set");
        chosen.push(i);
        for (k, &m) in on.iter().enumerate() {
            if primes[i].eval(m) {
                covered[k] = true;
            }
        }
    }

    // Prune: drop any cube whose minterms are covered by the rest.
    let mut keep: Vec<usize> = chosen.clone();
    let mut i = keep.len();
    while i > 0 {
        i -= 1;
        let candidate = keep[i];
        let rest: Vec<usize> = keep.iter().copied().filter(|&j| j != candidate).collect();
        let still_covered = on
            .iter()
            .all(|&m| !primes[candidate].eval(m) || rest.iter().any(|&j| primes[j].eval(m)));
        if still_covered && !rest.is_empty() {
            keep.remove(i);
        }
    }

    keep.sort_unstable();
    Cover::new(n, keep.into_iter().map(|i| primes[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth_table(f: impl Fn(u64) -> bool, n: usize) -> (Vec<u64>, Vec<u64>) {
        let on: Vec<u64> = (0..(1u64 << n)).filter(|&s| f(s)).collect();
        (on, Vec::new())
    }

    #[test]
    fn primes_of_majority_function() {
        // maj(a,b,c): primes are ab, ac, bc.
        let (on, dc) = truth_table(|s| (s & 1) + ((s >> 1) & 1) + ((s >> 2) & 1) >= 2, 3);
        let primes = prime_implicants(&on, &dc, 3);
        assert_eq!(primes.len(), 3);
        assert!(primes.iter().all(|p| p.literal_count() == 2));
    }

    #[test]
    fn cover_reproduces_function() {
        for n in 1..=4usize {
            // Deterministic pseudo-random functions.
            for seed in 0..8u64 {
                let f = |s: u64| (s.wrapping_mul(seed * 2 + 7) ^ (s >> 1)) & 1 == 1;
                let (on, dc) = truth_table(f, n);
                let cover = irredundant_cover(&on, &dc, n);
                for s in 0..(1u64 << n) {
                    assert_eq!(cover.eval(s), f(s), "n={n} seed={seed} s={s:b}");
                }
            }
        }
    }

    #[test]
    fn cover_is_irredundant() {
        let (on, dc) = truth_table(|s| (s & 1) + ((s >> 1) & 1) + ((s >> 2) & 1) >= 2, 3);
        let cover = irredundant_cover(&on, &dc, 3);
        // Removing any cube must break the cover.
        for skip in 0..cover.cubes().len() {
            let reduced: Vec<Cube> = cover
                .cubes()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, c)| *c)
                .collect();
            let reduced = Cover::new(3, reduced);
            assert!(
                on.iter().any(|&m| !reduced.eval(m)),
                "cube {skip} was redundant"
            );
        }
    }

    #[test]
    fn dont_cares_enlarge_primes() {
        // on = {11}, dc = {01, 10}: with don't-cares, f can be covered by
        // single-literal primes instead of the two-literal minterm.
        let on = vec![0b11];
        let dc = vec![0b01, 0b10];
        let cover = irredundant_cover(&on, &dc, 2);
        assert!(cover.cubes().iter().all(|c| c.literal_count() <= 1));
        assert!(cover.eval(0b11));
    }

    #[test]
    fn constant_functions() {
        assert_eq!(irredundant_cover(&[], &[], 3), Cover::zero(3));
        let on: Vec<u64> = (0..8).collect();
        let cover = irredundant_cover(&on, &[], 3);
        assert_eq!(cover.cubes().len(), 1);
        assert_eq!(cover.cubes()[0].literal_count(), 0);
    }

    #[test]
    fn primes_must_touch_on_set() {
        // All minterms are don't-cares except one off minterm: no primes.
        let primes = prime_implicants(&[], &[0b0, 0b1], 1);
        assert!(primes.is_empty());
    }

    #[test]
    fn expansion_agrees_with_the_care_set() {
        for n in 1..=4usize {
            for seed in 0..8u64 {
                let f = |s: u64| (s.wrapping_mul(seed * 2 + 7) ^ (s >> 1)) & 1 == 1;
                let on: Vec<u64> = (0..(1u64 << n)).filter(|&s| f(s)).collect();
                let off: Vec<u64> = (0..(1u64 << n)).filter(|&s| !f(s)).collect();
                let cover = expand_cover(&on, &off, n);
                for s in 0..(1u64 << n) {
                    assert_eq!(cover.eval(s), f(s), "n={n} seed={seed} s={s:b}");
                }
            }
        }
    }

    #[test]
    fn expansion_cubes_are_prime_and_irredundant() {
        let on = vec![0b0000, 0b0001, 0b0011, 0b1111];
        let off = vec![0b0100, 0b1010, 0b0110];
        let cover = expand_cover(&on, &off, 4);
        for &m in &on {
            assert!(cover.eval(m));
        }
        for &m in &off {
            assert!(!cover.eval(m));
        }
        for cube in cover.cubes() {
            // Prime: widening by any single literal hits the off-set.
            for (var, _) in cube.literals() {
                assert!(
                    off.iter().any(|&m| cube.without(var).eval(m)),
                    "literal {var} of {cube:?} is droppable"
                );
            }
            // Irredundant: each cube covers some minterm the rest miss.
            assert!(
                on.iter().any(|&m| {
                    cube.eval(m)
                        && !cover
                            .cubes()
                            .iter()
                            .any(|other| other != cube && other.eval(m))
                }),
                "cube {cube:?} is redundant"
            );
        }
    }

    #[test]
    fn expansion_handles_dont_care_rich_wide_functions() {
        // The pathological synthesis shape: ~35 care minterms over 10
        // variables, everything else don't-care. Exact QM climbs a
        // near-complete 3^10 subcube ladder here; expansion must stay
        // instant and still separate on from off.
        let care: Vec<u64> = (0..35u64).map(|i| i.wrapping_mul(29) % 1024).collect();
        let on: Vec<u64> = care.iter().copied().filter(|m| m % 3 == 0).collect();
        let off: Vec<u64> = care.iter().copied().filter(|m| m % 3 != 0).collect();
        let cover = expand_cover(&on, &off, 10);
        for &m in &on {
            assert!(cover.eval(m));
        }
        for &m in &off {
            assert!(!cover.eval(m));
        }
    }

    #[test]
    fn expansion_without_off_set_is_the_tautology() {
        let cover = expand_cover(&[0b01, 0b10], &[], 2);
        assert_eq!(cover.cubes().len(), 1);
        assert_eq!(cover.cubes()[0].literal_count(), 0);
        assert_eq!(expand_cover(&[], &[0b1], 1), Cover::zero(1));
    }

    #[test]
    fn xor_needs_all_minterm_cubes() {
        let (on, dc) = truth_table(|s| ((s & 1) ^ ((s >> 1) & 1)) == 1, 2);
        let cover = irredundant_cover(&on, &dc, 2);
        assert_eq!(cover.cubes().len(), 2);
        assert!(cover.cubes().iter().all(|c| c.literal_count() == 2));
    }
}

//! Property tests for the two-level minimization engine: on random
//! functions, the QM cover must reproduce the function exactly, be
//! irredundant, consist of primes, and compose correctly with the
//! complement and cofactor operations.

use proptest::prelude::*;
use si_boolean::{irredundant_cover, prime_implicants, Cover, Cube};

fn random_function() -> impl Strategy<Value = (usize, Vec<u64>, Vec<u64>)> {
    (2usize..=5).prop_flat_map(|n| {
        let space = 1u64 << n;
        let minterms = proptest::collection::btree_set(0..space, 0..(space as usize));
        let dcs = proptest::collection::btree_set(0..space, 0..(space as usize / 2));
        (Just(n), minterms, dcs).prop_map(|(n, on, dc)| {
            let on: Vec<u64> = on.into_iter().collect();
            let dc: Vec<u64> = dc.into_iter().filter(|m| !on.contains(m)).collect();
            (n, on, dc)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn qm_cover_matches_the_care_set((n, on, dc) in random_function()) {
        let cover = irredundant_cover(&on, &dc, n);
        for s in 0..(1u64 << n) {
            if on.contains(&s) {
                prop_assert!(cover.eval(s), "on-minterm {s:b} uncovered");
            } else if !dc.contains(&s) {
                prop_assert!(!cover.eval(s), "off-minterm {s:b} covered");
            }
        }
    }

    #[test]
    fn qm_cover_is_irredundant((n, on, dc) in random_function()) {
        let cover = irredundant_cover(&on, &dc, n);
        if cover.cubes().len() < 2 {
            return Ok(());
        }
        for skip in 0..cover.cubes().len() {
            let rest: Vec<Cube> = cover
                .cubes()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, c)| *c)
                .collect();
            let rest = Cover::new(n, rest);
            prop_assert!(
                on.iter().any(|&m| !rest.eval(m)),
                "cube {skip} is redundant"
            );
        }
    }

    #[test]
    fn every_cover_cube_is_prime((n, on, dc) in random_function()) {
        let primes = prime_implicants(&on, &dc, n);
        let cover = irredundant_cover(&on, &dc, n);
        for cube in cover.cubes() {
            prop_assert!(primes.contains(cube), "{cube:?} is not a prime implicant");
        }
    }

    #[test]
    fn complement_partitions_the_space((n, on, _dc) in random_function()) {
        let cover = irredundant_cover(&on, &[], n);
        let comp = cover.complement();
        for s in 0..(1u64 << n) {
            prop_assert!(cover.eval(s) != comp.eval(s), "state {s:b}");
        }
    }

    #[test]
    fn shannon_expansion_holds((n, on, _dc) in random_function()) {
        let cover = irredundant_cover(&on, &[], n);
        for var in 0..n {
            let f1 = cover.cofactor(var, true);
            let f0 = cover.cofactor(var, false);
            for s in 0..(1u64 << n) {
                let branch = if s & (1 << var) != 0 { f1.eval(s) } else { f0.eval(s) };
                prop_assert_eq!(cover.eval(s), branch);
            }
        }
    }
}

//! Structural-hash memoization of state-graph generation.
//!
//! The relaxation loop rebuilds local state graphs after every arc edit,
//! and the same `MgStg` structure recurs across the conformance pre-check,
//! the relaxation trials, the case-2 arc modification, OR-causality
//! sub-STG vetting and conformance re-checks — and across repeated runs of
//! the same circuit. [`SgCache`] memoizes [`StateGraph::of_mg`] keyed on
//! the canonical [`SgKey`] of the input, so any structurally identical MG
//! (regardless of signal names or restriction flags) is generated once.
//!
//! The cache is budget-exact: a hit whose stored graph exceeds the
//! caller's state budget reports the same budget-exhaustion error an
//! uncached generation would, so cached and uncached runs are
//! behaviourally indistinguishable. Errors are never cached. The cache is
//! `Sync` — one instance is shared across the parallel per-gate fan-out.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use si_stg::{MgStg, SgKey, StateGraph, StgError};

/// Counters of a [`SgCache`], readable at any point of an engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that generated (and stored) a new state graph.
    pub misses: usize,
    /// Distinct state graphs currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `0` when the cache saw no lookups.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe memoization cache for [`StateGraph::of_mg`].
#[derive(Debug, Default)]
pub struct SgCache {
    enabled: bool,
    map: Mutex<HashMap<SgKey, Arc<StateGraph>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SgCache {
    /// A live cache.
    pub fn new() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// A pass-through cache: every call generates from scratch and stores
    /// nothing (the seed's uncached behaviour, byte for byte).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether lookups are served from the memo table.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The state graph of `mg`, memoized. The boolean is `true` on a cache
    /// hit.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`StateGraph::of_mg`] under `budget` —
    /// including [`si_petri::PetriError::StateBudgetExceeded`] when a
    /// cached graph (generated under a larger budget) has more states than
    /// `budget` allows, which is precisely when an uncached generation
    /// would have failed.
    pub fn of_mg(&self, mg: &MgStg, budget: usize) -> Result<(Arc<StateGraph>, bool), StgError> {
        if !self.enabled {
            return Ok((Arc::new(StateGraph::of_mg(mg, budget)?), false));
        }
        let key = mg.sg_key();
        if let Some(sg) = self.map.lock().expect("sg cache poisoned").get(&key) {
            // `of_mg` fails iff the reachable state count exceeds the
            // budget; replay that outcome for smaller budgets.
            if sg.state_count() > budget {
                return Err(StgError::Petri(si_petri::PetriError::StateBudgetExceeded {
                    budget,
                }));
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(sg), true));
        }
        // Generate outside the lock: concurrent gates may race on the same
        // key, in which case the last insert wins — both values are
        // identical, so either Arc is valid.
        let sg = Arc::new(StateGraph::of_mg(mg, budget)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .expect("sg cache poisoned")
            .insert(key, Arc::clone(&sg));
        Ok((sg, false))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("sg cache poisoned").len(),
        }
    }

    /// Drops all stored graphs and resets the counters.
    pub fn clear(&self) {
        self.map.lock().expect("sg cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::parse_astg;

    fn handshake_mg() -> MgStg {
        let stg = parse_astg(
            "\
.model handshake
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
",
        )
        .expect("valid");
        MgStg::from_stg_mg(&stg).expect("marked graph")
    }

    #[test]
    fn second_lookup_hits_and_shares_the_graph() {
        let cache = SgCache::new();
        let mg = handshake_mg();
        let (first, hit1) = cache.of_mg(&mg, 100).expect("consistent");
        let (second, hit2) = cache.of_mg(&mg, 100).expect("consistent");
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn cached_result_equals_uncached() {
        let cache = SgCache::new();
        let mg = handshake_mg();
        let (cached, _) = cache.of_mg(&mg, 100).expect("consistent");
        let direct = StateGraph::of_mg(&mg, 100).expect("consistent");
        assert_eq!(*cached, direct);
    }

    #[test]
    fn hit_replays_budget_exhaustion_exactly() {
        let cache = SgCache::new();
        let mg = handshake_mg(); // 4 states
        cache.of_mg(&mg, 100).expect("consistent");
        // A smaller budget that an uncached run would exhaust must fail
        // identically on the hit path.
        let uncached = StateGraph::of_mg(&mg, 2).expect_err("budget");
        let hit = cache.of_mg(&mg, 2).expect_err("budget");
        assert_eq!(format!("{hit}"), format!("{uncached}"));
        // A budget the graph fits in succeeds from cache.
        assert!(cache.of_mg(&mg, 4).expect("fits").1);
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let cache = SgCache::disabled();
        let mg = handshake_mg();
        let (_, hit1) = cache.of_mg(&mg, 100).expect("consistent");
        let (_, hit2) = cache.of_mg(&mg, 100).expect("consistent");
        assert!(!hit1 && !hit2);
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn clear_resets_counters_and_entries() {
        let cache = SgCache::new();
        let mg = handshake_mg();
        cache.of_mg(&mg, 100).expect("consistent");
        cache.of_mg(&mg, 100).expect("consistent");
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
        let (_, hit) = cache.of_mg(&mg, 100).expect("consistent");
        assert!(!hit);
    }
}

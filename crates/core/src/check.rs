//! Timing conformance and the four-case relaxation criterion
//! (thesis Sec. 5.4).
//!
//! A local STG is *timing conformant* to its gate when, in its state graph,
//! `f↑` is true exactly on `ER(o+) ∪ QR(o+)` and `f↓` on
//! `ER(o-) ∪ QR(o-)`. After relaxing an arc, violations are classified:
//!
//! - **case 1**: no violation — accept the relaxed STG;
//! - **case 2**: the gate is prematurely excited in a quiescent region, but
//!   every prerequisite transition of the next output transition has
//!   already fired — the relaxed transition was unnecessarily made a
//!   prerequisite;
//! - **case 3**: OR-causality — the only missing prerequisite is the relaxed
//!   transition itself, and firing it lands in the excitation region;
//! - **case 4**: a genuine hazard — a timing constraint must pin the
//!   original order.
//!
//! "Has fired" is judged on firing history, not on value snapshots: a
//! prerequisite `z*` counts as fired in state `s` iff no path from `s`
//! fires `z*` before the output transition (a value test would confuse
//! "not yet risen" with "already fallen" when the relaxation lets another
//! input overtake — exactly the thesis Fig. 4.1 glitch).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use si_stg::{Polarity, SgMap, SignalId, StateGraph, TransitionLabel};

use crate::error::CoreError;
use crate::local::LocalStg;

/// Classification of a single conformance-violating quiescent state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateClass {
    /// All prerequisite transitions of the next output transition fired.
    Complete,
    /// Only the just-relaxed transition is missing, and firing it enters
    /// the excitation region.
    OrCausal,
    /// Neither: a premature firing would be a glitch.
    Hazard,
}

/// Outcome of the four-case criterion for one relaxation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelaxationCase {
    /// Timing conformance holds: accept.
    Case1,
    /// Premature excitation, but complete prerequisites (case 2).
    Case2,
    /// OR-causality (case 3).
    Case3,
    /// Hazard: emit a constraint (case 4).
    Case4,
    /// No premature excitation, but the gate lags in some excitation-region
    /// state (`f` false inside ER): the OR-causality signature seen after
    /// the case-2 arc modification (thesis Sec. 6.1.1).
    LaggingOnly,
}

/// Raw conformance violations of a local STG's state graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// `(state, next output transition)` pairs where the gate is excited by
    /// logic while the STG keeps the output quiescent.
    pub premature: Vec<(usize, usize)>,
    /// States inside an excitation region where the triggering function is
    /// still false.
    pub lagging: Vec<usize>,
}

impl ConformanceReport {
    /// Whether the STG is fully timing conformant.
    pub fn is_conformant(&self) -> bool {
        self.premature.is_empty() && self.lagging.is_empty()
    }
}

/// The purely *local* part of one state's conformance verdict: membership
/// in the premature/lagging sets is a function of the state's own code,
/// its own edge list and the shared label table only — exactly the data
/// [`si_stg::SgMap`] guarantees unchanged for states outside the affected
/// cone, which is what makes [`classify_states_from`] sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LocalVerdict {
    /// Conformant here.
    Clean,
    /// Inside an excitation region with the triggering function false.
    Lagging,
    /// Excited by logic while the STG keeps the output quiescent.
    Premature,
}

fn local_verdict(local: &LocalStg, sg: &StateGraph, s: usize) -> LocalVerdict {
    let o = local.ctx.output;
    let code = sg.code(s);
    if sg.is_excited(s, o) {
        for &(t, _) in &sg.edges[s] {
            let l = sg.label(t);
            if l.signal != o {
                continue;
            }
            let ok = match l.polarity {
                Polarity::Plus => local.ctx.eval_up(code),
                Polarity::Minus => local.ctx.eval_down(code),
            };
            if !ok {
                return LocalVerdict::Lagging;
            }
        }
        LocalVerdict::Clean
    } else {
        let value = sg.value(s, o);
        let fires_early = if value {
            local.ctx.eval_down(code) // in QR(o+) but f↓ true
        } else {
            local.ctx.eval_up(code) // in QR(o-) but f↑ true
        };
        if fires_early {
            LocalVerdict::Premature
        } else {
            LocalVerdict::Clean
        }
    }
}

/// The next output transition reachable from premature state `s` — the
/// forward-path query that (unlike membership) must always be recomputed
/// on the current graph.
fn resolve_t_out(sg: &StateGraph, s: usize, o: SignalId, o_name: &str) -> Result<usize, CoreError> {
    sg.next_transition_of(s, o, o_name)
        .map_err(CoreError::from)?
        .ok_or_else(|| CoreError::Unresolved {
            gate: o_name.to_string(),
            detail: format!("output never fires again from state {s}"),
        })
}

/// Computes the conformance report of `local` against its gate covers.
///
/// # Errors
///
/// [`CoreError::Unresolved`] if the output never fires again from a
/// premature state (the MG was not live).
pub fn conformance(local: &LocalStg, sg: &StateGraph) -> Result<ConformanceReport, CoreError> {
    let o = local.ctx.output;
    let o_name = local.mg.signal_name(o);
    let mut premature = Vec::new();
    let mut lagging = Vec::new();
    for s in 0..sg.state_count() {
        match local_verdict(local, sg, s) {
            LocalVerdict::Clean => {}
            LocalVerdict::Lagging => lagging.push(s),
            LocalVerdict::Premature => premature.push((s, resolve_t_out(sg, s, o, o_name)?)),
        }
    }
    Ok(ConformanceReport { premature, lagging })
}

/// Recomputes the conformance report of `sg` by copying the per-state
/// verdicts of `parent_report` for every state outside `map`'s affected
/// cone and re-evaluating only the cone itself.
///
/// Soundness: premature/lagging *membership* is purely local (own code,
/// own edges, shared labels — see `LocalVerdict`), and [`si_stg::SgMap`]
/// guarantees exactly that data unchanged for unaffected states. The
/// forward-path `t_out` of a premature state is *not* copied — it is
/// recomputed on the current graph, so the result (including any
/// [`CoreError::Unresolved`]) is bit-identical to a scratch
/// [`conformance`] sweep.
///
/// Contract: `parent_report` must be the [`conformance`] report of the
/// *same gate context* over the parent graph `map` was derived against.
/// A map whose length does not match `sg` falls back to the scratch sweep.
///
/// # Errors
///
/// Exactly the errors of [`conformance`] on `sg`.
pub fn conformance_from(
    local: &LocalStg,
    sg: &StateGraph,
    parent_report: &ConformanceReport,
    map: &SgMap,
) -> Result<ConformanceReport, CoreError> {
    if map.parent_of.len() != sg.state_count() || map.affected.len() != sg.state_count() {
        return conformance(local, sg);
    }
    let o = local.ctx.output;
    let o_name = local.mg.signal_name(o);
    let parent_premature: BTreeSet<usize> =
        parent_report.premature.iter().map(|&(s, _)| s).collect();
    let parent_lagging: BTreeSet<usize> = parent_report.lagging.iter().copied().collect();
    let mut premature = Vec::new();
    let mut lagging = Vec::new();
    for s in 0..sg.state_count() {
        let verdict = match map.parent_of[s] {
            Some(p) if !map.affected[s] => {
                if parent_premature.contains(&p) {
                    LocalVerdict::Premature
                } else if parent_lagging.contains(&p) {
                    LocalVerdict::Lagging
                } else {
                    LocalVerdict::Clean
                }
            }
            _ => local_verdict(local, sg, s),
        };
        match verdict {
            LocalVerdict::Clean => {}
            LocalVerdict::Lagging => lagging.push(s),
            LocalVerdict::Premature => premature.push((s, resolve_t_out(sg, s, o, o_name)?)),
        }
    }
    Ok(ConformanceReport { premature, lagging })
}

/// The prerequisite transition sets `Epre` of every output transition:
/// labels of its predecessor transitions in the *current* local STG
/// (computed before the relaxation under test, thesis Sec. 5.4.1).
pub fn prerequisite_sets(local: &LocalStg) -> BTreeMap<usize, BTreeSet<TransitionLabel>> {
    let o = local.ctx.output;
    let mut map = BTreeMap::new();
    for t in local.mg.transitions() {
        if local.mg.label(t).signal != o {
            continue;
        }
        let set: BTreeSet<TransitionLabel> = local
            .mg
            .preds(t)
            .into_iter()
            .map(|p| local.mg.label(p))
            .collect();
        map.insert(t, set);
    }
    map
}

/// Whether a transition labelled `z` can still fire before `t_out` on some
/// path from `state` ("z* is pending": it has not yet fired in the current
/// cycle).
///
/// One label, one traversal — the classification hot path uses
/// `pending_of` instead, which resolves *all* prerequisites of a
/// `(state, t_out)` pair in a single sweep over a reusable scratch buffer.
pub fn is_pending(sg: &StateGraph, state: usize, z: TransitionLabel, t_out: usize) -> bool {
    let mut singleton = BTreeSet::new();
    singleton.insert(z);
    let mut seen = Vec::new();
    !pending_of(sg, state, t_out, &singleton, &mut seen).is_empty()
}

/// All prerequisite labels of `e` still pending before `t_out` from
/// `state`, computed in one DFS (skipping `t_out` edges) instead of one
/// DFS per prerequisite. `seen` is a caller-owned scratch buffer, cleared
/// and regrown here so a classification sweep allocates it once. The
/// result preserves `e`'s (sorted) iteration order.
fn pending_of(
    sg: &StateGraph,
    state: usize,
    t_out: usize,
    e: &BTreeSet<TransitionLabel>,
    seen: &mut Vec<bool>,
) -> Vec<TransitionLabel> {
    let mut found = BTreeSet::new();
    if e.is_empty() {
        return Vec::new();
    }
    seen.clear();
    seen.resize(sg.state_count(), false);
    let mut stack = vec![state];
    seen[state] = true;
    'dfs: while let Some(s) = stack.pop() {
        for &(t, j) in &sg.edges[s] {
            if t == t_out {
                continue; // stop at the output transition
            }
            let l = sg.label(t);
            if e.contains(&l) {
                found.insert(l);
                if found.len() == e.len() {
                    break 'dfs; // every prerequisite already found pending
                }
            }
            if !seen[j] {
                seen[j] = true;
                stack.push(j);
            }
        }
    }
    found.into_iter().collect()
}

/// Classifies one premature state (thesis relaxation cases 2–4).
pub fn classify_state(
    sg: &StateGraph,
    state: usize,
    t_out: usize,
    epre: &BTreeMap<usize, BTreeSet<TransitionLabel>>,
    relaxed: Option<(usize, TransitionLabel)>,
) -> StateClass {
    let mut seen = Vec::new();
    classify_state_with(sg, state, t_out, epre, relaxed, &mut seen)
}

/// [`classify_state`] over a caller-owned scratch buffer.
fn classify_state_with(
    sg: &StateGraph,
    state: usize,
    t_out: usize,
    epre: &BTreeMap<usize, BTreeSet<TransitionLabel>>,
    relaxed: Option<(usize, TransitionLabel)>,
    seen: &mut Vec<bool>,
) -> StateClass {
    let empty = BTreeSet::new();
    let e = epre.get(&t_out).unwrap_or(&empty);
    let pending = pending_of(sg, state, t_out, e, seen);
    if pending.is_empty() {
        return StateClass::Complete;
    }
    if let Some((x, x_label)) = relaxed {
        // Case 3: x is the sole missing prerequisite, it is excited here,
        // and firing it enters the excitation region of the same output
        // occurrence.
        if pending == [x_label] {
            if let Some(s2) = sg.successor_by(state, x) {
                if sg.successor_by(s2, t_out).is_some() {
                    return StateClass::OrCausal;
                }
            }
        }
    }
    StateClass::Hazard
}

/// The four-case verdict of an already-computed conformance report: the
/// per-state classification loop shared by [`classify_states`] and
/// [`classify_states_from`].
fn classify_report(
    local: &LocalStg,
    sg: &StateGraph,
    epre: &BTreeMap<usize, BTreeSet<TransitionLabel>>,
    relaxed: Option<usize>,
    report: ConformanceReport,
) -> (RelaxationCase, ConformanceReport) {
    if report.is_conformant() {
        return (RelaxationCase::Case1, report);
    }
    if report.premature.is_empty() {
        return (RelaxationCase::LaggingOnly, report);
    }
    let relaxed_pair = relaxed.map(|x| (x, local.mg.label(x)));
    let mut seen = Vec::new();
    let mut any_or_causal = false;
    for &(s, t_out) in &report.premature {
        match classify_state_with(sg, s, t_out, epre, relaxed_pair, &mut seen) {
            StateClass::Hazard => return (RelaxationCase::Case4, report),
            StateClass::OrCausal => any_or_causal = true,
            StateClass::Complete => {}
        }
    }
    if any_or_causal {
        (RelaxationCase::Case3, report)
    } else {
        (RelaxationCase::Case2, report)
    }
}

/// Runs the full four-case criterion: conformance plus per-state
/// classification (`Check` of Algorithm 4).
///
/// # Errors
///
/// Propagates [`conformance`] errors.
pub fn classify_states(
    local: &LocalStg,
    sg: &StateGraph,
    epre: &BTreeMap<usize, BTreeSet<TransitionLabel>>,
    relaxed: Option<usize>,
) -> Result<(RelaxationCase, ConformanceReport), CoreError> {
    let report = conformance(local, sg)?;
    Ok(classify_report(local, sg, epre, relaxed, report))
}

/// The four-case criterion with the conformance sweep made incremental:
/// verdicts of states outside `map`'s affected cone are copied from
/// `parent_report` (see [`conformance_from`] for the contract and the
/// soundness argument); only the cone is re-evaluated. Returns exactly
/// what [`classify_states`] would — same `RelaxationCase`, same
/// `ConformanceReport`, same errors.
///
/// # Errors
///
/// Exactly the errors of [`classify_states`] on the same inputs.
pub fn classify_states_from(
    local: &LocalStg,
    sg: &StateGraph,
    epre: &BTreeMap<usize, BTreeSet<TransitionLabel>>,
    relaxed: Option<usize>,
    parent_report: &ConformanceReport,
    map: &SgMap,
) -> Result<(RelaxationCase, ConformanceReport), CoreError> {
    let report = conformance_from(local, sg, parent_report, map)?;
    Ok(classify_report(local, sg, epre, relaxed, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::GateContext;
    use crate::relax::relax_arc;
    use si_boolean::{parse_eqn, GateLibrary};
    use si_stg::{parse_astg, MgStg};

    fn build(stg_text: &str, eqn: &str, gate: &str) -> LocalStg {
        let stg = parse_astg(stg_text).expect("valid STG");
        let lib = GateLibrary::from_netlist(&parse_eqn(eqn).expect("valid EQN"));
        let ctx = GateContext::bind(lib.gate(gate).expect("gate exists"), &stg).expect("binds");
        let mg = MgStg::from_stg_mg(&stg).expect("marked graph");
        crate::local::LocalStg::project_from(&mg, &ctx).expect("projects")
    }

    fn check_after_relax(
        local: &mut LocalStg,
        from: &str,
        to: &str,
    ) -> (RelaxationCase, ConformanceReport) {
        let x = local.mg.transition_by_label(from).expect("present");
        let y = local.mg.transition_by_label(to).expect("present");
        let epre = prerequisite_sets(local);
        relax_arc(&mut local.mg, x, y).expect("relaxes");
        let sg = si_stg::StateGraph::of_mg(&local.mg, 10_000).expect("consistent");
        classify_states(local, &sg, &epre, Some(x)).expect("checks")
    }

    /// Thesis Fig. 5.17 (relaxation case 1): o = x·y AND gate, x+ ⇒ y+
    /// relaxed; conformance still holds. The falling edge is triggered by
    /// x- (an AND gate falls with its first falling input).
    const FIG_5_17: &str = "\
.model fig517
.inputs x y
.outputs o
.graph
x+ y+
y+ o+
o+ x-
x- o-
o- y-
y- x+
.marking { <y-,x+> }
.end
";

    #[test]
    fn fig_5_17_case_1() {
        let mut local = build(FIG_5_17, "o = x*y;", "o");
        let sg0 = si_stg::StateGraph::of_mg(&local.mg, 1000).expect("consistent");
        let epre = prerequisite_sets(&local);
        let (case0, _) = classify_states(&local, &sg0, &epre, None).expect("checks");
        assert_eq!(case0, RelaxationCase::Case1, "initial local STG conformant");
        let (case, report) = check_after_relax(&mut local, "x+", "y+");
        assert_eq!(case, RelaxationCase::Case1);
        assert!(report.is_conformant());
    }

    #[test]
    fn fig_5_19_case_3_or_causality() {
        // OR gate o = x + y; o+ is triggered by x+ (arc x+ ⇒ o+); y+ is
        // ordered after x+ only by a type-4 arc. Relaxing x+ ⇒ y+ lets y+
        // overtake and excite o through the other clause: case 3.
        let text = "\
.model case3
.inputs x y
.outputs o
.graph
x+ o+
x+ y+
o+ x-
y+ x-
x- y-
y- o-
o- x+
.marking { <o-,x+> }
.end
";
        let mut local = build(text, "o = x + y;", "o");
        let sg0 = si_stg::StateGraph::of_mg(&local.mg, 1000).expect("consistent");
        let epre0 = prerequisite_sets(&local);
        let (case0, _) = classify_states(&local, &sg0, &epre0, None).expect("checks");
        assert_eq!(case0, RelaxationCase::Case1, "initial STG conformant");

        let (case, report) = check_after_relax(&mut local, "x+", "y+");
        assert_eq!(case, RelaxationCase::Case3);
        assert_eq!(report.premature.len(), 1);
    }

    #[test]
    fn fig_4_1_style_case_4_hazard() {
        // OR gate o = y + z expected to hold 1 across the handover
        // z+ ⇒ y-: if y- overtakes z+, both inputs are low and the gate
        // dips — the classic Fig. 4.1 glitch. Must be case 4.
        let text = "\
.model case4
.inputs y z
.outputs o
.graph
z+ y-
y- z-
z- o-
o- y+
y+ o+
o+ z+
.marking { <o+,z+> }
.end
";
        let mut local = build(text, "o = y + z;", "o");
        let sg0 = si_stg::StateGraph::of_mg(&local.mg, 1000).expect("consistent");
        let epre0 = prerequisite_sets(&local);
        let (case0, _) = classify_states(&local, &sg0, &epre0, None).expect("checks");
        assert_eq!(case0, RelaxationCase::Case1, "initial STG conformant");

        let (case, report) = check_after_relax(&mut local, "z+", "y-");
        assert_eq!(case, RelaxationCase::Case4);
        assert!(!report.premature.is_empty());
    }

    #[test]
    fn pending_distinguishes_not_yet_risen_from_fallen() {
        // In the case-4 example after relaxation, state (y fell early):
        // prerequisite z- of o- is pending (z+ then z- still to come), even
        // though the value of z is already 0.
        let text = "\
.model case4
.inputs y z
.outputs o
.graph
z+ y-
y- z-
z- o-
o- y+
y+ o+
o+ z+
.marking { <o+,z+> }
.end
";
        let mut local = build(text, "o = y + z;", "o");
        let x = local.mg.transition_by_label("z+").expect("present");
        let y = local.mg.transition_by_label("y-").expect("present");
        relax_arc(&mut local.mg, x, y).expect("relaxes");
        let sg = si_stg::StateGraph::of_mg(&local.mg, 1000).expect("consistent");
        let report = conformance(&local, &sg).expect("checks");
        let &(s, t_out) = report.premature.first().expect("premature state exists");
        let zm = local.mg.transition_by_label("z-").expect("present");
        assert!(is_pending(&sg, s, local.mg.label(zm), t_out));
    }

    #[test]
    fn case_2_when_prerequisites_all_fired() {
        // Gate o = x'·z: relaxing x+ ⇒ z+ lets z+ overtake x+; in the
        // early state the code coincides with the legitimate firing state
        // BUT the prerequisite x- has not fired yet, so this is a hazard
        // (premature rise followed by a forced early fall when x+ lands).
        let text = "\
.model xz
.inputs x z
.outputs o
.graph
x+ z+
z+ x-
x- o+
o+ z-
z- o-
o- x+
.marking { <o-,x+> }
.end
";
        let mut local = build(text, "o = x'*z;", "o");
        let sg0 = si_stg::StateGraph::of_mg(&local.mg, 1000).expect("consistent");
        let epre0 = prerequisite_sets(&local);
        let (case0, _) = classify_states(&local, &sg0, &epre0, None).expect("checks");
        assert_eq!(case0, RelaxationCase::Case1);

        let (case, _) = check_after_relax(&mut local, "x+", "z+");
        assert_eq!(case, RelaxationCase::Case4);
    }

    /// Relaxes `from ⇒ to`, derives the child SG incrementally, and checks
    /// that verdict-copying classification equals the scratch sweep —
    /// across all four outcome fixtures.
    #[test]
    fn classify_states_from_matches_scratch_across_cases() {
        let case3 = "\
.model case3
.inputs x y
.outputs o
.graph
x+ o+
x+ y+
o+ x-
y+ x-
x- y-
y- o-
o- x+
.marking { <o-,x+> }
.end
";
        let case4 = "\
.model case4
.inputs y z
.outputs o
.graph
z+ y-
y- z-
z- o-
o- y+
y+ o+
o+ z+
.marking { <o+,z+> }
.end
";
        let fixtures = [
            (FIG_5_17, "o = x*y;", "x+", "y+"),
            (case3, "o = x + y;", "x+", "y+"),
            (case4, "o = y + z;", "z+", "y-"),
        ];
        for (text, eqn, from, to) in fixtures {
            let mut local = build(text, eqn, "o");
            let parent_mg = local.mg.clone();
            let parent_sg = si_stg::StateGraph::of_mg(&parent_mg, 1000).expect("consistent");
            let parent_report = conformance(&local, &parent_sg).expect("checks");
            let epre = prerequisite_sets(&local);
            let x = local.mg.transition_by_label(from).expect("present");
            let y = local.mg.transition_by_label(to).expect("present");
            relax_arc(&mut local.mg, x, y).expect("relaxes");
            let (sg, map) = si_stg::StateGraph::of_mg_from(&parent_mg, &parent_sg, &local.mg, 1000)
                .expect("derives");
            let map = map.expect("single-arc relaxation is delta-eligible");
            let scratch = classify_states(&local, &sg, &epre, Some(x)).expect("checks");
            let incremental =
                classify_states_from(&local, &sg, &epre, Some(x), &parent_report, &map)
                    .expect("checks");
            assert_eq!(incremental, scratch, "fixture {from} ⇒ {to}");
        }
    }

    #[test]
    fn prerequisite_sets_follow_arcs() {
        let local = build(FIG_5_17, "o = x*y;", "o");
        let epre = prerequisite_sets(&local);
        let op = local.mg.transition_by_label("o+").expect("present");
        let e = &epre[&op];
        assert_eq!(e.len(), 1); // only y+ is a direct predecessor
        let om = local.mg.transition_by_label("o-").expect("present");
        assert_eq!(epre[&om].len(), 1); // only y-
    }
}

use std::fmt;

use si_stg::{Polarity, TransitionLabel};

/// A transition named independently of any particular STG instance, so
/// constraints survive sub-STG decomposition and cross-component union.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintAtom {
    /// Signal name.
    pub signal: String,
    /// Transition direction.
    pub polarity: Polarity,
    /// 1-based occurrence index.
    pub occurrence: u32,
}

impl ConstraintAtom {
    /// Builds an atom from a label and the owning name table.
    pub fn from_label(label: TransitionLabel, names: &[String]) -> Self {
        Self {
            signal: names[label.signal.0].clone(),
            polarity: label.polarity,
            occurrence: label.occurrence,
        }
    }
}

impl fmt::Display for ConstraintAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.signal, self.polarity)?;
        if self.occurrence != 1 {
            write!(f, "/{}", self.occurrence)?;
        }
        Ok(())
    }
}

/// A relative timing constraint `gate: x* < y*` (thesis notation
/// `a : x* ≤ y*`): transition `before` must reach `gate`'s inputs before
/// transition `after`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Constraint {
    /// Output signal of the gate whose input ordering is constrained.
    pub gate: String,
    /// The transition that must arrive first.
    pub before: ConstraintAtom,
    /// The transition that must arrive later.
    pub after: ConstraintAtom,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} < {}", self.gate, self.before, self.after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::SignalId;

    #[test]
    fn display_matches_thesis_tool_output() {
        let names = vec!["wenin".to_string(), "precharged".to_string()];
        let c = Constraint {
            gate: "i0".to_string(),
            before: ConstraintAtom::from_label(
                TransitionLabel::first(SignalId(0), Polarity::Minus),
                &names,
            ),
            after: ConstraintAtom::from_label(
                TransitionLabel::first(SignalId(1), Polarity::Minus),
                &names,
            ),
        };
        assert_eq!(c.to_string(), "i0: wenin- < precharged-");
    }

    #[test]
    fn occurrence_suffix_only_when_not_first() {
        let a = ConstraintAtom {
            signal: "l".into(),
            polarity: Polarity::Plus,
            occurrence: 2,
        };
        assert_eq!(a.to_string(), "l+/2");
        let b = ConstraintAtom {
            signal: "l".into(),
            polarity: Polarity::Minus,
            occurrence: 1,
        };
        assert_eq!(b.to_string(), "l-");
    }

    #[test]
    fn ordering_is_deterministic() {
        let mk = |g: &str, s1: &str, s2: &str| Constraint {
            gate: g.into(),
            before: ConstraintAtom {
                signal: s1.into(),
                polarity: Polarity::Plus,
                occurrence: 1,
            },
            after: ConstraintAtom {
                signal: s2.into(),
                polarity: Polarity::Plus,
                occurrence: 1,
            },
        };
        let mut v = [mk("b", "x", "y"), mk("a", "x", "y"), mk("a", "w", "y")];
        v.sort();
        assert_eq!(v[0].gate, "a");
        assert_eq!(v[0].before.signal, "w");
    }
}

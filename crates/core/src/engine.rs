//! The staged derivation engine.
//!
//! [`derive_timing_constraints`](crate::derive_timing_constraints) is the
//! thesis algorithm as a single monolithic call; this module exposes the
//! same computation as an explicit pipeline
//!
//! ```text
//! parse → validate → MG decomposition → per-gate local-STG projection
//!       → relaxation → constraint merge
//! ```
//!
//! with three production-minded additions:
//!
//! 1. **[`EngineConfig`]** gathers every budget and policy knob that used
//!    to be a magic constant scattered across the crates (state-graph
//!    budgets, iteration budget, OR-causality recursion depth, relaxation
//!    order, job count, cache switch).
//! 2. **State-graph memoization** ([`SgCache`]): local state graphs are
//!    keyed by the canonical [`si_stg::SgKey`] of their `MgStg` and shared
//!    across the relaxation loop, the OR-causality sub-STG checks, the
//!    conformance re-checks — and across circuits when one engine serves a
//!    whole batch.
//! 3. **Parallel per-gate fan-out**: gates are independent (the same
//!    independence that per-block timing extraction under process
//!    variations exploits), so the projection + relaxation of each gate
//!    runs on a `std::thread::scope` worker pool. Results are merged in
//!    gate order, so the output is bit-identical to the sequential path —
//!    constraint sets, per-gate reports, trace, iteration counts and all.
//!
//! Per-stage and per-gate metrics (wall time, states explored, cache
//! traffic) ride along in the extended [`EngineReport`].

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use si_boolean::{parse_eqn, GateLibrary};
use si_stg::{MgStg, SignalId, StateGraph, Stg};

use crate::cache::{CacheStats, ConformanceCache, ProjCache, SgCache};
use crate::check::{classify_states, prerequisite_sets, RelaxationCase};
use crate::constraint::{Constraint, ConstraintAtom};
use crate::error::CoreError;
use crate::expand::{
    expand_ctx, ExpandCtx, ExpandOutcome, RelaxationOrder, DEFAULT_LOCAL_SG_BUDGET,
    DEFAULT_MAX_DEPTH,
};
use crate::local::{GateContext, LocalStg};
use crate::paths::AdversaryOracle;
use crate::report::{ConstraintReport, GateReport};
use crate::sched::{DivergencePolicy, DEFAULT_DIVERGENCE_WINDOW};

/// Default per-gate relaxation-iteration budget (convergence is proven;
/// this guards malformed inputs).
pub const DEFAULT_EXPAND_BUDGET: usize = 20_000;
/// Default allocation cap for Hack's MG decomposition.
pub const DEFAULT_ALLOCATION_CAP: usize = 4096;
/// Default state budget for whole-STG state graphs (also the validation
/// and conformance pre-check budget).
pub const DEFAULT_GLOBAL_SG_BUDGET: usize = 1_000_000;

/// What the engine does with static-lint findings on its source inputs
/// (the pre-flight [`Stage::Lint`] of [`Engine::run_source`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintPolicy {
    /// Skip the lint stage entirely.
    Off,
    /// Lint and report the findings in [`EngineReport::lint`], but never
    /// block the run — parse/validate still reject what they always did.
    #[default]
    Warn,
    /// Lint, and fail fast with [`CoreError::Lint`] on any
    /// error-severity finding, before the strict parse even runs.
    Deny,
}

/// All tunables of the derivation pipeline in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// State budget for whole-STG state graphs, STG validation and the
    /// per-gate conformance pre-check.
    pub global_sg_budget: usize,
    /// State budget per local state graph inside the relaxation loop.
    pub local_sg_budget: usize,
    /// Relaxation-iteration budget per gate.
    pub expand_budget: usize,
    /// Allocation cap for Hack's MG decomposition.
    pub allocation_cap: usize,
    /// Maximum OR-causality recursion depth.
    pub max_depth: usize,
    /// Arc-picking policy of the relaxation loop.
    pub order: RelaxationOrder,
    /// Worker threads for the per-gate fan-out: `1` = sequential in the
    /// calling thread, `0` = one per available CPU.
    pub jobs: usize,
    /// Whether local state graphs are memoized.
    pub cache: bool,
    /// Whether each relaxation trial's state graph is derived
    /// *incrementally* from its predecessor's — re-exploring only the cone
    /// of states the edited arc can affect — instead of regenerated from
    /// scratch. Output is bit-identical either way (the incremental path
    /// replays budget-exhaustion and consistency errors exactly); the knob
    /// exists as an escape hatch and for A/B measurement.
    pub incremental: bool,
    /// Whether per-gate local-STG projections are memoized engine-wide
    /// (keyed on component structure + output + fan-in), which makes warm
    /// runs of a circuit skip the projection sweeps entirely.
    pub memo_projection: bool,
    /// Whether each relaxation trial's conformance classification is
    /// *incremental*: per-state verdicts of states outside the edit's
    /// affected cone are copied from the predecessor trial's report, and
    /// whole verdicts of repeated trials are answered from the
    /// [`ConformanceCache`] (the cache tier additionally requires
    /// [`EngineConfig::cache`]). Output is bit-identical either way; the
    /// knob exists as an escape hatch and for A/B measurement.
    pub incremental_classify: bool,
    /// Whether *cold* state-graph exploration uses σ-space
    /// (firing-count-vector) keys ([`si_stg::StateGraph::of_mg_sigma`])
    /// instead of packed-marking keys, for weakly connected MGs. Output is
    /// bit-identical either way.
    pub sigma_cold: bool,
    /// What to do with static-lint findings on source inputs
    /// ([`Engine::run_source`] only — [`Engine::run`] takes already-parsed
    /// inputs and never lints).
    pub lint: LintPolicy,
    /// Sliding-window length of the trial scheduler's contraction
    /// watchdog: the loop bails when no new strict minimum of the
    /// relaxable-arc count appears for this many iterations while the
    /// trial state graph is not shrinking. `0` disables the watchdog (the
    /// repeated-state ledger still runs).
    pub divergence_window: usize,
    /// What the relaxation loop does when the trial scheduler detects a
    /// non-converging gate: bail with [`CoreError::Diverged`]
    /// (the default) or exhaust the iteration budget (the historical
    /// behaviour, kept by [`EngineConfig::reference`]).
    pub divergence_policy: DivergencePolicy,
}

impl Default for EngineConfig {
    /// Sequential but cached, incremental and projection-memoized:
    /// identical output to the seed algorithm with every reuse layer
    /// switched on.
    fn default() -> Self {
        Self {
            global_sg_budget: DEFAULT_GLOBAL_SG_BUDGET,
            local_sg_budget: DEFAULT_LOCAL_SG_BUDGET,
            expand_budget: DEFAULT_EXPAND_BUDGET,
            allocation_cap: DEFAULT_ALLOCATION_CAP,
            max_depth: DEFAULT_MAX_DEPTH,
            order: RelaxationOrder::TightestFirst,
            jobs: 1,
            cache: true,
            incremental: true,
            memo_projection: true,
            incremental_classify: true,
            sigma_cold: true,
            lint: LintPolicy::Warn,
            divergence_window: DEFAULT_DIVERGENCE_WINDOW,
            divergence_policy: DivergencePolicy::Bail,
        }
    }
}

impl EngineConfig {
    /// The reference configuration: sequential, uncached, no incremental
    /// regeneration or classification, no projection memo, no σ-space cold
    /// exploration, no divergence bail-out — the exact code path of the
    /// original monolithic driver. Differential tests compare every other
    /// configuration against this one.
    pub fn reference() -> Self {
        Self {
            cache: false,
            incremental: false,
            memo_projection: false,
            incremental_classify: false,
            sigma_cold: false,
            lint: LintPolicy::Off,
            divergence_policy: DivergencePolicy::Exhaust,
            ..Self::default()
        }
    }

    /// A parallel cached configuration; `jobs = 0` sizes the pool to the
    /// available CPUs.
    pub fn parallel(jobs: usize) -> Self {
        Self {
            jobs,
            ..Self::default()
        }
    }

    /// The same configuration under a different relaxation order.
    pub fn with_order(self, order: RelaxationOrder) -> Self {
        Self { order, ..self }
    }

    /// The effective worker count for `n` gates.
    fn effective_jobs(&self, n: usize) -> usize {
        let requested = if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.jobs
        };
        requested.min(n).max(1)
    }
}

/// The pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Static lint pre-flight over the `.g` source text (source entry
    /// only; skipped under [`LintPolicy::Off`] but always listed).
    Lint,
    /// `.g`/`.eqn` text to [`Stg`] + [`GateLibrary`] (source entry only).
    Parse,
    /// Liveness/safeness/free-choice/consistency of the STG (source entry
    /// only).
    Validate,
    /// Hack's MG decomposition plus the whole-STG state graph.
    Decompose,
    /// Per-gate binding, local-STG projection, baseline extraction and the
    /// conformance pre-check.
    Project,
    /// The per-gate relaxation loops (Algorithm 4 fan-out).
    Relax,
    /// Union of the per-gate results in deterministic gate order.
    Merge,
}

impl Stage {
    /// Stable lower-case stage name (used by the CLI's JSON output).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Lint => "lint",
            Stage::Parse => "parse",
            Stage::Validate => "validate",
            Stage::Decompose => "decompose",
            Stage::Project => "project",
            Stage::Relax => "relax",
            Stage::Merge => "merge",
        }
    }
}

/// Wall time and state-graph traffic of one pipeline stage.
///
/// For the fanned-out stages ([`Stage::Project`], [`Stage::Relax`]) `wall`
/// is the *aggregate* across gates — comparable between job counts; the
/// elapsed wall-clock of the whole fan-out is [`EngineReport::fanout_wall`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageMetrics {
    /// Which stage.
    pub stage: Stage,
    /// Aggregate wall time spent in the stage.
    pub wall: Duration,
    /// States actually generated by state-graph construction (cache misses
    /// only).
    pub states_explored: usize,
    /// Local state graphs answered from the shared cache.
    pub sg_cache_hits: usize,
    /// Local state graphs generated (incrementally or from scratch).
    pub sg_cache_misses: usize,
    /// Cache hits answered by the delta tier (subset of
    /// [`StageMetrics::sg_cache_hits`]).
    pub sg_delta_hits: usize,
    /// Misses answered by the incremental derivation instead of a scratch
    /// exploration (subset of [`StageMetrics::sg_cache_misses`]).
    pub sg_inc_derived: usize,
    /// Local-STG projections answered from the projection memo.
    pub proj_memo_hits: usize,
    /// Local-STG projections computed (and stored) by the stage.
    pub proj_memo_misses: usize,
    /// Classification verdicts answered from the conformance cache.
    pub conf_cache_hits: usize,
    /// Classification verdicts computed fresh by the stage.
    pub conf_cache_misses: usize,
    /// Fresh verdicts computed by verdict-copying incremental
    /// classification (subset of [`StageMetrics::conf_cache_misses`]).
    pub conf_inc_classified: usize,
    /// Distinct local-STG fingerprints recorded by the trial scheduler's
    /// progress ledger.
    pub sched_fingerprints: usize,
    /// Gates aborted by the scheduler's repeated-state cycle detector.
    pub sched_cycle_bails: usize,
    /// Gates aborted by the scheduler's contraction watchdog.
    pub sched_watchdog_bails: usize,
}

impl StageMetrics {
    fn timed(stage: Stage, wall: Duration) -> Self {
        Self {
            stage,
            wall,
            states_explored: 0,
            sg_cache_hits: 0,
            sg_cache_misses: 0,
            sg_delta_hits: 0,
            sg_inc_derived: 0,
            proj_memo_hits: 0,
            proj_memo_misses: 0,
            conf_cache_hits: 0,
            conf_cache_misses: 0,
            conf_inc_classified: 0,
            sched_fingerprints: 0,
            sched_cycle_bails: 0,
            sched_watchdog_bails: 0,
        }
    }
}

/// Per-gate breakdown of the fan-out stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateMetrics {
    /// The gate's output signal.
    pub gate: String,
    /// Projection + baseline + conformance pre-check time.
    pub project_wall: Duration,
    /// Relaxation-loop time.
    pub relax_wall: Duration,
    /// Relaxation iterations.
    pub iterations: usize,
    /// States generated for this gate (cache misses only).
    pub states_explored: usize,
    /// Cache hits while processing this gate.
    pub sg_cache_hits: usize,
    /// Cache misses while processing this gate.
    pub sg_cache_misses: usize,
    /// Delta-tier hits while processing this gate (subset of
    /// [`GateMetrics::sg_cache_hits`]).
    pub sg_delta_hits: usize,
    /// Misses served by the incremental derivation (subset of
    /// [`GateMetrics::sg_cache_misses`]).
    pub sg_inc_derived: usize,
    /// Projections answered from the projection memo for this gate.
    pub proj_memo_hits: usize,
    /// Projections computed for this gate.
    pub proj_memo_misses: usize,
    /// Classification verdicts answered from the conformance cache for
    /// this gate.
    pub conf_cache_hits: usize,
    /// Classification verdicts computed fresh for this gate.
    pub conf_cache_misses: usize,
    /// Fresh verdicts computed by verdict-copying incremental
    /// classification (subset of [`GateMetrics::conf_cache_misses`]).
    pub conf_inc_classified: usize,
    /// Distinct local-STG fingerprints recorded by the trial scheduler's
    /// progress ledger for this gate.
    pub sched_fingerprints: usize,
    /// Loop instances of this gate aborted by the repeated-state cycle
    /// detector.
    pub sched_cycle_bails: usize,
    /// Loop instances of this gate aborted by the contraction watchdog.
    pub sched_watchdog_bails: usize,
}

/// The extended result of an engine run: the classic [`ConstraintReport`]
/// plus stage, gate and cache metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// The derivation result — bit-identical to the sequential monolithic
    /// driver for every configuration.
    pub report: ConstraintReport,
    /// Per-stage metrics in execution order.
    pub stages: Vec<StageMetrics>,
    /// Findings of the static lint pre-flight ([`Engine::run_source`]
    /// under [`LintPolicy::Warn`]/[`LintPolicy::Deny`]; empty otherwise —
    /// [`Engine::run`] never lints).
    pub lint: si_lint::LintReport,
    /// Per-gate metrics in gate order.
    pub gates: Vec<GateMetrics>,
    /// Cache counters accumulated over the engine's lifetime (shared
    /// across runs of the same engine).
    pub cache: CacheStats,
    /// Projection-memo counters accumulated over the engine's lifetime.
    pub projections: CacheStats,
    /// Conformance-cache counters accumulated over the engine's lifetime.
    pub conformance: CacheStats,
    /// Worker threads actually used by the fan-out.
    pub jobs: usize,
    /// Wall-clock of the whole fan-out (projection + relaxation).
    pub fanout_wall: Duration,
    /// Wall-clock of the whole run.
    pub total_wall: Duration,
}

impl EngineReport {
    /// Metrics of one stage, if it ran.
    pub fn stage(&self, stage: Stage) -> Option<&StageMetrics> {
        self.stages.iter().find(|s| s.stage == stage)
    }
}

/// What one gate's fan-out unit produces.
struct GateRun {
    name: String,
    baseline: BTreeSet<Constraint>,
    outcome: ExpandOutcome,
    metrics: GateMetrics,
    /// Cache traffic of the projection phase alone — `(sg hits, sg
    /// misses, states_explored, conf hits, conf misses)` — so the stage
    /// metrics can attribute the conformance pre-check to
    /// [`Stage::Project`], not [`Stage::Relax`].
    project_traffic: (usize, usize, usize, usize, usize),
}

/// The staged, cacheable, parallelizable derivation pipeline.
///
/// An engine owns its [`SgCache`]; running several circuits (or the same
/// circuit repeatedly) through one engine shares the cache across all of
/// them.
///
/// # Example
///
/// ```
/// use si_core::{Engine, EngineConfig};
/// use si_boolean::{parse_eqn, GateLibrary};
/// use si_stg::parse_astg;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stg = parse_astg("\
/// .model celem
/// .inputs a b
/// .outputs c
/// .graph
/// a+ c+
/// b+ c+
/// c+ a- b-
/// a- c-
/// b- c-
/// c- a+ b+
/// .marking { <c-,a+> <c-,b+> }
/// .end
/// ")?;
/// let library = GateLibrary::from_netlist(&parse_eqn("c = a*b + a*c + b*c;")?);
/// let engine = Engine::new(EngineConfig::parallel(2));
/// let out = engine.run(&stg, &library)?;
/// assert!(out.report.constraints.is_empty());
/// assert_eq!(out.report.state_count, 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    cache: SgCache,
    projections: ProjCache,
    conformance: ConformanceCache,
    decompositions: Mutex<Vec<DecomposeEntry>>,
}

/// One memoized decompose-stage result: the MG components and the global
/// state count are pure functions of the specification (under the
/// engine's fixed budgets), so a warm engine re-running the same [`Stg`]
/// — batch drivers, repeated suite passes — skips the decomposition sweep
/// and the global reachability walk. A linear scan suffices: the corpus
/// is a dozen specifications and the derived `PartialEq` rejects
/// non-matches on the name field first.
type DecomposeEntry = (Stg, Arc<(Vec<MgStg>, usize)>);

/// Distinct specifications memoized per engine; beyond this the stage is
/// recomputed (never evicted mid-scan) so a pathological caller cannot
/// grow the memo without bound.
const DECOMPOSE_MEMO_CAP: usize = 64;

impl Default for Engine {
    /// An engine under [`EngineConfig::default`] — with a live cache, as
    /// that configuration promises.
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl Engine {
    /// An engine under `config`.
    pub fn new(config: EngineConfig) -> Self {
        let cache = if config.cache {
            SgCache::new()
        } else {
            SgCache::disabled()
        };
        let cache = cache.with_sigma_cold(config.sigma_cold);
        let projections = if config.memo_projection {
            ProjCache::new()
        } else {
            ProjCache::disabled()
        };
        // The verdict cache is a reuse layer like the graph caches, so it
        // obeys both switches: `cache` (memoize at all) and
        // `incremental_classify` (reuse conformance work at all).
        let conformance = if config.cache && config.incremental_classify {
            ConformanceCache::new()
        } else {
            ConformanceCache::disabled()
        };
        Self {
            config,
            cache,
            projections,
            conformance,
            decompositions: Mutex::new(Vec::new()),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Current projection-memo counters.
    pub fn projection_stats(&self) -> CacheStats {
        self.projections.stats()
    }

    /// Current conformance-cache counters.
    pub fn conformance_stats(&self) -> CacheStats {
        self.conformance.stats()
    }

    /// Drops every memoized state graph (both tiers), projection and
    /// classification verdict.
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.projections.clear();
        self.conformance.clear();
        self.decompositions
            .lock()
            .expect("decompose memo poisoned")
            .clear();
    }

    /// The decompose stage, memoized by specification value when the
    /// cache is enabled. Only successes are stored; errors are recomputed
    /// (and re-reported) every run.
    fn decompose(&self, stg: &Stg) -> Result<Arc<(Vec<MgStg>, usize)>, CoreError> {
        let cfg = &self.config;
        if cfg.cache {
            let entries = self.decompositions.lock().expect("decompose memo poisoned");
            if let Some((_, cached)) = entries.iter().find(|(spec, _)| spec == stg) {
                return Ok(Arc::clone(cached));
            }
        }
        let components = stg.mg_components(cfg.allocation_cap)?;
        let state_count = StateGraph::of_stg(stg, cfg.global_sg_budget)?.state_count();
        let result = Arc::new((components, state_count));
        if cfg.cache {
            let mut entries = self.decompositions.lock().expect("decompose memo poisoned");
            if entries.len() < DECOMPOSE_MEMO_CAP && !entries.iter().any(|(spec, _)| spec == stg) {
                entries.push((stg.clone(), Arc::clone(&result)));
            }
        }
        Ok(result)
    }

    /// Runs the pipeline from source text: parse and validate stages, then
    /// [`Engine::run`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Parse`] / [`CoreError::NotWellFormed`] from the two
    /// extra stages, plus everything [`Engine::run`] reports.
    pub fn run_source(&self, stg_text: &str, eqn_text: &str) -> Result<EngineReport, CoreError> {
        let started = Instant::now();
        let t = Instant::now();
        let parsed = si_stg::parse_astg_lenient(stg_text);
        let lenient_wall = t.elapsed();
        self.run_parsed(parsed, lenient_wall, eqn_text, started)
    }

    /// Runs the pipeline from an already-produced [`si_stg::ParseEvent`]
    /// stream — the entry point for the streaming front-end, where a
    /// server feeds `.g` chunks through an
    /// [`si_stg::EventParser`] (or replays an interchange dump via
    /// [`si_stg::sexp::read_events`]) instead of handing over one string.
    /// The events are folded into the same lenient parse
    /// [`Engine::run_source`] builds, so the output — lint findings,
    /// stage list, constraints — is identical.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Engine::run_source`].
    pub fn run_events(
        &self,
        events: &[si_stg::ParseEvent],
        eqn_text: &str,
    ) -> Result<EngineReport, CoreError> {
        let started = Instant::now();
        let t = Instant::now();
        let parsed = si_stg::tree_of_events(events);
        let lenient_wall = t.elapsed();
        self.run_parsed(parsed, lenient_wall, eqn_text, started)
    }

    /// Shared tail of [`Engine::run_source`]/[`Engine::run_events`]: one
    /// lenient parse feeds both the lint pre-flight and the strict gate,
    /// so the two entry points cannot drift apart.
    fn run_parsed(
        &self,
        parsed: si_stg::LenientParse,
        lenient_wall: std::time::Duration,
        eqn_text: &str,
        started: Instant,
    ) -> Result<EngineReport, CoreError> {
        // Stage: lint — the static pre-flight over the recovered parse.
        // It sees *every* defect in one pass (the lenient parser
        // recovers), where the strict gate below stops at the first.
        let t = Instant::now();
        let lint = if self.config.lint == LintPolicy::Off {
            si_lint::LintReport::default()
        } else {
            let opts = si_lint::LintOptions {
                state_budget: Some(self.config.global_sg_budget),
            };
            si_lint::lint_parsed(&parsed, &opts)
        };
        let lint_metrics = StageMetrics::timed(Stage::Lint, t.elapsed());
        if self.config.lint == LintPolicy::Deny && lint.has_errors() {
            let first = lint
                .diagnostics
                .iter()
                .find(|d| d.severity == si_lint::Severity::Error)
                .expect("has_errors");
            return Err(CoreError::Lint {
                name: lint.model.clone(),
                errors: lint.error_count(),
                detail: format!("{}[{}]: {}", first.severity, first.code, first.message),
            });
        }

        // Strict gate: the first fatal defect fails the run, exactly as
        // `parse_astg` always has.
        let t = Instant::now();
        if let Some(e) = parsed.first_fatal() {
            return Err(CoreError::Parse {
                what: "STG",
                detail: e.to_string(),
            });
        }
        let stg = parsed.stg;
        let netlist = parse_eqn(eqn_text).map_err(|e| CoreError::Parse {
            what: "EQN netlist",
            detail: e.to_string(),
        })?;
        let library = GateLibrary::from_netlist(&netlist);
        let parse_metrics = StageMetrics::timed(Stage::Parse, lenient_wall + t.elapsed());

        let t = Instant::now();
        let health = stg.validate(self.config.global_sg_budget)?;
        if !health.is_well_formed() {
            return Err(CoreError::NotWellFormed {
                name: stg.name.clone(),
                detail: format!(
                    "live: {}, safe: {}, free-choice: {}, consistent: {}",
                    health.live, health.safe, health.free_choice, health.consistent
                ),
            });
        }
        let validate_metrics = StageMetrics::timed(Stage::Validate, t.elapsed());

        let mut out = self.run(&stg, &library)?;
        out.lint = lint;
        out.stages
            .splice(0..0, [lint_metrics, parse_metrics, validate_metrics]);
        out.total_wall = started.elapsed();
        Ok(out)
    }

    /// Runs the pipeline on a parsed circuit: decompose → project → relax
    /// → merge.
    ///
    /// # Errors
    ///
    /// Exactly the errors of
    /// [`derive_timing_constraints`](crate::derive_timing_constraints):
    /// [`CoreError::MissingGate`], [`CoreError::NotConformant`],
    /// decomposition and state-graph failures.
    pub fn run(&self, stg: &Stg, library: &GateLibrary) -> Result<EngineReport, CoreError> {
        let started = Instant::now();
        let cfg = &self.config;

        // Stage: decompose. MG components plus the whole-STG state graph
        // (the Table 7.2 state-count column).
        let t = Instant::now();
        let oracle = AdversaryOracle::new(stg);
        let decomposed = self.decompose(stg)?;
        let (components, state_count) = (&decomposed.0, decomposed.1);
        let mut decompose_metrics = StageMetrics::timed(Stage::Decompose, t.elapsed());
        decompose_metrics.states_explored = state_count;

        // One fan-out unit per gate signal; binding happens inside the
        // unit so that, as in the sequential driver, the error of the
        // lowest-indexed failing gate wins regardless of failure kind
        // (missing gate vs non-conformance vs budget).
        let gate_jobs: Vec<(SignalId, String)> = stg
            .gate_signals()
            .into_iter()
            .map(|a| (a, stg.signal_name(a).to_string()))
            .collect();

        // Stages: project + relax, fanned out per gate.
        let fanout_started = Instant::now();
        let jobs = cfg.effective_jobs(gate_jobs.len());
        let runs = self.run_gates(stg, library, &gate_jobs, components, &oracle, jobs)?;
        let fanout_wall = fanout_started.elapsed();

        // Stage: merge, in gate order — bit-identical to the sequential
        // driver's accumulation.
        let t = Instant::now();
        let mut baseline: BTreeSet<Constraint> = BTreeSet::new();
        let mut constraints: BTreeSet<Constraint> = BTreeSet::new();
        let mut per_gate: Vec<GateReport> = Vec::new();
        let mut trace = Vec::new();
        let mut iterations = 0usize;
        let mut gates = Vec::new();
        let mut project_metrics = StageMetrics::timed(Stage::Project, Duration::ZERO);
        let mut relax_metrics = StageMetrics::timed(Stage::Relax, Duration::ZERO);
        for run in runs {
            baseline.extend(run.baseline.iter().cloned());
            constraints.extend(run.outcome.constraints.iter().cloned());
            iterations += run.outcome.iterations;
            trace.extend(run.outcome.trace.iter().cloned());
            per_gate.push(GateReport {
                gate: run.name,
                baseline: run.baseline,
                derived: run.outcome.constraints,
            });
            let (
                project_hits,
                project_misses,
                project_states,
                project_conf_hits,
                project_conf_misses,
            ) = run.project_traffic;
            project_metrics.wall += run.metrics.project_wall;
            project_metrics.sg_cache_hits += project_hits;
            project_metrics.sg_cache_misses += project_misses;
            project_metrics.states_explored += project_states;
            project_metrics.proj_memo_hits += run.metrics.proj_memo_hits;
            project_metrics.proj_memo_misses += run.metrics.proj_memo_misses;
            project_metrics.conf_cache_hits += project_conf_hits;
            project_metrics.conf_cache_misses += project_conf_misses;
            relax_metrics.wall += run.metrics.relax_wall;
            relax_metrics.states_explored += run.metrics.states_explored - project_states;
            relax_metrics.sg_cache_hits += run.metrics.sg_cache_hits - project_hits;
            relax_metrics.sg_cache_misses += run.metrics.sg_cache_misses - project_misses;
            relax_metrics.sg_delta_hits += run.metrics.sg_delta_hits;
            relax_metrics.sg_inc_derived += run.metrics.sg_inc_derived;
            relax_metrics.conf_cache_hits += run.metrics.conf_cache_hits - project_conf_hits;
            relax_metrics.conf_cache_misses += run.metrics.conf_cache_misses - project_conf_misses;
            relax_metrics.conf_inc_classified += run.metrics.conf_inc_classified;
            relax_metrics.sched_fingerprints += run.metrics.sched_fingerprints;
            relax_metrics.sched_cycle_bails += run.metrics.sched_cycle_bails;
            relax_metrics.sched_watchdog_bails += run.metrics.sched_watchdog_bails;
            gates.push(run.metrics);
        }
        let merge_metrics = StageMetrics::timed(Stage::Merge, t.elapsed());

        Ok(EngineReport {
            report: ConstraintReport {
                baseline,
                constraints,
                per_gate,
                trace,
                state_count,
                iterations,
            },
            stages: vec![
                decompose_metrics,
                project_metrics,
                relax_metrics,
                merge_metrics,
            ],
            lint: si_lint::LintReport::default(),
            gates,
            cache: self.cache.stats(),
            projections: self.projections.stats(),
            conformance: self.conformance.stats(),
            jobs,
            fanout_wall,
            total_wall: started.elapsed(),
        })
    }

    /// Executes the per-gate units, sequentially or on a scoped worker
    /// pool, returning the results in gate order. On failure the error of
    /// the *lowest-indexed* failing gate is reported, matching the
    /// sequential path.
    #[allow(clippy::too_many_arguments)]
    fn run_gates(
        &self,
        stg: &Stg,
        library: &GateLibrary,
        gate_jobs: &[(SignalId, String)],
        components: &[MgStg],
        oracle: &AdversaryOracle,
        jobs: usize,
    ) -> Result<Vec<GateRun>, CoreError> {
        if jobs <= 1 {
            return gate_jobs
                .iter()
                .map(|job| self.run_gate(stg, library, job, components, oracle))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<GateRun, CoreError>>> =
            (0..gate_jobs.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    s.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= gate_jobs.len() {
                                return mine;
                            }
                            mine.push((
                                i,
                                self.run_gate(stg, library, &gate_jobs[i], components, oracle),
                            ));
                        }
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("gate worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        let mut runs = Vec::with_capacity(slots.len());
        for slot in slots {
            runs.push(slot.expect("every gate index was claimed")?);
        }
        Ok(runs)
    }

    /// One fan-out unit: bind the gate, project its local STGs from every
    /// relevant MG component, record the baseline, pre-check conformance,
    /// then run the relaxation loop.
    fn run_gate(
        &self,
        stg: &Stg,
        library: &GateLibrary,
        (a, name): &(SignalId, String),
        components: &[MgStg],
        oracle: &AdversaryOracle,
    ) -> Result<GateRun, CoreError> {
        let cfg = &self.config;
        let mut out = ExpandOutcome::default();
        let mut baseline: BTreeSet<Constraint> = BTreeSet::new();
        let mut locals: Vec<(
            LocalStg,
            std::sync::Arc<StateGraph>,
            crate::check::ConformanceReport,
        )> = Vec::new();
        let mut proj_memo_hits = 0usize;
        let mut proj_memo_misses = 0usize;

        let project_started = Instant::now();
        let gate = library.gate(name).ok_or_else(|| CoreError::MissingGate {
            signal: name.clone(),
        })?;
        let ctx = std::sync::Arc::new(GateContext::bind(gate, stg)?);
        let ctx = &ctx;
        for component in components {
            // Components that do not exercise this gate's output are
            // skipped (free-choice branches without it).
            if !component
                .transitions()
                .iter()
                .any(|&t| component.label(t).signal == *a)
            {
                continue;
            }
            let (mg, proj_hit) = self
                .projections
                .project_on_gate(component, ctx.output, &ctx.fanin)?;
            if proj_hit {
                proj_memo_hits += 1;
            } else {
                proj_memo_misses += 1;
            }
            let local = LocalStg {
                mg,
                ctx: ctx.clone(),
                guaranteed: BTreeSet::new(),
            };
            let names = local.mg.signal_names();

            // Record the baseline: every type-4 arc before relaxation.
            for (src, dst) in local.input_to_input_arcs() {
                baseline.insert(Constraint {
                    gate: name.clone(),
                    before: ConstraintAtom::from_label(local.mg.label(src), &names),
                    after: ConstraintAtom::from_label(local.mg.label(dst), &names),
                });
            }

            // Precondition: the initial local STG must be conformant. The
            // pre-check shares the engine cache (and the global budget, as
            // the monolithic driver did).
            let (sg, hit) = self.cache.of_mg(&local.mg, cfg.global_sg_budget)?;
            if hit {
                out.sg_cache_hits += 1;
            } else {
                out.sg_cache_misses += 1;
                out.states_explored += sg.state_count();
            }
            let epre = prerequisite_sets(&local);
            let (case, report) = match self.conformance.lookup(&local, &epre, None) {
                Some(v) => {
                    out.conf_cache_hits += 1;
                    v
                }
                None => {
                    out.conf_cache_misses += 1;
                    let (case, report) = classify_states(&local, &sg, &epre, None)?;
                    self.conformance.store(&local, &epre, None, case, &report);
                    (case, report)
                }
            };
            if case != RelaxationCase::Case1 {
                return Err(CoreError::NotConformant { gate: name.clone() });
            }
            locals.push((local, sg, report));
        }
        let project_wall = project_started.elapsed();
        let project_traffic = (
            out.sg_cache_hits,
            out.sg_cache_misses,
            out.states_explored,
            out.conf_cache_hits,
            out.conf_cache_misses,
        );

        let relax_started = Instant::now();
        let ectx = ExpandCtx {
            oracle,
            order: cfg.order,
            iteration_budget: cfg.expand_budget,
            sg_budget: cfg.local_sg_budget,
            max_depth: cfg.max_depth,
            cache: &self.cache,
            conformance: &self.conformance,
            incremental: cfg.incremental,
            incremental_classify: cfg.incremental_classify,
            divergence_window: cfg.divergence_window,
            divergence_policy: cfg.divergence_policy,
        };
        for (local, sg, report) in locals {
            // The pre-check's graph and report are the first predecessor:
            // every trial after it regenerates — and reclassifies —
            // incrementally.
            expand_ctx(local, Some((sg, report)), &ectx, &mut out)?;
        }
        let relax_wall = relax_started.elapsed();

        let metrics = GateMetrics {
            gate: name.clone(),
            project_wall,
            relax_wall,
            iterations: out.iterations,
            states_explored: out.states_explored,
            sg_cache_hits: out.sg_cache_hits,
            sg_cache_misses: out.sg_cache_misses,
            sg_delta_hits: out.sg_delta_hits,
            sg_inc_derived: out.sg_inc_derived,
            proj_memo_hits,
            proj_memo_misses,
            conf_cache_hits: out.conf_cache_hits,
            conf_cache_misses: out.conf_cache_misses,
            conf_inc_classified: out.conf_inc_classified,
            sched_fingerprints: out.sched_fingerprints,
            sched_cycle_bails: out.sched_cycle_bails,
            sched_watchdog_bails: out.sched_watchdog_bails,
        };
        Ok(GateRun {
            name: name.clone(),
            baseline,
            outcome: out,
            metrics,
            project_traffic,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::derive_timing_constraints;
    use si_stg::parse_astg;

    const CELEM: &str = "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
";
    const CELEM_EQN: &str = "c = a*b + a*c + b*c;";

    fn celem() -> (Stg, GateLibrary) {
        let stg = parse_astg(CELEM).expect("valid");
        let lib = GateLibrary::from_netlist(&parse_eqn(CELEM_EQN).expect("valid"));
        (stg, lib)
    }

    #[test]
    fn engine_matches_monolithic_driver() {
        let (stg, lib) = celem();
        let reference = derive_timing_constraints(&stg, &lib).expect("derives");
        for config in [
            EngineConfig::reference(),
            EngineConfig::default(),
            EngineConfig::parallel(2),
        ] {
            let out = Engine::new(config).run(&stg, &lib).expect("derives");
            assert_eq!(out.report, reference, "{config:?}");
        }
    }

    #[test]
    fn run_source_goes_through_all_seven_stages() {
        let engine = Engine::new(EngineConfig::default());
        let out = engine.run_source(CELEM, CELEM_EQN).expect("derives");
        let stages: Vec<Stage> = out.stages.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::Lint,
                Stage::Parse,
                Stage::Validate,
                Stage::Decompose,
                Stage::Project,
                Stage::Relax,
                Stage::Merge,
            ]
        );
        assert_eq!(out.stage(Stage::Decompose).expect("ran").states_explored, 8);
        // CELEM is clean, so the default Warn policy reports nothing.
        assert!(out.lint.is_clean());
    }

    #[test]
    fn lint_policy_governs_the_pre_flight() {
        // An undeclared signal (`b`) plus an intact ring: lint error.
        let dirty = "\
.model dirty
.inputs a
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        // Deny fails fast with the lint verdict, before the strict parse.
        let deny = Engine::new(EngineConfig {
            lint: LintPolicy::Deny,
            ..EngineConfig::default()
        });
        match deny.run_source(dirty, "a = b;") {
            Err(CoreError::Lint {
                name,
                errors,
                detail,
            }) => {
                assert_eq!(name, "dirty");
                assert_eq!(errors, 1);
                assert!(detail.contains("SI004"), "{detail}");
            }
            other => panic!("expected CoreError::Lint, got {other:?}"),
        }
        // Warn lets the strict parser reject it exactly as before.
        let warn = Engine::new(EngineConfig::default());
        assert!(matches!(
            warn.run_source(dirty, "a = b;"),
            Err(CoreError::Parse { what: "STG", .. })
        ));
        // Off skips linting entirely on a clean input.
        let off = Engine::new(EngineConfig {
            lint: LintPolicy::Off,
            ..EngineConfig::default()
        });
        let out = off.run_source(CELEM, CELEM_EQN).expect("derives");
        assert!(out.lint.is_clean());
        assert_eq!(out.stages[0].stage, Stage::Lint);
    }

    #[test]
    fn lint_stage_never_changes_the_derived_constraints() {
        // The engine output on lint-clean inputs must be bit-identical
        // across all three policies.
        let reports: Vec<_> = [LintPolicy::Off, LintPolicy::Warn, LintPolicy::Deny]
            .into_iter()
            .map(|lint| {
                Engine::new(EngineConfig {
                    lint,
                    ..EngineConfig::default()
                })
                .run_source(CELEM, CELEM_EQN)
                .expect("derives")
                .report
            })
            .collect();
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[1], reports[2]);
    }

    #[test]
    fn run_events_matches_run_source() {
        // Feeding a pre-parsed event stream must land on the same report
        // and the same seven stages as parsing the text in-process.
        let engine = Engine::new(EngineConfig::default());
        let from_text = engine.run_source(CELEM, CELEM_EQN).expect("derives");
        let events = si_stg::parse_events(CELEM);
        let from_events = engine.run_events(&events, CELEM_EQN).expect("derives");
        assert_eq!(from_events.report, from_text.report);
        assert_eq!(from_events.lint.diagnostics, from_text.lint.diagnostics);
        let stages =
            |out: &EngineReport| -> Vec<Stage> { out.stages.iter().map(|s| s.stage).collect() };
        assert_eq!(stages(&from_events), stages(&from_text));
    }

    #[test]
    fn run_source_reports_parse_and_validation_errors() {
        let engine = Engine::new(EngineConfig::default());
        assert!(matches!(
            engine.run_source(".model broken\n.inputs a\n", "a = b;"),
            Err(CoreError::Parse { what: "STG", .. })
        ));
        assert!(matches!(
            engine.run_source(CELEM, "c = a*b +;"),
            Err(CoreError::Parse {
                what: "EQN netlist",
                ..
            })
        ));
        // An inconsistent STG parses but fails validation: `a` rises twice
        // in a row, so rising/falling transitions never alternate.
        let inconsistent = "\
.model bad
.inputs a
.outputs b
.graph
a+ a+/2
a+/2 b+
b+ a+
.marking { <b+,a+> }
.end
";
        assert!(matches!(
            engine.run_source(inconsistent, "b = a;"),
            Err(CoreError::NotWellFormed { .. })
        ));
    }

    #[test]
    fn shared_engine_reuses_the_cache_across_runs() {
        let (stg, lib) = celem();
        let engine = Engine::new(EngineConfig::default());
        let cold = engine.run(&stg, &lib).expect("derives");
        let warm = engine.run(&stg, &lib).expect("derives");
        assert_eq!(cold.report, warm.report);
        let warm_relax = warm.stage(Stage::Relax).expect("ran");
        assert_eq!(
            warm_relax.sg_cache_misses, 0,
            "second run must be fully cached: {warm_relax:?}"
        );
        assert!(warm.cache.hits > cold.cache.hits);
        // The warm pre-check answers its verdicts from the conformance
        // cache — no sweep at all.
        assert!(
            warm.conformance.hits > cold.conformance.hits,
            "warm run must hit the conformance cache: {:?}",
            warm.conformance
        );
        let warm_project = warm.stage(Stage::Project).expect("ran");
        assert_eq!(warm_project.conf_cache_misses, 0, "{warm_project:?}");
    }

    #[test]
    fn missing_gate_surfaces_from_the_engine() {
        let stg = parse_astg(CELEM).expect("valid");
        let lib = GateLibrary::default();
        assert!(matches!(
            Engine::new(EngineConfig::parallel(2)).run(&stg, &lib),
            Err(CoreError::MissingGate { .. })
        ));
    }

    #[test]
    fn lowest_indexed_gate_error_wins_regardless_of_failure_kind() {
        // Gate `b` (index 0) is non-conformant (`b = a'` inverts the
        // acknowledged polarity) while gate `c` (index 1) has no library
        // entry at all. The sequential driver reported gate 0's failure;
        // every engine configuration must do the same.
        let stg = parse_astg(
            "\
.model two
.inputs a
.outputs b c
.graph
a+ b+
b+ c+
c+ a-
a- b-
b- c-
c- a+
.marking { <c-,a+> }
.end
",
        )
        .expect("valid");
        let lib = GateLibrary::from_netlist(&parse_eqn("b = a';").expect("valid"));
        for config in [EngineConfig::reference(), EngineConfig::parallel(2)] {
            match Engine::new(config).run(&stg, &lib) {
                Err(CoreError::NotConformant { gate }) => assert_eq!(gate, "b", "{config:?}"),
                other => panic!("{config:?}: expected NotConformant for `b`, got {other:?}"),
            }
        }
    }
}

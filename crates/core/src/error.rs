use std::error::Error;
use std::fmt;

use si_stg::StgError;

use crate::sched::DivergenceWitness;

/// Errors reported by the constraint-derivation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An STG-level analysis failed.
    Stg(StgError),
    /// An input artefact failed to parse (engine parse stage).
    Parse {
        /// What was being parsed (`"STG"`, `"EQN netlist"`).
        what: &'static str,
        /// The underlying parser message.
        detail: String,
    },
    /// The specification failed the static lint pre-flight under
    /// [`LintPolicy::Deny`](crate::LintPolicy::Deny) (engine lint stage).
    Lint {
        /// The STG's model name.
        name: String,
        /// How many error-severity findings the linter reported.
        errors: usize,
        /// The first error's message (the full set is in the
        /// [`EngineReport::lint`](crate::EngineReport::lint) the CLI
        /// renders; errors cannot carry it, so they carry the headline).
        detail: String,
    },
    /// The STG parsed but is not well formed: not live, unsafe,
    /// non-free-choice or inconsistent (engine validate stage).
    NotWellFormed {
        /// The STG's model name.
        name: String,
        /// Which of the four checks failed.
        detail: String,
    },
    /// The netlist has no gate for a non-input signal of the STG.
    MissingGate {
        /// The signal without an implementation.
        signal: String,
    },
    /// A gate references a signal the STG does not declare.
    UnknownSignal {
        /// The gate whose support is wrong.
        gate: String,
        /// The missing signal.
        name: String,
    },
    /// A gate has a redundant literal; the relaxation operation is only
    /// sound without them (thesis Lemma 2).
    RedundantLiteral {
        /// The offending gate.
        gate: String,
    },
    /// The initial local STG already violates timing conformance: the
    /// circuit is not a correct SI implementation of the STG.
    NotConformant {
        /// The gate whose local STG is non-conformant.
        gate: String,
    },
    /// The per-gate relaxation loop exceeded its iteration budget.
    IterationBudgetExceeded {
        /// The gate being expanded.
        gate: String,
        /// The exhausted budget.
        budget: usize,
    },
    /// The trial scheduler classified the per-gate relaxation loop as
    /// non-converging under [`DivergencePolicy::Bail`](crate::DivergencePolicy::Bail):
    /// the gate would burn its whole iteration budget without reaching a
    /// fixpoint. Deterministic — the same circuit diverges with the same
    /// witness under every engine configuration.
    Diverged {
        /// The gate being expanded.
        gate: String,
        /// Which detector fired, when, and the trailing arc sequence.
        witness: DivergenceWitness,
    },
    /// A relaxation produced a state the four-case criterion cannot
    /// classify soundly (should not happen for live/safe/consistent
    /// inputs; reported rather than mis-handled).
    Unresolved {
        /// The gate being expanded.
        gate: String,
        /// Human-readable context.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Stg(e) => write!(f, "{e}"),
            CoreError::Parse { what, detail } => write!(f, "cannot parse {what}: {detail}"),
            CoreError::Lint {
                name,
                errors,
                detail,
            } => write!(
                f,
                "STG `{name}` failed the lint pre-flight with {errors} error(s); first: {detail}"
            ),
            CoreError::NotWellFormed { name, detail } => {
                write!(f, "STG `{name}` is not well formed ({detail})")
            }
            CoreError::MissingGate { signal } => {
                write!(f, "no gate implements non-input signal `{signal}`")
            }
            CoreError::UnknownSignal { gate, name } => {
                write!(f, "gate `{gate}` references undeclared signal `{name}`")
            }
            CoreError::RedundantLiteral { gate } => {
                write!(
                    f,
                    "gate `{gate}` has a redundant literal; remove it before relaxation"
                )
            }
            CoreError::NotConformant { gate } => write!(
                f,
                "gate `{gate}` is not timing-conformant to its local STG before relaxation"
            ),
            CoreError::IterationBudgetExceeded { gate, budget } => {
                write!(
                    f,
                    "relaxation of gate `{gate}` exceeded {budget} iterations"
                )
            }
            CoreError::Diverged { gate, witness } => {
                write!(f, "relaxation of gate `{gate}` diverged: {witness}")
            }
            CoreError::Unresolved { gate, detail } => {
                write!(f, "unresolved relaxation state at gate `{gate}`: {detail}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Stg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StgError> for CoreError {
    fn from(e: StgError) -> Self {
        CoreError::Stg(e)
    }
}

//! The per-gate relaxation loop — Algorithm 4 (`Expand`) of the thesis.
//!
//! While the local STG still contains unguaranteed type-4 arcs, pick the
//! tightest (shortest adversary path), relax it, classify the result:
//!
//! - case 1 — accept;
//! - case 2 — additionally relax `x ⇒ o`; if that restores conformance,
//!   accept, otherwise decompose the OR-causality and recurse;
//! - case 3 — decompose the OR-causality and recurse;
//! - case 4 — reject the relaxation, emit the relative timing constraint
//!   `gate: x* < y*` and mark the arc guaranteed.
//!
//! Decomposition dead-ends (no candidate clauses, empty solution groups or
//! non-conformant sub-STGs) fall back to the sound case-4 treatment: the
//! ordering is pinned by a constraint instead of being relaxed. This keeps
//! the derived constraint set sufficient in every code path.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use si_stg::{SgMap, StateGraph, TransitionLabel};

use crate::cache::{ConformanceCache, SgCache, SgSource};
use crate::check::{
    classify_states, classify_states_from, conformance, prerequisite_sets, ConformanceReport,
    RelaxationCase,
};
use crate::constraint::{Constraint, ConstraintAtom};
use crate::error::CoreError;
use crate::local::LocalStg;
use crate::orcausality::{
    build_sub_stgs_case2, build_sub_stgs_case3, find_candidate_clauses, find_candidate_transitions,
    initial_restrictions, or_causality_decomposition,
};
use crate::paths::AdversaryOracle;
use crate::relax::relax_arc;
use crate::sched::{DivergencePolicy, TrialScheduler, DEFAULT_DIVERGENCE_WINDOW};

/// Default state-graph generation budget for local STGs
/// ([`crate::EngineConfig::local_sg_budget`]).
pub(crate) const DEFAULT_LOCAL_SG_BUDGET: usize = 200_000;
/// Default maximum OR-causality recursion depth
/// ([`crate::EngineConfig::max_depth`]).
pub(crate) const DEFAULT_MAX_DEPTH: usize = 32;

/// Everything one relaxation run needs besides the local STG itself: the
/// oracle, the engine limits and the shared state-graph cache. One
/// instance is built per gate by the engine (or by the [`expand`] /
/// [`expand_with_order`] compatibility wrappers) and threaded through the
/// whole recursion.
pub(crate) struct ExpandCtx<'a> {
    /// Adversary-path oracle of the implementation STG.
    pub oracle: &'a AdversaryOracle,
    /// Arc-picking policy.
    pub order: RelaxationOrder,
    /// Relaxation-iteration budget for the gate.
    pub iteration_budget: usize,
    /// State budget per local state graph.
    pub sg_budget: usize,
    /// Maximum OR-causality recursion depth.
    pub max_depth: usize,
    /// Shared memoization cache for local state graphs.
    pub cache: &'a SgCache,
    /// Shared memoization cache for classification verdicts.
    pub conformance: &'a ConformanceCache,
    /// Whether each trial's state graph is derived incrementally from its
    /// predecessor's (the delta path) instead of regenerated from scratch.
    pub incremental: bool,
    /// Whether each trial's conformance sweep copies verdicts of states
    /// outside the affected cone from the predecessor's report
    /// ([`classify_states_from`]) instead of sweeping from scratch.
    pub incremental_classify: bool,
    /// Sliding-window length of the trial scheduler's contraction
    /// watchdog (0 disables the watchdog; the progress ledger still runs).
    pub divergence_window: usize,
    /// Whether the trial scheduler bails on detected divergence or lets
    /// the loop exhaust its iteration budget.
    pub divergence_policy: DivergencePolicy,
}

impl<'a> ExpandCtx<'a> {
    /// A context with the engine-default limits and private caches.
    pub fn with_defaults(
        oracle: &'a AdversaryOracle,
        order: RelaxationOrder,
        iteration_budget: usize,
        cache: &'a SgCache,
        conformance: &'a ConformanceCache,
    ) -> Self {
        Self {
            oracle,
            order,
            iteration_budget,
            sg_budget: DEFAULT_LOCAL_SG_BUDGET,
            max_depth: DEFAULT_MAX_DEPTH,
            cache,
            conformance,
            incremental: false,
            incremental_classify: false,
            divergence_window: DEFAULT_DIVERGENCE_WINDOW,
            // The compatibility wrappers (and through them the monolithic
            // `derive_timing_constraints`) keep the historical
            // exhaust-the-budget semantics: they are the differential
            // oracle the scheduler is measured against.
            divergence_policy: DivergencePolicy::Exhaust,
        }
    }

    /// Memoized local state-graph generation, recording cache traffic and
    /// exploration work into `out`.
    fn sg(
        &self,
        mg: &si_stg::MgStg,
        out: &mut ExpandOutcome,
    ) -> Result<Arc<StateGraph>, CoreError> {
        let (sg, hit) = self.cache.of_mg(mg, self.sg_budget)?;
        if hit {
            out.sg_cache_hits += 1;
        } else {
            out.sg_cache_misses += 1;
            out.states_explored += sg.state_count();
        }
        Ok(sg)
    }

    /// State graph of one relaxation trial: derived incrementally from the
    /// predecessor's graph when the engine enables it (and a predecessor
    /// is at hand), plain memoized generation otherwise. Output and errors
    /// are identical either way. The [`SgMap`] is `Some` exactly when the
    /// graph was freshly derived through the delta path — the
    /// correspondence incremental classification consumes.
    fn sg_step(
        &self,
        parent: &si_stg::MgStg,
        parent_sg: Option<&Arc<StateGraph>>,
        mg: &si_stg::MgStg,
        out: &mut ExpandOutcome,
    ) -> Result<(Arc<StateGraph>, Option<SgMap>), CoreError> {
        let Some(psg) = parent_sg.filter(|_| self.incremental) else {
            return Ok((self.sg(mg, out)?, None));
        };
        let (sg, source, map) = self.cache.of_mg_from(parent, psg, mg, self.sg_budget)?;
        match source {
            SgSource::Structural => out.sg_cache_hits += 1,
            SgSource::Delta => {
                out.sg_cache_hits += 1;
                out.sg_delta_hits += 1;
            }
            SgSource::Incremental => {
                out.sg_cache_misses += 1;
                out.sg_inc_derived += 1;
                out.states_explored += sg.state_count();
            }
            SgSource::Scratch => {
                out.sg_cache_misses += 1;
                out.states_explored += sg.state_count();
            }
        }
        Ok((sg, map))
    }

    /// Classification of one trial, answered in preference order: the
    /// conformance cache (a repeated trial — skip the sweep entirely),
    /// verdict-copying from the predecessor's report when the incremental
    /// path is on and a fresh delta derivation supplied the correspondence
    /// ([`classify_states_from`]), or the scratch sweep. Output and errors
    /// are identical in all three. Fresh verdicts are stored back; errors
    /// never are.
    fn classify(
        &self,
        trial: &LocalStg,
        sg: &StateGraph,
        epre: &BTreeMap<usize, BTreeSet<TransitionLabel>>,
        relaxed: Option<usize>,
        prev: Option<(&ConformanceReport, &SgMap)>,
        out: &mut ExpandOutcome,
    ) -> Result<(RelaxationCase, ConformanceReport), CoreError> {
        if let Some(v) = self.conformance.lookup(trial, epre, relaxed) {
            out.conf_cache_hits += 1;
            return Ok(v);
        }
        out.conf_cache_misses += 1;
        let (case, report) = match prev.filter(|_| self.incremental_classify) {
            Some((parent_report, map)) => {
                out.conf_inc_classified += 1;
                classify_states_from(trial, sg, epre, relaxed, parent_report, map)?
            }
            None => classify_states(trial, sg, epre, relaxed)?,
        };
        self.conformance.store(trial, epre, relaxed, case, &report);
        Ok((case, report))
    }
}

/// The policy picking which type-4 arc to relax next (thesis Sec. 5.5:
/// different orders can yield different constraint sets, Fig. 5.23).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelaxationOrder {
    /// Tightest arc first: shortest adversary path, the thesis's policy
    /// for the weakest constraint set.
    #[default]
    TightestFirst,
    /// Naive textual order of arc labels — the ablation baseline.
    Lexicographic,
    /// Contraction first: prefer the arc whose relaxation inserts the
    /// fewest new bypass arcs into the MG (the best proxy for "does not
    /// grow the state graph" that needs no trial), tightness as the
    /// tie-break. Pairs with the trial scheduler: picking low-growth arcs
    /// first keeps converging gates converging and exposes true
    /// non-contraction sooner.
    ContractionFirst,
}

/// One step of the relaxation trace (the thesis Fig. 7.3 narrative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// An arc was picked and relaxed, with the resulting case.
    Relaxed {
        /// The gate being expanded.
        gate: String,
        /// Rendered arc `x* => y*`.
        arc: String,
        /// The classification outcome (`1`–`4`, or `lagging`). A static
        /// tag: the hot loop pushes one of these per iteration and must
        /// not allocate for it.
        case: &'static str,
    },
    /// Case 2 accepted after additionally relaxing `x ⇒ o`.
    MadeConcurrentWithOutput {
        /// The gate being expanded.
        gate: String,
        /// The transition made concurrent with the output.
        transition: String,
    },
    /// An OR-causality decomposition produced sub-STGs.
    Decomposed {
        /// The gate being expanded.
        gate: String,
        /// Number of sub-STGs.
        parts: usize,
    },
    /// A case-4 constraint was emitted.
    ConstraintEmitted {
        /// The constraint, rendered.
        constraint: String,
    },
    /// A decomposition dead-end forced the conservative case-4 fallback.
    Fallback {
        /// The gate being expanded.
        gate: String,
        /// Why the fallback fired.
        reason: String,
    },
    /// The trial scheduler classified the relaxation loop as diverging
    /// and the gate bailed out.
    Diverged {
        /// The gate being expanded.
        gate: String,
        /// The rendered [`crate::DivergenceWitness`].
        witness: String,
    },
}

impl std::fmt::Display for TraceEvent {
    /// Stable one-line rendering, used by the golden conformance
    /// snapshots: changing it invalidates every checked-in golden file.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::Relaxed { gate, arc, case } => {
                write!(f, "relax [{gate}] {arc}: case {case}")
            }
            TraceEvent::MadeConcurrentWithOutput { gate, transition } => {
                write!(f, "concurrent-with-output [{gate}] {transition}")
            }
            TraceEvent::Decomposed { gate, parts } => {
                write!(f, "decompose [{gate}] into {parts} sub-STGs")
            }
            TraceEvent::ConstraintEmitted { constraint } => {
                write!(f, "constraint {constraint}")
            }
            TraceEvent::Fallback { gate, reason } => {
                write!(f, "fallback [{gate}] {reason}")
            }
            TraceEvent::Diverged { gate, witness } => {
                write!(f, "diverge [{gate}] {witness}")
            }
        }
    }
}

/// Accumulated result of expanding one or more local STGs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpandOutcome {
    /// The derived relative timing constraints (`Rt` of Algorithm 4).
    pub constraints: BTreeSet<Constraint>,
    /// Relaxation trace for reporting.
    pub trace: Vec<TraceEvent>,
    /// Total relaxation iterations across all (sub-)STGs.
    pub iterations: usize,
    /// States actually generated (cache misses only) by local state-graph
    /// construction.
    pub states_explored: usize,
    /// Local state graphs answered from the shared cache.
    pub sg_cache_hits: usize,
    /// Local state graphs generated from scratch.
    pub sg_cache_misses: usize,
    /// Cache hits answered by the delta tier specifically (a subset of
    /// [`ExpandOutcome::sg_cache_hits`]).
    pub sg_delta_hits: usize,
    /// Cache misses answered by the incremental derivation instead of a
    /// scratch exploration (a subset of
    /// [`ExpandOutcome::sg_cache_misses`]).
    pub sg_inc_derived: usize,
    /// Classification verdicts answered from the conformance cache.
    pub conf_cache_hits: usize,
    /// Classification verdicts computed fresh (a sweep ran).
    pub conf_cache_misses: usize,
    /// Fresh verdicts computed by verdict-copying incremental
    /// classification instead of a scratch sweep (a subset of
    /// [`ExpandOutcome::conf_cache_misses`]).
    pub conf_inc_classified: usize,
    /// Distinct local-STG fingerprints the trial scheduler's progress
    /// ledger recorded (0 under [`DivergencePolicy::Exhaust`]).
    pub sched_fingerprints: usize,
    /// Gates aborted by the ledger's cycle detector (repeated σ-key with
    /// an unchanged guaranteed set).
    pub sched_cycle_bails: usize,
    /// Gates aborted by the contraction watchdog (a full window without a
    /// new strict minimum of the relaxable-arc count).
    pub sched_watchdog_bails: usize,
}

fn atom(local: &LocalStg, label: TransitionLabel) -> ConstraintAtom {
    ConstraintAtom::from_label(label, &local.mg.signal_names())
}

fn gate_name(local: &LocalStg) -> String {
    local.mg.signal_name(local.ctx.output).to_string()
}

fn emit_constraint(local: &mut LocalStg, x: usize, y: usize, out: &mut ExpandOutcome) {
    let c = Constraint {
        gate: gate_name(local),
        before: atom(local, local.mg.label(x)),
        after: atom(local, local.mg.label(y)),
    };
    out.trace.push(TraceEvent::ConstraintEmitted {
        constraint: c.to_string(),
    });
    out.constraints.insert(c);
    local.mark_guaranteed(x, y);
}

/// Net bypass-arc count `relax_arc` would insert when relaxing `x ⇒ y`:
/// the preds(x) ⇒ y and x ⇒ succs(y) arcs not already present, minus the
/// removed arc itself. A cheap static proxy for how much the trial grows
/// the MG (and with it the local state graph) — computed without cloning
/// or relaxing anything.
fn relaxation_growth(mg: &si_stg::MgStg, x: usize, y: usize) -> i64 {
    let mut inserted = -1i64;
    for b in mg.preds(x) {
        if b != y && mg.arc(b, y).is_none() {
            inserted += 1;
        }
    }
    for d in mg.succs(y) {
        if d != x && mg.arc(x, d).is_none() {
            inserted += 1;
        }
    }
    inserted
}

/// Picks the next arc to relax under the chosen policy (Sec. 5.5) from
/// the caller-supplied relaxable set; weight ties break by label text for
/// determinism.
fn find_next_arc(
    local: &LocalStg,
    arcs: &[(usize, usize)],
    oracle: &AdversaryOracle,
    order: RelaxationOrder,
) -> Option<(usize, usize)> {
    // Equivalent to `min_by_key` over `(weight, label_string(a),
    // label_string(b))`, but renders label text only on weight ties and
    // into reused buffers — this runs once per relaxation iteration over
    // every relaxable arc, so per-arc `String`s dominate otherwise.
    let mut best: Option<((i64, (bool, u32)), (usize, usize))> = None;
    let (mut best_a, mut best_b) = (String::new(), String::new());
    let (mut cand_a, mut cand_b) = (String::new(), String::new());
    for &(a, b) in arcs {
        let weight = match order {
            RelaxationOrder::TightestFirst => {
                (0, oracle.weight_key(local.mg.label(a), local.mg.label(b)))
            }
            RelaxationOrder::Lexicographic => (0, (false, 0)),
            RelaxationOrder::ContractionFirst => (
                relaxation_growth(&local.mg, a, b),
                oracle.weight_key(local.mg.label(a), local.mg.label(b)),
            ),
        };
        let better = match best {
            None => true,
            Some((best_weight, _)) => {
                if weight != best_weight {
                    weight < best_weight
                } else {
                    cand_a.clear();
                    cand_b.clear();
                    local.mg.write_label(a, &mut cand_a);
                    local.mg.write_label(b, &mut cand_b);
                    (cand_a.as_str(), cand_b.as_str()) < (best_a.as_str(), best_b.as_str())
                }
            }
        };
        if better {
            best_a.clear();
            best_b.clear();
            local.mg.write_label(a, &mut best_a);
            local.mg.write_label(b, &mut best_b);
            best = Some((weight, (a, b)));
        }
    }
    best.map(|(_, arc)| arc)
}

/// Expands one local STG to a fixpoint, accumulating constraints into
/// `out` (Algorithm 4). Sub-STGs from OR-causality decompositions are
/// processed recursively.
///
/// # Errors
///
/// [`CoreError::IterationBudgetExceeded`] when `budget` relaxation steps
/// are exhausted, plus any STG-level error.
pub fn expand(
    local: LocalStg,
    oracle: &AdversaryOracle,
    budget: usize,
    out: &mut ExpandOutcome,
) -> Result<(), CoreError> {
    expand_with_order(local, oracle, budget, RelaxationOrder::TightestFirst, out)
}

/// [`expand`] with an explicit relaxation-order policy (for the Sec. 5.5
/// ablation).
///
/// # Errors
///
/// Same as [`expand`].
pub fn expand_with_order(
    local: LocalStg,
    oracle: &AdversaryOracle,
    budget: usize,
    order: RelaxationOrder,
    out: &mut ExpandOutcome,
) -> Result<(), CoreError> {
    let cache = SgCache::disabled();
    let conf = ConformanceCache::disabled();
    let ctx = ExpandCtx::with_defaults(oracle, order, budget, &cache, &conf);
    expand_ctx(local, None, &ctx, out)
}

/// Expands one local STG under an explicit engine context — the entry
/// point the staged [`crate::Engine`] uses, sharing one cache across all
/// gates. `prev` is the state graph of `local.mg` plus its conformance
/// report if the caller already computed them (the conformance pre-check
/// does); the incremental paths seed their first delta derivation and
/// verdict copy from them.
pub(crate) fn expand_ctx(
    mut local: LocalStg,
    prev: Option<(Arc<StateGraph>, ConformanceReport)>,
    ctx: &ExpandCtx<'_>,
    out: &mut ExpandOutcome,
) -> Result<(), CoreError> {
    expand_at(&mut local, ctx, out, 0, prev)
}

fn expand_at(
    local: &mut LocalStg,
    ctx: &ExpandCtx<'_>,
    out: &mut ExpandOutcome,
    depth: usize,
    prev: Option<(Arc<StateGraph>, ConformanceReport)>,
) -> Result<(), CoreError> {
    let gate = gate_name(local);
    // One scheduler per loop instance: every decomposition sub-STG and
    // every fallback resume (each constraint emitted is progress) starts
    // with a fresh ledger and watchdog window.
    let mut sched = TrialScheduler::new(ctx.divergence_policy, ctx.divergence_window);
    // The arc label is rendered into this buffer, reused across
    // iterations; the trace clones it once, exact-size.
    let mut arc_text = String::new();
    // The state graph of the current `local.mg` and its conformance
    // report, threaded through the loop so every trial regenerates — and
    // reclassifies — incrementally from its predecessor.
    let mut prev = prev;
    loop {
        out.iterations += 1;
        if out.iterations > ctx.iteration_budget {
            return Err(CoreError::IterationBudgetExceeded {
                gate,
                budget: ctx.iteration_budget,
            });
        }
        let arcs = local.relaxable_arcs();
        let Some((x, y)) = find_next_arc(local, &arcs, ctx.oracle, ctx.order) else {
            return Ok(());
        };
        arc_text.clear();
        local.mg.write_label(x, &mut arc_text);
        arc_text.push_str(" => ");
        local.mg.write_label(y, &mut arc_text);

        // The scheduler observes the *pre-trial* loop state; captured
        // here, consumed after classification so the trace still records
        // the iteration that tripped it. All inputs are cache- and
        // parallelism-independent, so a divergence verdict is identical
        // across the whole engine configuration matrix.
        let observed = (ctx.divergence_policy == DivergencePolicy::Bail)
            .then(|| (local.mg.sg_fingerprint(), local.guaranteed.len(), arcs.len()));

        // Epre is computed on the STG *before* this relaxation.
        let epre = prerequisite_sets(local);
        let mut trial = local.clone();
        relax_arc(&mut trial.mg, x, y)?;
        let (sg, map) = ctx.sg_step(&local.mg, prev.as_ref().map(|(s, _)| s), &trial.mg, out)?;
        let prev_verdicts = prev.as_ref().map(|(_, r)| r).zip(map.as_ref());
        let (case, report) = ctx.classify(&trial, &sg, &epre, Some(x), prev_verdicts, out)?;
        out.trace.push(TraceEvent::Relaxed {
            gate: gate.clone(),
            arc: arc_text.clone(),
            case: match case {
                RelaxationCase::Case1 => "1",
                RelaxationCase::Case2 => "2",
                RelaxationCase::Case3 => "3",
                RelaxationCase::Case4 => "4",
                RelaxationCase::LaggingOnly => "lagging",
            },
        });
        if let Some((fingerprint, guaranteed, relaxable)) = observed {
            if let Some(witness) = sched.observe(
                fingerprint,
                guaranteed,
                relaxable,
                &arc_text,
                sg.state_count(),
                out,
            ) {
                out.trace.push(TraceEvent::Diverged {
                    gate: gate.clone(),
                    witness: witness.to_string(),
                });
                return Err(CoreError::Diverged { gate, witness });
            }
        }

        match case {
            RelaxationCase::Case1 => {
                *local = trial;
                prev = Some((sg, report));
            }
            RelaxationCase::Case4 => {
                emit_constraint(local, x, y, out);
            }
            RelaxationCase::Case2 => {
                let t_out = report.premature[0].1;
                // Try the plain arc modification first: make x concurrent
                // with the output transition.
                if trial.mg.arc(x, t_out).is_some_and(|a| !a.restriction) {
                    let mut modified = trial.clone();
                    relax_arc(&mut modified.mg, x, t_out)?;
                    let (sg2, map2) = ctx.sg_step(&trial.mg, Some(&sg), &modified.mg, out)?;
                    let (case2, report2) = ctx.classify(
                        &modified,
                        &sg2,
                        &epre,
                        Some(x),
                        Some(&report).zip(map2.as_ref()),
                        out,
                    )?;
                    if case2 == RelaxationCase::Case1 {
                        out.trace.push(TraceEvent::MadeConcurrentWithOutput {
                            gate: gate.clone(),
                            transition: modified.mg.label_string(x),
                        });
                        *local = modified;
                        prev = Some((sg2, report2));
                        continue;
                    }
                    // OR-causality in case 2: decompose from the modified
                    // STG, with candidates judged on the SG before the
                    // modification (thesis Sec. 6.1.1).
                    match decompose(&trial, &sg, &modified, t_out, x, &epre)? {
                        Some(subs) => {
                            out.trace.push(TraceEvent::Decomposed {
                                gate: gate.clone(),
                                parts: subs.len(),
                            });
                            return recurse(subs, local, x, y, ctx, out, depth, prev);
                        }
                        None => {
                            out.trace.push(TraceEvent::Fallback {
                                gate: gate.clone(),
                                reason: "case-2 decomposition dead end".to_string(),
                            });
                            emit_constraint(local, x, y, out);
                        }
                    }
                } else {
                    // No x ⇒ o arc to relax: conservative fallback.
                    out.trace.push(TraceEvent::Fallback {
                        gate: gate.clone(),
                        reason: "case 2 without an x => o arc".to_string(),
                    });
                    emit_constraint(local, x, y, out);
                }
            }
            RelaxationCase::Case3 | RelaxationCase::LaggingOnly => {
                let t_out = match report.premature.first() {
                    Some(&(_, t)) => t,
                    None => match first_lagging_output(&trial, &sg, &report.lagging) {
                        Some(t) => t,
                        None => {
                            out.trace.push(TraceEvent::Fallback {
                                gate: gate.clone(),
                                reason: "lagging state without output transition".to_string(),
                            });
                            emit_constraint(local, x, y, out);
                            continue;
                        }
                    },
                };
                match decompose_case3(&trial, &sg, t_out, x, &epre)? {
                    Some(subs) => {
                        out.trace.push(TraceEvent::Decomposed {
                            gate: gate.clone(),
                            parts: subs.len(),
                        });
                        return recurse(subs, local, x, y, ctx, out, depth, prev);
                    }
                    None => {
                        out.trace.push(TraceEvent::Fallback {
                            gate: gate.clone(),
                            reason: "case-3 decomposition dead end".to_string(),
                        });
                        emit_constraint(local, x, y, out);
                    }
                }
            }
        }
    }
}

/// Recurses into sub-STGs; if any sub-STG is itself non-conformant the
/// whole decomposition is abandoned in favour of the case-4 constraint.
/// `prev` is the state graph of `local.mg` (with its conformance report),
/// handed back to the loop when a fallback resumes it.
#[allow(clippy::too_many_arguments)]
fn recurse(
    subs: Vec<LocalStg>,
    local: &mut LocalStg,
    x: usize,
    y: usize,
    ctx: &ExpandCtx<'_>,
    out: &mut ExpandOutcome,
    depth: usize,
    prev: Option<(Arc<StateGraph>, ConformanceReport)>,
) -> Result<(), CoreError> {
    if depth + 1 >= ctx.max_depth {
        out.trace.push(TraceEvent::Fallback {
            gate: gate_name(local),
            reason: "decomposition depth limit".to_string(),
        });
        emit_constraint(local, x, y, out);
        return expand_at(local, ctx, out, depth, prev);
    }
    // Verify conformance of each sub-STG before committing to them; keep
    // the graphs (and their reports) so each sub-expansion starts with its
    // predecessor known.
    let mut sub_sgs = Vec::with_capacity(subs.len());
    for sub in &subs {
        let sg = ctx.sg(&sub.mg, out)?;
        let rep = conformance(sub, &sg)?;
        if !rep.is_conformant() {
            out.trace.push(TraceEvent::Fallback {
                gate: gate_name(local),
                reason: "non-conformant sub-STG".to_string(),
            });
            emit_constraint(local, x, y, out);
            return expand_at(local, ctx, out, depth, prev);
        }
        sub_sgs.push((sg, rep));
    }
    for (mut sub, sub_prev) in subs.into_iter().zip(sub_sgs) {
        expand_at(&mut sub, ctx, out, depth + 1, Some(sub_prev))?;
    }
    Ok(())
}

fn first_lagging_output(local: &LocalStg, sg: &StateGraph, lagging: &[usize]) -> Option<usize> {
    let o = local.ctx.output;
    for &s in lagging {
        for &(t, _) in &sg.edges[s] {
            if sg.label(t).signal == o {
                return Some(t);
            }
        }
    }
    None
}

/// Case-2 OR-causality decomposition: candidates from `sg_before` (the SG
/// before the `x ⇒ o` modification), sub-STGs built on `base` (after it).
fn decompose(
    before: &LocalStg,
    sg_before: &StateGraph,
    base: &LocalStg,
    t_out: usize,
    x: usize,
    epre: &BTreeMap<usize, BTreeSet<TransitionLabel>>,
) -> Result<Option<Vec<LocalStg>>, CoreError> {
    let empty = BTreeSet::new();
    let e = epre.get(&t_out).unwrap_or(&empty);
    let clauses = find_candidate_clauses(before, sg_before, t_out, e);
    if clauses.len() < 2 {
        return Ok(None);
    }
    let direction = before.mg.label(t_out).polarity;
    let mut cands = BTreeMap::new();
    for c in clauses {
        let set = find_candidate_transitions(before, c, t_out, x, direction);
        cands.insert(c, set);
    }
    let all: BTreeSet<usize> = cands.values().flatten().copied().collect();
    let init = initial_restrictions(base, &all);
    let solution = or_causality_decomposition(&cands, &init);
    if solution.is_empty() {
        return Ok(None);
    }
    Ok(Some(build_sub_stgs_case2(base, t_out, &solution, &cands)))
}

/// Case-3 OR-causality decomposition: candidates and sub-STGs both on the
/// current (relaxed) STG.
fn decompose_case3(
    local: &LocalStg,
    sg: &StateGraph,
    t_out: usize,
    x: usize,
    epre: &BTreeMap<usize, BTreeSet<TransitionLabel>>,
) -> Result<Option<Vec<LocalStg>>, CoreError> {
    let empty = BTreeSet::new();
    let e = epre.get(&t_out).unwrap_or(&empty);
    let clauses = find_candidate_clauses(local, sg, t_out, e);
    if clauses.len() < 2 {
        return Ok(None);
    }
    let direction = local.mg.label(t_out).polarity;
    let mut cands = BTreeMap::new();
    for c in clauses {
        let set = find_candidate_transitions(local, c, t_out, x, direction);
        cands.insert(c, set);
    }
    let all: BTreeSet<usize> = cands.values().flatten().copied().collect();
    let init = initial_restrictions(local, &all);
    let solution = or_causality_decomposition(&cands, &init);
    if solution.is_empty() {
        return Ok(None);
    }
    Ok(Some(build_sub_stgs_case3(local, t_out, &solution, &cands)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::GateContext;
    use si_boolean::{parse_eqn, GateLibrary};
    use si_stg::{parse_astg, MgStg};

    fn build(stg_text: &str, eqn: &str, gate: &str) -> (LocalStg, AdversaryOracle) {
        let stg = parse_astg(stg_text).expect("valid STG");
        let lib = GateLibrary::from_netlist(&parse_eqn(eqn).expect("valid EQN"));
        let ctx = GateContext::bind(lib.gate(gate).expect("gate exists"), &stg).expect("binds");
        let mg = MgStg::from_stg_mg(&stg).expect("marked graph");
        let local = crate::local::LocalStg::project_from(&mg, &ctx).expect("projects");
        (local, AdversaryOracle::new(&stg))
    }

    #[test]
    fn and_gate_relaxes_rising_order_keeps_cycle_boundary() {
        // o = x·y with x- triggering the fall. The rising-side ordering
        // x+ ⇒ y+ can be relaxed (an AND gate waits for both inputs), but
        // the cross-cycle ordering y- ⇒ x+ is load-bearing: if the next
        // cycle's x+ overtakes the previous cycle's y-, the gate sees
        // x·y = 1 and pulses early. Exactly one constraint must survive.
        let text = "\
.model and2
.inputs x y
.outputs o
.graph
x+ y+
y+ o+
o+ x-
x- o-
o- y-
y- x+
.marking { <y-,x+> }
.end
";
        let (local, oracle) = build(text, "o = x*y;", "o");
        let mut out = ExpandOutcome::default();
        expand(local, &oracle, 1000, &mut out).expect("expands");
        let rendered: Vec<String> = out.constraints.iter().map(|c| c.to_string()).collect();
        assert_eq!(rendered, vec!["o: y- < x+"]);
    }

    #[test]
    fn hazardous_handover_keeps_one_constraint() {
        // o = y + z holding 1 across the z+ ⇒ y- handover: the ordering is
        // load-bearing, expansion must emit exactly that constraint.
        let text = "\
.model handover
.inputs y z
.outputs o
.graph
z+ y-
y- z-
z- o-
o- y+
y+ o+
o+ z+
.marking { <o+,z+> }
.end
";
        let (local, oracle) = build(text, "o = y + z;", "o");
        let mut out = ExpandOutcome::default();
        expand(local, &oracle, 1000, &mut out).expect("expands");
        let rendered: Vec<String> = out.constraints.iter().map(|c| c.to_string()).collect();
        assert_eq!(rendered, vec!["o: z+ < y-"]);
    }

    #[test]
    fn or_causality_case3_decomposes_without_constraints() {
        // o = x + y with o+ triggered by x+; y+ overtaking is legitimate
        // OR-causality: the decomposition resolves it with no constraint.
        let text = "\
.model case3
.inputs x y
.outputs o
.graph
x+ o+
x+ y+
o+ x-
y+ x-
x- y-
y- o-
o- x+
.marking { <o-,x+> }
.end
";
        let (local, oracle) = build(text, "o = x + y;", "o");
        let mut out = ExpandOutcome::default();
        expand(local, &oracle, 1000, &mut out).expect("expands");
        assert!(
            out.trace
                .iter()
                .any(|e| matches!(e, TraceEvent::Decomposed { .. })),
            "expected a decomposition, trace: {:?}",
            out.trace
        );
        // x+ ⇒ y+ itself must not survive as a constraint; the sub-STG
        // processing may pin other orderings, but the OR race is free.
        assert!(
            !out.constraints
                .iter()
                .any(|c| c.to_string() == "o: x+ < y+"),
            "got {:?}",
            out.constraints
        );
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let text = "\
.model and2
.inputs x y
.outputs o
.graph
x+ y+
y+ o+
o+ x-
x- o-
o- y-
y- x+
.marking { <y-,x+> }
.end
";
        let (local, oracle) = build(text, "o = x*y;", "o");
        let mut out = ExpandOutcome::default();
        let err = expand(local, &oracle, 1, &mut out);
        assert!(matches!(
            err,
            Err(CoreError::IterationBudgetExceeded { .. })
        ));
    }

    #[test]
    fn cached_expansion_matches_uncached_bit_for_bit() {
        let text = "\
.model and2
.inputs x y
.outputs o
.graph
x+ y+
y+ o+
o+ x-
x- o-
o- y-
y- x+
.marking { <y-,x+> }
.end
";
        let (local, oracle) = build(text, "o = x*y;", "o");
        let mut plain = ExpandOutcome::default();
        expand(local.clone(), &oracle, 1000, &mut plain).expect("expands");

        let cache = SgCache::new();
        let conf = ConformanceCache::disabled();
        let ctx =
            ExpandCtx::with_defaults(&oracle, RelaxationOrder::TightestFirst, 1000, &cache, &conf);
        let mut cached = ExpandOutcome::default();
        expand_ctx(local.clone(), None, &ctx, &mut cached).expect("expands");
        assert_eq!(plain.constraints, cached.constraints);
        assert_eq!(plain.trace, cached.trace);
        assert_eq!(plain.iterations, cached.iterations);

        // A second run over the same local STG is answered from the cache.
        let mut warm = ExpandOutcome::default();
        expand_ctx(local, None, &ctx, &mut warm).expect("expands");
        assert_eq!(plain.constraints, warm.constraints);
        assert!(warm.sg_cache_hits > 0, "warm run should hit: {warm:?}");
        assert_eq!(warm.sg_cache_misses, 0);
        assert_eq!(warm.states_explored, 0);
    }

    #[test]
    fn incremental_expansion_matches_plain_bit_for_bit() {
        let text = "\
.model and2
.inputs x y
.outputs o
.graph
x+ y+
y+ o+
o+ x-
x- o-
o- y-
y- x+
.marking { <y-,x+> }
.end
";
        let (local, oracle) = build(text, "o = x*y;", "o");
        let mut plain = ExpandOutcome::default();
        expand(local.clone(), &oracle, 1000, &mut plain).expect("expands");

        let cache = SgCache::new();
        let conf = ConformanceCache::disabled();
        let mut ctx =
            ExpandCtx::with_defaults(&oracle, RelaxationOrder::TightestFirst, 1000, &cache, &conf);
        ctx.incremental = true;
        let (prev, _) = cache.of_mg(&local.mg, ctx.sg_budget).expect("consistent");
        let rep = conformance(&local, &prev).expect("checks");
        let mut cold = ExpandOutcome::default();
        expand_ctx(
            local.clone(),
            Some((Arc::clone(&prev), rep.clone())),
            &ctx,
            &mut cold,
        )
        .expect("expands");
        assert_eq!(plain.constraints, cold.constraints);
        assert_eq!(plain.trace, cold.trace);
        assert_eq!(plain.iterations, cold.iterations);
        assert!(
            cold.sg_inc_derived > 0,
            "a cold incremental run must derive deltas: {cold:?}"
        );

        // A warm re-run of the same gate answers the edits from the delta
        // tier.
        let mut warm = ExpandOutcome::default();
        expand_ctx(local, Some((prev, rep)), &ctx, &mut warm).expect("expands");
        assert_eq!(plain.constraints, warm.constraints);
        assert_eq!(warm.sg_cache_misses, 0);
        assert!(
            warm.sg_delta_hits > 0,
            "a warm incremental run must hit the delta tier: {warm:?}"
        );
    }

    #[test]
    fn incremental_classification_matches_plain_bit_for_bit() {
        let text = "\
.model and2
.inputs x y
.outputs o
.graph
x+ y+
y+ o+
o+ x-
x- o-
o- y-
y- x+
.marking { <y-,x+> }
.end
";
        let (local, oracle) = build(text, "o = x*y;", "o");
        let mut plain = ExpandOutcome::default();
        expand(local.clone(), &oracle, 1000, &mut plain).expect("expands");

        let cache = SgCache::new();
        let conf = ConformanceCache::new();
        let mut ctx =
            ExpandCtx::with_defaults(&oracle, RelaxationOrder::TightestFirst, 1000, &cache, &conf);
        ctx.incremental = true;
        ctx.incremental_classify = true;
        let (prev, _) = cache.of_mg(&local.mg, ctx.sg_budget).expect("consistent");
        let rep = conformance(&local, &prev).expect("checks");
        let mut cold = ExpandOutcome::default();
        expand_ctx(
            local.clone(),
            Some((Arc::clone(&prev), rep.clone())),
            &ctx,
            &mut cold,
        )
        .expect("expands");
        assert_eq!(plain.constraints, cold.constraints);
        assert_eq!(plain.trace, cold.trace);
        assert_eq!(plain.iterations, cold.iterations);
        assert!(
            cold.conf_inc_classified > 0,
            "a cold run must reclassify through verdict copying: {cold:?}"
        );

        // A warm re-run answers every verdict from the conformance cache —
        // no sweep at all.
        let mut warm = ExpandOutcome::default();
        expand_ctx(local, Some((prev, rep)), &ctx, &mut warm).expect("expands");
        assert_eq!(plain.constraints, warm.constraints);
        assert_eq!(plain.trace, warm.trace);
        assert!(
            warm.conf_cache_hits > 0,
            "a warm run must hit the conformance cache: {warm:?}"
        );
        assert_eq!(warm.conf_cache_misses, 0);
        assert_eq!(warm.conf_inc_classified, 0);
    }

    #[test]
    fn c_element_needs_no_constraints() {
        let text = "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
";
        let (local, oracle) = build(text, "c = a*b + a*c + b*c;", "c");
        let mut out = ExpandOutcome::default();
        expand(local, &oracle, 1000, &mut out).expect("expands");
        assert!(out.constraints.is_empty());
    }
}

//! Relative-timing constraint generation for speed-independent circuits
//! under the relaxed (intra-operator fork) timing assumption — the primary
//! contribution of the thesis (Ch. 5–6).
//!
//! Given an implementation STG and the circuit's gate netlist, the engine:
//!
//! 1. decomposes the STG into marked-graph components and projects each onto
//!    every gate's operator signals, yielding *local STGs*;
//! 2. classifies local arcs; input-to-input arcs between distinct signals
//!    (type 4) are orderings that rely on the isochronic fork;
//! 3. relaxes those arcs one at a time, tightest (shortest adversary path)
//!    first, re-checking *timing conformance* of the local state graph
//!    against the gate's pull-up/pull-down covers after each step;
//! 4. maps each relaxation into one of the four thesis cases: accept
//!    (case 1), make the transition concurrent with the output (case 2),
//!    decompose OR-causality into sub-STGs (cases 2/3, Ch. 6), or emit a
//!    relative timing constraint and keep the arc (case 4);
//! 5. reports both the derived constraint set and the baseline
//!    adversary-path constraint set of Keller et al. (ASYNC'09), which is
//!    exactly the set of type-4 arcs before relaxation.
//!
//! The headline reproduction target: the derived set is ≈ 40 % smaller than
//! the baseline (thesis Table 7.2).
//!
//! Two entry points expose the computation:
//!
//! - [`derive_timing_constraints`] — the classic monolithic call
//!   (sequential, uncached; the differential reference);
//! - [`Engine`] — the staged pipeline (parse → validate → decompose →
//!   project → relax → merge) with an explicit [`EngineConfig`], three
//!   memoization tiers shared across gates and runs (state graphs in
//!   [`SgCache`], projections in [`ProjCache`], classification verdicts
//!   in [`ConformanceCache`]), incremental regeneration *and*
//!   classification under relaxation edits, a parallel per-gate fan-out,
//!   and per-stage/per-gate metrics in the extended [`EngineReport`].
//!   Output is bit-identical to the monolithic call for every
//!   configuration.
//!
//! # Example
//!
//! ```
//! use si_boolean::{parse_eqn, GateLibrary};
//! use si_core::derive_timing_constraints;
//! use si_stg::parse_astg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stg = parse_astg("\
//! .model celem
//! .inputs a b
//! .outputs c
//! .graph
//! a+ c+
//! b+ c+
//! c+ a- b-
//! a- c-
//! b- c-
//! c- a+ b+
//! .marking { <c-,a+> <c-,b+> }
//! .end
//! ")?;
//! let library = GateLibrary::from_netlist(&parse_eqn("c = a*b + a*c + b*c;")?);
//! let report = derive_timing_constraints(&stg, &library)?;
//! // A C-element acknowledges both inputs: no isochronic-fork orderings
//! // remain, so no constraints are needed in either set.
//! assert!(report.baseline.is_empty());
//! assert!(report.constraints.is_empty());
//! # Ok(())
//! # }
//! ```

mod cache;
mod check;
mod constraint;
mod engine;
mod error;
mod expand;
mod local;
mod orcausality;
mod padding;
mod paths;
mod relax;
mod report;
mod sched;

pub use cache::{CacheStats, ConformanceCache, ProjCache, SgCache, SgSource};
pub use check::{
    classify_state, classify_states, classify_states_from, conformance, conformance_from,
    is_pending, prerequisite_sets, ConformanceReport, RelaxationCase, StateClass,
};
pub use constraint::{Constraint, ConstraintAtom};
pub use engine::{
    Engine, EngineConfig, EngineReport, GateMetrics, LintPolicy, Stage, StageMetrics,
};
pub use error::CoreError;
pub use expand::{expand, expand_with_order, ExpandOutcome, RelaxationOrder, TraceEvent};
pub use local::{ArcType, GateContext, LocalStg};
pub use orcausality::{
    build_sub_stgs_case2, build_sub_stgs_case3, find_candidate_clauses, find_candidate_transitions,
    gen_group, initial_restrictions, insert_arc_with_token_rule, one_clause_take_over,
    or_causality_decomposition, two_clause_solver, Restriction,
};
pub use padding::{plan_padding, PaddingPlan, PaddingPosition};
pub use paths::{AdversaryOracle, AdversaryPath};
pub use relax::relax_arc;
pub use report::{
    derive_timing_constraints, derive_timing_constraints_with_order, ConstraintReport, GateReport,
};
pub use sched::{
    DivergenceKind, DivergencePolicy, DivergenceWitness, DEFAULT_DIVERGENCE_WINDOW,
};

//! The local STG of a gate: the projected marked graph together with the
//! gate's pull-up/pull-down functions (thesis Sec. 5.2–5.3).

use std::collections::BTreeSet;
use std::sync::Arc;

use si_boolean::Gate;
use si_stg::{MgStg, SignalId, Stg, TransitionLabel};

use crate::error::CoreError;

/// The four arc kinds of a local STG (thesis Sec. 5.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArcType {
    /// Type (1) `x* ⇒ a*`: an acknowledgement — always fulfilled.
    InputToOutput,
    /// Type (2) `a* ⇒ y*`: the environment answers the gate — always
    /// fulfilled.
    OutputToInput,
    /// Type (3) `x* ⇒ x*'`: ordering on one wire — never reversed by delay.
    SameSignal,
    /// Type (4) `x* ⇒ y*`, distinct input signals: relies on the isochronic
    /// fork; the relaxation targets exactly these.
    InputToInput,
}

/// A gate bound to the STG's signal table: covers plus the signal-id layout
/// needed to evaluate them on state-graph codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateContext {
    /// The gate (name-based covers).
    pub gate: Gate,
    /// Output signal id.
    pub output: SignalId,
    /// Fan-in signal ids (support minus the feedback literal).
    pub fanin: Vec<SignalId>,
    /// `var_map[i]` = signal id of cover variable `i`.
    pub var_map: Vec<SignalId>,
}

impl GateContext {
    /// Binds `gate` to `stg`'s signal table.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownSignal`] if the gate references an undeclared
    /// signal; [`CoreError::RedundantLiteral`] if the gate has a redundant
    /// literal (relaxation is unsound then, thesis Lemma 2).
    pub fn bind(gate: &Gate, stg: &Stg) -> Result<Self, CoreError> {
        let output = stg
            .signal_by_name(&gate.output)
            .ok_or_else(|| CoreError::UnknownSignal {
                gate: gate.output.clone(),
                name: gate.output.clone(),
            })?;
        let mut var_map = Vec::with_capacity(gate.vars.len());
        for v in &gate.vars {
            let id = stg
                .signal_by_name(v)
                .ok_or_else(|| CoreError::UnknownSignal {
                    gate: gate.output.clone(),
                    name: v.clone(),
                })?;
            var_map.push(id);
        }
        if gate.has_redundant_literal() {
            return Err(CoreError::RedundantLiteral {
                gate: gate.output.clone(),
            });
        }
        let fanin: Vec<SignalId> = var_map.iter().copied().filter(|&s| s != output).collect();
        Ok(Self {
            gate: gate.clone(),
            output,
            fanin,
            var_map,
        })
    }

    /// Packs a global state code into the gate's cover variable order.
    pub fn pack(&self, code: u64) -> u64 {
        let mut packed = 0u64;
        for (i, s) in self.var_map.iter().enumerate() {
            if code & (1u64 << s.0) != 0 {
                packed |= 1u64 << i;
            }
        }
        packed
    }

    /// Evaluates `f↑` on a global state code.
    pub fn eval_up(&self, code: u64) -> bool {
        self.gate.up.eval(self.pack(code))
    }

    /// Evaluates `f↓` on a global state code.
    pub fn eval_down(&self, code: u64) -> bool {
        self.gate.down.eval(self.pack(code))
    }

    /// The signals the local STG keeps: output plus fan-in.
    pub fn operator_signals(&self) -> BTreeSet<SignalId> {
        let mut set: BTreeSet<SignalId> = self.fanin.iter().copied().collect();
        set.insert(self.output);
        set
    }
}

/// A local STG under relaxation: the marked graph, the gate context, and
/// the arcs whose ordering has already been guaranteed by an emitted
/// constraint (keyed by label pairs so they survive sub-STG cloning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalStg {
    /// The marked-graph STG being rewritten.
    pub mg: MgStg,
    /// The gate this local environment belongs to. Immutable through the
    /// whole relaxation, and the loop clones the `LocalStg` once per trial
    /// — shared so those clones skip the gate covers.
    pub ctx: Arc<GateContext>,
    /// Arcs marked "guaranteed already" by a case-4 constraint.
    pub guaranteed: BTreeSet<(TransitionLabel, TransitionLabel)>,
}

impl LocalStg {
    /// Builds the local STG of `ctx`'s gate from one MG component by
    /// projection (Algorithm 1).
    ///
    /// # Errors
    ///
    /// Propagates projection errors.
    pub fn project_from(component: &MgStg, ctx: &GateContext) -> Result<Self, CoreError> {
        let fanin: Vec<SignalId> = ctx.fanin.clone();
        let mg = component.project_on_gate(ctx.output, &fanin)?;
        Ok(Self {
            mg,
            ctx: Arc::new(ctx.clone()),
            guaranteed: BTreeSet::new(),
        })
    }

    /// Classifies an arc of the local STG (thesis Sec. 5.3.1).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is dead.
    pub fn arc_type(&self, src: usize, dst: usize) -> ArcType {
        let a = self.mg.label(src);
        let b = self.mg.label(dst);
        if a.signal == b.signal {
            ArcType::SameSignal
        } else if b.signal == self.ctx.output {
            ArcType::InputToOutput
        } else if a.signal == self.ctx.output {
            ArcType::OutputToInput
        } else {
            ArcType::InputToInput
        }
    }

    /// Whether the arc's ordering is already fixed: restriction arcs and
    /// guaranteed (case-4) arcs are never relaxed again.
    pub fn is_fixed(&self, src: usize, dst: usize) -> bool {
        match self.mg.arc(src, dst) {
            Some(attr) if attr.restriction => true,
            Some(_) => self
                .guaranteed
                .contains(&(self.mg.label(src), self.mg.label(dst))),
            None => true,
        }
    }

    /// The type-4 arcs still relying on the isochronic fork: input-to-input
    /// arcs that are neither restriction arcs nor already guaranteed.
    pub fn relaxable_arcs(&self) -> Vec<(usize, usize)> {
        self.mg
            .arcs()
            .filter(|&((a, b), attr)| {
                !attr.restriction
                    && self.arc_type(a, b) == ArcType::InputToInput
                    && !self
                        .guaranteed
                        .contains(&(self.mg.label(a), self.mg.label(b)))
            })
            .map(|(k, _)| k)
            .collect()
    }

    /// All type-4 arcs regardless of status (the Keller-et-al. baseline
    /// constraint set is exactly these, taken before any relaxation).
    pub fn input_to_input_arcs(&self) -> Vec<(usize, usize)> {
        self.mg
            .arcs()
            .filter(|&((a, b), _)| self.arc_type(a, b) == ArcType::InputToInput)
            .map(|(k, _)| k)
            .collect()
    }

    /// Marks the ordering of `src ⇒ dst` as guaranteed by a constraint.
    pub fn mark_guaranteed(&mut self, src: usize, dst: usize) {
        self.guaranteed
            .insert((self.mg.label(src), self.mg.label(dst)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_boolean::{parse_eqn, GateLibrary};
    use si_stg::parse_astg;

    fn imec() -> (Stg, GateLibrary) {
        let stg = parse_astg(si_stg::IMEC_RAM_READ_SBUF_G).expect("valid");
        let netlist = parse_eqn(
            "i0 = precharged + wenin';
ack = i0' + map0';
i2 = csc0' * map0';
wsen = wsldin' * i2';
i4 = wenin + req;
prnot = i4* precharged + i4 * prnot + precharged * prnot;
wen = req * prnotin;
wsld = wenin' * csc0';
i8 = req' * prnotin;
csc0 = i8' *wsldin + i8' * csc0;
map0 = wsldin' * csc0;
",
        )
        .expect("valid");
        (stg, GateLibrary::from_netlist(&netlist))
    }

    #[test]
    fn binds_gate_to_signal_table() {
        let (stg, lib) = imec();
        let gate = lib.gate("prnot").expect("exists");
        let ctx = GateContext::bind(gate, &stg).expect("valid");
        assert_eq!(stg.signal_name(ctx.output), "prnot");
        assert_eq!(ctx.fanin.len(), 2); // i4, precharged (feedback excluded)
    }

    #[test]
    fn eval_on_global_codes() {
        let (stg, lib) = imec();
        let gate = lib.gate("wen").expect("exists"); // wen = req * prnotin
        let ctx = GateContext::bind(gate, &stg).expect("valid");
        let req = stg.signal_by_name("req").expect("declared");
        let prnotin = stg.signal_by_name("prnotin").expect("declared");
        let code = (1u64 << req.0) | (1u64 << prnotin.0);
        assert!(ctx.eval_up(code));
        assert!(!ctx.eval_up(1u64 << req.0));
        assert!(ctx.eval_down(0));
    }

    #[test]
    fn unknown_signal_is_rejected() {
        let (stg, _) = imec();
        let netlist = parse_eqn("zz = nonexistent;").expect("valid");
        let lib = GateLibrary::from_netlist(&netlist);
        assert!(matches!(
            GateContext::bind(&lib.gates[0], &stg),
            Err(CoreError::UnknownSignal { .. })
        ));
    }

    #[test]
    fn redundant_literal_is_rejected() {
        let (stg, _) = imec();
        let netlist = parse_eqn("wen = req*prnotin + req;").expect("valid");
        let lib = GateLibrary::from_netlist(&netlist);
        assert!(matches!(
            GateContext::bind(&lib.gates[0], &stg),
            Err(CoreError::RedundantLiteral { .. })
        ));
    }

    #[test]
    fn arc_classification_on_projected_gate() {
        let (stg, lib) = imec();
        let gate = lib.gate("i0").expect("exists"); // i0 = precharged + wenin'
        let ctx = GateContext::bind(gate, &stg).expect("valid");
        let mg = MgStg::from_stg_mg(&stg).expect("no choice places");
        let local = LocalStg::project_from(&mg, &ctx).expect("projects");
        assert!(local.mg.is_live());
        assert!(local.mg.is_safe());
        // The thesis "before" list for i0 has two type-4 arcs:
        // precharged+ < wenin+ and wenin- < precharged+.
        let t4 = local.input_to_input_arcs();
        let rendered: BTreeSet<String> = t4
            .iter()
            .map(|&(a, b)| {
                format!(
                    "{} < {}",
                    local.mg.label_string(a),
                    local.mg.label_string(b)
                )
            })
            .collect();
        assert!(
            rendered.contains("precharged+ < wenin+"),
            "got {rendered:?}"
        );
        assert!(
            rendered.contains("wenin- < precharged+"),
            "got {rendered:?}"
        );
        assert_eq!(t4.len(), 2, "got {rendered:?}");
    }

    #[test]
    fn guaranteed_arcs_leave_relaxable_set() {
        let (stg, lib) = imec();
        let gate = lib.gate("i0").expect("exists");
        let ctx = GateContext::bind(gate, &stg).expect("valid");
        let mg = MgStg::from_stg_mg(&stg).expect("no choice places");
        let mut local = LocalStg::project_from(&mg, &ctx).expect("projects");
        let arcs = local.relaxable_arcs();
        assert_eq!(arcs.len(), 2);
        local.mark_guaranteed(arcs[0].0, arcs[0].1);
        assert_eq!(local.relaxable_arcs().len(), 1);
        assert!(local.is_fixed(arcs[0].0, arcs[0].1));
    }
}

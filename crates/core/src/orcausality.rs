//! OR-causality analysis and decomposition (thesis Ch. 6).
//!
//! When a relaxation lets more than one clause of a gate's pull-up/down
//! cover race to trigger the output, no safe marked graph can express the
//! race. The local STG is decomposed into sub-STGs, one per way the race
//! can be won: in each sub-STG, order-restriction (`#`) arcs force one
//! candidate clause to evaluate true first, and arcs from that clause's
//! candidate transitions to the output transition record the new
//! prerequisites. The union of the sub-STGs' reachable states covers every
//! state of the racing STG (thesis Sec. 6.2).

use std::collections::{BTreeMap, BTreeSet};

use si_boolean::Cube;
use si_stg::{Polarity, StateGraph, TransitionLabel};

use crate::error::CoreError;
use crate::local::LocalStg;
use crate::relax::relax_arc;

/// A pairwise order restriction `t ≺ t'` between two transition ids.
pub type Restriction = (usize, usize);

/// Whether `cube` has the literal matching transition label `l` (positive
/// literal for a rising transition, negative for falling).
fn clause_matches(local: &LocalStg, cube: &Cube, l: TransitionLabel) -> bool {
    local
        .ctx
        .var_map
        .iter()
        .position(|&s| s == l.signal)
        .is_some_and(|var| cube.literal(var) == Some(l.polarity.target_value()))
}

/// Whether `cube` contains literals for every prerequisite transition.
fn clause_contains_epre(local: &LocalStg, cube: &Cube, epre: &BTreeSet<TransitionLabel>) -> bool {
    epre.iter().all(|&l| clause_matches(local, cube, l))
}

/// Candidate clauses for the OR-causality on output transition `t_out`
/// (thesis Sec. 6.1): clauses that can newly become true inside the
/// quiescent region preceding `t_out` (criterion 1, judged on `sg`), plus
/// the clause containing all prerequisite transitions (criterion 2).
pub fn find_candidate_clauses(
    local: &LocalStg,
    sg: &StateGraph,
    t_out: usize,
    epre: &BTreeSet<TransitionLabel>,
) -> Vec<usize> {
    let o = local.ctx.output;
    let pol = local.mg.label(t_out).polarity;
    let cover = match pol {
        Polarity::Plus => &local.ctx.gate.up,
        Polarity::Minus => &local.ctx.gate.down,
    };
    let quiescent_value = !pol.target_value();
    let in_qr = |s: usize| !sg.is_excited(s, o) && sg.value(s, o) == quiescent_value;
    let f = |s: usize| match pol {
        Polarity::Plus => local.ctx.eval_up(sg.code(s)),
        Polarity::Minus => local.ctx.eval_down(sg.code(s)),
    };

    let mut result = Vec::new();
    for (i, cube) in cover.cubes().iter().enumerate() {
        let mut is_candidate = clause_contains_epre(local, cube, epre);
        if !is_candidate {
            'scan: for s in 0..sg.state_count() {
                if !in_qr(s) || f(s) {
                    continue;
                }
                for &(_, s2) in &sg.edges[s] {
                    if in_qr(s2) && f(s2) && cube.eval(local.ctx.pack(sg.code(s2))) {
                        is_candidate = true;
                        break 'scan;
                    }
                }
            }
        }
        if is_candidate {
            result.push(i);
        }
    }
    result
}

/// Candidate transitions of one clause (thesis Sec. 6.1): transitions whose
/// literal appears in the clause and which are concurrent with `t_out`,
/// plus the relaxed transition `x` itself.
pub fn find_candidate_transitions(
    local: &LocalStg,
    clause: usize,
    t_out: usize,
    x: usize,
    direction: Polarity,
) -> BTreeSet<usize> {
    let cover = match direction {
        Polarity::Plus => &local.ctx.gate.up,
        Polarity::Minus => &local.ctx.gate.down,
    };
    let cube = &cover.cubes()[clause];
    let o = local.ctx.output;
    local
        .mg
        .transitions()
        .into_iter()
        .filter(|&t| {
            let l = local.mg.label(t);
            l.signal != o
                && clause_matches(local, cube, l)
                && (t == x || local.mg.concurrent(t, t_out))
        })
        .collect()
}

/// The initial ordering restrictions among candidate transitions: every
/// pair already ordered by the current STG.
pub fn initial_restrictions(
    local: &LocalStg,
    candidates: &BTreeSet<usize>,
) -> BTreeSet<Restriction> {
    let mut init = BTreeSet::new();
    for &a in candidates {
        for &b in candidates {
            if a != b && local.mg.precedes(a, b) {
                init.insert((a, b));
            }
        }
    }
    init
}

/// Reachability in the initial-restriction digraph ("transitively
/// precedes" of Algorithm 6).
fn precedes_in(init: &BTreeSet<Restriction>, a: usize, b: usize) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![a];
    while let Some(n) = stack.pop() {
        for &(p, q) in init {
            if p == n && seen.insert(q) {
                if q == b {
                    return true;
                }
                stack.push(q);
            }
        }
    }
    false
}

/// Algorithm 6: restriction sets making clause `a` evaluate true before
/// clause `b`. Each returned set contains pairwise orderings `t ≺ t'`.
pub fn two_clause_solver(
    a: &BTreeSet<usize>,
    b: &BTreeSet<usize>,
    init: &BTreeSet<Restriction>,
) -> Vec<BTreeSet<Restriction>> {
    // A' drops the common transitions; A'' additionally drops transitions
    // already ordered before some transition of B.
    let a_prime: Vec<usize> = a.iter().copied().filter(|t| !b.contains(t)).collect();
    let a1: Vec<usize> = a_prime
        .iter()
        .copied()
        .filter(|&t| !b.iter().any(|&t2| precedes_in(init, t, t2)))
        .collect();
    if a1.is_empty() {
        // Every A transition is shared or already ordered before B: clause
        // A wins with no extra restrictions.
        return vec![BTreeSet::new()];
    }
    // Drop from B: transitions that transitively precede a transition that
    // clause A still needs (A', the thesis prunes against the pre-ordering
    // set — such a B transition can never close a valid sequence).
    let b1: Vec<usize> = b
        .iter()
        .copied()
        .filter(|&t2| !a_prime.iter().any(|&t| precedes_in(init, t2, t)))
        .collect();
    b1.iter()
        .map(|&t2| a1.iter().map(|&t| (t, t2)).collect())
        .collect()
}

/// Algorithm 7: all combinations of one restriction set per group, skipping
/// groups already satisfied by the accumulated build.
pub fn gen_group(groups: &[Vec<BTreeSet<Restriction>>]) -> Vec<BTreeSet<Restriction>> {
    fn rec(
        groups: &[Vec<BTreeSet<Restriction>>],
        n: usize,
        build: BTreeSet<Restriction>,
        out: &mut BTreeSet<BTreeSet<Restriction>>,
    ) {
        if n == groups.len() {
            out.insert(build);
            return;
        }
        let g = &groups[n];
        if g.iter().any(|rs| rs.is_subset(&build)) {
            rec(groups, n + 1, build, out);
            return;
        }
        for rs in g {
            let mut b2 = build.clone();
            b2.extend(rs.iter().copied());
            rec(groups, n + 1, b2, out);
        }
    }
    let mut out = BTreeSet::new();
    rec(groups, 0, BTreeSet::new(), &mut out);
    out.into_iter().collect()
}

/// Algorithm 8: restriction sets letting the clause with candidate set `a`
/// evaluate true before every other candidate clause.
pub fn one_clause_take_over(
    a: &BTreeSet<usize>,
    all: &BTreeMap<usize, BTreeSet<usize>>,
    a_key: usize,
    init: &BTreeSet<Restriction>,
) -> Vec<BTreeSet<Restriction>> {
    let groups: Vec<Vec<BTreeSet<Restriction>>> = all
        .iter()
        .filter(|&(&k, _)| k != a_key)
        .map(|(_, b)| two_clause_solver(a, b, init))
        .collect();
    gen_group(&groups)
}

/// Algorithm 9: the full solution group — for every candidate clause, the
/// restriction sets under which it wins the race.
pub fn or_causality_decomposition(
    cands: &BTreeMap<usize, BTreeSet<usize>>,
    init: &BTreeSet<Restriction>,
) -> Vec<(usize, BTreeSet<Restriction>)> {
    let mut solution = Vec::new();
    for (&clause, a) in cands {
        for rs in one_clause_take_over(a, cands, clause, init) {
            solution.push((clause, rs));
        }
    }
    solution
}

/// Inserts an arc with the liveness-preserving token rule: the new arc
/// carries a token iff it would otherwise close a token-free cycle.
pub fn insert_arc_with_token_rule(
    mg: &mut si_stg::MgStg,
    src: usize,
    dst: usize,
    restriction: bool,
) {
    let tokens = u32::from(mg.min_token_path(dst, src, false) == Some(0));
    mg.insert_arc(src, dst, tokens, restriction);
}

/// Builds the case-2 sub-STGs (thesis Sec. 6.2.2): for each solution entry,
/// add prerequisite arcs from the winning clause's candidates to `t_out`
/// and the `#` restriction arcs, then sweep redundancy.
pub fn build_sub_stgs_case2(
    base: &LocalStg,
    t_out: usize,
    solution: &[(usize, BTreeSet<Restriction>)],
    cands: &BTreeMap<usize, BTreeSet<usize>>,
) -> Vec<LocalStg> {
    solution
        .iter()
        .map(|(clause, restrictions)| {
            let mut sub = base.clone();
            for &t in &cands[clause] {
                insert_arc_with_token_rule(&mut sub.mg, t, t_out, false);
            }
            for &(p, q) in restrictions {
                insert_arc_with_token_rule(&mut sub.mg, p, q, true);
            }
            sub.mg.eliminate_redundant_arcs();
            sub
        })
        .collect()
}

/// Builds the case-3 sub-STGs: as case 2, but prerequisite arcs of `t_out`
/// whose literal does not belong to the winning clause are *relaxed*
/// (the winning clause takes over the triggering role, Sec. 6.2.2).
///
/// # Errors
///
/// Propagates relaxation errors.
pub fn build_sub_stgs_case3(
    base: &LocalStg,
    t_out: usize,
    solution: &[(usize, BTreeSet<Restriction>)],
    cands: &BTreeMap<usize, BTreeSet<usize>>,
) -> Result<Vec<LocalStg>, CoreError> {
    let o = local_output(base);
    let direction = base.mg.label(t_out).polarity;
    let cover = match direction {
        Polarity::Plus => base.ctx.gate.up.clone(),
        Polarity::Minus => base.ctx.gate.down.clone(),
    };
    let mut subs = Vec::new();
    for (clause, restrictions) in solution {
        let cube = cover.cubes()[*clause];
        let mut sub = base.clone();
        for &t in &cands[clause] {
            insert_arc_with_token_rule(&mut sub.mg, t, t_out, false);
        }
        // Relax prerequisites outside the winning clause.
        for z in sub.mg.preds(t_out) {
            let l = sub.mg.label(z);
            if l.signal == o || clause_matches(base, &cube, l) {
                continue;
            }
            if sub.mg.arc(z, t_out).is_some_and(|a| !a.restriction) {
                relax_arc(&mut sub.mg, z, t_out)?;
            }
        }
        for &(p, q) in restrictions {
            insert_arc_with_token_rule(&mut sub.mg, p, q, true);
        }
        sub.mg.eliminate_redundant_arcs();
        subs.push(sub);
    }
    Ok(subs)
}

fn local_output(local: &LocalStg) -> si_stg::SignalId {
    local.ctx.output
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[usize]) -> BTreeSet<usize> {
        items.iter().copied().collect()
    }

    fn pairs(items: &[(usize, usize)]) -> BTreeSet<Restriction> {
        items.iter().copied().collect()
    }

    #[test]
    fn solver_case_1_disjoint_unordered() {
        // Thesis case (1): A = {a,b,c}, B = {d,e,f}: one restriction set
        // per transition of B, each ordering all of A before it.
        let a = set(&[1, 2, 3]);
        let b = set(&[4, 5, 6]);
        let sol = two_clause_solver(&a, &b, &BTreeSet::new());
        assert_eq!(sol.len(), 3);
        assert!(sol.contains(&pairs(&[(1, 4), (2, 4), (3, 4)])));
        assert!(sol.contains(&pairs(&[(1, 5), (2, 5), (3, 5)])));
        assert!(sol.contains(&pairs(&[(1, 6), (2, 6), (3, 6)])));
    }

    #[test]
    fn solver_case_2_common_transitions() {
        // Thesis case (2): A = {a,b,c}, B = {a,d,e,f}; `a` is common and
        // needs no ordering.
        let a = set(&[1, 2, 3]);
        let b = set(&[1, 4, 5, 6]);
        let sol = two_clause_solver(&a, &b, &BTreeSet::new());
        assert_eq!(sol.len(), 4);
        assert!(sol.contains(&pairs(&[(2, 1), (3, 1)])));
        assert!(sol.contains(&pairs(&[(2, 4), (3, 4)])));
    }

    #[test]
    fn solver_case_3_initial_orderings() {
        // Thesis case (3): A = {a,b,c,g,h}, B = {a,d,e,f}, initial
        // orderings {c≺d, f≺c, e≺b, e≺g}. After pruning: A'' = {b,g,h},
        // B' = {a,d}; two restriction sets.
        let a = set(&[1, 2, 3, 7, 8]); // a,b,c,g,h
        let b = set(&[1, 4, 5, 6]); // a,d,e,f
        let init = pairs(&[(3, 4), (6, 3), (5, 2), (5, 7)]);
        let sol = two_clause_solver(&a, &b, &init);
        assert_eq!(sol.len(), 2);
        assert!(!sol.contains(&pairs(&[(2, 1), (3, 1), (7, 1), (8, 1)])));
        // A'' = {b,g,h} = {2,7,8}: c (3) is removed because c ≺ d ∈ B.
        assert!(sol.contains(&pairs(&[(2, 1), (7, 1), (8, 1)])));
        assert!(sol.contains(&pairs(&[(2, 4), (7, 4), (8, 4)])));
    }

    #[test]
    fn solver_empty_a_means_no_restrictions() {
        // All of A common with B: A wins trivially.
        let a = set(&[1, 2]);
        let b = set(&[1, 2, 3]);
        let sol = two_clause_solver(&a, &b, &BTreeSet::new());
        assert_eq!(sol, vec![BTreeSet::new()]);
    }

    #[test]
    fn solver_blocked_clause_has_no_solutions() {
        // Every transition of B precedes A: B always wins, A never can.
        let a = set(&[1]);
        let b = set(&[2]);
        let init = pairs(&[(2, 1)]);
        let sol = two_clause_solver(&a, &b, &init);
        assert!(sol.is_empty());
    }

    #[test]
    fn gen_group_cross_product_with_skip() {
        // Groups sharing a restriction set: picking it once satisfies both.
        let common = pairs(&[(1, 3), (2, 3)]);
        let g1 = vec![common.clone(), pairs(&[(1, 4), (2, 4)])];
        let g2 = vec![common.clone(), pairs(&[(1, 5), (2, 5)])];
        let groups = vec![g1, g2];
        let out = gen_group(&groups);
        // common alone satisfies both groups; the other combinations pair
        // the non-common sets (and mixed ones collapse by subset-skip).
        assert!(out.contains(&common));
        assert!(out
            .iter()
            .any(|s| s.contains(&(1, 4)) && s.contains(&(1, 5))));
    }

    #[test]
    fn thesis_fig_6_5_solution_group() {
        // Clauses x·y, z·k·y, m·n·y with candidates x = {x+}, zk = {z+,k+},
        // n = {n+} (y+, m+ not concurrent). Expected solution (Sec. 6.2):
        //   Sx  = {x+≺k+, x+≺n+}, {x+≺z+, x+≺n+}
        //   Szk = {z+≺x+, k+≺x+, z+≺n+, k+≺n+}
        //   Sn  = {n+≺x+, n+≺k+}, {n+≺x+, n+≺z+}
        // (total 5 sub-STGs, Fig. 6.5 (c)-(g))
        let (x, z, k, n) = (1usize, 2usize, 3usize, 4usize);
        let mut cands = BTreeMap::new();
        cands.insert(0usize, set(&[x]));
        cands.insert(1usize, set(&[z, k]));
        cands.insert(2usize, set(&[n]));
        let init = BTreeSet::new();
        let solution = or_causality_decomposition(&cands, &init);
        assert_eq!(solution.len(), 5);
        let for_clause = |c: usize| -> Vec<&BTreeSet<Restriction>> {
            solution
                .iter()
                .filter(|(k2, _)| *k2 == c)
                .map(|(_, s)| s)
                .collect()
        };
        let sx = for_clause(0);
        assert_eq!(sx.len(), 2);
        assert!(sx.contains(&&pairs(&[(x, k), (x, n)])));
        assert!(sx.contains(&&pairs(&[(x, z), (x, n)])));
        let szk = for_clause(1);
        assert_eq!(szk.len(), 1);
        assert_eq!(szk[0], &pairs(&[(z, x), (k, x), (z, n), (k, n)]));
        let sn = for_clause(2);
        assert_eq!(sn.len(), 2);
        assert!(sn.contains(&&pairs(&[(n, x), (n, k)])));
        assert!(sn.contains(&&pairs(&[(n, x), (n, z)])));
    }

    #[test]
    fn case2_sub_stgs_add_prerequisites_and_restrictions() {
        // Small OR gate instance (the case-3 STG shape doubles as a
        // convenient builder): after relaxing x+ => y+, build sub-STGs for
        // clauses {x} and {y} and check the inserted arcs.
        use crate::local::{GateContext, LocalStg};
        use si_boolean::{parse_eqn, GateLibrary};
        use si_stg::{parse_astg, MgStg};

        let text = "\
.model case3
.inputs x y
.outputs o
.graph
x+ o+
x+ y+
o+ x-
y+ x-
x- y-
y- o-
o- x+
.marking { <o-,x+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let lib = GateLibrary::from_netlist(&parse_eqn("o = x + y;").expect("valid"));
        let ctx = GateContext::bind(lib.gate("o").expect("present"), &stg).expect("binds");
        let component = MgStg::from_stg_mg(&stg).expect("mg");
        let mut local = LocalStg::project_from(&component, &ctx).expect("projects");
        let x = local.mg.transition_by_label("x+").expect("present");
        let y = local.mg.transition_by_label("y+").expect("present");
        crate::relax::relax_arc(&mut local.mg, x, y).expect("relaxes");
        let t_out = local.mg.transition_by_label("o+").expect("present");

        let mut cands: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        cands.insert(0, set(&[x]));
        cands.insert(1, set(&[y]));
        let init = initial_restrictions(&local, &set(&[x, y]));
        let solution = or_causality_decomposition(&cands, &init);
        assert_eq!(solution.len(), 2);

        let subs = build_sub_stgs_case2(&local, t_out, &solution, &cands);
        assert_eq!(subs.len(), 2);
        for (sub, (clause, _)) in subs.iter().zip(&solution) {
            // The winning clause's candidate precedes o+ (the inserted
            // prerequisite arc may be swept when the restriction chain
            // already implies it).
            let winner = if *clause == 0 { x } else { y };
            let loser = if *clause == 0 { y } else { x };
            assert!(sub.mg.precedes(winner, t_out), "clause {clause}");
            // The restriction arc pins winner before loser.
            assert!(
                sub.mg.arc(winner, loser).is_some_and(|a| a.restriction),
                "clause {clause}: missing restriction arc"
            );
            assert!(sub.mg.is_live(), "clause {clause}");
        }
    }

    #[test]
    fn token_rule_marks_cycle_closing_arcs() {
        use si_stg::{MgStg, SignalKind, TransitionLabel};
        let mut stg = si_stg::Stg::new("toks");
        let a = stg.add_signal("a", SignalKind::Input);
        let b = stg.add_signal("b", SignalKind::Input);
        let mut mg = MgStg::empty_like(&stg);
        let ap = mg.add_transition(TransitionLabel::first(a, si_stg::Polarity::Plus));
        let bp = mg.add_transition(TransitionLabel::first(b, si_stg::Polarity::Plus));
        mg.insert_arc(ap, bp, 0, false);
        // b+ => a+ would close a token-free cycle: the rule adds a token.
        insert_arc_with_token_rule(&mut mg, bp, ap, false);
        assert_eq!(mg.arc(bp, ap).expect("inserted").tokens, 1);
        // A parallel arc a+ => b+ does not close a zero cycle (the back
        // path now carries a token): no token.
        let mut mg2 = mg.clone();
        mg2.remove_arc(ap, bp);
        insert_arc_with_token_rule(&mut mg2, ap, bp, false);
        assert_eq!(mg2.arc(ap, bp).expect("inserted").tokens, 0);
    }

    #[test]
    fn precedes_in_is_transitive() {
        let init = pairs(&[(1, 2), (2, 3)]);
        assert!(precedes_in(&init, 1, 3));
        assert!(!precedes_in(&init, 3, 1));
    }
}

//! Delay padding to fulfil strong timing constraints (thesis Sec. 5.7).
//!
//! A constraint `gate: x* < y*` is a delay relation between the *direct
//! wire* (from gate `x` to the constrained gate) and the *adversary path*
//! realizing `y*`. Strong constraints (short adversary paths) are fulfilled
//! by padding delay into the adversary path. The thesis heuristic, greedy:
//!
//! 1. prefer padding the wire closest to the destination gate (position 1),
//!    provided that wire is not itself the fast side of another constraint;
//! 2. otherwise walk backwards along the path (position 3, …);
//! 3. in the worst case pad the last gate's output (position 2), which can
//!    always fulfil the constraint at a broader performance cost.

use std::collections::BTreeSet;

use si_stg::Stg;

use crate::constraint::Constraint;
use crate::paths::AdversaryOracle;

/// Where a delay element is inserted.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PaddingPosition {
    /// On the wire between two gates (delays one branch only).
    Wire {
        /// Driving signal.
        from: String,
        /// Receiving gate (output signal name).
        to: String,
    },
    /// On a gate output (delays every branch of its fork).
    GateOutput {
        /// The padded gate.
        gate: String,
    },
}

/// A padding plan: one position per strong constraint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PaddingPlan {
    /// `(constraint, chosen position)` pairs, in constraint order.
    pub entries: Vec<(Constraint, PaddingPosition)>,
}

impl PaddingPlan {
    /// The set of distinct padding positions (shared wires pad once).
    pub fn positions(&self) -> BTreeSet<PaddingPosition> {
        self.entries.iter().map(|(_, p)| p.clone()).collect()
    }
}

/// Plans padding for every constraint whose adversary path is at most
/// `max_level` deep (deeper paths and environment-crossing paths are
/// considered already fulfilled, Sec. 7.1).
pub fn plan_padding(
    stg: &Stg,
    oracle: &AdversaryOracle,
    constraints: &BTreeSet<Constraint>,
    max_level: u32,
) -> PaddingPlan {
    // Fast sides: the direct wires that must stay fast — wire from the
    // `before` signal to the constrained gate.
    let fast_sides: BTreeSet<(String, String)> = constraints
        .iter()
        .map(|c| (c.before.signal.clone(), c.gate.clone()))
        .collect();

    let mut entries = Vec::new();
    for c in constraints {
        let (Some(x), Some(y)) = (label_of(stg, c, true), label_of(stg, c, false)) else {
            continue;
        };
        let Some(path) = oracle.path(x, y) else {
            continue;
        };
        if path.level().is_none_or(|l| l > max_level) {
            continue; // slow or environment path: already fulfilled
        }
        // Candidate wires along the adversary path, destination-first: the
        // wire hop into the constrained gate, then backwards.
        let mut hops: Vec<String> = path
            .hops
            .iter()
            .map(|h| {
                h.trim_end_matches(|ch: char| {
                    ch == '+' || ch == '-' || ch.is_ascii_digit() || ch == '/'
                })
                .to_string()
            })
            .collect();
        hops.dedup();
        let mut receivers: Vec<String> = hops.clone();
        receivers.remove(0);
        receivers.push(c.gate.clone());
        // wire i: hops[i] -> receivers[i]; walk from the last wire back.
        let mut chosen: Option<PaddingPosition> = None;
        for i in (0..hops.len()).rev() {
            let wire = (hops[i].clone(), receivers[i].clone());
            if !fast_sides.contains(&wire) {
                chosen = Some(PaddingPosition::Wire {
                    from: wire.0,
                    to: wire.1,
                });
                break;
            }
        }
        let position = chosen.unwrap_or_else(|| PaddingPosition::GateOutput {
            gate: hops.last().cloned().unwrap_or_else(|| c.gate.clone()),
        });
        entries.push((c.clone(), position));
    }
    PaddingPlan { entries }
}

fn label_of(stg: &Stg, c: &Constraint, before: bool) -> Option<si_stg::TransitionLabel> {
    let a = if before { &c.before } else { &c.after };
    let sig = stg.signal_by_name(&a.signal)?;
    Some(si_stg::TransitionLabel::new(sig, a.polarity, a.occurrence))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintAtom;
    use si_stg::{parse_astg, Polarity};

    fn constraint(gate: &str, before: (&str, Polarity), after: (&str, Polarity)) -> Constraint {
        Constraint {
            gate: gate.to_string(),
            before: ConstraintAtom {
                signal: before.0.to_string(),
                polarity: before.1,
                occurrence: 1,
            },
            after: ConstraintAtom {
                signal: after.0.to_string(),
                polarity: after.1,
                occurrence: 1,
            },
        }
    }

    const CHAIN: &str = "\
.model chain
.inputs c
.outputs m a o
.graph
c+ m-
m- a+
a+ o+
c+ o+
o+ c-
c- m+
m+ a-
a- o-
c- o-
o- c+
.marking { <o-,c+> }
.end
";

    #[test]
    fn pads_the_wire_nearest_the_destination() {
        let stg = parse_astg(CHAIN).expect("valid");
        let oracle = AdversaryOracle::new(&stg);
        // Constraint at gate o: c+ must beat a+ (path c+ ⇒ m- ⇒ a+).
        let set: BTreeSet<Constraint> = [constraint(
            "o",
            ("c", Polarity::Plus),
            ("a", Polarity::Plus),
        )]
        .into();
        let plan = plan_padding(&stg, &oracle, &set, 11);
        assert_eq!(plan.entries.len(), 1);
        match &plan.entries[0].1 {
            PaddingPosition::Wire { from, to } => {
                assert_eq!(from, "a");
                assert_eq!(to, "o");
            }
            other => panic!("expected a wire position, got {other:?}"),
        }
    }

    #[test]
    fn avoids_fast_sides_of_other_constraints() {
        let stg = parse_astg(CHAIN).expect("valid");
        let oracle = AdversaryOracle::new(&stg);
        let set: BTreeSet<Constraint> = [
            constraint("o", ("c", Polarity::Plus), ("a", Polarity::Plus)),
            // A second constraint whose fast side is the wire a -> o.
            constraint("o", ("a", Polarity::Plus), ("m", Polarity::Minus)),
        ]
        .into();
        let plan = plan_padding(&stg, &oracle, &set, 11);
        let first = plan
            .entries
            .iter()
            .find(|(c, _)| c.after.signal == "a")
            .expect("planned");
        // Wire a -> o is a fast side; the planner must walk backwards.
        assert_ne!(
            first.1,
            PaddingPosition::Wire {
                from: "a".into(),
                to: "o".into()
            }
        );
    }

    #[test]
    fn slow_paths_are_skipped() {
        let stg = parse_astg(CHAIN).expect("valid");
        let oracle = AdversaryOracle::new(&stg);
        let set: BTreeSet<Constraint> = [constraint(
            "o",
            ("c", Polarity::Plus),
            ("a", Polarity::Plus),
        )]
        .into();
        let plan = plan_padding(&stg, &oracle, &set, 3); // path is level 5
        assert!(plan.entries.is_empty());
    }
}

//! Adversary paths in the implementation STG (thesis Sec. 4.3 and 5.5).
//!
//! A type-4 arc `x* ⇒ y*` of a local STG is realized by an *adversary
//! path*: a chain of gates that propagates the effect of `x*` into the
//! transition `y*` arriving at the same gate. Its *level* counts wires and
//! gates along the path (`2·gates + 1`); the thesis buckets constraints at
//! level 3 (one gate) and level ≤ 5 (two gates), and orders relaxation by
//! tightness — the shortest adversary path first. Paths that cross the
//! environment (pass through a primary-input transition) are considered
//! slow and safe (Sec. 7.1).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Mutex;

use si_stg::{Stg, TransitionLabel};

/// Description of the tightest adversary path realizing an ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversaryPath {
    /// Gate-driven transitions after `x*`, up to and including `y*`.
    pub gates: u32,
    /// Whether the path necessarily crosses the environment (some hop is a
    /// primary-input transition).
    pub through_env: bool,
    /// Transition labels along the tightest path, from `x*` to `y*`.
    pub hops: Vec<String>,
}

impl AdversaryPath {
    /// The thesis level `2·gates + 1`; `None` for environment-crossing
    /// paths (treated as unbounded).
    pub fn level(&self) -> Option<u32> {
        (!self.through_env).then_some(2 * self.gates + 1)
    }

    /// Sort key for tightest-first relaxation: gate-only paths before
    /// environment paths, shorter before longer.
    pub fn weight_key(&self) -> (bool, u32) {
        (self.through_env, self.gates)
    }
}

/// Oracle answering adversary-path queries against the implementation STG.
///
/// Queries are memoized: the STG never changes under the oracle, so each
/// `(x, y)` pair is searched once. The memo is thread-safe — the engine
/// shares one oracle across the parallel per-gate fan-out.
#[derive(Debug)]
pub struct AdversaryOracle {
    labels: Vec<TransitionLabel>,
    is_input: Vec<bool>,
    succs: Vec<Vec<usize>>,
    names: Vec<String>,
    memo: Mutex<HashMap<(TransitionLabel, TransitionLabel), Option<AdversaryPath>>>,
}

impl Clone for AdversaryOracle {
    /// Clones the structure; the memo starts empty (it refills on demand
    /// and never changes answers).
    fn clone(&self) -> Self {
        Self {
            labels: self.labels.clone(),
            is_input: self.is_input.clone(),
            succs: self.succs.clone(),
            names: self.names.clone(),
            memo: Mutex::new(HashMap::new()),
        }
    }
}

impl AdversaryOracle {
    /// Builds the oracle from the implementation STG.
    pub fn new(stg: &Stg) -> Self {
        let net = stg.net();
        let n = net.transition_count();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for t in net.transitions() {
            for &p in net.transition_post(t) {
                for &u in net.place_post(p) {
                    if !succs[t.0].contains(&u.0) {
                        succs[t.0].push(u.0);
                    }
                }
            }
        }
        let labels: Vec<TransitionLabel> = net.transitions().map(|t| stg.label(t)).collect();
        let is_input: Vec<bool> = labels
            .iter()
            .map(|l| !stg.signal_kind(l.signal).is_gate_driven())
            .collect();
        Self {
            labels,
            is_input,
            succs,
            names: stg.signal_names(),
            memo: Mutex::new(HashMap::new()),
        }
    }

    fn find_transitions(&self, label: TransitionLabel) -> Vec<usize> {
        let exact: Vec<usize> = (0..self.labels.len())
            .filter(|&i| self.labels[i] == label)
            .collect();
        if !exact.is_empty() {
            return exact;
        }
        // Occurrence indices may have diverged through decomposition; fall
        // back to any transition of the same edge.
        (0..self.labels.len())
            .filter(|&i| {
                self.labels[i].signal == label.signal && self.labels[i].polarity == label.polarity
            })
            .collect()
    }

    /// The tightest adversary path realizing `x* ⇒ y*`, if any causal path
    /// exists at all.
    pub fn path(&self, x: TransitionLabel, y: TransitionLabel) -> Option<AdversaryPath> {
        if let Some(hit) = self.memo.lock().expect("oracle memo poisoned").get(&(x, y)) {
            return hit.clone();
        }
        let found = self.search(x, y, false).or_else(|| self.search(x, y, true));
        self.memo
            .lock()
            .expect("oracle memo poisoned")
            .insert((x, y), found.clone());
        found
    }

    /// Sort key used by `find_tightest_arc` (Sec. 5.5): unknown paths sort
    /// last.
    pub fn weight_key(&self, x: TransitionLabel, y: TransitionLabel) -> (bool, u32) {
        self.path(x, y).map_or((true, u32::MAX), |p| p.weight_key())
    }

    /// The Table 7.2 level of a constraint, `None` when the path crosses
    /// the environment or does not exist.
    pub fn level(&self, x: TransitionLabel, y: TransitionLabel) -> Option<u32> {
        self.path(x, y).and_then(|p| p.level())
    }

    fn search(
        &self,
        x: TransitionLabel,
        y: TransitionLabel,
        allow_env: bool,
    ) -> Option<AdversaryPath> {
        let starts = self.find_transitions(x);
        let goals = self.find_transitions(y);
        if starts.is_empty() || goals.is_empty() {
            return None;
        }
        // BFS over transitions; hops after the start must be gate-driven
        // unless `allow_env`.
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut visited: Vec<bool> = vec![false; self.labels.len()];
        for &s in &starts {
            queue.push_back(s);
            visited[s] = true;
        }
        let mut found: Option<usize> = None;
        'bfs: while let Some(u) = queue.pop_front() {
            for &v in &self.succs[u] {
                if visited[v] || (!allow_env && self.is_input[v]) {
                    continue;
                }
                visited[v] = true;
                prev.insert(v, u);
                if goals.contains(&v) {
                    found = Some(v);
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
        let goal = found?;
        let mut hops_rev = vec![goal];
        let mut cur = goal;
        while let Some(&p) = prev.get(&cur) {
            hops_rev.push(p);
            cur = p;
        }
        hops_rev.reverse();
        let gates = hops_rev
            .iter()
            .skip(1)
            .filter(|&&t| !self.is_input[t])
            .count() as u32;
        let through_env = hops_rev.iter().skip(1).any(|&t| self.is_input[t]);
        let hops = hops_rev
            .iter()
            .map(|&t| self.labels[t].display(&self.names).to_string())
            .collect();
        Some(AdversaryPath {
            gates,
            through_env,
            hops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::{parse_astg, Polarity};

    fn label(stg: &Stg, name: &str, pol: Polarity) -> TransitionLabel {
        TransitionLabel::first(stg.signal_by_name(name).expect("declared"), pol)
    }

    #[test]
    fn direct_causation_is_level_three() {
        // c+ directly causes a+ through gate a: one gate, level 3.
        let text = "\
.model lv3
.inputs c
.outputs a o
.graph
c+ a+
a+ o+
c+ o+
o+ c-
c- a-
a- o-
c- o-
o- c+
.marking { <o-,c+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let oracle = AdversaryOracle::new(&stg);
        let path = oracle
            .path(
                label(&stg, "c", Polarity::Plus),
                label(&stg, "a", Polarity::Plus),
            )
            .expect("exists");
        assert_eq!(path.gates, 1);
        assert_eq!(path.level(), Some(3));
        assert!(!path.through_env);
    }

    #[test]
    fn multi_gate_path_levels() {
        // c+ ⇒ m- ⇒ n+ ⇒ a+: gate hops m-, n+, a+ → level 7 (three gates
        // and four wires), the Fig. 5.24 weighting.
        let text = "\
.model lv7
.inputs c
.outputs m n a
.graph
c+ m-
m- n+
n+ a+
a+ c-
c- m+
m+ n-
n- a-
a- c+
.marking { <a-,c+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let oracle = AdversaryOracle::new(&stg);
        let path = oracle
            .path(
                label(&stg, "c", Polarity::Plus),
                label(&stg, "a", Polarity::Plus),
            )
            .expect("exists");
        assert_eq!(path.gates, 3);
        assert_eq!(path.level(), Some(7));
        assert_eq!(path.hops, vec!["c+", "m-", "n+", "a+"]);
        // The shorter hop c+ ⇒ m- is level 3.
        let short = oracle
            .path(
                label(&stg, "c", Polarity::Plus),
                label(&stg, "m", Polarity::Minus),
            )
            .expect("exists");
        assert_eq!(short.level(), Some(3));
    }

    #[test]
    fn environment_paths_are_flagged() {
        // x+ causes i+ (a primary input) which causes y+: env path.
        let text = "\
.model env
.inputs i
.outputs x y
.graph
x+ i+
i+ y+
y+ x-
x- i-
i- y-
y- x+
.marking { <y-,x+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let oracle = AdversaryOracle::new(&stg);
        let xp = label(&stg, "x", Polarity::Plus);
        let yp = label(&stg, "y", Polarity::Plus);
        let path = oracle.path(xp, yp).expect("exists");
        assert!(path.through_env);
        assert_eq!(path.level(), None);
        // env paths sort after every gate-only weight.
        assert!(oracle.weight_key(xp, yp) > (false, u32::MAX - 1));
    }

    #[test]
    fn occurrence_fallback_finds_same_edge() {
        let text = "\
.model tiny
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let oracle = AdversaryOracle::new(&stg);
        let a = stg.signal_by_name("a").expect("declared");
        let ghost = TransitionLabel::new(a, Polarity::Plus, 7); // no such occurrence
        let bp = label(&stg, "b", Polarity::Plus);
        assert!(oracle.path(ghost, bp).is_some());
    }

    #[test]
    fn unconnected_pair_has_no_path() {
        // Two independent handshakes: no causal path between them.
        let text = "\
.model split
.inputs a c
.outputs b d
.graph
a+ b+
b+ a-
a- b-
b- a+
c+ d+
d+ c-
c- d-
d- c+
.marking { <b-,a+> <d-,c+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let oracle = AdversaryOracle::new(&stg);
        let ap = label(&stg, "a", Polarity::Plus);
        let dp = label(&stg, "d", Polarity::Plus);
        assert!(oracle.path(ap, dp).is_none());
        assert_eq!(oracle.weight_key(ap, dp), (true, u32::MAX));
    }
}

//! The arc relaxation operation — Algorithm 2 of the thesis (Sec. 5.3.2).
//!
//! Relaxing `x* ⇒ y*` makes the two ordered transitions concurrent while
//! keeping every other ordering: predecessors of `x*` gain arcs to `y*`,
//! successors of `y*` gain arcs from `x*`, tokens carry over, the original
//! arc disappears, and redundant implicit places are swept.

use si_stg::{MgStg, StgError};

/// Relaxes the arc `x ⇒ y` in place (Algorithm 2).
///
/// Token transfer follows the algorithm: a bypass arc is marked when either
/// of the arcs it replaces was marked; with token counts this is the sum
/// along the collapsed two-arc path. Self-loops produced when `x` and `y`
/// are also ordered the other way are dropped when marked (loop-only
/// places).
///
/// # Errors
///
/// [`StgError::MalformedMarkedGraph`] if the arc does not exist or a
/// token-free self-loop appears (the MG was not live).
pub fn relax_arc(g: &mut MgStg, x: usize, y: usize) -> Result<(), StgError> {
    let Some(xy) = g.arc(x, y) else {
        return Err(StgError::MalformedMarkedGraph {
            reason: format!(
                "arc {} ⇒ {} does not exist",
                g.label_string(x),
                g.label_string(y)
            ),
        });
    };
    if xy.restriction {
        return Err(StgError::MalformedMarkedGraph {
            reason: format!(
                "arc {} ⇒ {} is an order-restriction arc and must not be relaxed",
                g.label_string(x),
                g.label_string(y)
            ),
        });
    }

    // Lines 1–6: arcs b ⇒ y for every predecessor b of x.
    for b in g.preds(x) {
        let tokens = g.arc(b, x).expect("pred arc").tokens + xy.tokens;
        if b == y {
            if tokens == 0 {
                return Err(StgError::MalformedMarkedGraph {
                    reason: format!(
                        "relaxing {} ⇒ {} exposes a token-free self-loop",
                        g.label_string(x),
                        g.label_string(y)
                    ),
                });
            }
            continue; // marked loop-only place: redundant
        }
        g.insert_arc(b, y, tokens, false);
    }
    // Lines 7–12: arcs x ⇒ d for every successor d of y.
    for d in g.succs(y) {
        let tokens = g.arc(y, d).expect("succ arc").tokens + xy.tokens;
        if d == x {
            if tokens == 0 {
                return Err(StgError::MalformedMarkedGraph {
                    reason: format!(
                        "relaxing {} ⇒ {} exposes a token-free self-loop",
                        g.label_string(x),
                        g.label_string(y)
                    ),
                });
            }
            continue;
        }
        g.insert_arc(x, d, tokens, false);
    }
    // Line 16: delete the relaxed arc; line 17: sweep redundancy.
    g.remove_arc(x, y);
    g.eliminate_redundant_arcs();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::{parse_astg, StateGraph};

    fn parse_mg(text: &str) -> MgStg {
        let stg = parse_astg(text).expect("valid");
        MgStg::from_stg_mg(&stg).expect("marked graph")
    }

    /// Thesis Fig. 5.13: relaxing b+ ⇒ a- in a small cycle creates the
    /// redundant arc o+ ⇒ a- which the sweep removes.
    const FIG_5_13: &str = "\
.model fig513
.inputs a b
.outputs o
.graph
a+ o+
b+ o+
o+ a-
b+ b-
b- o-
a- o-
o- a+ b+
b+ a-
.marking { <o-,a+> <o-,b+> }
.end
";

    #[test]
    fn fig_5_13_relaxation_sweeps_redundant_arcs() {
        let mut g = parse_mg(FIG_5_13);
        let bp = g.transition_by_label("b+").expect("present");
        let am = g.transition_by_label("a-").expect("present");
        let op = g.transition_by_label("o+").expect("present");
        assert!(g.arc(bp, am).is_some());
        relax_arc(&mut g, bp, am).expect("relaxes");
        assert!(g.arc(bp, am).is_none(), "relaxed arc removed");
        // The bypass o- ⇒ a- (pred of b+ is o-) would be redundant via
        // o- ⇒ a+ ⇒ ... and the bypass b+ ⇒ o- via b+ ⇒ b- ⇒ o-; the arc
        // o+ ⇒ a- must survive (it orders the acknowledgement).
        assert!(g.arc(op, am).is_some());
        assert!(g.is_live());
        assert!(g.is_safe());
    }

    #[test]
    fn relaxation_makes_transitions_concurrent() {
        // Chain x+ → y+ → o+ → x- → y- → o- → x+: relaxing x+ ⇒ y+ leaves
        // no other ordering path between them.
        let text = "\
.model chain
.inputs x y
.outputs o
.graph
x+ y+
y+ o+
o+ x-
x- y-
y- o-
o- x+
.marking { <o-,x+> }
.end
";
        let mut g = parse_mg(text);
        let xp = g.transition_by_label("x+").expect("present");
        let yp = g.transition_by_label("y+").expect("present");
        assert!(g.precedes(xp, yp));
        relax_arc(&mut g, xp, yp).expect("relaxes");
        assert!(
            g.concurrent(xp, yp),
            "x+ and y+ concurrent after relaxation"
        );
        // The bypasses keep every other ordering: o- ⇒ y+ and x+ ⇒ o+.
        let om = g.transition_by_label("o-").expect("present");
        let op = g.transition_by_label("o+").expect("present");
        assert!(g.arc(om, yp).is_some());
        assert!(g.arc(xp, op).is_some());
        assert!(g.is_live());
        assert!(g.is_safe());
    }

    #[test]
    fn acknowledged_orderings_survive_relaxation() {
        // In Fig. 5.13 the ordering b+ before a- is also enforced through
        // the acknowledgement path b+ → o+ → a-, so after relaxing the
        // direct arc the transitions are still ordered (not concurrent).
        let mut g = parse_mg(FIG_5_13);
        let bp = g.transition_by_label("b+").expect("present");
        let am = g.transition_by_label("a-").expect("present");
        assert!(g.precedes(bp, am));
        relax_arc(&mut g, bp, am).expect("relaxes");
        assert!(g.precedes(bp, am), "ordering kept through o+");
        assert!(g.arc(bp, am).is_none());
    }

    #[test]
    fn relaxation_preserves_liveness_and_consistency() {
        // Thesis Lemma 1.
        let mut g = parse_mg(FIG_5_13);
        let bp = g.transition_by_label("b+").expect("present");
        let am = g.transition_by_label("a-").expect("present");
        relax_arc(&mut g, bp, am).expect("relaxes");
        assert!(g.is_live());
        // Consistency: the SG still builds without alternation violations.
        StateGraph::of_mg(&g, 10_000).expect("consistent");
    }

    #[test]
    fn relaxation_expands_the_state_space() {
        let mut g = parse_mg(FIG_5_13);
        let before = StateGraph::of_mg(&g, 10_000)
            .expect("consistent")
            .state_count();
        let bp = g.transition_by_label("b+").expect("present");
        let am = g.transition_by_label("a-").expect("present");
        relax_arc(&mut g, bp, am).expect("relaxes");
        let after = StateGraph::of_mg(&g, 10_000)
            .expect("consistent")
            .state_count();
        assert!(after >= before, "{after} < {before}");
    }

    #[test]
    fn missing_arc_is_an_error() {
        let mut g = parse_mg(FIG_5_13);
        let am = g.transition_by_label("a-").expect("present");
        let bp = g.transition_by_label("b+").expect("present");
        assert!(relax_arc(&mut g, am, bp).is_err()); // reversed: no such arc
    }

    #[test]
    fn restriction_arc_cannot_be_relaxed() {
        let mut g = parse_mg(FIG_5_13);
        let bp = g.transition_by_label("b+").expect("present");
        let am = g.transition_by_label("a-").expect("present");
        g.remove_arc(bp, am);
        g.insert_arc(bp, am, 0, true);
        assert!(relax_arc(&mut g, bp, am).is_err());
    }

    #[test]
    fn thesis_fig_5_7_relaxation_token_transfer() {
        // q- ⇒ p+ relaxed: the bypass arc q- ⇒ a+ inherits the marking of
        // <q-, p+>'s path; general-case token bookkeeping.
        let text = "\
.model fig57
.inputs p q a
.outputs o
.graph
p+ a+
a+ o+
o+ a-
a- o-
o- p-
p- q+
q+ q-
q- p+
p+ p-
.marking { <q-,p+> }
.end
";
        let mut g = parse_mg(text);
        let qm = g.transition_by_label("q-").expect("present");
        let pp = g.transition_by_label("p+").expect("present");
        let qp = g.transition_by_label("q+").expect("present");
        relax_arc(&mut g, qm, pp).expect("relaxes");
        // The bypass q+ ⇒ p+ inherits the token of <q-, p+>.
        assert_eq!(g.arc(qp, pp).expect("bypass").tokens, 1);
        assert!(g.arc(qm, pp).is_none());
        assert!(g.is_live());
    }
}

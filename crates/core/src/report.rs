//! The top-level derivation — Algorithm 5 (`Deriving_timing_constraints`).
//!
//! Decomposes the implementation STG into MG components, projects every
//! gate's local STG, records the baseline (Keller et al.) adversary-path
//! constraints, runs the relaxation loop, and unions the per-gate results.
//!
//! Since the staged-pipeline refactor the heavy lifting lives in
//! [`crate::Engine`]; the two `derive_timing_constraints*` functions here
//! are the classic monolithic entry points, pinned to the engine's
//! sequential, uncached [`crate::EngineConfig::reference`] configuration
//! (the differential baseline every other configuration is tested
//! against).

use std::collections::BTreeSet;

use si_boolean::GateLibrary;
use si_stg::Stg;

use crate::constraint::{Constraint, ConstraintAtom};
use crate::engine::{Engine, EngineConfig};
use crate::error::CoreError;
use crate::expand::{RelaxationOrder, TraceEvent};
use crate::paths::AdversaryOracle;

/// Per-gate derivation summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateReport {
    /// The gate's output signal.
    pub gate: String,
    /// Baseline (pre-relaxation) type-4 constraints of this gate.
    pub baseline: BTreeSet<Constraint>,
    /// Constraints surviving relaxation for this gate.
    pub derived: BTreeSet<Constraint>,
}

/// The full derivation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintReport {
    /// The baseline constraint set: one constraint per type-4 arc before
    /// relaxation (the Keller et al. adversary-path conditions).
    pub baseline: BTreeSet<Constraint>,
    /// The derived relative timing constraints (`Rt`).
    pub constraints: BTreeSet<Constraint>,
    /// Per-gate breakdown.
    pub per_gate: Vec<GateReport>,
    /// Relaxation trace across all gates.
    pub trace: Vec<TraceEvent>,
    /// Reachable states of the full implementation STG (Table 7.2 column).
    pub state_count: usize,
    /// Total relaxation iterations.
    pub iterations: usize,
}

impl ConstraintReport {
    /// Constraints of `set` whose tightest adversary path has level ≤
    /// `max_level` (gate-only paths; environment paths never qualify).
    pub fn constraints_within_level<'a>(
        &self,
        set: &'a BTreeSet<Constraint>,
        oracle: &AdversaryOracle,
        stg: &Stg,
        max_level: u32,
    ) -> Vec<&'a Constraint> {
        set.iter()
            .filter(|c| {
                let (Some(x), Some(y)) = (atom_label(stg, &c.before), atom_label(stg, &c.after))
                else {
                    return false;
                };
                oracle.level(x, y).is_some_and(|l| l <= max_level)
            })
            .collect()
    }

    /// Renders one constraint set in the thesis tool's line format.
    pub fn render(set: &BTreeSet<Constraint>) -> String {
        let mut s = String::new();
        for c in set {
            s.push_str(&c.to_string());
            s.push('\n');
        }
        s
    }

    /// Renders the full report as a deterministic, diff-friendly snapshot:
    /// the semantic content of the `check_hazard --format json` payload
    /// (state count, iteration count, both constraint sets, the per-gate
    /// verdicts and the relaxation trace with its hazard classifications),
    /// with every volatile field — wall times, cache counters, job counts
    /// — excluded. The golden conformance suite pins one snapshot per
    /// bundled benchmark; any change to this format invalidates those
    /// files (regenerate with `UPDATE_GOLDEN=1 cargo test --test golden`).
    pub fn snapshot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "state_count: {}", self.state_count);
        let _ = writeln!(s, "iterations: {}", self.iterations);
        let _ = writeln!(s, "baseline: {}", self.baseline.len());
        for c in &self.baseline {
            let _ = writeln!(s, "  {c}");
        }
        let _ = writeln!(s, "constraints: {}", self.constraints.len());
        for c in &self.constraints {
            let _ = writeln!(s, "  {c}");
        }
        for gate in &self.per_gate {
            let _ = writeln!(s, "gate {}:", gate.gate);
            let _ = writeln!(s, "  baseline: {}", gate.baseline.len());
            for c in &gate.baseline {
                let _ = writeln!(s, "    {c}");
            }
            let _ = writeln!(s, "  derived: {}", gate.derived.len());
            for c in &gate.derived {
                let _ = writeln!(s, "    {c}");
            }
        }
        let _ = writeln!(s, "trace: {}", self.trace.len());
        for event in &self.trace {
            let _ = writeln!(s, "  {event}");
        }
        s
    }

    /// Renders the report in the S-expression interchange format
    /// (`docs/interchange.md`): a `constraint-report` document carrying
    /// the same stable content as [`Self::snapshot`] — counts, both
    /// constraint sets, the per-gate verdicts and the relaxation trace —
    /// with every volatile field excluded. Constraints and trace events
    /// ride as quoted strings in their `Display` form.
    #[must_use]
    pub fn sexp(&self) -> String {
        let mut w = si_stg::sexp::SexpWriter::new("constraint-report");
        w.open("constraint-report");
        w.open("state-count");
        w.atom(&self.state_count.to_string());
        w.close();
        w.open("iterations");
        w.atom(&self.iterations.to_string());
        w.close();
        let set = |w: &mut si_stg::sexp::SexpWriter, head: &str, set: &BTreeSet<Constraint>| {
            w.open(head);
            for c in set {
                w.open("constraint");
                w.string(&c.to_string());
                w.close();
            }
            w.close();
        };
        set(&mut w, "baseline", &self.baseline);
        set(&mut w, "constraints", &self.constraints);
        for gate in &self.per_gate {
            w.open("gate");
            w.string(&gate.gate);
            set(&mut w, "baseline", &gate.baseline);
            set(&mut w, "derived", &gate.derived);
            w.close();
        }
        w.open("trace");
        for event in &self.trace {
            w.open("event");
            w.string(&event.to_string());
            w.close();
        }
        w.close();
        w.close();
        w.finish()
    }
}

fn atom_label(stg: &Stg, a: &ConstraintAtom) -> Option<si_stg::TransitionLabel> {
    let sig = stg.signal_by_name(&a.signal)?;
    Some(si_stg::TransitionLabel::new(sig, a.polarity, a.occurrence))
}

/// Derives the relative timing constraints sufficient for `stg`'s circuit
/// (given as `library`) to stay hazard-free under the intra-operator fork
/// assumption (Algorithm 5), along with the pre-relaxation baseline.
///
/// # Errors
///
/// - [`CoreError::MissingGate`] when a non-input signal has no gate;
/// - [`CoreError::NotConformant`] when the netlist does not implement the
///   STG hazard-free under the isochronic-fork assumption (the method's
///   precondition);
/// - plus decomposition/state-graph errors for malformed inputs.
pub fn derive_timing_constraints(
    stg: &Stg,
    library: &GateLibrary,
) -> Result<ConstraintReport, CoreError> {
    derive_timing_constraints_with_order(stg, library, RelaxationOrder::TightestFirst)
}

/// [`derive_timing_constraints`] under an explicit relaxation-order policy
/// (the Sec. 5.5 ablation: naive orders can only produce equal-or-stronger
/// constraint sets).
///
/// # Errors
///
/// Same as [`derive_timing_constraints`].
pub fn derive_timing_constraints_with_order(
    stg: &Stg,
    library: &GateLibrary,
    order: RelaxationOrder,
) -> Result<ConstraintReport, CoreError> {
    Engine::new(EngineConfig::reference().with_order(order))
        .run(stg, library)
        .map(|out| out.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_boolean::parse_eqn;
    use si_stg::parse_astg;

    #[test]
    fn c_element_has_no_constraints_at_all() {
        let stg = parse_astg(
            "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
",
        )
        .expect("valid");
        let lib = GateLibrary::from_netlist(&parse_eqn("c = a*b + a*c + b*c;").expect("valid"));
        let report = derive_timing_constraints(&stg, &lib).expect("derives");
        assert!(report.baseline.is_empty());
        assert!(report.constraints.is_empty());
        assert_eq!(report.state_count, 8);
    }

    #[test]
    fn derived_set_is_a_strict_subset_of_the_baseline() {
        // The hazardous handover has two type-4 arcs (z+ ⇒ y- and
        // y- ⇒ z-); relaxation discharges the falling-order one and keeps
        // only the load-bearing handover: a 50 % reduction, the paper's
        // headline effect in miniature.
        let stg = parse_astg(
            "\
.model handover
.inputs y z
.outputs o
.graph
z+ y-
y- z-
z- o-
o- y+
y+ o+
o+ z+
.marking { <o+,z+> }
.end
",
        )
        .expect("valid");
        let lib = GateLibrary::from_netlist(&parse_eqn("o = y + z;").expect("valid"));
        let report = derive_timing_constraints(&stg, &lib).expect("derives");
        assert_eq!(report.baseline.len(), 2);
        let rendered: Vec<String> = report.constraints.iter().map(|c| c.to_string()).collect();
        assert_eq!(rendered, vec!["o: z+ < y-"]);
        assert!(report.constraints.is_subset(&report.baseline));
    }

    #[test]
    fn missing_gate_is_reported() {
        let stg = parse_astg(
            "\
.model buf
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
",
        )
        .expect("valid");
        let lib = GateLibrary::default();
        assert!(matches!(
            derive_timing_constraints(&stg, &lib),
            Err(CoreError::MissingGate { .. })
        ));
    }

    #[test]
    fn wrong_netlist_fails_conformance() {
        // An OR gate cannot implement the C-element STG: the initial local
        // STG is not conformant.
        let stg = parse_astg(
            "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
",
        )
        .expect("valid");
        let lib = GateLibrary::from_netlist(&parse_eqn("c = a + b;").expect("valid"));
        assert!(matches!(
            derive_timing_constraints(&stg, &lib),
            Err(CoreError::NotConformant { .. })
        ));
    }
}

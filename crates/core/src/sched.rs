//! The convergence-aware trial scheduler guarding the per-gate
//! relaxation loop (Algorithm 4).
//!
//! The loop `find_next_arc → clone → relax → classify` has no inherent
//! termination guarantee: on adversarial circuits (canonical specimen:
//! corpus seed 189, gate `o2`) the relaxable-arc count oscillates forever
//! while the local state graph grows linearly, so the loop burns whatever
//! iteration budget it is given — the default 20 000 budget means hours on
//! a single gate. The scheduler watches every iteration through two
//! complementary detectors and, under [`DivergencePolicy::Bail`], aborts
//! the gate with a deterministic [`crate::CoreError::Diverged`] carrying a
//! [`DivergenceWitness`]:
//!
//! - **progress ledger** — a fingerprint map over every visited local STG
//!   (via [`si_stg::MgStg::sg_fingerprint`], the streaming digest of
//!   exactly what `sg_key` canonicalizes) paired with the size of the
//!   guaranteed-arc set. Within one loop instance the guaranteed set only
//!   grows, so an equal size implies an equal set; a repeated
//!   (fingerprint, size) pair therefore means the *entire* loop state
//!   repeated and the deterministic loop will cycle forever →
//!   [`DivergenceKind::RepeatedState`].
//! - **contraction watchdog** — a sliding window over the last
//!   `divergence_window` iterations. A converging loop keeps making new
//!   strict minima of the relaxable-arc count on its way to zero; when no
//!   new strict minimum appears for a full window *and* the trial state
//!   graph has not shrunk across that window, the loop is classified as
//!   non-contracting → [`DivergenceKind::NonContraction`]. This catches
//!   the seed-189 shape, where the relaxable count oscillates in a band
//!   and `sg_key` never repeats because the graph keeps growing.
//!
//! Both detectors observe only values that are independent of caching and
//! parallelism (the arc sequence, relaxable-arc counts, state-graph
//! sizes), so a `Diverged` verdict is bit-identical across the whole
//! engine configuration matrix, warm or cold.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use crate::expand::ExpandOutcome;

/// Default sliding-window length for the contraction watchdog
/// ([`crate::EngineConfig::divergence_window`]). Sized so the oscillating
/// specimen (seed 189: band of width ≤ 4, period ≤ 7) trips within ~130
/// iterations — well under a second — while every bundled benchmark and
/// corpus fixture converges long before a window elapses without progress.
pub const DEFAULT_DIVERGENCE_WINDOW: usize = 128;

/// How many trailing arc labels a [`DivergenceWitness`] carries.
const WITNESS_ARCS: usize = 8;

/// What the relaxation loop does when the trial scheduler detects a
/// non-converging gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DivergencePolicy {
    /// Abort the gate immediately with [`crate::CoreError::Diverged`] —
    /// the engine default.
    #[default]
    Bail,
    /// Ignore the detectors and relax until the iteration budget is
    /// exhausted — the historical behaviour, kept by
    /// [`crate::EngineConfig::reference`] (and the plain
    /// [`crate::expand`] entry points) so the differential oracle is
    /// scheduler-free.
    Exhaust,
}

/// Which detector classified the loop as diverging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The progress ledger saw the exact loop state — STG fingerprint plus
    /// guaranteed-set size — a second time: a true cycle.
    RepeatedState,
    /// The contraction watchdog saw a full window without a new strict
    /// minimum of the relaxable-arc count, with a non-shrinking trial
    /// state graph.
    NonContraction,
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergenceKind::RepeatedState => write!(f, "repeated state"),
            DivergenceKind::NonContraction => write!(f, "non-contracting window"),
        }
    }
}

/// The evidence attached to a [`crate::CoreError::Diverged`] verdict:
/// which detector fired, at which relaxation iteration, and the trailing
/// arc sequence (up to eight most recent `x* => y*` labels, oldest
/// first) — the repeating pattern a human needs to see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceWitness {
    /// Which detector fired.
    pub kind: DivergenceKind,
    /// The relaxation iteration (1-based, as counted by
    /// [`ExpandOutcome::iterations`]) at which it fired.
    pub iteration: usize,
    /// Up to [`WITNESS_ARCS`] most recent relaxed arcs, oldest first.
    pub arcs: Vec<String>,
}

impl std::fmt::Display for DivergenceWitness {
    /// Stable one-line rendering — golden snapshots pin it.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at iteration {}", self.kind, self.iteration)?;
        if !self.arcs.is_empty() {
            write!(f, "; trailing arcs: {}", self.arcs.join(", "))?;
        }
        Ok(())
    }
}

/// One watchdog sample: the arc relaxed this iteration and the trial
/// state graph's size.
struct Sample {
    arc: String,
    sg_states: usize,
}

/// Per-loop-instance convergence monitor. The relaxation loop constructs
/// one scheduler per [`expand_at`](crate::expand) invocation — each
/// decomposition sub-STG, and each fallback resume (constraint emission is
/// progress), starts with a fresh ledger and window.
pub(crate) struct TrialScheduler {
    policy: DivergencePolicy,
    window: usize,
    /// STG fingerprint → guaranteed-set size at the last visit.
    ledger: HashMap<u64, usize>,
    /// The last `window` samples, oldest first.
    ring: VecDeque<Sample>,
    /// Smallest relaxable-arc count seen so far.
    min_relaxable: usize,
    /// Iterations since `min_relaxable` last strictly decreased.
    since_min: usize,
}

impl TrialScheduler {
    pub(crate) fn new(policy: DivergencePolicy, window: usize) -> Self {
        Self {
            policy,
            window,
            ledger: HashMap::new(),
            ring: VecDeque::new(),
            min_relaxable: usize::MAX,
            since_min: 0,
        }
    }

    /// Feeds one completed iteration (the state *before* the trial, the
    /// arc that was relaxed and the trial's state-graph size) into both
    /// detectors. Returns the witness if either detector fires under
    /// [`DivergencePolicy::Bail`]; a no-op under
    /// [`DivergencePolicy::Exhaust`]. Counters for ledger growth and
    /// bail causes accumulate into `out`.
    pub(crate) fn observe(
        &mut self,
        fingerprint: u64,
        guaranteed_len: usize,
        relaxable: usize,
        arc_text: &str,
        sg_states: usize,
        out: &mut ExpandOutcome,
    ) -> Option<DivergenceWitness> {
        if self.policy == DivergencePolicy::Exhaust {
            return None;
        }
        // Rotate the watchdog window, reusing the evicted sample's string
        // so the steady state allocates nothing.
        if self.window > 0 {
            if self.ring.len() == self.window {
                let mut s = self.ring.pop_front().expect("ring is full");
                s.arc.clear();
                s.arc.push_str(arc_text);
                s.sg_states = sg_states;
                self.ring.push_back(s);
            } else {
                self.ring.push_back(Sample {
                    arc: arc_text.to_string(),
                    sg_states,
                });
            }
        }
        // Progress ledger: a revisit with an unchanged guaranteed-set size
        // is an exact repetition of the loop state.
        match self.ledger.entry(fingerprint) {
            Entry::Vacant(v) => {
                v.insert(guaranteed_len);
                out.sched_fingerprints += 1;
            }
            Entry::Occupied(mut o) => {
                if *o.get() == guaranteed_len {
                    out.sched_cycle_bails += 1;
                    return Some(self.witness(DivergenceKind::RepeatedState, out.iterations));
                }
                o.insert(guaranteed_len);
            }
        }
        // Contraction watchdog: equal-to-minimum does NOT reset the
        // counter — an oscillating band keeps touching its floor without
        // ever contracting below it.
        if relaxable < self.min_relaxable {
            self.min_relaxable = relaxable;
            self.since_min = 0;
        } else {
            self.since_min += 1;
        }
        if self.window > 0 && self.since_min >= self.window {
            let oldest = self.ring.front().expect("window elapsed");
            if sg_states >= oldest.sg_states {
                out.sched_watchdog_bails += 1;
                return Some(self.witness(DivergenceKind::NonContraction, out.iterations));
            }
        }
        None
    }

    fn witness(&self, kind: DivergenceKind, iteration: usize) -> DivergenceWitness {
        let skip = self.ring.len().saturating_sub(WITNESS_ARCS);
        DivergenceWitness {
            kind,
            iteration,
            arcs: self.ring.iter().skip(skip).map(|s| s.arc.clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `steps` iterations of `(fingerprint, glen, relaxable,
    /// sg_states)` through a scheduler and returns the first witness.
    fn drive(
        sched: &mut TrialScheduler,
        out: &mut ExpandOutcome,
        steps: impl IntoIterator<Item = (u64, usize, usize, usize)>,
    ) -> Option<DivergenceWitness> {
        for (fp, glen, relaxable, sg) in steps {
            out.iterations += 1;
            let arc = format!("a{fp} => b{fp}");
            if let Some(w) = sched.observe(fp, glen, relaxable, &arc, sg, out) {
                return Some(w);
            }
        }
        None
    }

    #[test]
    fn exhaust_policy_never_trips() {
        let mut sched = TrialScheduler::new(DivergencePolicy::Exhaust, 2);
        let mut out = ExpandOutcome::default();
        // The same state over and over: both detectors would fire.
        let w = drive(&mut sched, &mut out, (0..100).map(|_| (7, 0, 5, 10)));
        assert_eq!(w, None);
        assert_eq!(out.sched_fingerprints, 0);
        assert_eq!(out.sched_cycle_bails, 0);
        assert_eq!(out.sched_watchdog_bails, 0);
    }

    #[test]
    fn repeated_state_trips_the_ledger() {
        let mut sched = TrialScheduler::new(DivergencePolicy::Bail, 64);
        let mut out = ExpandOutcome::default();
        let w = drive(
            &mut sched,
            &mut out,
            [(1, 0, 5, 10), (2, 0, 5, 12), (1, 0, 5, 10)],
        )
        .expect("cycle detected");
        assert_eq!(w.kind, DivergenceKind::RepeatedState);
        assert_eq!(w.iteration, 3);
        assert_eq!(out.sched_cycle_bails, 1);
        assert_eq!(out.sched_fingerprints, 2);
    }

    #[test]
    fn a_grown_guaranteed_set_is_progress_not_a_cycle() {
        let mut sched = TrialScheduler::new(DivergencePolicy::Bail, 64);
        let mut out = ExpandOutcome::default();
        // Same fingerprint, but the guaranteed set grew in between: the
        // loop state did not repeat.
        let w = drive(&mut sched, &mut out, [(1, 0, 5, 10), (1, 1, 4, 10)]);
        assert_eq!(w, None);
        assert_eq!(out.sched_cycle_bails, 0);
    }

    #[test]
    fn stalled_minimum_trips_the_watchdog() {
        let mut sched = TrialScheduler::new(DivergencePolicy::Bail, 4);
        let mut out = ExpandOutcome::default();
        // Relaxable oscillates in a band touching its floor; the SG grows.
        let band = [3usize, 5, 4, 3, 6, 3, 5, 4];
        let w = drive(
            &mut sched,
            &mut out,
            (0..20).map(|i| (i as u64, 0, band[i % band.len()], 10 + i)),
        )
        .expect("watchdog fired");
        assert_eq!(w.kind, DivergenceKind::NonContraction);
        assert_eq!(out.sched_watchdog_bails, 1);
        assert!(!w.arcs.is_empty() && w.arcs.len() <= 4);
    }

    #[test]
    fn fresh_minima_keep_the_watchdog_quiet() {
        let mut sched = TrialScheduler::new(DivergencePolicy::Bail, 4);
        let mut out = ExpandOutcome::default();
        // Every 3rd iteration contracts strictly: converging behaviour.
        let w = drive(
            &mut sched,
            &mut out,
            (0..30).map(|i| (i as u64, 0, 100 - i / 3, 10 + i)),
        );
        assert_eq!(w, None);
        assert_eq!(out.sched_watchdog_bails, 0);
    }

    #[test]
    fn a_shrinking_state_graph_vetoes_the_watchdog() {
        let mut sched = TrialScheduler::new(DivergencePolicy::Bail, 4);
        let mut out = ExpandOutcome::default();
        // No new minima, but the SG is strictly shrinking across the
        // window — that is contraction in the other currency.
        let w = drive(
            &mut sched,
            &mut out,
            (0..6).map(|i| (i as u64, 0, 5, 100 - i)),
        );
        assert_eq!(w, None);
    }

    #[test]
    fn witness_arcs_are_capped_and_oldest_first() {
        let mut sched = TrialScheduler::new(DivergencePolicy::Bail, 32);
        let mut out = ExpandOutcome::default();
        let w = drive(
            &mut sched,
            &mut out,
            (0..40).map(|i| (i as u64, 0, 5, 10 + i)),
        )
        .expect("watchdog fired");
        assert_eq!(w.arcs.len(), WITNESS_ARCS);
        let first: Vec<&str> = w.arcs[0].split(' ').collect();
        let last: Vec<&str> = w.arcs[WITNESS_ARCS - 1].split(' ').collect();
        assert!(first[0] < last[0], "oldest first: {:?}", w.arcs);
        assert_eq!(
            w.to_string(),
            format!(
                "non-contracting window at iteration {}; trailing arcs: {}",
                w.iteration,
                w.arcs.join(", ")
            )
        );
    }
}

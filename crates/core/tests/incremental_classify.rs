//! Property tests for incremental conformance classification: on a random
//! local STG and a random single-arc edit, the copy-unaffected-verdicts
//! path ([`classify_states_from`]) must agree with the from-scratch sweep
//! ([`classify_states`]) *exactly* — the same [`RelaxationCase`], the same
//! [`ConformanceReport`] (premature pairs and lagging states in the same
//! order), and the same error — under generous and tight state budgets
//! alike. The scratch sweep is the pinned reference; any divergence here
//! is a soundness bug in the verdict-copying path.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use si_boolean::{parse_eqn, GateLibrary};
use si_core::{classify_states, classify_states_from, prerequisite_sets, GateContext, LocalStg};
use si_stg::{MgStg, Polarity, SignalKind, StateGraph, Stg, TransitionLabel};

/// One randomly generated local STG: `k` input signals plus one gate
/// output `z` (a `k`-input C-element), wired as the consistent handshake
/// ring `s0+ … s(k-1)+ z+ s0- … s(k-1)- z-` (one token on the closing
/// arc) plus a handful of random extra arcs that may introduce
/// concurrency, deadlock, non-conformance or inconsistency — all of which
/// the two classification paths must report identically.
#[derive(Debug, Clone)]
struct RandomLocal {
    inputs: usize,
    extras: Vec<(usize, usize, u32)>,
}

impl RandomLocal {
    fn build(&self) -> LocalStg {
        let mut stg = Stg::new("prop");
        let sigs: Vec<_> = (0..self.inputs)
            .map(|i| stg.add_signal(format!("s{i}"), SignalKind::Input))
            .collect();
        let z = stg.add_signal("z", SignalKind::Output);
        // A C-element over all inputs: z rises when every input is high,
        // falls when every input is low, holds otherwise.
        let and: Vec<String> = (0..self.inputs).map(|i| format!("s{i}")).collect();
        let hold: Vec<String> = (0..self.inputs).map(|i| format!("z*s{i}")).collect();
        let eqn = format!("z = {} + {};", and.join("*"), hold.join(" + "));
        let netlist = parse_eqn(&eqn).expect("well-formed C-element equation");
        let library = GateLibrary::from_netlist(&netlist);
        let ctx = GateContext::bind(&library.gates[0], &stg).expect("binds");

        let mut mg = MgStg::empty_like(&stg);
        let mut ring = Vec::new();
        for &s in &sigs {
            ring.push(mg.add_transition(TransitionLabel::first(s, Polarity::Plus)));
        }
        ring.push(mg.add_transition(TransitionLabel::first(z, Polarity::Plus)));
        for &s in &sigs {
            ring.push(mg.add_transition(TransitionLabel::first(s, Polarity::Minus)));
        }
        ring.push(mg.add_transition(TransitionLabel::first(z, Polarity::Minus)));
        for w in 0..ring.len() {
            let next = (w + 1) % ring.len();
            let tokens = u32::from(next == 0);
            mg.insert_arc(ring[w], ring[next], tokens, false);
        }
        for &(a, b, tokens) in &self.extras {
            mg.insert_arc(ring[a % ring.len()], ring[b % ring.len()], tokens, false);
        }
        LocalStg {
            mg,
            ctx: Arc::new(ctx),
            guaranteed: BTreeSet::new(),
        }
    }
}

/// A single-arc edit: remove an arc, insert one, or retoken one — the
/// same edit space the relaxation loop's trials draw from.
#[derive(Debug, Clone)]
enum Edit {
    Remove(usize),
    Insert(usize, usize, u32),
    Retoken(usize, u32),
}

impl Edit {
    /// Applies the edit to a clone of `local` (indices wrap over the
    /// current arc/transition lists, so every drawn edit is applicable).
    fn apply(&self, local: &LocalStg) -> LocalStg {
        let mut out = local.clone();
        let arcs: Vec<(usize, usize)> = local.mg.arcs().map(|(k, _)| k).collect();
        let ts = local.mg.transitions();
        match *self {
            Edit::Remove(i) => {
                let (a, b) = arcs[i % arcs.len()];
                out.mg.remove_arc(a, b);
            }
            Edit::Insert(a, b, tokens) => {
                out.mg
                    .insert_arc(ts[a % ts.len()], ts[b % ts.len()], tokens, false);
            }
            Edit::Retoken(i, tokens) => {
                let (a, b) = arcs[i % arcs.len()];
                out.mg.remove_arc(a, b);
                out.mg.insert_arc(a, b, tokens, false);
            }
        }
        out
    }
}

fn random_case() -> impl Strategy<Value = (RandomLocal, Edit, usize)> {
    let local = (
        2usize..=4,
        proptest::collection::vec((0usize..12, 0usize..12, 0u32..=1), 0..4),
    )
        .prop_map(|(inputs, extras)| RandomLocal { inputs, extras });
    let edit =
        (0u8..3, 0usize..32, 0usize..32, 0u32..=2).prop_map(|(kind, a, b, tokens)| match kind {
            0 => Edit::Remove(a),
            1 => Edit::Insert(a, b, tokens),
            _ => Edit::Retoken(a, tokens),
        });
    (local, edit, 0usize..32)
}

/// Runs one parent → edit → child round at `budget`, asserting the
/// incremental classification reproduces the scratch one bit for bit.
fn check_round(
    spec: &RandomLocal,
    edit: &Edit,
    relaxed_idx: usize,
    budget: usize,
) -> Result<(), TestCaseError> {
    let parent = spec.build();
    let Ok(parent_sg) = StateGraph::of_mg(&parent.mg, budget) else {
        return Ok(()); // no predecessor graph to classify from
    };
    let parent_epre = prerequisite_sets(&parent);
    let Ok((_, parent_report)) = classify_states(&parent, &parent_sg, &parent_epre, None) else {
        return Ok(()); // no parent verdicts to copy
    };
    let child = edit.apply(&parent);
    let Ok((child_sg, Some(map))) =
        StateGraph::of_mg_from(&parent.mg, &parent_sg, &child.mg, budget)
    else {
        return Ok(()); // error or scratch fallback: no correspondence to reuse
    };
    let epre = prerequisite_sets(&child);
    let ts = child.mg.transitions();
    for relaxed in [None, Some(ts[relaxed_idx % ts.len()])] {
        let scratch = classify_states(&child, &child_sg, &epre, relaxed);
        let incremental =
            classify_states_from(&child, &child_sg, &epre, relaxed, &parent_report, &map);
        prop_assert_eq!(&incremental, &scratch);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn incremental_classification_matches_scratch((spec, edit, relaxed_idx) in random_case()) {
        check_round(&spec, &edit, relaxed_idx, 10_000)?;
    }

    /// Tight budgets shrink or kill the parent graph; whenever a
    /// correspondence still exists, the verdict-copying path must keep
    /// agreeing — including on the error values themselves.
    #[test]
    fn incremental_classification_matches_scratch_under_tight_budgets(
        (spec, edit, relaxed_idx) in random_case()
    ) {
        for budget in [2usize, 3, 5, 9, 17, 33] {
            check_round(&spec, &edit, relaxed_idx, budget)?;
        }
    }
}

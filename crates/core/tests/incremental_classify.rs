//! Property tests for incremental conformance classification: on a random
//! local STG and a random single-arc edit, the copy-unaffected-verdicts
//! path ([`classify_states_from`]) must agree with the from-scratch sweep
//! ([`classify_states`]) *exactly* — the same [`RelaxationCase`], the same
//! [`ConformanceReport`] (premature pairs and lagging states in the same
//! order), and the same error — under generous and tight state budgets
//! alike. The scratch sweep is the pinned reference; any divergence here
//! is a soundness bug in the verdict-copying path.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use si_core::{classify_states, classify_states_from, prerequisite_sets};
use si_corpus::strategies::{random_local_case, Edit, RandomLocal};
use si_stg::StateGraph;

/// The shared [`si_corpus::strategies::random_local_case`] drives these
/// properties: a random C-element local STG, a random single-arc
/// [`Edit`], and a wrapped relaxed-transition index (the same generator
/// family the incremental regeneration proptests in `si-stg` use).
fn random_case() -> impl Strategy<Value = (RandomLocal, Edit, usize)> {
    random_local_case()
}

/// Runs one parent → edit → child round at `budget`, asserting the
/// incremental classification reproduces the scratch one bit for bit.
fn check_round(
    spec: &RandomLocal,
    edit: &Edit,
    relaxed_idx: usize,
    budget: usize,
) -> Result<(), TestCaseError> {
    let parent = spec.build();
    let Ok(parent_sg) = StateGraph::of_mg(&parent.mg, budget) else {
        return Ok(()); // no predecessor graph to classify from
    };
    let parent_epre = prerequisite_sets(&parent);
    let Ok((_, parent_report)) = classify_states(&parent, &parent_sg, &parent_epre, None) else {
        return Ok(()); // no parent verdicts to copy
    };
    let child = edit.apply_local(&parent);
    let Ok((child_sg, Some(map))) =
        StateGraph::of_mg_from(&parent.mg, &parent_sg, &child.mg, budget)
    else {
        return Ok(()); // error or scratch fallback: no correspondence to reuse
    };
    let epre = prerequisite_sets(&child);
    let ts = child.mg.transitions();
    for relaxed in [None, Some(ts[relaxed_idx % ts.len()])] {
        let scratch = classify_states(&child, &child_sg, &epre, relaxed);
        let incremental =
            classify_states_from(&child, &child_sg, &epre, relaxed, &parent_report, &map);
        prop_assert_eq!(&incremental, &scratch);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn incremental_classification_matches_scratch((spec, edit, relaxed_idx) in random_case()) {
        check_round(&spec, &edit, relaxed_idx, 10_000)?;
    }

    /// Tight budgets shrink or kill the parent graph; whenever a
    /// correspondence still exists, the verdict-copying path must keep
    /// agreeing — including on the error values themselves.
    #[test]
    fn incremental_classification_matches_scratch_under_tight_budgets(
        (spec, edit, relaxed_idx) in random_case()
    ) {
        for budget in [2usize, 3, 5, 9, 17, 33] {
            check_round(&spec, &edit, relaxed_idx, budget)?;
        }
    }
}

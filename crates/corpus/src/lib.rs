//! Seeded synthetic STG corpus generation.
//!
//! The thirteen bundled Table 7.2 benchmarks pin the engine bit-exactly,
//! but they are a *fixed* population: every golden snapshot, differential
//! matrix and perf number measures the same thirteen circuits. This crate
//! supplies the missing statistical scale — a deterministic generator
//! mapping `(CorpusSpec, seed)` onto valid speed-independent control
//! circuits ([`generate`]), plus the shared property-test strategies the
//! member crates' proptests draw from ([`strategies`]).
//!
//! Two guarantees are load-bearing (and pinned by this crate's property
//! suite):
//!
//! 1. **Validity** — every generated circuit strict-parses under
//!    [`si_stg::parse_astg`] and lints with zero `si-lint` errors.
//! 2. **Determinism** — equal `(sanitized spec, seed)` pairs yield
//!    byte-identical `.g` text, forever and on every platform. The
//!    one-line [`Reproducer`] format the fuzz harness prints on a
//!    divergence rests on this.
//!
//! # Example
//!
//! ```
//! use si_corpus::{generate, CorpusSpec};
//!
//! let spec = CorpusSpec { signals: 6, ..CorpusSpec::default() };
//! let circuit = generate(&spec, 42);
//! assert_eq!(circuit.stg.signal_count(), 6);
//! assert_eq!(circuit.g_text, generate(&spec, 42).g_text); // deterministic
//! ```

mod rng;
mod spec;
pub mod strategies;

pub use rng::CorpusRng;
pub use spec::{
    corpus_name, generate, generate_named, CorpusSpec, GeneratedCircuit, MarkingStyle, Reproducer,
};

/// Relaxation-iteration budget for corpus-scale harnesses
/// ([`harness_config`]).
pub const HARNESS_EXPAND_BUDGET: usize = 400;

/// Caps `base`'s relaxation-iteration budget for corpus-scale sweeps.
///
/// A small fraction of generated circuits (high-concurrency fork shapes —
/// `corpus-000000bd`, seed 189, is the canonical specimen) drive the
/// per-gate relaxation loop into superlinear blowup: each trial grows the
/// local STG, so the default 20 000-iteration budget translates to hours
/// on one circuit. Harnesses that sweep thousands of circuits (`si_fuzz`,
/// `corpus_bench`, the differential suites) cap the budget instead;
/// overruns surface as ordinary deterministic [`si_core::CoreError`]
/// values, which differential comparison covers like any other payload.
/// Apply the same cap to *both* engines of a differential pair.
pub fn harness_config(base: si_core::EngineConfig) -> si_core::EngineConfig {
    si_core::EngineConfig {
        expand_budget: HARNESS_EXPAND_BUDGET,
        ..base
    }
}

//! Seeded synthetic STG corpus generation.
//!
//! The thirteen bundled Table 7.2 benchmarks pin the engine bit-exactly,
//! but they are a *fixed* population: every golden snapshot, differential
//! matrix and perf number measures the same thirteen circuits. This crate
//! supplies the missing statistical scale — a deterministic generator
//! mapping `(CorpusSpec, seed)` onto valid speed-independent control
//! circuits ([`generate`]), plus the shared property-test strategies the
//! member crates' proptests draw from ([`strategies`]).
//!
//! Two guarantees are load-bearing (and pinned by this crate's property
//! suite):
//!
//! 1. **Validity** — every generated circuit strict-parses under
//!    [`si_stg::parse_astg`] and lints with zero `si-lint` errors.
//! 2. **Determinism** — equal `(sanitized spec, seed)` pairs yield
//!    byte-identical `.g` text, forever and on every platform. The
//!    one-line [`Reproducer`] format the fuzz harness prints on a
//!    divergence rests on this.
//!
//! # Example
//!
//! ```
//! use si_corpus::{generate, CorpusSpec};
//!
//! let spec = CorpusSpec { signals: 6, ..CorpusSpec::default() };
//! let circuit = generate(&spec, 42);
//! assert_eq!(circuit.stg.signal_count(), 6);
//! assert_eq!(circuit.g_text, generate(&spec, 42).g_text); // deterministic
//! ```

mod rng;
mod spec;
pub mod strategies;

pub use rng::CorpusRng;
pub use spec::{
    corpus_name, generate, generate_named, CorpusSpec, GeneratedCircuit, MarkingStyle, Reproducer,
};

/// Forces the divergence bail-out for corpus-scale sweeps.
///
/// A small fraction of generated circuits (high-concurrency fork shapes —
/// `corpus-000000bd`, seed 189, is the canonical specimen) drive the
/// per-gate relaxation loop into superlinear blowup: each trial grows the
/// local STG, so exhausting an iteration budget translates to hours on
/// one circuit. Historically harnesses capped `expand_budget` at 400;
/// since the trial scheduler landed they run at the real default budget
/// and rely on [`si_core::DivergencePolicy::Bail`], which aborts a
/// non-converging gate within one watchdog window. Divergences surface as
/// ordinary deterministic [`si_core::CoreError::Diverged`] values, which
/// differential comparison covers like any other payload — the verdict
/// (gate and witness) is independent of caching, parallelism and warmth,
/// so apply the same policy to *both* engines of a differential pair.
pub fn harness_config(base: si_core::EngineConfig) -> si_core::EngineConfig {
    si_core::EngineConfig {
        divergence_policy: si_core::DivergencePolicy::Bail,
        ..base
    }
}

//! The corpus generator's own deterministic random stream.
//!
//! SplitMix64, self-contained: the seed → circuit mapping is part of the
//! corpus crate's public determinism contract (reproducers printed by
//! `si_fuzz` must replay forever), so it must not drift with the test
//! harness's internals. Hence a private generator rather than reusing the
//! vendored proptest shim's.

/// A deterministic SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct CorpusRng {
    state: u64,
}

impl CorpusRng {
    /// Creates a stream from a seed. Equal seeds yield equal streams on
    /// every platform — this is load-bearing for reproducers.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        CorpusRng {
            state: seed ^ 0x6a09_e667_f3bc_c908, // frac(sqrt(2)) — distinct from proptest's stream
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// On an empty range.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        usize::try_from(self.below(lo as u64, hi as u64 + 1)).expect("usize range")
    }

    /// True with probability `pct`%.
    pub fn chance(&mut self, pct: u8) -> bool {
        self.below(0, 100) < u64::from(pct)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_replay_equal_streams() {
        let mut a = CorpusRng::new(42);
        let mut b = CorpusRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = CorpusRng::new(7);
        let mut v: Vec<usize> = (0..16).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }
}

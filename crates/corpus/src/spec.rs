//! The seeded synthetic circuit generator.
//!
//! A [`CorpusSpec`] describes a *family* of speed-independent control
//! circuits; [`generate`] maps `(spec, seed)` deterministically onto one
//! member: valid `.g` text plus the strict-parsed [`Stg`]. Circuits are
//! built from **bursts** — per-signal rising/falling transition pairs
//! arranged in fork–join stages on a single circulating token — so every
//! generated specification is live, 1-safe, consistent and free-choice
//! *by construction*:
//!
//! - each burst opens with a singleton guard transition `g+` and (when a
//!   clean exit is needed) closes with a singleton `x-`; consecutive
//!   stages are connected full-bipartite, so the token cloud rejoins
//!   before the next stage;
//! - with `choices > 0`, an explicit marked place `p0` fans out to
//!   `choices + 1` bursts over disjoint signal sets (the guards are
//!   inputs: the environment resolves the choice), each returning its
//!   token to `p0`;
//! - with `or_density > 0`, branch exits may instead route through a
//!   merge place into a shared *tail* burst (OR-causality: the tail fires
//!   after whichever branch ran), which returns the token to `p0`.
//!
//! In the default two-phase mode (`interleave = false`) every burst
//! raises all its signals before lowering any, with the guard signal
//! first in both phases — which additionally makes the circuit CSC-clean
//! (state codes inside a burst are distinct, and the all-zero codes at
//! the choice/merge places only ever excite input guards). With
//! `interleave = true` the rising and falling sequences are randomly
//! interleaved instead: still consistent, but CSC conflicts are allowed —
//! extra diversity for the differential fuzzer, where circuits that fail
//! synthesis are simply skipped.
//!
//! The guarantee tested in `tests/generator.rs`: every generated circuit
//! strict-parses ([`si_stg::parse_astg`]) and lints with **zero errors**.

use std::fmt;

use si_stg::{parse_astg, SignalKind, Stg};

use crate::rng::CorpusRng;

/// How the initial marking is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkingStyle {
    /// Tokens live on implicit closing arcs: `.marking { <x-,g+> }`.
    ImplicitArcs,
    /// One explicit marked place `p0` closes the cycle: `.marking { p0 }`.
    /// Forced whenever `choices > 0` (the choice place must be explicit).
    ExplicitPlace,
}

impl fmt::Display for MarkingStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MarkingStyle::ImplicitArcs => "arcs",
            MarkingStyle::ExplicitPlace => "place",
        })
    }
}

/// Parameters of one synthetic circuit family. See the module docs for
/// the construction; [`CorpusSpec::sanitized`] for the clamping rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Total signal count across all bursts (clamped to `2..=24`).
    pub signals: usize,
    /// Extra choice branches: `0` yields a pure marked graph, `k > 0`
    /// yields `k + 1` alternative bursts behind an explicit choice place
    /// (clamped to `0..=3`, and to `signals - 1`).
    pub choices: usize,
    /// Probability (percent) that a choice branch routes its token
    /// through the shared OR-causality tail instead of straight back to
    /// the choice place. Ignored when `choices == 0`.
    pub or_density: u8,
    /// Maximum concurrent transitions per fork stage (clamped to `1..=4`).
    pub max_fork: usize,
    /// `false`: two-phase bursts (rise-all-then-fall-all; CSC-clean).
    /// `true`: random rise/fall interleaving (consistent, CSC not
    /// guaranteed).
    pub interleave: bool,
    /// Marking style; forced to [`MarkingStyle::ExplicitPlace`] when
    /// `choices > 0`.
    pub marking: MarkingStyle,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            signals: 6,
            choices: 0,
            or_density: 0,
            max_fork: 2,
            interleave: false,
            marking: MarkingStyle::ImplicitArcs,
        }
    }
}

impl CorpusSpec {
    /// Clamps every field into the supported envelope; [`generate`]
    /// applies this first, so equal sanitized specs generate equal
    /// circuits.
    #[must_use]
    pub fn sanitized(&self) -> CorpusSpec {
        let signals = self.signals.clamp(2, 24);
        let choices = self.choices.min(3).min(signals - 1);
        let marking = if choices > 0 {
            MarkingStyle::ExplicitPlace
        } else {
            self.marking
        };
        CorpusSpec {
            signals,
            choices,
            or_density: self.or_density.min(100),
            max_fork: self.max_fork.clamp(1, 4),
            interleave: self.interleave,
            marking,
        }
    }

    /// The canonical seed → spec derivation used by `si_fuzz`,
    /// `corpus_bench` and `check_hazard --bench corpus:<seed>`: the spec
    /// itself is drawn from the seed (on a stream distinct from
    /// [`generate`]'s), biased towards pure marked graphs and two-phase
    /// bursts, with signal count in `2..=max_signals`.
    #[must_use]
    pub fn from_seed(seed: u64, max_signals: usize) -> CorpusSpec {
        let mut rng = CorpusRng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
        let hi = max_signals.clamp(2, 24);
        let signals = rng.range(2, hi);
        let choices = match rng.below(0, 8) {
            0..=3 => 0,
            4 | 5 => 1,
            6 => 2,
            _ => 3,
        };
        let or_density = [0, 0, 30, 60, 100][rng.range(0, 4)];
        let max_fork = rng.range(1, 3);
        let interleave = rng.chance(20);
        let marking = if rng.chance(50) {
            MarkingStyle::ImplicitArcs
        } else {
            MarkingStyle::ExplicitPlace
        };
        CorpusSpec {
            signals,
            choices,
            or_density,
            max_fork,
            interleave,
            marking,
        }
        .sanitized()
    }
}

/// A `(seed, spec)` pair, printed/parsed in the one-line reproducer
/// format `si_fuzz` emits on divergence:
///
/// ```text
/// seed=42 signals=7 choices=1 or=60 fork=3 interleave=0 marking=place
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reproducer {
    /// The generator seed.
    pub seed: u64,
    /// The (possibly minimized, hence explicit) spec.
    pub spec: CorpusSpec,
}

impl fmt::Display for Reproducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.spec;
        write!(
            f,
            "seed={} signals={} choices={} or={} fork={} interleave={} marking={}",
            self.seed,
            s.signals,
            s.choices,
            s.or_density,
            s.max_fork,
            u8::from(s.interleave),
            s.marking
        )
    }
}

impl std::str::FromStr for Reproducer {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut seed = None;
        let mut spec = CorpusSpec::default();
        for field in s.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{field}`"))?;
            let num = || {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("`{key}` expects a number, got `{value}`"))
            };
            match key {
                "seed" => seed = Some(num()?),
                "signals" => spec.signals = num()? as usize,
                "choices" => spec.choices = num()? as usize,
                "or" => spec.or_density = num()?.min(100) as u8,
                "fork" => spec.max_fork = num()? as usize,
                "interleave" => spec.interleave = num()? != 0,
                "marking" => {
                    spec.marking = match value {
                        "arcs" => MarkingStyle::ImplicitArcs,
                        "place" => MarkingStyle::ExplicitPlace,
                        other => return Err(format!("unknown marking style `{other}`")),
                    }
                }
                other => return Err(format!("unknown reproducer field `{other}`")),
            }
        }
        Ok(Reproducer {
            seed: seed.ok_or("reproducer is missing `seed=`")?,
            spec: spec.sanitized(),
        })
    }
}

/// One generated circuit: the `.g` source, its strict parse, and the
/// provenance needed to regenerate it.
#[derive(Debug, Clone)]
pub struct GeneratedCircuit {
    /// The circuit (and `.model`) name.
    pub name: String,
    /// The generator seed.
    pub seed: u64,
    /// The sanitized spec the circuit was drawn from.
    pub spec: CorpusSpec,
    /// The emitted `.g` text.
    pub g_text: String,
    /// `parse_astg(&g_text)` — generation fails loudly if the emitted
    /// text ever fails the strict parser.
    pub stg: Stg,
}

/// The default circuit name for a seed: `corpus-<seed in hex>`.
#[must_use]
pub fn corpus_name(seed: u64) -> String {
    format!("corpus-{seed:08x}")
}

/// Generates the circuit for `(spec, seed)` under the default name.
/// Deterministic: equal sanitized specs and seeds yield byte-identical
/// `.g` text on every platform.
#[must_use]
pub fn generate(spec: &CorpusSpec, seed: u64) -> GeneratedCircuit {
    generate_named(spec, seed, &corpus_name(seed))
}

/// One transition: signal index plus polarity (`true` = rising).
type Tr = (usize, bool);

/// [`generate`] under an explicit circuit name.
///
/// # Panics
///
/// Only on an internal generator bug (emitted text failing the strict
/// parser) — the property suite pins this never happening.
#[must_use]
pub fn generate_named(spec: &CorpusSpec, seed: u64, name: &str) -> GeneratedCircuit {
    let spec = spec.sanitized();
    let mut rng = CorpusRng::new(seed);
    let branches = spec.choices + 1;
    let choice_mode = spec.choices > 0;

    // OR-causality routing: each branch independently decides whether its
    // token returns via the shared tail burst. The tail burst exists (and
    // claims a signal) iff at least one branch routes through it.
    let mut via_tail = vec![false; branches];
    if choice_mode && spec.signals > branches {
        for flag in &mut via_tail {
            *flag = rng.chance(spec.or_density);
        }
    }
    let use_tail = via_tail.iter().any(|&f| f);
    let burst_count = branches + usize::from(use_tail);

    // Partition the signal indices into bursts, one guard each, spreading
    // the remainder uniformly.
    let mut sizes = vec![1usize; burst_count];
    for _ in 0..spec.signals - burst_count {
        let b = rng.range(0, burst_count - 1);
        sizes[b] += 1;
    }
    let mut bursts: Vec<Vec<usize>> = Vec::with_capacity(burst_count);
    let mut next = 0usize;
    for &size in &sizes {
        bursts.push((next..next + size).collect());
        next += size;
    }

    // Signal kinds: burst guards are inputs whenever a choice place is
    // involved (the environment resolves choices and triggers the
    // OR-caused tail — this is also what keeps the two-phase mode
    // CSC-clean across the all-zero-code place states). At least one
    // non-guard signal becomes an output so the circuit has a gate.
    let mut kinds = vec![SignalKind::Input; spec.signals];
    for burst in &bursts {
        for (j, &s) in burst.iter().enumerate() {
            kinds[s] = if j == 0 && choice_mode {
                SignalKind::Input
            } else {
                match rng.below(0, 100) {
                    0..=44 => SignalKind::Input,
                    45..=89 => SignalKind::Output,
                    _ => SignalKind::Internal,
                }
            };
        }
    }
    if !kinds.contains(&SignalKind::Output) {
        let guard_exempt = |s: usize| !choice_mode || bursts.iter().all(|b| b[0] != s);
        if let Some(s) = (0..spec.signals).rev().find(|&s| guard_exempt(s)) {
            kinds[s] = SignalKind::Output;
        }
    }

    // Names by kind, in index order: i0…, o0…, u0… (places are p0/p1).
    let mut names = Vec::with_capacity(spec.signals);
    let (mut ni, mut no, mut nu) = (0usize, 0usize, 0usize);
    for &kind in &kinds {
        names.push(match kind {
            SignalKind::Input => {
                ni += 1;
                format!("i{}", ni - 1)
            }
            SignalKind::Output => {
                no += 1;
                format!("o{}", no - 1)
            }
            SignalKind::Internal => {
                nu += 1;
                format!("u{}", nu - 1)
            }
        });
    }
    let tname = |(s, plus): Tr| format!("{}{}", names[s], if plus { '+' } else { '-' });

    // Bursts need a singleton exit transition whenever the token funnels
    // into an explicit place.
    let singleton_exit = choice_mode || spec.marking == MarkingStyle::ExplicitPlace;
    let mut entries: Vec<Tr> = Vec::with_capacity(burst_count);
    let mut exits: Vec<Vec<Tr>> = Vec::with_capacity(burst_count);

    // Arc lines in emission order: `src dst1 dst2 …`, one line per source.
    let mut lines: Vec<(String, Vec<String>)> = Vec::new();
    let add_arc = |lines: &mut Vec<(String, Vec<String>)>, src: String, dst: String| {
        if let Some((_, dsts)) = lines.iter_mut().rev().find(|(s, _)| *s == src) {
            dsts.push(dst);
        } else {
            lines.push((src, vec![dst]));
        }
    };

    for burst in &bursts {
        let stages = build_stages(burst, &spec, singleton_exit, &mut rng);
        for w in 0..stages.len() - 1 {
            for &t in &stages[w] {
                for &u in &stages[w + 1] {
                    add_arc(&mut lines, tname(t), tname(u));
                }
            }
        }
        entries.push(stages[0][0]);
        exits.push(stages.last().expect("at least two stages").clone());
    }

    // Close the cycle.
    let mut markings: Vec<String> = Vec::new();
    if choice_mode {
        for (b, &exit) in exits.iter().take(branches).map(|e| &e[0]).enumerate() {
            let place = if via_tail[b] { "p1" } else { "p0" };
            add_arc(&mut lines, tname(exit), place.to_string());
        }
        if use_tail {
            add_arc(&mut lines, tname(exits[branches][0]), "p0".to_string());
            add_arc(&mut lines, "p1".to_string(), tname(entries[branches]));
        }
        for &entry in entries.iter().take(branches) {
            add_arc(&mut lines, "p0".to_string(), tname(entry));
        }
        markings.push("p0".to_string());
    } else {
        let entry = entries[0];
        match spec.marking {
            MarkingStyle::ImplicitArcs => {
                for &exit in &exits[0] {
                    add_arc(&mut lines, tname(exit), tname(entry));
                    markings.push(format!("<{},{}>", tname(exit), tname(entry)));
                }
            }
            MarkingStyle::ExplicitPlace => {
                add_arc(&mut lines, tname(exits[0][0]), "p0".to_string());
                add_arc(&mut lines, "p0".to_string(), tname(entry));
                markings.push("p0".to_string());
            }
        }
    }

    // Emit.
    let mut text = String::new();
    text.push_str(&format!(".model {name}\n"));
    for (section, kind) in [
        (".inputs", SignalKind::Input),
        (".outputs", SignalKind::Output),
        (".internal", SignalKind::Internal),
    ] {
        let of_kind: Vec<&str> = (0..spec.signals)
            .filter(|&s| kinds[s] == kind)
            .map(|s| names[s].as_str())
            .collect();
        if !of_kind.is_empty() {
            text.push_str(&format!("{section} {}\n", of_kind.join(" ")));
        }
    }
    text.push_str(".graph\n");
    for (src, dsts) in &lines {
        text.push_str(&format!("{src} {}\n", dsts.join(" ")));
    }
    text.push_str(&format!(".marking {{ {} }}\n.end\n", markings.join(" ")));

    let stg = parse_astg(&text).unwrap_or_else(|e| {
        panic!(
            "si-corpus internal error: generated circuit failed the strict parser\n\
             reproducer: {}\nerror: {e}\n--- emitted .g ---\n{text}",
            Reproducer { seed, spec }
        )
    });
    GeneratedCircuit {
        name: name.to_string(),
        seed,
        spec,
        g_text: text,
        stg,
    }
}

/// Lays one burst's transitions out in fork–join stages. The first stage
/// is always the singleton guard `g+`; in two-phase mode all rising
/// stages precede all falling stages and `g-` opens the falling half; in
/// interleave mode rising and falling transitions are merged randomly
/// (each signal's `+` strictly before its `-`, never both in one stage).
/// With `singleton_exit` the last stage holds exactly one transition.
fn build_stages(
    burst: &[usize],
    spec: &CorpusSpec,
    singleton_exit: bool,
    rng: &mut CorpusRng,
) -> Vec<Vec<Tr>> {
    let guard = burst[0];
    let mut rising: Vec<usize> = burst[1..].to_vec();
    let mut falling: Vec<usize> = burst[1..].to_vec();
    rng.shuffle(&mut rising);
    rng.shuffle(&mut falling);

    if spec.interleave {
        // Merge the rising and falling orders; a signal may fall as soon
        // as it has risen. The guard rises first and some signal
        // necessarily falls last.
        let rising: Vec<usize> = std::iter::once(guard).chain(rising).collect();
        let falling: Vec<usize> = std::iter::once(guard).chain(falling).collect();
        let mut seq: Vec<Tr> = Vec::with_capacity(2 * rising.len());
        let mut risen = vec![false; spec.signals];
        let (mut ri, mut fi) = (0usize, 0usize);
        while ri < rising.len() || fi < falling.len() {
            let can_fall = fi < falling.len() && risen[falling[fi]];
            let can_rise = ri < rising.len();
            if can_rise && (!can_fall || rng.chance(55)) {
                risen[rising[ri]] = true;
                seq.push((rising[ri], true));
                ri += 1;
            } else {
                seq.push((falling[fi], false));
                fi += 1;
            }
        }
        let exit = seq.pop().expect("non-empty burst");
        let first = seq.remove(0);
        let mut stages = vec![vec![first]];
        stages.extend(partition(&seq, spec.max_fork, true, rng));
        stages.push(vec![exit]);
        stages
    } else {
        let mut stages = vec![vec![(guard, true)]];
        let rising: Vec<Tr> = rising.into_iter().map(|s| (s, true)).collect();
        stages.extend(partition(&rising, spec.max_fork, false, rng));
        stages.push(vec![(guard, false)]);
        let mut falling: Vec<Tr> = falling.into_iter().map(|s| (s, false)).collect();
        if singleton_exit && !falling.is_empty() {
            let exit = falling.pop().expect("non-empty");
            stages.extend(partition(&falling, spec.max_fork, false, rng));
            stages.push(vec![exit]);
        } else {
            stages.extend(partition(&falling, spec.max_fork, false, rng));
        }
        stages
    }
}

/// Greedily cuts `items` into stages of random width `1..=max_fork`; with
/// `split_signals` a stage never holds both polarities of one signal.
fn partition(
    items: &[Tr],
    max_fork: usize,
    split_signals: bool,
    rng: &mut CorpusRng,
) -> Vec<Vec<Tr>> {
    let mut stages = Vec::new();
    let mut i = 0;
    while i < items.len() {
        let width = rng.range(1, max_fork);
        let mut stage: Vec<Tr> = Vec::with_capacity(width);
        while stage.len() < width && i < items.len() {
            let t = items[i];
            if split_signals && stage.iter().any(|&(s, _)| s == t.0) {
                break;
            }
            stage.push(t);
            i += 1;
        }
        stages.push(stage);
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec {
            signals: 9,
            choices: 2,
            or_density: 60,
            max_fork: 3,
            ..CorpusSpec::default()
        };
        let a = generate(&spec, 1234);
        let b = generate(&spec, 1234);
        assert_eq!(a.g_text, b.g_text);
        assert_eq!(a.stg, b.stg);
        // A different seed changes the circuit (with overwhelming
        // probability for this family).
        let c = generate(&spec, 1235);
        assert_ne!(a.g_text, c.g_text);
    }

    #[test]
    fn sanitization_clamps_and_forces_the_choice_place() {
        let wild = CorpusSpec {
            signals: 1000,
            choices: 99,
            or_density: 255,
            max_fork: 0,
            interleave: false,
            marking: MarkingStyle::ImplicitArcs,
        };
        let spec = wild.sanitized();
        assert_eq!(spec.signals, 24);
        assert_eq!(spec.choices, 3);
        assert_eq!(spec.or_density, 100);
        assert_eq!(spec.max_fork, 1);
        assert_eq!(spec.marking, MarkingStyle::ExplicitPlace);
    }

    #[test]
    fn reproducers_round_trip() {
        for seed in [0u64, 7, 0xdead_beef] {
            let spec = CorpusSpec::from_seed(seed, 12);
            let repro = Reproducer { seed, spec };
            let parsed: Reproducer = repro.to_string().parse().expect("parses");
            assert_eq!(parsed, repro);
        }
        assert!("signals=3".parse::<Reproducer>().is_err());
        assert!("seed=1 marking=banana".parse::<Reproducer>().is_err());
    }

    #[test]
    fn a_choice_circuit_has_the_explicit_choice_place() {
        let spec = CorpusSpec {
            signals: 8,
            choices: 1,
            ..CorpusSpec::default()
        };
        let c = generate(&spec, 5);
        assert!(c.g_text.contains("p0 "));
        assert!(c.g_text.contains(".marking { p0 }"));
    }
}

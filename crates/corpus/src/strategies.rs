//! Shared property-test strategies.
//!
//! The random-ring generators and the single-arc [`Edit`] space used by
//! the incremental-regeneration proptests (`si-stg`) and the incremental
//! classification proptests (`si-core`) live here once, instead of being
//! duplicated per test file. The corpus generator itself is also exposed
//! as a strategy ([`corpus_case`]) for end-to-end properties over whole
//! circuits.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use si_boolean::{parse_eqn, GateLibrary};
use si_core::{GateContext, LocalStg};
use si_stg::{MgStg, Polarity, SignalKind, Stg, TransitionLabel};

use crate::spec::{CorpusSpec, MarkingStyle};

/// One randomly generated marked graph: a consistent ring
/// `s0+ … s(k-1)+ s0- … s(k-1)-` (one token on the closing arc) plus a
/// handful of random extra arcs that may introduce concurrency, deadlock
/// or inconsistency — all of which the derivation paths under test must
/// report identically.
#[derive(Debug, Clone)]
pub struct RandomMg {
    /// Ring width (signal count).
    pub signals: usize,
    /// Extra arcs as `(from, to, tokens)`, indices wrapping over the ring.
    pub extras: Vec<(usize, usize, u32)>,
}

impl RandomMg {
    /// Materializes the marked graph.
    #[must_use]
    pub fn build(&self) -> MgStg {
        let mut stg = Stg::new("prop");
        let sigs: Vec<_> = (0..self.signals)
            .map(|i| stg.add_signal(format!("s{i}"), SignalKind::Input))
            .collect();
        let mut mg = MgStg::empty_like(&stg);
        let mut ring = Vec::new();
        for &s in &sigs {
            ring.push(mg.add_transition(TransitionLabel::first(s, Polarity::Plus)));
        }
        for &s in &sigs {
            ring.push(mg.add_transition(TransitionLabel::first(s, Polarity::Minus)));
        }
        for w in 0..ring.len() {
            let next = (w + 1) % ring.len();
            let tokens = u32::from(next == 0);
            mg.insert_arc(ring[w], ring[next], tokens, false);
        }
        for &(a, b, tokens) in &self.extras {
            mg.insert_arc(ring[a % ring.len()], ring[b % ring.len()], tokens, false);
        }
        mg
    }
}

/// One randomly generated local STG: `k` input signals plus one gate
/// output `z` (a `k`-input C-element), wired as the consistent handshake
/// ring `s0+ … s(k-1)+ z+ s0- … s(k-1)- z-` (one token on the closing
/// arc) plus random extra arcs that may introduce concurrency, deadlock,
/// non-conformance or inconsistency.
#[derive(Debug, Clone)]
pub struct RandomLocal {
    /// Input signal count (the gate is a `k`-input C-element).
    pub inputs: usize,
    /// Extra arcs as `(from, to, tokens)`, indices wrapping over the ring.
    pub extras: Vec<(usize, usize, u32)>,
}

impl RandomLocal {
    /// Materializes the local STG with its bound gate context.
    ///
    /// # Panics
    ///
    /// Never for well-formed field values: the C-element equation always
    /// parses and binds.
    #[must_use]
    pub fn build(&self) -> LocalStg {
        let mut stg = Stg::new("prop");
        let sigs: Vec<_> = (0..self.inputs)
            .map(|i| stg.add_signal(format!("s{i}"), SignalKind::Input))
            .collect();
        let z = stg.add_signal("z", SignalKind::Output);
        // A C-element over all inputs: z rises when every input is high,
        // falls when every input is low, holds otherwise.
        let and: Vec<String> = (0..self.inputs).map(|i| format!("s{i}")).collect();
        let hold: Vec<String> = (0..self.inputs).map(|i| format!("z*s{i}")).collect();
        let eqn = format!("z = {} + {};", and.join("*"), hold.join(" + "));
        let netlist = parse_eqn(&eqn).expect("well-formed C-element equation");
        let library = GateLibrary::from_netlist(&netlist);
        let ctx = GateContext::bind(&library.gates[0], &stg).expect("binds");

        let mut mg = MgStg::empty_like(&stg);
        let mut ring = Vec::new();
        for &s in &sigs {
            ring.push(mg.add_transition(TransitionLabel::first(s, Polarity::Plus)));
        }
        ring.push(mg.add_transition(TransitionLabel::first(z, Polarity::Plus)));
        for &s in &sigs {
            ring.push(mg.add_transition(TransitionLabel::first(s, Polarity::Minus)));
        }
        ring.push(mg.add_transition(TransitionLabel::first(z, Polarity::Minus)));
        for w in 0..ring.len() {
            let next = (w + 1) % ring.len();
            let tokens = u32::from(next == 0);
            mg.insert_arc(ring[w], ring[next], tokens, false);
        }
        for &(a, b, tokens) in &self.extras {
            mg.insert_arc(ring[a % ring.len()], ring[b % ring.len()], tokens, false);
        }
        LocalStg {
            mg,
            ctx: Arc::new(ctx),
            guaranteed: BTreeSet::new(),
        }
    }
}

/// A single-arc edit: remove an arc, insert one, or retoken one — the
/// same edit space the relaxation loop's trials draw from.
#[derive(Debug, Clone)]
pub enum Edit {
    /// Remove the `i`-th arc (wrapping).
    Remove(usize),
    /// Insert an arc between the wrapped transition indices.
    Insert(usize, usize, u32),
    /// Replace the `i`-th arc's token count (wrapping).
    Retoken(usize, u32),
}

impl Edit {
    /// Applies the edit to a clone of `mg` (indices wrap over the current
    /// arc list / transition list, so every drawn edit is applicable).
    #[must_use]
    pub fn apply_mg(&self, mg: &MgStg) -> MgStg {
        let mut out = mg.clone();
        let arcs: Vec<(usize, usize)> = mg.arcs().map(|(k, _)| k).collect();
        let ts = mg.transitions();
        match *self {
            Edit::Remove(i) => {
                let (a, b) = arcs[i % arcs.len()];
                out.remove_arc(a, b);
            }
            Edit::Insert(a, b, tokens) => {
                out.insert_arc(ts[a % ts.len()], ts[b % ts.len()], tokens, false);
            }
            Edit::Retoken(i, tokens) => {
                let (a, b) = arcs[i % arcs.len()];
                out.remove_arc(a, b);
                out.insert_arc(a, b, tokens, false);
            }
        }
        out
    }

    /// Applies the edit to a clone of `local`'s marked graph, keeping the
    /// bound gate context.
    #[must_use]
    pub fn apply_local(&self, local: &LocalStg) -> LocalStg {
        let mut out = local.clone();
        out.mg = self.apply_mg(&local.mg);
        out
    }
}

/// The single-arc edit space.
pub fn edit() -> impl Strategy<Value = Edit> {
    (0u8..3, 0usize..32, 0usize..32, 0u32..=2).prop_map(|(kind, a, b, tokens)| match kind {
        0 => Edit::Remove(a),
        1 => Edit::Insert(a, b, tokens),
        _ => Edit::Retoken(a, tokens),
    })
}

/// A random ring MG plus a random single-arc edit — the case shape of
/// the incremental state-graph regeneration proptests.
pub fn random_mg_case() -> impl Strategy<Value = (RandomMg, Edit)> {
    let mg = (
        2usize..=5,
        proptest::collection::vec((0usize..10, 0usize..10, 0u32..=1), 0..4),
    )
        .prop_map(|(signals, extras)| RandomMg { signals, extras });
    (mg, edit())
}

/// A random local STG, a random single-arc edit, and a wrapped relaxed
/// transition index — the case shape of the incremental classification
/// proptests.
pub fn random_local_case() -> impl Strategy<Value = (RandomLocal, Edit, usize)> {
    let local = (
        2usize..=4,
        proptest::collection::vec((0usize..12, 0usize..12, 0u32..=1), 0..4),
    )
        .prop_map(|(inputs, extras)| RandomLocal { inputs, extras });
    (local, edit(), 0usize..32)
}

/// A random [`CorpusSpec`] over the whole supported envelope (already
/// sanitized).
pub fn corpus_spec() -> impl Strategy<Value = CorpusSpec> {
    (2usize..=12, 0usize..=3, 0u8..=100, 1usize..=4, 0u8..4).prop_map(
        |(signals, choices, or_density, max_fork, style)| {
            CorpusSpec {
                signals,
                choices,
                or_density,
                max_fork,
                interleave: style & 1 == 1,
                marking: if style & 2 == 0 {
                    MarkingStyle::ImplicitArcs
                } else {
                    MarkingStyle::ExplicitPlace
                },
            }
            .sanitized()
        },
    )
}

/// A random `(spec, seed)` generation case.
pub fn corpus_case() -> impl Strategy<Value = (CorpusSpec, u64)> {
    (corpus_spec(), 0u64..=u64::MAX / 2)
}

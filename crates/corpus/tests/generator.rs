//! The generator's two load-bearing guarantees, pinned as properties:
//! every generated circuit is *valid* (strict-parses, zero lint errors,
//! well-formed whenever the state graph fits the probe budget) and
//! *stable* (deterministic per seed; round-trips through the `.g` writer
//! onto the same canonical state-graph keys). The two-phase mode's
//! CSC-cleanliness — what makes the corpus synthesizable at scale — is
//! pinned as well.

use proptest::prelude::*;
use si_corpus::strategies::{corpus_case, corpus_spec};
use si_corpus::{generate, CorpusSpec, MarkingStyle};
use si_lint::{LintOptions, Severity};
use si_stg::{parse_astg, write_astg, StateGraph};
use si_synth::check_csc;

const PROBE_BUDGET: usize = 40_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Guarantee 1: the emitted `.g` text strict-parses (checked inside
    /// `generate`, which panics otherwise) and lints with zero errors.
    #[test]
    fn generated_circuits_strict_parse_and_lint_error_free((spec, seed) in corpus_case()) {
        let c = generate(&spec, seed);
        let report = si_lint::lint_text_with(
            &c.g_text,
            &LintOptions { state_budget: Some(PROBE_BUDGET) },
        );
        prop_assert!(
            report.error_count() == 0,
            "seed {} spec {:?} lints with errors:\n{:?}\n{}",
            seed,
            c.spec,
            report
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect::<Vec<_>>(),
            c.g_text
        );
    }

    /// Every generated circuit is live, 1-safe, consistent and
    /// free-choice — the construction circulates a single token through
    /// fork–join stages, so well-formedness holds by design.
    #[test]
    fn generated_circuits_are_well_formed((spec, seed) in corpus_case()) {
        let c = generate(&spec, seed);
        let health = c.stg.validate(PROBE_BUDGET).expect("probe fits");
        prop_assert!(
            health.is_well_formed(),
            "seed {} spec {:?} not well-formed: {:?}\n{}",
            seed,
            c.spec,
            health,
            c.g_text
        );
    }

    /// Guarantee 2 (stability): emitting the parsed STG back through
    /// [`write_astg`] and re-parsing lands on the same components,
    /// compared by transition *labels* (the canonical writer sorts graph
    /// lines by name, so raw transition numbering is not preserved — the
    /// labelled structure must be). The writer's text itself is a
    /// parse/write fixed point.
    #[test]
    fn generated_circuits_round_trip_through_the_writer((spec, seed) in corpus_case()) {
        let c = generate(&spec, seed);
        let written = write_astg(&c.stg);
        let reparsed = parse_astg(&written).expect("writer output strict-parses");
        prop_assert_eq!(&write_astg(&reparsed), &written);
        let keys = |stg: &si_stg::Stg| {
            let mut keys: Vec<_> = stg
                .mg_components(PROBE_BUDGET)
                .expect("decomposes")
                .iter()
                .map(|mg| {
                    let mut arcs: Vec<_> = mg
                        .arcs()
                        .map(|((a, b), attr)| {
                            (mg.label(a), mg.label(b), attr.tokens, attr.restriction)
                        })
                        .collect();
                    arcs.sort();
                    let mut labels: Vec<_> =
                        mg.transitions().iter().map(|&t| mg.label(t)).collect();
                    labels.sort();
                    (mg.initial_code(), labels, arcs)
                })
                .collect();
            keys.sort();
            keys
        };
        prop_assert_eq!(keys(&c.stg), keys(&reparsed));
    }

    /// Two-phase circuits (`interleave = false`) are CSC-clean: inside a
    /// burst the guard signal disambiguates the rising and falling
    /// phases, and the all-zero codes at the choice/merge places only
    /// excite input guards.
    #[test]
    fn two_phase_circuits_are_csc_clean((spec, seed) in corpus_case()) {
        let spec = CorpusSpec { interleave: false, ..spec };
        let c = generate(&spec, seed);
        let sg = StateGraph::of_stg(&c.stg, PROBE_BUDGET).expect("consistent by construction");
        prop_assert!(
            check_csc(&c.stg, &sg).is_ok(),
            "seed {} spec {:?} has a CSC conflict\n{}",
            seed,
            c.spec,
            c.g_text
        );
    }

    /// Determinism: one seed, one circuit — byte-identical text and
    /// identical parse across repeated calls.
    #[test]
    fn generation_is_a_pure_function_of_spec_and_seed((spec, seed) in corpus_case()) {
        let a = generate(&spec, seed);
        let b = generate(&spec, seed);
        prop_assert_eq!(&a.g_text, &b.g_text);
        prop_assert_eq!(&a.stg, &b.stg);
        prop_assert_eq!(a.spec, b.spec);
    }

    /// Sanitization is idempotent and `generate` only ever sees (and
    /// reports) sanitized specs.
    #[test]
    fn sanitization_is_idempotent(spec in corpus_spec()) {
        prop_assert_eq!(spec.sanitized(), spec);
        let c = generate(&spec, 7);
        prop_assert_eq!(c.spec, spec);
    }
}

/// The canonical seed → spec derivation stays deterministic and inside
/// the sanitized envelope for every seed (spot-checked densely at the
/// low end where the fuzzer starts).
#[test]
fn from_seed_is_deterministic_and_sanitized() {
    for seed in (0u64..512).chain([u64::MAX, u64::MAX / 2]) {
        let a = CorpusSpec::from_seed(seed, 12);
        let b = CorpusSpec::from_seed(seed, 12);
        assert_eq!(a, b);
        assert_eq!(a.sanitized(), a);
        assert!((2..=12).contains(&a.signals), "seed {seed}: {a:?}");
        if a.choices > 0 {
            assert_eq!(a.marking, MarkingStyle::ExplicitPlace);
        }
    }
}

//! The static checks. Everything here is purely structural — no state
//! graph is ever explored — so linting a specification is linear-ish in
//! its size, never in its (exponential) marking space.
//!
//! Severity policy: a finding is an **error** only when the defect
//! *definitely* breaks the derivation flow (strict parse failure, or a
//! structural property the engine's well-formedness gate requires); it is
//! a **warning** when the structure is suspicious but a consistent token
//! game could still exist (e.g. rise/fall imbalance in a net with
//! choice). Lint-clean-of-errors therefore implies the strict parser
//! accepts the file.

use si_stg::{parse_astg_lenient, LenientParse, ParseErrorKind, Span, Stg};

use crate::diag::{Code, Diagnostic, LintReport, Severity};

/// Tuning knobs for the linter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintOptions {
    /// The state-graph exploration budget the downstream engine will use,
    /// if known: enables the [`Code::SI016`] infeasibility estimate.
    pub state_budget: Option<usize>,
}

/// Lints a `.g` specification text with default options.
pub fn lint_text(text: &str) -> LintReport {
    lint_text_with(text, &LintOptions::default())
}

/// Lints a `.g` specification text.
pub fn lint_text_with(text: &str, opts: &LintOptions) -> LintReport {
    lint_parsed(&parse_astg_lenient(text), opts)
}

/// Lints an already-parsed (lenient) specification — the engine and the
/// suite pre-flight reuse their parse through this entry point.
pub fn lint_parsed(parsed: &LenientParse, opts: &LintOptions) -> LintReport {
    let mut report = LintReport {
        model: parsed.stg.name.clone(),
        diagnostics: Vec::new(),
    };
    parse_defects(parsed, &mut report);
    structural_checks(parsed, opts, &mut report);
    report.sort();
    report
}

/// The text between the first pair of backticks, if any — parser messages
/// quote the offending name this way.
fn backticked(message: &str) -> Option<&str> {
    let start = message.find('`')? + 1;
    let end = start + message[start..].find('`')?;
    Some(&message[start..end])
}

/// Maps every parser defect onto a diagnostic. Fatal parse kinds become
/// errors (so zero lint errors ⇒ the strict parser accepts the file),
/// merged duplicate arcs a warning.
fn parse_defects(parsed: &LenientParse, report: &mut LintReport) {
    for e in &parsed.errors {
        let (code, severity) = match e.kind {
            ParseErrorKind::Syntax => (Code::SI001, Severity::Error),
            ParseErrorKind::UnknownSection => (Code::SI002, Severity::Error),
            ParseErrorKind::DummyUnsupported => (Code::SI003, Severity::Error),
            ParseErrorKind::UndeclaredSignal => (Code::SI004, Severity::Error),
            ParseErrorKind::DuplicateSignal => (Code::SI005, Severity::Error),
            ParseErrorKind::DuplicateArc => (Code::SI007, Severity::Warning),
        };
        let mut d = Diagnostic::new(code, severity, Some(e.span), e.message.clone());
        match e.kind {
            ParseErrorKind::UnknownSection => {
                d = d.with_fix("remove the section or check the directive spelling");
            }
            ParseErrorKind::DummyUnsupported => {
                d = d.with_fix("expand dummy transitions into signal transitions");
            }
            ParseErrorKind::UndeclaredSignal => {
                if let Some(name) = backticked(&e.message) {
                    d = d.with_fix(format!(
                        "declare `{name}` in `.inputs`, `.outputs` or `.internal`"
                    ));
                }
            }
            ParseErrorKind::DuplicateSignal => {
                if let Some(name) = backticked(&e.message) {
                    // The parser kept the first declaration; point at it.
                    if let Some(first) = parsed
                        .stg
                        .signal_by_name(name)
                        .and_then(|s| parsed.spans.signals.get(s.0).copied())
                    {
                        d = d.with_related(first, "first declared here");
                    }
                    d = d.with_fix(format!("keep a single declaration of `{name}`"));
                }
            }
            ParseErrorKind::DuplicateArc => {
                d = d.with_fix("remove the repeated arc");
            }
            ParseErrorKind::Syntax => {}
        }
        report.diagnostics.push(d);
    }
}

fn signal_span(parsed: &LenientParse, idx: usize) -> Option<Span> {
    parsed.spans.signals.get(idx).copied()
}

fn transition_span(parsed: &LenientParse, idx: usize) -> Option<Span> {
    parsed.spans.transitions.get(idx).copied()
}

fn place_span(parsed: &LenientParse, idx: usize) -> Option<Span> {
    parsed.spans.places.get(idx).copied()
}

fn structural_checks(parsed: &LenientParse, opts: &LintOptions, report: &mut LintReport) {
    let stg = &parsed.stg;
    let net = stg.net();
    let push = |report: &mut LintReport, d: Diagnostic| report.diagnostics.push(d);

    // SI006: declared signals with no transitions in the graph.
    for s in stg.signal_ids() {
        if stg.transitions_of(s).is_empty() {
            let name = stg.signal_name(s);
            push(
                report,
                Diagnostic::new(
                    Code::SI006,
                    Severity::Warning,
                    signal_span(parsed, s.0),
                    format!("signal `{name}` is declared but never used in `.graph`"),
                )
                .with_fix(format!(
                    "remove the declaration of `{name}` or add its transitions"
                )),
            );
        }
    }

    // SI008: self-loop places (consumed and produced by one transition).
    for p in net.places() {
        if let Some(&t) = net
            .place_pre(p)
            .iter()
            .find(|t| net.place_post(p).contains(t))
        {
            push(
                report,
                Diagnostic::new(
                    Code::SI008,
                    Severity::Error,
                    place_span(parsed, p.0),
                    format!(
                        "place `{}` is both input and output of transition `{}`",
                        net.place_name(p),
                        net.transition_name(t)
                    ),
                )
                .with_related(
                    transition_span(parsed, t.0).unwrap_or(Span::point(0, 1, 1)),
                    "the looping transition first occurs here",
                )
                .with_fix("split the self-loop into separate request/acknowledge places"),
            );
        }
    }

    let m0 = net.initial_marking();
    let tokens: u32 = m0.iter().sum();

    // SI009: nothing is marked, so nothing can ever fire.
    if tokens == 0 && net.transition_count() > 0 {
        push(
            report,
            Diagnostic::new(
                Code::SI009,
                Severity::Error,
                parsed.spans.marking,
                "no place holds an initial token; no transition can ever fire",
            )
            .with_fix("mark at least one place in `.marking { ... }`"),
        );
    }

    // SI010: the initial marking is already not 1-safe.
    for p in net.places() {
        let k = m0[p.0];
        if k > 1 {
            push(
                report,
                Diagnostic::new(
                    Code::SI010,
                    Severity::Error,
                    place_span(parsed, p.0),
                    format!(
                        "place `{}` starts with {k} tokens; the derivation requires 1-safe nets",
                        net.place_name(p)
                    ),
                )
                .with_fix("reduce the initial marking of the place to at most one token"),
            );
        }
    }
    // Source transitions pump tokens without bound — also a safety hole.
    for t in net.transitions() {
        if net.transition_pre(t).is_empty() {
            push(
                report,
                Diagnostic::new(
                    Code::SI010,
                    Severity::Error,
                    transition_span(parsed, t.0),
                    format!(
                        "transition `{}` has no input places and can fire unboundedly",
                        net.transition_name(t)
                    ),
                )
                .with_fix("add an input place so the transition is token-controlled"),
            );
        }
    }

    // SI011: structurally dead transitions. Skipped when nothing is
    // marked at all — SI009 already says everything is dead.
    if tokens > 0 {
        let fireable = net.structurally_fireable();
        for t in net.transitions() {
            if !fireable[t.0] {
                push(
                    report,
                    Diagnostic::new(
                        Code::SI011,
                        Severity::Error,
                        transition_span(parsed, t.0),
                        format!(
                            "transition `{}` can never fire: its input places can never all be marked",
                            net.transition_name(t)
                        ),
                    )
                    .with_fix("check the arcs into the transition or the initial marking"),
                );
            }
        }
    }

    // SI012: the skeleton splits into disconnected pieces.
    let components = net.weakly_connected_components();
    if components.len() > 1 {
        let mut d = Diagnostic::new(
            Code::SI012,
            Severity::Warning,
            components
                .get(1)
                .and_then(|c| c.first())
                .and_then(|t| transition_span(parsed, t.0)),
            format!(
                "the specification splits into {} disconnected components",
                components.len()
            ),
        );
        for (i, c) in components.iter().enumerate() {
            if let Some(span) = c.first().and_then(|t| transition_span(parsed, t.0)) {
                d = d.with_related(
                    span,
                    format!(
                        "component {} starts at transition `{}`",
                        i + 1,
                        net.transition_name(c[0])
                    ),
                );
            }
        }
        push(
            report,
            d.with_fix("connect the components, or split them into separate specifications"),
        );
    }

    // SI013: rise/fall imbalance. Equal counts are necessary for
    // consistency on a marked graph (every transition fires once per
    // cycle); with choice the branches may balance dynamically, so the
    // finding is only a warning there.
    let is_mg = net.is_marked_graph();
    for s in stg.signal_ids() {
        let ts = stg.transitions_of(s);
        if ts.is_empty() {
            continue;
        }
        let plus = ts
            .iter()
            .filter(|&&t| stg.label(t).polarity == si_stg::Polarity::Plus)
            .count();
        let minus = ts.len() - plus;
        if plus != minus {
            let name = stg.signal_name(s);
            let severity = if is_mg {
                Severity::Error
            } else {
                Severity::Warning
            };
            push(
                report,
                Diagnostic::new(
                    Code::SI013,
                    severity,
                    signal_span(parsed, s.0),
                    format!(
                        "signal `{name}` has {plus} rising but {minus} falling transitions; \
                         consistent STGs alternate `+` and `-`"
                    ),
                )
                .with_fix(format!(
                    "balance the rising and falling transitions of `{name}`"
                )),
            );
        }
    }

    // SI014: free-choice violations — a choice place whose successor also
    // waits on other places defeats Hack's MG allocation.
    for p in net.places() {
        if !net.is_choice_place(p) {
            continue;
        }
        let offenders: Vec<_> = net
            .place_post(p)
            .iter()
            .copied()
            .filter(|&t| net.transition_pre(t).len() > 1)
            .collect();
        if offenders.is_empty() {
            continue;
        }
        let mut d = Diagnostic::new(
            Code::SI014,
            Severity::Error,
            place_span(parsed, p.0),
            format!(
                "choice place `{}` is not free-choice: {} of its successors also wait on other places",
                net.place_name(p),
                offenders.len()
            ),
        );
        for t in &offenders {
            if let Some(span) = transition_span(parsed, t.0) {
                d = d.with_related(
                    span,
                    format!(
                        "successor `{}` has {} input places",
                        net.transition_name(*t),
                        net.transition_pre(*t).len()
                    ),
                );
            }
        }
        push(
            report,
            d.with_fix(
                "give each successor the choice place as its only input, or remove the choice",
            ),
        );
    }

    // SI015: OR-causality misuse — a merge place whose sources are not
    // separated by any choice. In a choice-free net every fireable source
    // eventually fires, double-marking the place (definite error); with
    // choice present the branches may be mutually exclusive, so it is
    // only flagged as a warning.
    let has_choice = net.places().any(|p| net.is_choice_place(p));
    for p in net.places() {
        let sources = net.place_pre(p);
        if sources.len() <= 1 {
            continue;
        }
        let severity = if has_choice {
            Severity::Warning
        } else {
            Severity::Error
        };
        let detail = if has_choice {
            "verify the source transitions are mutually exclusive"
        } else {
            "in a choice-free net every source fires, double-marking the place"
        };
        let mut d = Diagnostic::new(
            Code::SI015,
            severity,
            place_span(parsed, p.0),
            format!(
                "merge place `{}` joins {} source transitions: {detail}",
                net.place_name(p),
                sources.len()
            ),
        );
        for t in sources {
            if let Some(span) = transition_span(parsed, t.0) {
                d = d.with_related(
                    span,
                    format!(
                        "source transition `{}` first occurs here",
                        net.transition_name(*t)
                    ),
                );
            }
        }
        push(
            report,
            d.with_fix("guard the sources by a common choice, or serialize them"),
        );
    }

    // SI016: the structural state-count lower bound already exceeds the
    // exploration budget — the derivation would burn the whole budget and
    // fail anyway.
    if let Some(budget) = opts.state_budget {
        let bound = net.transition_count();
        if bound > budget {
            push(
                report,
                Diagnostic::new(
                    Code::SI016,
                    Severity::Warning,
                    None,
                    format!(
                        "the state graph needs at least {bound} states (every marking on a \
                         cycle through all {bound} transitions is distinct) but the \
                         exploration budget is {budget}"
                    ),
                )
                .with_fix("raise the state-graph budget or decompose the specification"),
            );
        }
    }
}

/// Lints an already-built [`Stg`] (no source text, so no spans): used by
/// callers that assemble nets programmatically. Parse-level checks do not
/// apply; structural checks all run.
pub fn lint_stg(stg: &Stg, opts: &LintOptions) -> LintReport {
    let parsed = LenientParse {
        stg: stg.clone(),
        errors: Vec::new(),
        spans: si_stg::SpecSpans::default(),
    };
    lint_parsed(&parsed, opts)
}

/// Convenience predicate used by gate tests: no error-severity findings.
pub fn is_error_free(text: &str) -> bool {
    !lint_text(text).has_errors()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;

    fn codes(report: &LintReport) -> Vec<Code> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    const CLEAN: &str = "\
.model handshake
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
";

    #[test]
    fn clean_handshake_has_no_findings() {
        let report = lint_text(CLEAN);
        assert!(
            report.is_clean(),
            "unexpected findings: {:?}",
            report.diagnostics
        );
        assert_eq!(report.model, "handshake");
    }

    #[test]
    fn imec_benchmark_is_error_free() {
        let report = lint_text(si_stg::IMEC_RAM_READ_SBUF_G);
        assert!(
            !report.has_errors(),
            "unexpected errors: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn undeclared_signal_is_si004_with_fix() {
        let report = lint_text(
            ".model x\n.inputs a\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        );
        assert_eq!(codes(&report), vec![Code::SI004]);
        let d = &report.diagnostics[0];
        assert_eq!(d.severity, Severity::Error);
        assert!(d.fix.as_deref().unwrap_or_default().contains("declare `b`"));
        assert_eq!(d.span.expect("span").line, 4);
    }

    #[test]
    fn duplicate_signal_points_at_first_declaration() {
        let report =
            lint_text(".model x\n.inputs a\n.outputs a b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n");
        assert_eq!(codes(&report), vec![Code::SI005]);
        let d = &report.diagnostics[0];
        assert_eq!(d.related.len(), 1);
        assert_eq!(d.related[0].span.line, 2);
    }

    #[test]
    fn unused_signal_is_a_warning() {
        let report = lint_text(
            ".model x\n.inputs a zz\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        );
        assert_eq!(codes(&report), vec![Code::SI006]);
        assert_eq!(report.diagnostics[0].severity, Severity::Warning);
        assert!(!report.has_errors());
    }

    #[test]
    fn empty_marking_is_si009() {
        let report = lint_text(
            ".model x\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { }\n.end\n",
        );
        // Every transition is also structurally dead, but SI011 is
        // suppressed: SI009 already explains why.
        assert_eq!(codes(&report), vec![Code::SI009]);
    }

    #[test]
    fn overfilled_place_is_si010() {
        let report = lint_text(
            ".model x\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+>=2 }\n.end\n",
        );
        assert_eq!(codes(&report), vec![Code::SI010]);
    }

    #[test]
    fn dead_branch_is_si011() {
        // The main ring is marked; p_dead can only be fed by c-, which
        // itself needs c+ — a circular wait no token ever enters, so
        // both c transitions are structurally dead (though connected to
        // the ring through a+).
        let report = lint_text(
            "\
.model x
.inputs a c
.outputs b
.graph
a+ b+ c+
b+ a-
a- b-
b- a+
p_dead c+
c+ c-
c- p_dead
.marking { <b-,a+> }
.end
",
        );
        assert_eq!(codes(&report), vec![Code::SI011, Code::SI011]);
    }

    #[test]
    fn disconnected_rings_are_si012() {
        let report = lint_text(
            "\
.model x
.inputs a
.outputs b
.graph
a+ a-
a- a+
b+ b-
b- b+
.marking { <a-,a+> <b-,b+> }
.end
",
        );
        assert!(codes(&report).contains(&Code::SI012));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::SI012)
            .expect("present");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.related.len(), 2);
    }

    #[test]
    fn rise_fall_imbalance_is_si013_error_on_marked_graphs() {
        let report = lint_text(
            ".model x\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a+/2\na+/2 b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::SI013)
            .expect("imbalance found");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("`a`"));
    }

    #[test]
    fn free_choice_violation_is_si014() {
        // p0 chooses between a+ and b+, but b+ also waits on q — the
        // classic non-free-choice confusion.
        let report = lint_text(
            "\
.model x
.inputs a b
.outputs c
.graph
p0 a+ b+
q b+
a+ c+
b+ c+
c+ a-
a- b-
b- c-
c- p0 q
.marking { p0 q }
.end
",
        );
        assert!(codes(&report).contains(&Code::SI014));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::SI014)
            .expect("present");
        assert_eq!(d.severity, Severity::Error);
        assert!(!d.related.is_empty());
    }

    #[test]
    fn merge_without_choice_is_si015_error() {
        // p_join has two producers and the net has no choice anywhere:
        // both a+ and b+ fire, so p_join collects two tokens.
        let report = lint_text(
            "\
.model x
.inputs a b
.outputs c
.graph
a+ p_join
b+ p_join
p_join c+
c+ a- b-
a- a+
b- b+
.marking { <a-,a+> <b-,b+> }
.end
",
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::SI015)
            .expect("present");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.related.len(), 2);
    }

    #[test]
    fn merge_with_choice_is_si015_warning() {
        // The same merge, but guarded by a free choice: the sources are
        // mutually exclusive, so only a warning remains.
        let report = lint_text(
            "\
.model x
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ p_join
b+ p_join
p_join c+
c+ c-
c- p0
.marking { p0 }
.end
",
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::SI015)
            .expect("present");
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn budget_infeasibility_is_si016() {
        let opts = LintOptions {
            state_budget: Some(3),
        };
        let report = lint_text_with(CLEAN, &opts);
        assert_eq!(codes(&report), vec![Code::SI016]);
        assert_eq!(report.diagnostics[0].severity, Severity::Warning);
        // A generous budget stays silent.
        assert!(lint_text_with(
            CLEAN,
            &LintOptions {
                state_budget: Some(100)
            }
        )
        .is_clean());
    }

    #[test]
    fn lint_stg_runs_structural_checks_without_spans() {
        let stg = si_stg::parse_astg(CLEAN).expect("valid");
        let report = lint_stg(&stg, &LintOptions::default());
        assert!(report.is_clean());
    }

    #[test]
    fn all_parse_kinds_map_to_codes() {
        let report = lint_text(
            "\
.model broken
.inputs a a
.frequency 50
.dummy d0
.graph
a+ b+
a+ b+
b+ a-
a- b-
b- a+
p0 p1
.marking { <b-,a+> qq }
.end
",
        );
        let cs = codes(&report);
        for c in [
            Code::SI001,
            Code::SI002,
            Code::SI003,
            Code::SI004,
            Code::SI005,
            Code::SI007,
        ] {
            assert!(cs.contains(&c), "missing {c} in {cs:?}");
        }
        assert!(report.has_errors());
    }
}

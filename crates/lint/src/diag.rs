//! The diagnostics model: stable codes, severities, span-carrying
//! diagnostics with related notes and fix hints, and the [`LintReport`]
//! container the renderers consume.

use std::fmt;

use si_stg::Span;

/// Stable diagnostic codes. Codes are append-only: a published code never
/// changes meaning, and retired codes are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Malformed syntax the parser had to skip (place-to-place arcs, bad
    /// marking bodies, graph lines outside `.graph`, missing `.graph`).
    SI001,
    /// Unrecognized `.section` directive (skipped).
    SI002,
    /// `.dummy` transitions are not supported by the derivation flow.
    SI003,
    /// A transition on a signal no section declares (assumed `.inputs`).
    SI004,
    /// A signal declared more than once (first declaration wins).
    SI005,
    /// A declared signal with no transitions in the graph.
    SI006,
    /// The same arc written twice (merged).
    SI007,
    /// A self-loop: a place both consumed and produced by one transition.
    SI008,
    /// No place holds an initial token, so nothing can ever fire.
    SI009,
    /// The initial marking is not 1-safe (a place holds >1 token, or a
    /// source transition can pump tokens unboundedly).
    SI010,
    /// A transition that can never fire, by structure alone.
    SI011,
    /// The net's skeleton splits into disconnected components.
    SI012,
    /// Rise/fall transition counts differ for a signal, breaking the
    /// alternation every consistent STG needs.
    SI013,
    /// A choice place whose successor also waits on other places —
    /// not free-choice, which defeats Hack's MG allocation.
    SI014,
    /// A merge place whose source transitions are not choice-separated:
    /// OR-causality misuse that double-marks the place.
    SI015,
    /// The structural state-count lower bound already exceeds the
    /// configured exploration budget.
    SI016,
}

impl Code {
    /// Every code, in order — the fixture corpus and the catalogue doc
    /// are checked against this list.
    pub const ALL: [Code; 16] = [
        Code::SI001,
        Code::SI002,
        Code::SI003,
        Code::SI004,
        Code::SI005,
        Code::SI006,
        Code::SI007,
        Code::SI008,
        Code::SI009,
        Code::SI010,
        Code::SI011,
        Code::SI012,
        Code::SI013,
        Code::SI014,
        Code::SI015,
        Code::SI016,
    ];

    /// The stable code string (`"SI001"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::SI001 => "SI001",
            Code::SI002 => "SI002",
            Code::SI003 => "SI003",
            Code::SI004 => "SI004",
            Code::SI005 => "SI005",
            Code::SI006 => "SI006",
            Code::SI007 => "SI007",
            Code::SI008 => "SI008",
            Code::SI009 => "SI009",
            Code::SI010 => "SI010",
            Code::SI011 => "SI011",
            Code::SI012 => "SI012",
            Code::SI013 => "SI013",
            Code::SI014 => "SI014",
            Code::SI015 => "SI015",
            Code::SI016 => "SI016",
        }
    }

    /// One-line summary of what the code means, shared by the renderers
    /// and the `docs/diagnostics.md` catalogue.
    pub fn title(self) -> &'static str {
        match self {
            Code::SI001 => "syntax error",
            Code::SI002 => "unknown section",
            Code::SI003 => "dummy transitions unsupported",
            Code::SI004 => "undeclared signal",
            Code::SI005 => "duplicate signal declaration",
            Code::SI006 => "unused signal",
            Code::SI007 => "duplicate arc",
            Code::SI008 => "self-loop arc",
            Code::SI009 => "empty initial marking",
            Code::SI010 => "initial marking not 1-safe",
            Code::SI011 => "structurally dead transition",
            Code::SI012 => "disconnected specification",
            Code::SI013 => "signal consistency violation",
            Code::SI014 => "free-choice violation",
            Code::SI015 => "OR-causality misuse",
            Code::SI016 => "state budget infeasible",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational context.
    Note,
    /// Suspicious but not definitely wrong; the derivation may still run.
    Warning,
    /// A defect that makes the specification unusable for derivation.
    Error,
}

impl Severity {
    /// Lower-case renderer label.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A secondary location attached to a diagnostic (`the other declaration
/// is here`, `the merge place is created here`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Related {
    /// Where.
    pub span: Span,
    /// Why this location matters.
    pub message: String,
}

/// One finding: code, severity, primary span, message, optional related
/// spans and an optional fix hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Error / warning / note.
    pub severity: Severity,
    /// Primary source location (`None` for whole-spec findings with no
    /// anchor, e.g. an empty marking in a file with no `.marking` line).
    pub span: Option<Span>,
    /// What is wrong, in one sentence.
    pub message: String,
    /// Secondary locations.
    pub related: Vec<Related>,
    /// How to fix it, when a fix is mechanical enough to suggest.
    pub fix: Option<String>,
}

impl Diagnostic {
    /// A new diagnostic with no related spans and no fix hint.
    pub fn new(
        code: Code,
        severity: Severity,
        span: Option<Span>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity,
            span,
            message: message.into(),
            related: Vec::new(),
            fix: None,
        }
    }

    /// Attaches a related span.
    pub fn with_related(mut self, span: Span, message: impl Into<String>) -> Self {
        self.related.push(Related {
            span,
            message: message.into(),
        });
        self
    }

    /// Attaches a fix hint.
    pub fn with_fix(mut self, fix: impl Into<String>) -> Self {
        self.fix = Some(fix.into());
        self
    }
}

/// All diagnostics for one specification, in source order (span-less
/// findings last), plus the model name the linter recovered.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// The `.model` name (or `"stg"` if none).
    pub model: String,
    /// The findings, sorted by primary span then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.severity_count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.severity_count(Severity::Warning)
    }

    fn severity_count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Sorts findings into the canonical order: primary span (span-less
    /// findings last), then code, then message — deterministic for the
    /// golden suite.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                (
                    d.span
                        .map_or((usize::MAX, usize::MAX), |s| (s.start, s.end)),
                    d.code,
                    d.message.clone(),
                )
            };
            key(a).cmp(&key(b))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut strings: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        strings.dedup();
        assert_eq!(strings.len(), Code::ALL.len());
        for (i, c) in Code::ALL.iter().enumerate() {
            assert_eq!(c.as_str(), format!("SI{:03}", i + 1));
            assert!(!c.title().is_empty());
        }
    }

    #[test]
    fn report_counts_and_sorting() {
        let span = |start: usize| Span {
            start,
            end: start + 1,
            line: 1,
            col: start + 1,
        };
        let mut report = LintReport {
            model: "m".into(),
            diagnostics: vec![
                Diagnostic::new(Code::SI006, Severity::Warning, None, "unused"),
                Diagnostic::new(Code::SI004, Severity::Error, Some(span(9)), "undeclared"),
                Diagnostic::new(Code::SI005, Severity::Error, Some(span(2)), "duplicate"),
            ],
        };
        report.sort();
        assert_eq!(report.diagnostics[0].code, Code::SI005);
        assert_eq!(report.diagnostics[1].code, Code::SI004);
        assert_eq!(report.diagnostics[2].code, Code::SI006);
        assert_eq!(report.error_count(), 2);
        assert_eq!(report.warning_count(), 1);
        assert!(report.has_errors());
        assert!(!report.is_clean());
    }

    #[test]
    fn builder_attaches_related_and_fix() {
        let s = Span {
            start: 0,
            end: 3,
            line: 1,
            col: 1,
        };
        let d = Diagnostic::new(Code::SI005, Severity::Error, Some(s), "declared twice")
            .with_related(s, "first declared here")
            .with_fix("remove one declaration");
        assert_eq!(d.related.len(), 1);
        assert_eq!(d.fix.as_deref(), Some("remove one declaration"));
    }
}

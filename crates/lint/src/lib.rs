//! `si-lint` — static specification analysis for STGs, with
//! span-carrying diagnostics.
//!
//! The derivation pipeline assumes its STG inputs are live, safe,
//! consistent and free-choice; a malformed `.g` file used to either die
//! on the first parse error or burn a full state-graph exploration before
//! failing deep inside decomposition. This crate front-loads that
//! feedback: it lints the *structure* of a specification — no state graph
//! is ever explored — and reports every defect in one pass as a
//! [`Diagnostic`] with a stable code (`SI001`…`SI016`), a severity, a
//! byte-span with line/column, optional related spans, and a fix hint.
//!
//! Layers:
//!
//! - [`Code`], [`Severity`], [`Diagnostic`], [`LintReport`] — the
//!   diagnostics model (`diag` module);
//! - [`lint_text`] / [`lint_text_with`] / [`lint_parsed`] /
//!   [`lint_stg`] — the checks, built on the error-recovering
//!   `si_stg::parse_astg_lenient` front-end (`checks` module);
//! - [`render_text`] / [`render_json`] / [`json_diagnostics`] — the
//!   renderers (`render` module).
//!
//! Severity contract: **zero error-severity findings implies the strict
//! parser accepts the file** and none of the structural properties the
//! engine's well-formedness gate requires are definitely violated.
//! Warnings flag suspicious-but-possibly-fine structure.
//!
//! ```
//! use si_lint::{lint_text, Code};
//!
//! let report = lint_text(".model x\n.inputs a\n.graph\na+ b+\n.end\n");
//! assert!(report.has_errors());
//! let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
//! assert!(codes.contains(&Code::SI004)); // undeclared signal `b`
//! assert!(codes.contains(&Code::SI009)); // nothing is marked
//! ```

mod checks;
mod diag;
mod render;

pub use checks::{is_error_free, lint_parsed, lint_stg, lint_text, lint_text_with, LintOptions};
pub use diag::{Code, Diagnostic, LintReport, Related, Severity};
pub use render::{json_diagnostics, json_escape, render_json, render_sexp, render_text};

//! Renderers: a rustc-style human-readable text format with source
//! excerpts and carets, and a dependency-free JSON format for tooling.
//! Both are deterministic — the golden suite pins them byte-for-byte.

use std::fmt::Write as _;

use crate::diag::{Diagnostic, LintReport};

/// Renders a report as human-readable text with source excerpts:
///
/// ```text
/// error[SI004]: undeclared signal `b`
///   --> spec.g:6:4
///    |
///  6 | a+ b+
///    |    ^^
///    = help: declare `b` in `.inputs`, `.outputs` or `.internal`
///
/// spec.g: 1 error(s), 0 warning(s)
/// ```
pub fn render_text(report: &LintReport, source: &str, origin: &str) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        render_text_one(&mut out, d, source, origin);
        out.push('\n');
    }
    if report.is_clean() {
        let _ = writeln!(out, "{origin}: clean");
    } else {
        let _ = writeln!(
            out,
            "{origin}: {} error(s), {} warning(s)",
            report.error_count(),
            report.warning_count()
        );
    }
    out
}

fn render_text_one(out: &mut String, d: &Diagnostic, source: &str, origin: &str) {
    let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
    if let Some(span) = d.span {
        let _ = writeln!(out, "  --> {origin}:{}:{}", span.line, span.col);
        if let Some(text) = source.lines().nth(span.line.saturating_sub(1)) {
            let gutter = span.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, " {pad} |");
            let _ = writeln!(out, " {gutter} | {text}");
            // Caret under the span, clamped to the visible line. Columns
            // count characters, so the caret prefix is built per character
            // (tabs kept as tabs to stay aligned under tab-indented lines)
            // and the caret width counts characters of the spanned text,
            // not bytes — multi-byte names get one caret per glyph.
            let col = span.col.max(1);
            let prefix: String = text
                .chars()
                .take(col - 1)
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            let byte_off = text
                .char_indices()
                .nth(col - 1)
                .map_or(text.len(), |(i, _)| i);
            let span_text = text
                .get(byte_off..(byte_off + span.len()).min(text.len()))
                .unwrap_or("");
            let width = span_text.chars().count().max(1);
            let _ = writeln!(out, " {pad} | {prefix}{}", "^".repeat(width));
        }
    }
    for r in &d.related {
        let _ = writeln!(
            out,
            "   = note: {} ({origin}:{}:{})",
            r.message, r.span.line, r.span.col
        );
    }
    if let Some(fix) = &d.fix {
        let _ = writeln!(out, "   = help: {fix}");
    }
}

/// Escapes a string for a JSON string literal (no surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the diagnostics as a JSON array, each line prefixed by
/// `indent` — embeddable inside a larger JSON document (the
/// `check_hazard --format json` payload uses this).
pub fn json_diagnostics(report: &LintReport, indent: &str) -> String {
    if report.diagnostics.is_empty() {
        return "[]".to_string();
    }
    let inner = format!("{indent}  ");
    let items: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| json_diagnostic(d, &inner))
        .collect();
    format!("[\n{}\n{indent}]", items.join(",\n"))
}

fn json_span(span: si_stg::Span) -> String {
    format!(
        "{{\"line\": {}, \"col\": {}, \"start\": {}, \"end\": {}}}",
        span.line, span.col, span.start, span.end
    )
}

fn json_diagnostic(d: &Diagnostic, indent: &str) -> String {
    let mut fields = vec![
        format!("\"code\": \"{}\"", d.code),
        format!("\"severity\": \"{}\"", d.severity),
        format!("\"title\": \"{}\"", json_escape(d.code.title())),
        format!("\"message\": \"{}\"", json_escape(&d.message)),
        format!(
            "\"span\": {}",
            d.span.map_or_else(|| "null".to_string(), json_span)
        ),
    ];
    if !d.related.is_empty() {
        let rels: Vec<String> = d
            .related
            .iter()
            .map(|r| {
                format!(
                    "{{\"message\": \"{}\", \"span\": {}}}",
                    json_escape(&r.message),
                    json_span(r.span)
                )
            })
            .collect();
        fields.push(format!("\"related\": [{}]", rels.join(", ")));
    }
    if let Some(fix) = &d.fix {
        fields.push(format!("\"fix\": \"{}\"", json_escape(fix)));
    }
    let body: Vec<String> = fields.iter().map(|f| format!("{indent}  {f}")).collect();
    format!("{indent}{{\n{}\n{indent}}}", body.join(",\n"))
}

/// Renders a complete report as a `lint-report` document in the
/// S-expression interchange format (`docs/interchange.md`). Spans ride in
/// the same `[start, end, line, col]` shape the parse-tree dumps use.
pub fn render_sexp(report: &LintReport, origin: &str) -> String {
    let mut w = si_stg::sexp::SexpWriter::new("lint-report");
    w.open("lint-report");
    w.string(origin);
    w.open("model");
    w.string(&report.model);
    w.close();
    w.open("errors");
    w.atom(&report.error_count().to_string());
    w.close();
    w.open("warnings");
    w.atom(&report.warning_count().to_string());
    w.close();
    for d in &report.diagnostics {
        w.open("diagnostic");
        w.atom(&d.code.to_string());
        w.atom(&d.severity.to_string());
        if let Some(span) = d.span {
            w.span(span);
        }
        w.string(&d.message);
        for r in &d.related {
            w.open("related");
            w.span(r.span);
            w.string(&r.message);
            w.close();
        }
        if let Some(fix) = &d.fix {
            w.open("fix");
            w.string(fix);
            w.close();
        }
        w.close();
    }
    w.close();
    w.finish()
}

/// Renders a complete report as a standalone JSON document.
pub fn render_json(report: &LintReport, origin: &str) -> String {
    format!(
        "{{\n  \"origin\": \"{}\",\n  \"model\": \"{}\",\n  \"errors\": {},\n  \"warnings\": {},\n  \"diagnostics\": {}\n}}\n",
        json_escape(origin),
        json_escape(&report.model),
        report.error_count(),
        report.warning_count(),
        json_diagnostics(report, "  ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Diagnostic, LintReport, Severity};
    use si_stg::Span;

    fn sample() -> (LintReport, &'static str) {
        let source = ".model x\n.inputs a\n.graph\na+ b+\n.end\n";
        let span = Span {
            start: 30,
            end: 32,
            line: 4,
            col: 4,
        };
        let report = LintReport {
            model: "x".into(),
            diagnostics: vec![Diagnostic::new(
                Code::SI004,
                Severity::Error,
                Some(span),
                "undeclared signal `b`",
            )
            .with_fix("declare `b` in `.inputs`, `.outputs` or `.internal`")],
        };
        (report, source)
    }

    #[test]
    fn text_renderer_shows_excerpt_and_caret() {
        let (report, source) = sample();
        let text = render_text(&report, source, "spec.g");
        assert!(text.contains("error[SI004]: undeclared signal `b`"));
        assert!(text.contains("--> spec.g:4:4"));
        assert!(text.contains(" 4 | a+ b+"));
        assert!(text.contains("   |    ^^"));
        assert!(text.contains("= help: declare `b`"));
        assert!(text.ends_with("spec.g: 1 error(s), 0 warning(s)\n"));
    }

    #[test]
    fn clean_report_renders_a_clean_line() {
        let report = LintReport {
            model: "x".into(),
            diagnostics: vec![],
        };
        assert_eq!(render_text(&report, "", "spec.g"), "spec.g: clean\n");
        let json = render_json(&report, "spec.g");
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"errors\": 0"));
    }

    #[test]
    fn json_renderer_is_well_formed() {
        let (report, _) = sample();
        let json = render_json(&report, "spec.g");
        assert!(json.contains("\"code\": \"SI004\""));
        assert!(json.contains("\"severity\": \"error\""));
        assert!(json.contains("\"span\": {\"line\": 4, \"col\": 4, \"start\": 30, \"end\": 32}"));
        // Balanced braces/brackets (a cheap well-formedness check).
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn caret_aligns_on_multibyte_and_tabbed_lines() {
        // `möde+ äck+` — `äck` starts at character column 7 but byte 8,
        // and `äck+` is 4 characters but 5 bytes. The caret must use the
        // character measures on both axes.
        let source = ".model x\n.inputs m\u{f6}de\n.graph\nm\u{f6}de+ \u{e4}ck+\n.end\n";
        let span = Span {
            start: 30,
            end: 35,
            line: 4,
            col: 7,
        };
        let report = LintReport {
            model: "x".into(),
            diagnostics: vec![Diagnostic::new(
                Code::SI004,
                Severity::Error,
                Some(span),
                "undeclared signal `\u{e4}ck`",
            )],
        };
        let text = render_text(&report, source, "spec.g");
        assert!(text.contains(" 4 | m\u{f6}de+ \u{e4}ck+"), "{text}");
        assert!(text.contains("   |       ^^^^"), "{text}");
        // A tab-indented line keeps its tab in the caret prefix so the
        // carets stay under the span in any tab-width rendering.
        let tabbed = ".model x\n.graph\n\ta+ b+\n.end\n";
        let tspan = Span {
            start: 20,
            end: 22,
            line: 3,
            col: 5,
        };
        let treport = LintReport {
            model: "x".into(),
            diagnostics: vec![Diagnostic::new(
                Code::SI004,
                Severity::Error,
                Some(tspan),
                "undeclared signal `b`",
            )],
        };
        let ttext = render_text(&treport, tabbed, "spec.g");
        assert!(ttext.contains(" 3 | \ta+ b+"), "{ttext}");
        assert!(ttext.contains("   | \t   ^^"), "{ttext}");
    }

    #[test]
    fn sexp_renderer_round_trips_the_report_shape() {
        let (report, _) = sample();
        let sexp = render_sexp(&report, "spec.g");
        assert!(sexp.starts_with("; si-sexp 1 lint-report\n"), "{sexp}");
        assert!(sexp.contains("(lint-report \"spec.g\""), "{sexp}");
        assert!(sexp.contains("(errors 1)"), "{sexp}");
        assert!(
            sexp.contains("(diagnostic SI004 error [30, 32, 4, 4] \"undeclared signal `b`\""),
            "{sexp}"
        );
        assert!(sexp.contains("(fix \"declare `b`"), "{sexp}");
        // Balanced parens outside string payloads.
        let bare: String = sexp.split('"').step_by(2).collect::<Vec<_>>().join("");
        assert_eq!(
            bare.chars().filter(|&c| c == '(').count(),
            bare.chars().filter(|&c| c == ')').count()
        );
    }
}

use std::collections::HashMap;

use crate::error::PetriError;
use crate::net::{Marking, PetriNet, PlaceId, TransitionId};

/// The reachability graph of a bounded net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reachability {
    /// Every reachable marking; index 0 is the initial marking.
    pub markings: Vec<Marking>,
    /// `edges[i]` lists `(t, j)` pairs: firing `t` in marking `i` yields `j`.
    pub edges: Vec<Vec<(TransitionId, usize)>>,
}

impl Reachability {
    /// Successor state indices of state `i`.
    pub fn successors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges[i].iter().map(|&(_, j)| j)
    }

    /// States from which some state in `targets` is reachable (including the
    /// targets themselves).
    pub fn backward_closure(&self, targets: &[usize]) -> Vec<bool> {
        let n = self.markings.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, outs) in self.edges.iter().enumerate() {
            for &(_, j) in outs {
                preds[j].push(i);
            }
        }
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = targets.to_vec();
        for &s in targets {
            seen[s] = true;
        }
        while let Some(i) = stack.pop() {
            for &p in &preds[i] {
                if !seen[p] {
                    seen[p] = true;
                    stack.push(p);
                }
            }
        }
        seen
    }
}

impl PetriNet {
    /// Explores the reachability graph, up to `budget` distinct markings.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::StateBudgetExceeded`] if more than `budget`
    /// markings are reachable (e.g. the net is unbounded).
    pub fn reachability(&self, budget: usize) -> Result<Reachability, PetriError> {
        let m0 = self.initial_marking();
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut markings = vec![m0.clone()];
        let mut edges: Vec<Vec<(TransitionId, usize)>> = vec![Vec::new()];
        index.insert(m0, 0);
        let mut frontier = vec![0usize];
        while let Some(i) = frontier.pop() {
            let m = markings[i].clone();
            for t in self.enabled_transitions(&m) {
                let next = self.fire(t, &m);
                let j = match index.get(&next) {
                    Some(&j) => j,
                    None => {
                        if markings.len() >= budget {
                            return Err(PetriError::StateBudgetExceeded { budget });
                        }
                        let j = markings.len();
                        markings.push(next.clone());
                        edges.push(Vec::new());
                        index.insert(next, j);
                        frontier.push(j);
                        j
                    }
                };
                edges[i].push((t, j));
            }
        }
        Ok(Reachability { markings, edges })
    }

    /// Whether every place holds at most one token in every reachable
    /// marking (thesis Sec. 3.2).
    ///
    /// # Errors
    ///
    /// Propagates [`PetriError::StateBudgetExceeded`] from the exploration.
    pub fn is_safe(&self, budget: usize) -> Result<bool, PetriError> {
        let reach = self.reachability(budget)?;
        Ok(reach.markings.iter().all(|m| m.iter().all(|&k| k <= 1)))
    }

    /// Whether every transition is live: from every reachable marking, a
    /// marking enabling it remains reachable (thesis Sec. 3.2).
    ///
    /// # Errors
    ///
    /// Propagates [`PetriError::StateBudgetExceeded`] from the exploration.
    pub fn is_live(&self, budget: usize) -> Result<bool, PetriError> {
        let reach = self.reachability(budget)?;
        for t in self.transitions() {
            let targets: Vec<usize> = (0..reach.markings.len())
                .filter(|&i| self.enabled(t, &reach.markings[i]))
                .collect();
            if targets.is_empty() {
                return Ok(false);
            }
            let closure = reach.backward_closure(&targets);
            if closure.iter().any(|&b| !b) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl PetriNet {
    /// Partitions the net's skeleton (places and transitions as one node
    /// set, arcs undirected) into weakly connected components. Returns one
    /// transition list per component, in discovery order; isolated places
    /// form components with an empty transition list, which are skipped.
    ///
    /// Purely structural — no marking exploration. A well-formed STG has
    /// exactly one component; more than one means two independent subnets
    /// were glued into one specification, usually a copy-paste defect.
    pub fn weakly_connected_components(&self) -> Vec<Vec<TransitionId>> {
        let np = self.place_count();
        let nt = self.transition_count();
        // Node ids: 0..np are places, np..np+nt are transitions.
        let mut seen = vec![false; np + nt];
        let mut components = Vec::new();
        for start in 0..np + nt {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            let mut stack = vec![start];
            let mut transitions = Vec::new();
            while let Some(n) = stack.pop() {
                let neighbours: Vec<usize> = if n < np {
                    let p = PlaceId(n);
                    self.place_pre(p)
                        .iter()
                        .chain(self.place_post(p))
                        .map(|t| np + t.0)
                        .collect()
                } else {
                    let t = TransitionId(n - np);
                    transitions.push(t);
                    self.transition_pre(t)
                        .iter()
                        .chain(self.transition_post(t))
                        .map(|p| p.0)
                        .collect()
                };
                for m in neighbours {
                    if !seen[m] {
                        seen[m] = true;
                        stack.push(m);
                    }
                }
            }
            if !transitions.is_empty() {
                components.push(transitions);
            }
        }
        components
    }

    /// Which transitions could *structurally* ever fire: the least
    /// fixpoint of "a place can be marked if it starts marked or some
    /// potentially-fireable transition feeds it; a transition is
    /// potentially fireable if every input place can be marked" (a
    /// transition with an empty preset is always fireable).
    ///
    /// This over-approximates reachability — a `true` entry may still be
    /// dead under the token game — but a `false` entry is *definitely*
    /// dead, with no marking exploration needed. Indexed by
    /// `TransitionId.0`.
    pub fn structurally_fireable(&self) -> Vec<bool> {
        let m0 = self.initial_marking();
        let mut place_markable: Vec<bool> = m0.iter().map(|&k| k > 0).collect();
        let mut fireable = vec![false; self.transition_count()];
        loop {
            let mut changed = false;
            for t in self.transitions() {
                if fireable[t.0] {
                    continue;
                }
                if self.transition_pre(t).iter().all(|p| place_markable[p.0]) {
                    fireable[t.0] = true;
                    changed = true;
                    for p in self.transition_post(t) {
                        if !place_markable[p.0] {
                            place_markable[p.0] = true;
                        }
                    }
                }
            }
            if !changed {
                return fireable;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::PetriNet;

    /// The thesis Fig. 3.1 example: five places, four transitions.
    fn fig_3_1() -> PetriNet {
        let mut net = PetriNet::new();
        let p1 = net.add_place("p1", 1);
        let p2 = net.add_place("p2", 0);
        let p3 = net.add_place("p3", 0);
        let p4 = net.add_place("p4", 0);
        let p5 = net.add_place("p5", 0);
        let t1 = net.add_transition("t1");
        let t2 = net.add_transition("t2");
        let t3 = net.add_transition("t3");
        let t4 = net.add_transition("t4");
        net.add_arc_pt(p1, t1);
        net.add_arc_tp(t1, p2);
        net.add_arc_tp(t1, p3);
        net.add_arc_pt(p2, t2);
        net.add_arc_tp(t2, p4);
        net.add_arc_pt(p3, t3);
        net.add_arc_tp(t3, p5);
        net.add_arc_pt(p4, t4);
        net.add_arc_pt(p5, t4);
        net.add_arc_tp(t4, p1);
        net
    }

    #[test]
    fn fig_3_1_marking_set_has_five_markings() {
        // The thesis lists exactly the marking set
        // {10000, 01100, 00110, 01001, 00011}.
        let net = fig_3_1();
        let reach = net.reachability(100).expect("bounded");
        assert_eq!(reach.markings.len(), 5);
        assert!(reach.markings.contains(&vec![1, 0, 0, 0, 0]));
        assert!(reach.markings.contains(&vec![0, 1, 1, 0, 0]));
        assert!(reach.markings.contains(&vec![0, 0, 1, 1, 0]));
        assert!(reach.markings.contains(&vec![0, 1, 0, 0, 1]));
        assert!(reach.markings.contains(&vec![0, 0, 0, 1, 1]));
    }

    #[test]
    fn fig_3_1_is_live_and_safe() {
        let net = fig_3_1();
        assert!(net.is_live(100).expect("bounded"));
        assert!(net.is_safe(100).expect("bounded"));
    }

    #[test]
    fn dead_transition_makes_net_not_live() {
        // Thesis Fig. 3.2 (left): t3 with an unmarkable input place.
        let mut net = fig_3_1();
        let dead_p = net.add_place("dead", 0);
        let dead_t = net.add_transition("t_dead");
        net.add_arc_pt(dead_p, dead_t);
        net.add_arc_tp(dead_t, dead_p);
        assert!(!net.is_live(100).expect("bounded"));
    }

    #[test]
    fn two_token_place_is_unsafe() {
        let mut net = PetriNet::new();
        let p = net.add_place("p", 2);
        let t = net.add_transition("t");
        net.add_arc_pt(p, t);
        net.add_arc_tp(t, p);
        assert!(!net.is_safe(100).expect("bounded"));
    }

    #[test]
    fn unbounded_net_exceeds_budget() {
        // A transition with no inputs pumps tokens forever.
        let mut net = PetriNet::new();
        let p = net.add_place("p", 0);
        let t = net.add_transition("t");
        net.add_arc_tp(t, p);
        assert_eq!(
            net.reachability(16),
            Err(PetriError::StateBudgetExceeded { budget: 16 })
        );
    }

    #[test]
    fn fig_3_1_is_one_component_and_fully_fireable() {
        let net = fig_3_1();
        assert_eq!(net.weakly_connected_components().len(), 1);
        assert!(net.structurally_fireable().into_iter().all(|b| b));
    }

    #[test]
    fn disjoint_rings_are_two_components() {
        let mut net = PetriNet::new();
        for name in ["a", "b"] {
            let p = net.add_place(format!("p_{name}"), 1);
            let t = net.add_transition(format!("t_{name}"));
            net.add_arc_pt(p, t);
            net.add_arc_tp(t, p);
        }
        let components = net.weakly_connected_components();
        assert_eq!(components.len(), 2);
        assert_eq!(components[0], vec![TransitionId(0)]);
        assert_eq!(components[1], vec![TransitionId(1)]);
        // An isolated place joins no component.
        net.add_place("orphan", 0);
        assert_eq!(net.weakly_connected_components().len(), 2);
    }

    #[test]
    fn structurally_dead_transition_is_detected() {
        // Thesis Fig. 3.2 shape: a transition whose only input place can
        // never be marked.
        let mut net = fig_3_1();
        let dead_p = net.add_place("dead", 0);
        let dead_t = net.add_transition("t_dead");
        net.add_arc_pt(dead_p, dead_t);
        net.add_arc_tp(dead_t, dead_p);
        let fireable = net.structurally_fireable();
        assert!(!fireable[dead_t.0]);
        assert!(fireable[..dead_t.0].iter().all(|&b| b));
    }

    #[test]
    fn fireability_propagates_through_chains() {
        // p0(1) -> t0 -> p1 -> t1 -> p2 -> t2: the token flows down the
        // chain, so every transition is potentially fireable even though
        // only t0 is initially enabled.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0", 1);
        let p1 = net.add_place("p1", 0);
        let p2 = net.add_place("p2", 0);
        let ts: Vec<TransitionId> = (0..3)
            .map(|i| net.add_transition(format!("t{i}")))
            .collect();
        net.add_arc_pt(p0, ts[0]);
        net.add_arc_tp(ts[0], p1);
        net.add_arc_pt(p1, ts[1]);
        net.add_arc_tp(ts[1], p2);
        net.add_arc_pt(p2, ts[2]);
        assert!(net.structurally_fireable().into_iter().all(|b| b));
    }

    #[test]
    fn source_transitions_are_always_fireable() {
        let mut net = PetriNet::new();
        let p = net.add_place("p", 0);
        let t = net.add_transition("t");
        net.add_arc_tp(t, p);
        assert_eq!(net.structurally_fireable(), vec![true]);
    }

    #[test]
    fn backward_closure_reaches_predecessors() {
        let net = fig_3_1();
        let reach = net.reachability(100).expect("bounded");
        // Every state can reach every other (strongly connected): closure of
        // any single target covers all states.
        let closure = reach.backward_closure(&[3]);
        assert!(closure.iter().all(|&b| b));
    }
}

use std::error::Error;
use std::fmt;

/// Errors reported by net-level analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PetriError {
    /// A bounded exploration exceeded its state budget before converging.
    StateBudgetExceeded {
        /// The budget that was exhausted.
        budget: usize,
    },
    /// The net is not free-choice, but the requested operation needs it.
    NotFreeChoice {
        /// Name of an offending choice place.
        place: String,
    },
    /// Hack's decomposition would enumerate too many MG allocations.
    TooManyAllocations {
        /// Number of allocations that would be required.
        count: usize,
        /// The enumeration cap.
        cap: usize,
    },
    /// An MG allocation reduced to a component that is not a marked graph
    /// (only possible when the input net is not live-and-safe free-choice).
    ComponentNotMarkedGraph {
        /// Name of a place with more than one surviving input or output
        /// transition.
        place: String,
    },
    /// A referenced node does not exist in the net.
    UnknownNode {
        /// The missing node's name.
        name: String,
    },
}

impl fmt::Display for PetriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PetriError::StateBudgetExceeded { budget } => {
                write!(
                    f,
                    "state exploration exceeded the budget of {budget} markings"
                )
            }
            PetriError::NotFreeChoice { place } => {
                write!(
                    f,
                    "net is not free-choice: place `{place}` shares an output transition"
                )
            }
            PetriError::TooManyAllocations { count, cap } => {
                write!(
                    f,
                    "MG decomposition needs {count} allocations, more than the cap {cap}"
                )
            }
            PetriError::ComponentNotMarkedGraph { place } => {
                write!(
                    f,
                    "allocation reduced to a non-MG component at place `{place}`"
                )
            }
            PetriError::UnknownNode { name } => write!(f, "unknown node `{name}`"),
        }
    }
}

impl Error for PetriError {}

//! Hack's MG-allocation decomposition of live and safe free-choice nets
//! (thesis Sec. 5.2.1).
//!
//! An *MG allocation* picks one output transition for every choice place.
//! The reduction then eliminates all unallocated transitions, every place
//! whose input transitions are all eliminated, and every transition with an
//! eliminated input place, iterating to a fixpoint. Each allocation yields a
//! marked-graph component; the set of components over all allocations covers
//! the net.

use std::collections::BTreeSet;

use crate::error::PetriError;
use crate::net::{PetriNet, PlaceId, TransitionId};

/// One marked-graph component of a free-choice net.
#[derive(Debug, Clone)]
pub struct MgComponent {
    /// The component as a standalone net (always a marked graph).
    pub net: PetriNet,
    /// For each transition of `net`, the id of the original transition.
    pub transition_map: Vec<TransitionId>,
    /// For each place of `net`, the id of the original place.
    pub place_map: Vec<PlaceId>,
}

/// Decomposes a live and safe free-choice net into MG components covering it.
///
/// Allocation enumeration is capped at `cap` combinations. Identical
/// components produced by different allocations are deduplicated.
///
/// # Errors
///
/// - [`PetriError::NotFreeChoice`] if a choice place is not free-choice.
/// - [`PetriError::TooManyAllocations`] if the product of choice-place
///   branch counts exceeds `cap`.
/// - [`PetriError::ComponentNotMarkedGraph`] if a reduction fails to produce
///   an MG (the input was not live-and-safe free-choice).
pub fn decompose_into_mg_components(
    net: &PetriNet,
    cap: usize,
) -> Result<Vec<MgComponent>, PetriError> {
    let choice_places: Vec<PlaceId> = net.places().filter(|&p| net.is_choice_place(p)).collect();
    for &p in &choice_places {
        if !net
            .place_post(p)
            .iter()
            .all(|&t| net.transition_pre(t) == [p])
        {
            return Err(PetriError::NotFreeChoice {
                place: net.place_name(p).to_string(),
            });
        }
    }

    let mut count: usize = 1;
    for &p in &choice_places {
        count = count.saturating_mul(net.place_post(p).len());
        if count > cap {
            return Err(PetriError::TooManyAllocations { count, cap });
        }
    }

    let mut components = Vec::new();
    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut allocation = vec![0usize; choice_places.len()];
    loop {
        let surviving = reduce(net, &choice_places, &allocation);
        if seen.insert(surviving.clone()) {
            components.push(extract(net, &surviving)?);
        }
        // Next allocation (mixed-radix increment).
        let mut i = 0;
        loop {
            if i == choice_places.len() {
                return Ok(components);
            }
            allocation[i] += 1;
            if allocation[i] < net.place_post(choice_places[i]).len() {
                break;
            }
            allocation[i] = 0;
            i += 1;
        }
    }
}

/// Runs the three-step elimination to a fixpoint; returns surviving
/// transition ids (sorted).
fn reduce(net: &PetriNet, choice_places: &[PlaceId], allocation: &[usize]) -> Vec<usize> {
    let nt = net.transition_count();
    let np = net.place_count();
    let mut eli_t = vec![false; nt];
    let mut eli_p = vec![false; np];

    // First step: eliminate all unallocated output transitions of every
    // choice place.
    for (k, &p) in choice_places.iter().enumerate() {
        for (j, &t) in net.place_post(p).iter().enumerate() {
            if j != allocation[k] {
                eli_t[t.0] = true;
            }
        }
    }

    // Second and third steps, iterated to a fixpoint.
    loop {
        let mut changed = false;
        for p in net.places() {
            if !eli_p[p.0] && net.place_pre(p).iter().all(|t| eli_t[t.0]) {
                eli_p[p.0] = true;
                changed = true;
            }
        }
        for t in net.transitions() {
            if !eli_t[t.0] && net.transition_pre(t).iter().any(|p| eli_p[p.0]) {
                eli_t[t.0] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    (0..nt).filter(|&i| !eli_t[i]).collect()
}

/// Builds the transition-generated subnet over `surviving` transitions.
fn extract(net: &PetriNet, surviving: &[usize]) -> Result<MgComponent, PetriError> {
    let alive = |t: &TransitionId| surviving.binary_search(&t.0).is_ok();

    // Keep a place iff it connects two surviving transitions (or carries the
    // surviving flow); places with no surviving input or output are dropped.
    let mut comp = PetriNet::new();
    let mut place_map = Vec::new();
    let mut place_new = vec![None::<PlaceId>; net.place_count()];
    let mut transition_map = Vec::new();
    let mut transition_new = vec![None::<TransitionId>; net.transition_count()];

    for &ti in surviving {
        let t = TransitionId(ti);
        let nt = comp.add_transition(net.transition_name(t));
        transition_new[ti] = Some(nt);
        transition_map.push(t);
    }
    for p in net.places() {
        let pre: Vec<TransitionId> = net.place_pre(p).iter().copied().filter(alive).collect();
        let post: Vec<TransitionId> = net.place_post(p).iter().copied().filter(alive).collect();
        if pre.is_empty() && post.is_empty() {
            continue;
        }
        if pre.len() > 1 || post.len() > 1 {
            return Err(PetriError::ComponentNotMarkedGraph {
                place: net.place_name(p).to_string(),
            });
        }
        let np = comp.add_place(net.place_name(p), net.initial_marking()[p.0]);
        place_new[p.0] = Some(np);
        place_map.push(p);
        for t in pre {
            comp.add_arc_tp(transition_new[t.0].expect("surviving"), np);
        }
        for t in post {
            comp.add_arc_pt(np, transition_new[t.0].expect("surviving"));
        }
    }

    Ok(MgComponent {
        net: comp,
        transition_map,
        place_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The thesis Fig. 5.2 live and safe free-choice net.
    fn fig_5_2() -> PetriNet {
        let mut net = PetriNet::new();
        let p1 = net.add_place("p1", 1);
        let p2 = net.add_place("p2", 0);
        let p3 = net.add_place("p3", 0);
        let p4 = net.add_place("p4", 0);
        let p5 = net.add_place("p5", 0);
        let p6 = net.add_place("p6", 0);
        let t1 = net.add_transition("t1");
        let t2 = net.add_transition("t2");
        let t4 = net.add_transition("t4");
        let t5 = net.add_transition("t5");
        let t6 = net.add_transition("t6");
        let t7 = net.add_transition("t7");
        let t8 = net.add_transition("t8");
        let t9 = net.add_transition("t9");
        // p1 is a free-choice place between t1 and t2.
        net.add_arc_pt(p1, t1);
        net.add_arc_pt(p1, t2);
        net.add_arc_tp(t1, p2);
        net.add_arc_pt(p2, t6);
        net.add_arc_tp(t6, p6);
        net.add_arc_tp(t2, p3);
        // p3 is a free-choice place between t4 and t5.
        net.add_arc_pt(p3, t4);
        net.add_arc_pt(p3, t5);
        net.add_arc_tp(t4, p4);
        net.add_arc_pt(p4, t7);
        net.add_arc_tp(t5, p5);
        net.add_arc_pt(p5, t8);
        net.add_arc_tp(t7, p6);
        net.add_arc_tp(t8, p6);
        net.add_arc_pt(p6, t9);
        net.add_arc_tp(t9, p1);
        net
    }

    #[test]
    fn fig_5_2_decomposes_into_three_components() {
        let net = fig_5_2();
        assert!(net.is_free_choice());
        let comps = decompose_into_mg_components(&net, 64).expect("free choice");
        // Thesis Fig. 5.2 (b)-(d): exactly three MG components.
        assert_eq!(comps.len(), 3);
        for c in &comps {
            assert!(c.net.is_marked_graph());
            assert!(c.net.is_live(1000).expect("small"));
            assert!(c.net.is_safe(1000).expect("small"));
        }
        // Component sizes: {t1,t6,t9}, {t2,t4,t7,t9}, {t2,t5,t8,t9}.
        let mut sizes: Vec<usize> = comps.iter().map(|c| c.net.transition_count()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 4, 4]);
    }

    #[test]
    fn components_cover_every_transition() {
        let net = fig_5_2();
        let comps = decompose_into_mg_components(&net, 64).expect("free choice");
        let mut covered = vec![false; net.transition_count()];
        for c in &comps {
            for t in &c.transition_map {
                covered[t.0] = true;
            }
        }
        assert!(
            covered.iter().all(|&b| b),
            "MG components must cover the net"
        );
    }

    #[test]
    fn marked_graph_decomposes_into_itself() {
        let mut net = PetriNet::new();
        let p = net.add_place("p", 1);
        let q = net.add_place("q", 0);
        let t = net.add_transition("t");
        let u = net.add_transition("u");
        net.add_arc_pt(p, t);
        net.add_arc_tp(t, q);
        net.add_arc_pt(q, u);
        net.add_arc_tp(u, p);
        let comps = decompose_into_mg_components(&net, 64).expect("mg");
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].net.transition_count(), 2);
        assert_eq!(comps[0].net.place_count(), 2);
    }

    #[test]
    fn component_markings_restrict_the_original() {
        let net = fig_5_2();
        let comps = decompose_into_mg_components(&net, 64).expect("free choice");
        let m0 = net.initial_marking();
        for c in &comps {
            let cm = c.net.initial_marking();
            for (i, &p) in c.place_map.iter().enumerate() {
                assert_eq!(cm[i], m0[p.0], "component token mismatch at {p}");
            }
        }
    }

    #[test]
    fn transition_maps_point_back_correctly() {
        let net = fig_5_2();
        let comps = decompose_into_mg_components(&net, 64).expect("free choice");
        for c in &comps {
            for t in c.net.transitions() {
                let orig = c.transition_map[t.0];
                assert_eq!(c.net.transition_name(t), net.transition_name(orig));
            }
        }
    }

    #[test]
    fn non_free_choice_is_rejected() {
        let mut net = PetriNet::new();
        let p = net.add_place("p", 1);
        let q = net.add_place("q", 1);
        let t = net.add_transition("t");
        let u = net.add_transition("u");
        net.add_arc_pt(p, t);
        net.add_arc_pt(p, u);
        net.add_arc_pt(q, u); // u has two input places: p's choice is not free
        net.add_arc_tp(t, p);
        net.add_arc_tp(u, p);
        net.add_arc_tp(u, q);
        let err = decompose_into_mg_components(&net, 64).unwrap_err();
        assert!(matches!(err, PetriError::NotFreeChoice { .. }));
    }

    #[test]
    fn allocation_cap_is_enforced() {
        let net = fig_5_2();
        let err = decompose_into_mg_components(&net, 1).unwrap_err();
        assert!(matches!(err, PetriError::TooManyAllocations { .. }));
    }
}

//! Petri nets, marked graphs and Hack's MG-allocation decomposition.
//!
//! This crate provides the base net-level substrate used by the rest of the
//! workspace: ordinary place/transition nets with token-game semantics,
//! bounded reachability analysis, the behavioural property checks the thesis
//! relies on (liveness, safeness), the structural subclasses it restricts
//! itself to (free-choice nets, marked graphs), and Hack's algorithm for
//! decomposing a live and safe free-choice net into a covering set of marked
//! graph components (thesis Sec. 5.2.1).
//!
//! # Example
//!
//! ```
//! use si_petri::PetriNet;
//!
//! # fn main() -> Result<(), si_petri::PetriError> {
//! let mut net = PetriNet::new();
//! let p = net.add_place("p", 1);
//! let q = net.add_place("q", 0);
//! let t = net.add_transition("t");
//! let u = net.add_transition("u");
//! net.add_arc_pt(p, t);
//! net.add_arc_tp(t, q);
//! net.add_arc_pt(q, u);
//! net.add_arc_tp(u, p);
//! let reach = net.reachability(1_000)?;
//! assert_eq!(reach.markings.len(), 2);
//! assert!(net.is_live(1_000)?);
//! assert!(net.is_safe(1_000)?);
//! # Ok(())
//! # }
//! ```

mod analysis;
mod error;
mod hack;
mod net;

pub use analysis::Reachability;
pub use error::PetriError;
pub use hack::{decompose_into_mg_components, MgComponent};
pub use net::{Marking, PetriNet, PlaceId, TransitionId};

use std::fmt;

/// Index of a place inside a [`PetriNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub usize);

/// Index of a transition inside a [`PetriNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(pub usize);

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A marking: the token count of every place, indexed by [`PlaceId`].
pub type Marking = Vec<u32>;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Place {
    name: String,
    initial: u32,
    pre: Vec<TransitionId>,
    post: Vec<TransitionId>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Transition {
    name: String,
    pre: Vec<PlaceId>,
    post: Vec<PlaceId>,
}

/// An ordinary (arc weight 1) place/transition net with an initial marking.
///
/// The quadruple `N = (P, T, F, m0)` of the thesis (Sec. 3.2). Arcs are
/// stored redundantly on both endpoints so presets and postsets are O(1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PetriNet {
    places: Vec<Place>,
    transitions: Vec<Transition>,
}

impl PetriNet {
    /// Creates an empty net.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a place with `initial` tokens and returns its id.
    pub fn add_place(&mut self, name: impl Into<String>, initial: u32) -> PlaceId {
        self.places.push(Place {
            name: name.into(),
            initial,
            pre: Vec::new(),
            post: Vec::new(),
        });
        PlaceId(self.places.len() - 1)
    }

    /// Adds a transition and returns its id.
    pub fn add_transition(&mut self, name: impl Into<String>) -> TransitionId {
        self.transitions.push(Transition {
            name: name.into(),
            pre: Vec::new(),
            post: Vec::new(),
        });
        TransitionId(self.transitions.len() - 1)
    }

    /// Adds an arc from place `p` to transition `t`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_arc_pt(&mut self, p: PlaceId, t: TransitionId) {
        self.places[p.0].post.push(t);
        self.transitions[t.0].pre.push(p);
    }

    /// Adds an arc from transition `t` to place `p`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_arc_tp(&mut self, t: TransitionId, p: PlaceId) {
        self.places[p.0].pre.push(t);
        self.transitions[t.0].post.push(p);
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Iterator over all place ids.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.places.len()).map(PlaceId)
    }

    /// Iterator over all transition ids.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> {
        (0..self.transitions.len()).map(TransitionId)
    }

    /// Name of place `p`.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.places[p.0].name
    }

    /// Name of transition `t`.
    pub fn transition_name(&self, t: TransitionId) -> &str {
        &self.transitions[t.0].name
    }

    /// Finds a place by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.places.iter().position(|p| p.name == name).map(PlaceId)
    }

    /// Finds a transition by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(TransitionId)
    }

    /// Input transitions of place `p` (the preset `•p`).
    pub fn place_pre(&self, p: PlaceId) -> &[TransitionId] {
        &self.places[p.0].pre
    }

    /// Output transitions of place `p` (the postset `p•`).
    pub fn place_post(&self, p: PlaceId) -> &[TransitionId] {
        &self.places[p.0].post
    }

    /// Input places of transition `t` (the preset `•t`).
    pub fn transition_pre(&self, t: TransitionId) -> &[PlaceId] {
        &self.transitions[t.0].pre
    }

    /// Output places of transition `t` (the postset `t•`).
    pub fn transition_post(&self, t: TransitionId) -> &[PlaceId] {
        &self.transitions[t.0].post
    }

    /// The initial marking `m0`.
    pub fn initial_marking(&self) -> Marking {
        self.places.iter().map(|p| p.initial).collect()
    }

    /// Sets the initial token count of place `p`.
    pub fn set_initial(&mut self, p: PlaceId, tokens: u32) {
        self.places[p.0].initial = tokens;
    }

    /// Whether transition `t` is enabled in marking `m`.
    pub fn enabled(&self, t: TransitionId, m: &Marking) -> bool {
        self.transitions[t.0].pre.iter().all(|p| m[p.0] > 0)
    }

    /// Fires transition `t` in marking `m`, returning the successor marking.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not enabled in `m`.
    pub fn fire(&self, t: TransitionId, m: &Marking) -> Marking {
        assert!(self.enabled(t, m), "transition {t} is not enabled");
        let mut next = m.clone();
        for p in &self.transitions[t.0].pre {
            next[p.0] -= 1;
        }
        for p in &self.transitions[t.0].post {
            next[p.0] += 1;
        }
        next
    }

    /// Transitions enabled in marking `m`, in id order.
    pub fn enabled_transitions(&self, m: &Marking) -> Vec<TransitionId> {
        self.transitions().filter(|&t| self.enabled(t, m)).collect()
    }

    /// Whether `p` is a choice place (more than one output transition).
    pub fn is_choice_place(&self, p: PlaceId) -> bool {
        self.places[p.0].post.len() > 1
    }

    /// Whether `p` is a merge place (more than one input transition).
    pub fn is_merge_place(&self, p: PlaceId) -> bool {
        self.places[p.0].pre.len() > 1
    }

    /// Whether every choice place is free-choice: it is the only input place
    /// of all of its output transitions (thesis Sec. 3.2).
    pub fn is_free_choice(&self) -> bool {
        self.places().all(|p| {
            !self.is_choice_place(p)
                || self
                    .place_post(p)
                    .iter()
                    .all(|&t| self.transition_pre(t) == [p])
        })
    }

    /// Whether the net is structurally a marked graph: no choice and no merge
    /// places.
    pub fn is_marked_graph(&self) -> bool {
        self.places()
            .all(|p| !self.is_choice_place(p) && !self.is_merge_place(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cycle() -> (PetriNet, PlaceId, PlaceId, TransitionId, TransitionId) {
        let mut net = PetriNet::new();
        let p = net.add_place("p", 1);
        let q = net.add_place("q", 0);
        let t = net.add_transition("t");
        let u = net.add_transition("u");
        net.add_arc_pt(p, t);
        net.add_arc_tp(t, q);
        net.add_arc_pt(q, u);
        net.add_arc_tp(u, p);
        (net, p, q, t, u)
    }

    #[test]
    fn firing_moves_token() {
        let (net, p, q, t, u) = two_cycle();
        let m0 = net.initial_marking();
        assert!(net.enabled(t, &m0));
        assert!(!net.enabled(u, &m0));
        let m1 = net.fire(t, &m0);
        assert_eq!(m1[p.0], 0);
        assert_eq!(m1[q.0], 1);
        let m2 = net.fire(u, &m1);
        assert_eq!(m2, m0);
    }

    #[test]
    #[should_panic(expected = "not enabled")]
    fn firing_disabled_panics() {
        let (net, _, _, _, u) = two_cycle();
        net.fire(u, &net.initial_marking());
    }

    #[test]
    fn preset_postset_bookkeeping() {
        let (net, p, q, t, u) = two_cycle();
        assert_eq!(net.place_pre(p), &[u]);
        assert_eq!(net.place_post(p), &[t]);
        assert_eq!(net.transition_pre(t), &[p]);
        assert_eq!(net.transition_post(t), &[q]);
        assert_eq!(net.place_pre(q), &[t]);
    }

    #[test]
    fn structural_classes() {
        let (net, ..) = two_cycle();
        assert!(net.is_free_choice());
        assert!(net.is_marked_graph());

        // Add a second output to p: now p is a (free) choice place.
        let mut choice = net.clone();
        let p = PlaceId(0);
        let v = choice.add_transition("v");
        choice.add_arc_pt(p, v);
        assert!(choice.is_choice_place(p));
        assert!(choice.is_free_choice());
        assert!(!choice.is_marked_graph());

        // Give v a second input place: the choice is no longer free.
        let extra = choice.add_place("extra", 0);
        choice.add_arc_pt(extra, v);
        assert!(!choice.is_free_choice());
    }

    #[test]
    fn name_lookup() {
        let (net, p, _, t, _) = two_cycle();
        assert_eq!(net.place_by_name("p"), Some(p));
        assert_eq!(net.transition_by_name("t"), Some(t));
        assert_eq!(net.place_by_name("zz"), None);
    }
}

//! Bridge from the Sec. 5.7 padding planner to the event simulator:
//! materializes a [`si_core::PaddingPlan`] as delay overrides, closing the
//! loop derive-constraints → plan-padding → simulate-clean.

use si_core::{PaddingPlan, PaddingPosition};

use crate::event::DelayModel;

/// Applies `pad_ps` of extra delay at every position of the plan: wire
/// positions add to the branch delay, gate positions to the gate delay.
pub fn apply_padding(delays: &mut DelayModel, plan: &PaddingPlan, pad_ps: f64) {
    for position in plan.positions() {
        match position {
            PaddingPosition::Wire { from, to } => {
                let current = delays
                    .wire_ps
                    .get(&(from.clone(), to.clone()))
                    .copied()
                    .unwrap_or(delays.default_wire_ps);
                delays.set_wire(&from, &to, current + pad_ps);
            }
            PaddingPosition::GateOutput { gate } => {
                let current = delays
                    .gate_ps
                    .get(&gate)
                    .copied()
                    .unwrap_or(delays.default_gate_ps);
                delays.set_gate(&gate, current + pad_ps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::simulate;
    use si_core::{derive_timing_constraints, plan_padding, AdversaryOracle};

    #[test]
    fn planned_padding_defeats_a_constraint_violating_skew() {
        // Closed loop: derive the FIFO's constraints, skew a fork far
        // enough to violate `g0: d- < l+`, confirm the glitch, then apply
        // the planner's own positions with a pad larger than the skew and
        // confirm the glitch is gone.
        let (stg, library) = si_suite::benchmark("fifo")
            .expect("bundled")
            .circuit()
            .expect("loads");
        let report = derive_timing_constraints(&stg, &library).expect("derives");
        let oracle = AdversaryOracle::new(&stg);
        let plan = plan_padding(&stg, &oracle, &report.constraints, 5);
        assert!(!plan.entries.is_empty());

        let skew = 3000.0;
        let mut broken = DelayModel::uniform(40.0, 2.0, 80.0);
        broken.set_wire("d", "g0", skew);
        let glitchy = simulate(&stg, &library, &broken, 400).expect("simulates");
        assert!(glitchy.glitches.iter().any(|g| g.gate == "g0"));

        let mut padded = broken.clone();
        apply_padding(&mut padded, &plan, skew + 200.0);
        let clean = simulate(&stg, &library, &padded, 200).expect("simulates");
        assert!(
            !clean.glitches.iter().any(|g| g.gate == "g0"),
            "g0 still glitches after applying the plan: {:?}",
            clean.glitches
        );
    }

    #[test]
    fn shared_positions_pad_once() {
        let (stg, library) = si_suite::benchmark("fifo")
            .expect("bundled")
            .circuit()
            .expect("loads");
        let report = derive_timing_constraints(&stg, &library).expect("derives");
        let oracle = AdversaryOracle::new(&stg);
        let plan = plan_padding(&stg, &oracle, &report.constraints, 5);

        let mut delays = DelayModel::uniform(40.0, 2.0, 80.0);
        apply_padding(&mut delays, &plan, 100.0);
        // Every override is base + exactly one pad.
        for &ps in delays.wire_ps.values() {
            assert!((ps - 102.0).abs() < 1e-9, "{ps}");
        }
        for &ps in delays.gate_ps.values() {
            assert!((ps - 140.0).abs() < 1e-9, "{ps}");
        }
    }
}

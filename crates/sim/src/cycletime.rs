//! Cycle-time analysis of marked-graph STGs: the maximum cycle ratio
//! (total delay around a cycle divided by its token count) gives the
//! steady-state period of a timed marked graph. Used for the Fig. 7.7
//! delay-penalty study: padding inserted to satisfy timing constraints
//! lengthens the slowest cycle; a repeater pads both transitions of a
//! signal, a current-starved element only the constrained edge.

use std::collections::BTreeMap;

use si_stg::{MgStg, Polarity};

/// Delay of each transition (gate delay + wire), keyed by rendered label
/// (`l+`, `d-/2`, …), with optional per-signal and per-edge padding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DelayAssignment {
    /// Default transition delay, picoseconds.
    pub default_ps: f64,
    /// Per-label overrides/additions.
    pub extra_ps: BTreeMap<String, f64>,
}

impl DelayAssignment {
    /// Uniform delay per transition.
    pub fn uniform(default_ps: f64) -> Self {
        Self {
            default_ps,
            extra_ps: BTreeMap::new(),
        }
    }

    /// Adds `ps` of padding to one rendered transition label (the
    /// current-starved single-edge pad).
    pub fn pad_label(&mut self, label: &str, ps: f64) {
        *self.extra_ps.entry(label.to_string()).or_insert(0.0) += ps;
    }

    /// Adds `ps` of padding to both edges of a signal (the repeater pad):
    /// every occurrence of `sig+` and `sig-`.
    pub fn pad_signal(&mut self, mg: &MgStg, signal: &str, ps: f64) {
        let Some(sig) = mg.signal_by_name(signal) else {
            return;
        };
        for t in mg.transitions() {
            let l = mg.label(t);
            if l.signal == sig {
                self.pad_label(&mg.label_string(t), ps);
            }
        }
        let _ = Polarity::Plus;
    }

    /// The delay of transition `t` in `mg`.
    pub fn delay(&self, mg: &MgStg, t: usize) -> f64 {
        self.default_ps
            + self
                .extra_ps
                .get(&mg.label_string(t))
                .copied()
                .unwrap_or(0.0)
    }
}

/// The maximum cycle ratio `max_cycles (Σ delay / Σ tokens)` of a live
/// marked graph, by bisection with Bellman–Ford positive-cycle detection.
/// Returns `None` for graphs without cycles.
pub fn max_cycle_ratio(mg: &MgStg, delays: &DelayAssignment) -> Option<f64> {
    let nodes = mg.transitions();
    if nodes.is_empty() {
        return None;
    }
    let arcs: Vec<(usize, usize, u32)> = mg
        .arcs()
        .map(|((a, b), attr)| (a, b, attr.tokens))
        .collect();
    if arcs.is_empty() {
        return None;
    }

    // A cycle exists iff the graph has one (live MGs always do).
    let total: f64 = nodes.iter().map(|&t| delays.delay(mg, t)).sum();
    let mut lo = 0.0f64;
    let mut hi = total.max(1.0) * 2.0;

    // has_cycle_with_ratio_above(λ): positive cycle in weights
    // w(a→b) = delay(b) − λ·tokens.
    let index: BTreeMap<usize, usize> = nodes.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let positive_cycle = |lambda: f64| -> bool {
        let n = nodes.len();
        let mut dist = vec![0.0f64; n];
        for _ in 0..n {
            let mut changed = false;
            for &(a, b, tokens) in &arcs {
                let w = delays.delay(mg, b) - lambda * f64::from(tokens);
                let (ia, ib) = (index[&a], index[&b]);
                if dist[ia] + w > dist[ib] + 1e-12 {
                    dist[ib] = dist[ia] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
        }
        true
    };

    if !positive_cycle(lo) {
        return None;
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if positive_cycle(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Convenience: the cycle time of the slowest cycle (alias of the maximum
/// cycle ratio).
pub fn cycle_time(mg: &MgStg, delays: &DelayAssignment) -> Option<f64> {
    max_cycle_ratio(mg, delays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::parse_astg;

    fn ring() -> MgStg {
        let text = "\
.model ring
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        MgStg::from_stg_mg(&parse_astg(text).expect("valid")).expect("mg")
    }

    #[test]
    fn single_token_ring_period_is_the_sum_of_delays() {
        let mg = ring();
        let delays = DelayAssignment::uniform(10.0);
        let period = max_cycle_ratio(&mg, &delays).expect("cyclic");
        assert!((period - 40.0).abs() < 1e-6, "{period}");
    }

    #[test]
    fn two_tokens_halve_the_period() {
        // Built directly (a doubly-marked ring is a timed MG, not a
        // consistent STG): two transitions, one token on each arc.
        let mut stg = si_stg::Stg::new("ring2");
        let a = stg.add_signal("a", si_stg::SignalKind::Input);
        let mut mg = MgStg::empty_like(&stg);
        let ap = mg.add_transition(si_stg::TransitionLabel::first(a, Polarity::Plus));
        let am = mg.add_transition(si_stg::TransitionLabel::first(a, Polarity::Minus));
        mg.insert_arc(ap, am, 1, false);
        mg.insert_arc(am, ap, 1, false);
        let delays = DelayAssignment::uniform(10.0);
        let period = max_cycle_ratio(&mg, &delays).expect("cyclic");
        assert!((period - 10.0).abs() < 1e-6, "{period}");
    }

    #[test]
    fn single_edge_padding_is_cheaper_than_signal_padding() {
        let mg = ring();
        let mut starved = DelayAssignment::uniform(10.0);
        starved.pad_label("a+", 12.0);
        let mut repeater = DelayAssignment::uniform(10.0);
        repeater.pad_signal(&mg, "a", 12.0);
        let base = max_cycle_ratio(&mg, &DelayAssignment::uniform(10.0)).expect("cyclic");
        let t_starved = max_cycle_ratio(&mg, &starved).expect("cyclic");
        let t_repeater = max_cycle_ratio(&mg, &repeater).expect("cyclic");
        assert!(t_starved > base);
        assert!(t_repeater > t_starved, "{t_repeater} vs {t_starved}");
        assert!((t_repeater - base - 24.0).abs() < 1e-6);
    }

    #[test]
    fn slowest_cycle_dominates() {
        // Two cycles sharing a transition: the padded one sets the period
        // only while it is the slower.
        let text = "\
.model twoloops
.inputs a b
.outputs c
.graph
a+ c+
c+ a-
a- c-
c- a+
c+ b+
b+ b-
b- c-
.marking { <c-,a+> <b-,c-> }
.end
";
        let mg = MgStg::from_stg_mg(&parse_astg(text).expect("valid")).expect("mg");
        let base = max_cycle_ratio(&mg, &DelayAssignment::uniform(5.0)).expect("cyclic");
        let mut padded = DelayAssignment::uniform(5.0);
        padded.pad_label("b+", 100.0);
        let slow = max_cycle_ratio(&mg, &padded).expect("cyclic");
        assert!(slow > base + 40.0);
    }

    #[test]
    fn fifo_cycle_time_grows_with_padding() {
        let (stg, _) = si_suite::benchmark("fifo")
            .expect("present")
            .circuit()
            .expect("loads");
        let mg = MgStg::from_stg_mg(&stg).expect("mg");
        let base = max_cycle_ratio(&mg, &DelayAssignment::uniform(20.0)).expect("cyclic");
        let mut padded = DelayAssignment::uniform(20.0);
        padded.pad_signal(&mg, "l", 60.0);
        let slow = max_cycle_ratio(&mg, &padded).expect("cyclic");
        assert!(slow > base, "{slow} <= {base}");
    }
}

//! Isochronic-fork failure-rate estimation (thesis Sec. 7.2).
//!
//! For a constraint whose adversary path has `m` gate hops, the thesis
//! formula reads
//!
//! ```text
//! ER = ∫_{error_length}^{2√N} i(l) dl · ( ∫_0^{short} i(l) dl )^m
//! ```
//!
//! the probability that the constrained direct wire is long enough to be
//! overtaken *and* that every wire of the adversary path is short. The
//! circuit error rate is taken pessimistically: the circuit fails if any
//! constraint fails.
//!
//! Buffer insertion (`ForkStyle::BufferedDirect`, the `buf-1` series of
//! Fig. 7.5) splits the long direct wire: the wire itself gets faster, but
//! the repeater *decouples the fork* — the adversary's first hop no longer
//! sees the long branch's capacitance and speeds up by the decoupling
//! factor (thesis Sec. 4.2.3), which shrinks the error length and *raises*
//! the failure probability.

use crate::tech::TechnologyModel;
use crate::wirelength::WireLengthDistribution;

/// Fork construction for the direct (constrained) wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForkStyle {
    /// Plain fork: both branches share the fork capacitance (`un-buf`).
    Unbuffered,
    /// One repeater on the direct wire (`buf-1`).
    BufferedDirect,
}

/// Parameters of the error-rate estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRateConfig {
    /// Gate count of the die (drives the wire-length distribution).
    pub n_gates: u64,
    /// Assumed maximum length of adversary-path wires, in gate pitches
    /// (the thesis uses about 20).
    pub short_wire: f64,
    /// Fork construction.
    pub style: ForkStyle,
    /// Fraction of the short-wire delay the adversary's first hop saves
    /// when a repeater decouples the fork (synthetic calibration of the
    /// Sec. 4.2.3 effect).
    pub decoupling_gain: f64,
}

impl ErrorRateConfig {
    /// Thesis-style defaults for an `n_gates` die.
    pub fn new(n_gates: u64, style: ForkStyle) -> Self {
        Self {
            n_gates,
            short_wire: 20.0,
            style,
            decoupling_gain: 0.55,
        }
    }
}

/// Failure probability of a single constraint whose adversary path has
/// `gates` gate hops, under technology `tech`.
pub fn constraint_error_rate(tech: &TechnologyModel, config: &ErrorRateConfig, gates: u32) -> f64 {
    let dist = WireLengthDistribution::with_defaults(config.n_gates);
    // Adversary path delay: `gates` gate hops with short wires between.
    // In the unbuffered fork, the adversary's first hop is slowed by the
    // shared fork capacitance (it effectively sees part of the long
    // branch); the repeater removes that coupling.
    let base_path = tech.path_delay(gates, config.short_wire);
    let (path_delay, error_length) = match config.style {
        ForkStyle::Unbuffered => {
            let coupled =
                base_path + config.decoupling_gain * tech.wire_delay(config.short_wire * 8.0);
            (coupled, tech.error_length(coupled))
        }
        ForkStyle::BufferedDirect => {
            // Decoupled adversary races a buffered direct wire: solve
            // buffered_wire_delay(L) = path numerically.
            let l = solve_buffered_error_length(tech, base_path);
            (base_path, l)
        }
    };
    let _ = path_delay;
    let p_long = dist.probability_longer_than(error_length);
    let p_short = dist.probability_shorter_than(config.short_wire);
    p_long * p_short.powi(gates as i32)
}

fn solve_buffered_error_length(tech: &TechnologyModel, path_delay: f64) -> f64 {
    // buffered_wire_delay is monotone in L: bisect.
    let mut lo = 0.0f64;
    let mut hi = 1.0e7;
    if tech.buffered_wire_delay(hi) < path_delay {
        return hi;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if tech.buffered_wire_delay(mid) < path_delay {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Pessimistic circuit error rate: the circuit glitches if any constraint
/// fails. `constraint_gates` holds the adversary-path gate count of every
/// strong constraint in the circuit.
pub fn circuit_error_rate(
    tech: &TechnologyModel,
    config: &ErrorRateConfig,
    constraint_gates: &[u32],
) -> f64 {
    let mut survive = 1.0f64;
    for &g in constraint_gates {
        survive *= 1.0 - constraint_error_rate(tech, config, g);
    }
    1.0 - survive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::NODES;

    fn fifo_like() -> Vec<u32> {
        // A handful of level-3/5 constraints like Table 7.1's strong ones.
        vec![1, 1, 2, 2, 3]
    }

    #[test]
    fn error_rate_grows_as_technology_shrinks() {
        // Fig. 7.5 shape (un-buf series).
        let mut prev = 0.0;
        for tech in NODES {
            let config = ErrorRateConfig::new(1_000_000, ForkStyle::Unbuffered);
            let er = circuit_error_rate(&tech, &config, &fifo_like());
            assert!(er > prev, "{} nm: {er} <= {prev}", tech.node_nm);
            prev = er;
        }
    }

    #[test]
    fn buffer_insertion_raises_the_error_rate() {
        // Fig. 7.5 shape (buf-1 above un-buf at every node).
        for tech in NODES {
            let unbuf = circuit_error_rate(
                &tech,
                &ErrorRateConfig::new(1_000_000, ForkStyle::Unbuffered),
                &fifo_like(),
            );
            let buf = circuit_error_rate(
                &tech,
                &ErrorRateConfig::new(1_000_000, ForkStyle::BufferedDirect),
                &fifo_like(),
            );
            assert!(
                buf > unbuf,
                "{} nm: buf {buf} <= unbuf {unbuf}",
                tech.node_nm
            );
        }
    }

    #[test]
    fn error_rate_grows_with_scale() {
        // Fig. 7.6 shape: 0.5M → 4M gates at 90 nm.
        let tech = NODES[0];
        let mut prev = 0.0;
        for n in [500_000u64, 1_000_000, 2_000_000, 4_000_000] {
            let config = ErrorRateConfig::new(n, ForkStyle::Unbuffered);
            let er = circuit_error_rate(&tech, &config, &fifo_like());
            assert!(er > prev, "{n} gates: {er} <= {prev}");
            prev = er;
        }
    }

    #[test]
    fn error_rates_are_probabilities() {
        for tech in NODES {
            for style in [ForkStyle::Unbuffered, ForkStyle::BufferedDirect] {
                let config = ErrorRateConfig::new(1_000_000, style);
                let er = circuit_error_rate(&tech, &config, &fifo_like());
                assert!((0.0..=1.0).contains(&er), "{er}");
            }
        }
    }

    #[test]
    fn longer_adversary_paths_fail_less() {
        let tech = NODES[3];
        let config = ErrorRateConfig::new(1_000_000, ForkStyle::Unbuffered);
        let short = constraint_error_rate(&tech, &config, 1);
        let long = constraint_error_rate(&tech, &config, 4);
        assert!(long < short);
    }

    #[test]
    fn magnitudes_match_the_thesis_band() {
        // Fig. 7.5 plots single-digit-to-low-teens percentages at 1M gates.
        let config = ErrorRateConfig::new(1_000_000, ForkStyle::Unbuffered);
        let er90 = circuit_error_rate(&NODES[0], &config, &fifo_like());
        let er32 = circuit_error_rate(&NODES[3], &config, &fifo_like());
        assert!(er90 > 0.0005 && er90 < 0.10, "90nm: {er90}");
        assert!(er32 > er90 && er32 < 0.30, "32nm: {er32}");
    }
}

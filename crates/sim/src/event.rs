//! Event-driven gate-level timing simulation with per-branch wire delays.
//!
//! This is the workbench on which the thesis's central claim is observable:
//! with isochronic forks (equal wire delays) a speed-independent circuit is
//! glitch-free; skew a fork beyond a derived timing constraint and the
//! affected gate glitches; honour the constraints (e.g. by padding) and the
//! glitches disappear.
//!
//! Mechanics: every gate keeps its own *view* of its support signals,
//! updated by per-wire arrival events; the gate's pull-up/pull-down covers
//! are evaluated on the view, output flips are scheduled one gate delay
//! later. An excitation that is withdrawn before the output fires is
//! recorded as a glitch (a pure-delay gate would emit the runt pulse; an
//! inertial gate absorbs it — either way the thesis counts it as a
//! hazard). Output flips are also checked against the STG: a flip with no
//! enabled specification transition is a specification violation. The
//! environment fires input transitions `env_delay` after they become
//! specification-enabled.

use std::collections::{BTreeMap, BinaryHeap};
use std::error::Error;
use std::fmt;

use si_boolean::GateLibrary;
use si_stg::{Polarity, Stg, StgError};

/// Per-instance delay assignment, picoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    /// Default gate propagation delay.
    pub default_gate_ps: f64,
    /// Default wire delay (every fork branch).
    pub default_wire_ps: f64,
    /// Environment response time.
    pub env_delay_ps: f64,
    /// Per-gate overrides, keyed by output name.
    pub gate_ps: BTreeMap<String, f64>,
    /// Per-branch overrides, keyed by `(driver signal, receiving gate)`.
    pub wire_ps: BTreeMap<(String, String), f64>,
    /// Pure-delay gate semantics (thesis Sec. 2.6): a withdrawn excitation
    /// still emits its runt pulse downstream instead of being absorbed.
    /// The default (`false`) models inertial delays, recording the
    /// withdrawal as a glitch without propagating it.
    pub pure_delay: bool,
}

impl DelayModel {
    /// Uniform delays: `gate` per gate, `wire` per branch, `env` for the
    /// environment.
    pub fn uniform(gate: f64, wire: f64, env: f64) -> Self {
        Self {
            default_gate_ps: gate,
            default_wire_ps: wire,
            env_delay_ps: env,
            gate_ps: BTreeMap::new(),
            wire_ps: BTreeMap::new(),
            pure_delay: false,
        }
    }

    /// Sets a branch delay override.
    pub fn set_wire(&mut self, driver: &str, gate: &str, ps: f64) {
        self.wire_ps
            .insert((driver.to_string(), gate.to_string()), ps);
    }

    /// Sets a gate delay override.
    pub fn set_gate(&mut self, gate: &str, ps: f64) {
        self.gate_ps.insert(gate.to_string(), ps);
    }

    fn gate(&self, name: &str) -> f64 {
        self.gate_ps
            .get(name)
            .copied()
            .unwrap_or(self.default_gate_ps)
    }

    fn wire(&self, driver: &str, gate: &str) -> f64 {
        self.wire_ps
            .get(&(driver.to_string(), gate.to_string()))
            .copied()
            .unwrap_or(self.default_wire_ps)
    }
}

/// A recorded hazard.
#[derive(Debug, Clone, PartialEq)]
pub struct Glitch {
    /// The gate whose excitation was withdrawn or whose flip violated the
    /// specification.
    pub gate: String,
    /// Simulation time, picoseconds.
    pub time_ps: f64,
    /// Human-readable description.
    pub kind: String,
}

/// Simulation result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimOutcome {
    /// Hazards observed (empty = clean run).
    pub glitches: Vec<Glitch>,
    /// Output transitions fired.
    pub fired: usize,
    /// Final simulation time, picoseconds.
    pub time_ps: f64,
}

/// Simulation setup failure.
#[derive(Debug)]
pub enum SimulateError {
    /// The STG is malformed.
    Stg(StgError),
    /// A non-input signal has no gate in the library.
    MissingGate(String),
    /// A gate references a signal the STG does not declare.
    UnknownSignal(String),
}

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulateError::Stg(e) => write!(f, "{e}"),
            SimulateError::MissingGate(s) => write!(f, "no gate implements `{s}`"),
            SimulateError::UnknownSignal(s) => {
                write!(f, "gate references unknown signal `{s}`")
            }
        }
    }
}

impl Error for SimulateError {}

impl From<StgError> for SimulateError {
    fn from(e: StgError) -> Self {
        SimulateError::Stg(e)
    }
}

type Time = u64; // femtoseconds

fn fs(ps: f64) -> Time {
    (ps * 1000.0).round().max(0.0) as Time
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    WireArrival {
        gate: usize,
        var: usize,
        value: bool,
    },
    GateOutput {
        gate: usize,
        value: bool,
        version: u64,
    },
    EnvFire {
        transition: usize,
    },
}

struct GateInst {
    name: String,
    output: usize,
    up: si_boolean::Cover,
    down: si_boolean::Cover,
    support: Vec<usize>,
    view: u64,
    out: bool,
    pending: Option<bool>,
    version: u64,
    /// Pure-delay output pipeline: scheduled `(time, value)` flips.
    pipeline: Vec<(Time, bool)>,
}

struct Scheduler {
    queue: BinaryHeap<std::cmp::Reverse<(Time, u64, usize)>>,
    events: Vec<Event>,
    seq: u64,
}

impl Scheduler {
    fn new() -> Self {
        Self {
            queue: BinaryHeap::new(),
            events: Vec::new(),
            seq: 0,
        }
    }

    fn push(&mut self, t: Time, e: Event) {
        self.events.push(e);
        self.queue
            .push(std::cmp::Reverse((t, self.seq, self.events.len() - 1)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(Time, Event)> {
        self.queue
            .pop()
            .map(|std::cmp::Reverse((t, _, i))| (t, self.events[i].clone()))
    }
}

/// Runs the circuit against its STG environment until `max_fired` output
/// transitions have fired (or activity dies out).
///
/// # Errors
///
/// Fails on malformed inputs (missing gates, unknown signals, dead STGs).
pub fn simulate(
    stg: &Stg,
    library: &GateLibrary,
    delays: &DelayModel,
    max_fired: usize,
) -> Result<SimOutcome, SimulateError> {
    let values0 = stg.initial_values()?;
    let net = stg.net();

    let mut gates: Vec<GateInst> = Vec::new();
    for s in stg.gate_signals() {
        let name = stg.signal_name(s).to_string();
        let gate = library
            .gate(&name)
            .ok_or_else(|| SimulateError::MissingGate(name.clone()))?;
        let mut support = Vec::new();
        for v in &gate.vars {
            let sig = stg
                .signal_by_name(v)
                .ok_or_else(|| SimulateError::UnknownSignal(v.clone()))?;
            support.push(sig.0);
        }
        let mut view = 0u64;
        for (i, &sig) in support.iter().enumerate() {
            if values0[sig] {
                view |= 1u64 << i;
            }
        }
        gates.push(GateInst {
            name,
            output: s.0,
            up: gate.up.clone(),
            down: gate.down.clone(),
            support,
            view,
            out: values0[s.0],
            pending: None,
            version: 0,
            pipeline: Vec::new(),
        });
    }

    // Fan-out lists: signal -> (gate idx, var idx).
    let mut fanout: Vec<Vec<(usize, usize)>> = vec![Vec::new(); stg.signal_count()];
    for (gi, g) in gates.iter().enumerate() {
        for (vi, &sig) in g.support.iter().enumerate() {
            fanout[sig].push((gi, vi));
        }
    }

    let is_input = |t: usize| {
        !stg.signal_kind(stg.label(si_petri::TransitionId(t)).signal)
            .is_gate_driven()
    };

    let mut marking = net.initial_marking();
    let mut sched = Scheduler::new();
    let mut env_scheduled: Vec<bool> = vec![false; net.transition_count()];

    for t in net.transitions() {
        if is_input(t.0) && net.enabled(t, &marking) {
            env_scheduled[t.0] = true;
            sched.push(fs(delays.env_delay_ps), Event::EnvFire { transition: t.0 });
        }
    }

    // Gates excited in the initial state fire without waiting for input
    // activity (e.g. a marking whose first enabled transition is a gate
    // output).
    for (gi, g) in gates.iter_mut().enumerate() {
        let want = if g.up.eval(g.view) {
            true
        } else if g.down.eval(g.view) {
            false
        } else {
            g.out
        };
        if want != g.out {
            g.pending = Some(want);
            g.version += 1;
            let delay = fs(delays.gate(&g.name));
            let version = g.version;
            sched.push(
                delay,
                Event::GateOutput {
                    gate: gi,
                    value: want,
                    version,
                },
            );
        }
    }

    let mut outcome = SimOutcome::default();
    let mut values = values0.clone();
    let max_events = 500_000usize;
    let mut processed = 0usize;

    while let Some((t, event)) = sched.pop() {
        if outcome.fired >= max_fired || processed >= max_events {
            break;
        }
        processed += 1;
        outcome.time_ps = t as f64 / 1000.0;
        match event {
            Event::WireArrival { gate, var, value } => {
                let bit = 1u64 << var;
                let g = &mut gates[gate];
                let view = if value { g.view | bit } else { g.view & !bit };
                if view == g.view {
                    continue;
                }
                g.view = view;
                let want = if g.up.eval(view) {
                    true
                } else if g.down.eval(view) {
                    false
                } else {
                    g.out // hold state
                };
                if delays.pure_delay {
                    // Pure delay: every change of the eventual value is
                    // emitted after the gate delay; two reversals at the
                    // same instant cancel (a zero-width pulse).
                    let eventual = g.pipeline.last().map_or(g.out, |&(_, v)| v);
                    if want != eventual {
                        let fire_at = t + fs(delays.gate(&g.name));
                        if g.pipeline.last() == Some(&(fire_at, !want)) {
                            g.pipeline.pop();
                        } else {
                            g.pipeline.push((fire_at, want));
                            g.version += 1;
                            let version = g.version;
                            sched.push(
                                fire_at,
                                Event::GateOutput {
                                    gate,
                                    value: want,
                                    version,
                                },
                            );
                        }
                    }
                    continue;
                }
                match g.pending {
                    Some(p) if p == want => {}
                    Some(_) => {
                        // Excitation withdrawn or reversed before firing.
                        g.version += 1;
                        if want == g.out {
                            g.pending = None;
                            outcome.glitches.push(Glitch {
                                gate: g.name.clone(),
                                time_ps: t as f64 / 1000.0,
                                kind: "excitation withdrawn before firing".to_string(),
                            });
                        } else {
                            g.pending = Some(want);
                            let delay = fs(delays.gate(&g.name));
                            let version = g.version;
                            sched.push(
                                t + delay,
                                Event::GateOutput {
                                    gate,
                                    value: want,
                                    version,
                                },
                            );
                        }
                    }
                    None => {
                        if want != g.out {
                            g.pending = Some(want);
                            g.version += 1;
                            let delay = fs(delays.gate(&g.name));
                            let version = g.version;
                            sched.push(
                                t + delay,
                                Event::GateOutput {
                                    gate,
                                    value: want,
                                    version,
                                },
                            );
                        }
                    }
                }
            }
            Event::GateOutput {
                gate,
                value,
                version,
            } => {
                if delays.pure_delay {
                    // Commit the front of the pipeline if this event still
                    // matches it (cancelled pulses removed it).
                    match gates[gate].pipeline.first() {
                        Some(&(at, v)) if at == t && v == value => {
                            gates[gate].pipeline.remove(0);
                        }
                        _ => continue,
                    }
                    if gates[gate].out == value {
                        continue;
                    }
                } else if gates[gate].version != version || gates[gate].pending != Some(value) {
                    continue; // superseded
                }
                gates[gate].pending = None;
                gates[gate].out = value;
                let sig = gates[gate].output;
                values[sig] = value;
                outcome.fired += 1;

                // Specification progress.
                let pol = if value {
                    Polarity::Plus
                } else {
                    Polarity::Minus
                };
                let spec = net.transitions().find(|&tr| {
                    let l = stg.label(tr);
                    l.signal.0 == sig && l.polarity == pol && net.enabled(tr, &marking)
                });
                match spec {
                    Some(tr) => {
                        marking = net.fire(tr, &marking);
                        for u in net.transitions() {
                            if is_input(u.0) && net.enabled(u, &marking) && !env_scheduled[u.0] {
                                env_scheduled[u.0] = true;
                                sched.push(
                                    t + fs(delays.env_delay_ps),
                                    Event::EnvFire { transition: u.0 },
                                );
                            }
                        }
                    }
                    None => outcome.glitches.push(Glitch {
                        gate: gates[gate].name.clone(),
                        time_ps: t as f64 / 1000.0,
                        kind: format!(
                            "fired {}{pol} with no enabled specification transition",
                            gates[gate].name
                        ),
                    }),
                }

                let driver = stg.signal_name(si_stg::SignalId(sig)).to_string();
                for &(gi, vi) in &fanout[sig] {
                    let wire = fs(delays.wire(&driver, &gates[gi].name));
                    sched.push(
                        t + wire,
                        Event::WireArrival {
                            gate: gi,
                            var: vi,
                            value,
                        },
                    );
                }
            }
            Event::EnvFire { transition } => {
                let tr = si_petri::TransitionId(transition);
                env_scheduled[transition] = false;
                if !net.enabled(tr, &marking) {
                    continue; // lost a free choice
                }
                marking = net.fire(tr, &marking);
                let label = stg.label(tr);
                let sig = label.signal.0;
                values[sig] = label.polarity.target_value();
                let driver = stg.signal_name(label.signal).to_string();
                for &(gi, vi) in &fanout[sig] {
                    let wire = fs(delays.wire(&driver, &gates[gi].name));
                    sched.push(
                        t + wire,
                        Event::WireArrival {
                            gate: gi,
                            var: vi,
                            value: values[sig],
                        },
                    );
                }
                for u in net.transitions() {
                    if is_input(u.0) && net.enabled(u, &marking) && !env_scheduled[u.0] {
                        env_scheduled[u.0] = true;
                        sched.push(
                            t + fs(delays.env_delay_ps),
                            Event::EnvFire { transition: u.0 },
                        );
                    }
                }
            }
        }
    }

    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fifo() -> (Stg, GateLibrary) {
        si_suite::benchmark("fifo")
            .expect("present")
            .circuit()
            .expect("loads")
    }

    #[test]
    fn isochronic_forks_run_clean() {
        let (stg, lib) = fifo();
        let delays = DelayModel::uniform(40.0, 2.0, 80.0);
        let out = simulate(&stg, &lib, &delays, 200).expect("simulates");
        assert!(out.glitches.is_empty(), "{:?}", out.glitches);
        assert!(out.fired >= 200, "only {} transitions fired", out.fired);
    }

    #[test]
    fn violating_the_derived_constraint_glitches() {
        // Table 7.1-style: the FIFO's done detector g0 requires d- to
        // reach it before the next l+. Slowing the d → g0 branch far
        // beyond a cycle violates the constraint and must glitch.
        let (stg, lib) = fifo();
        let mut delays = DelayModel::uniform(40.0, 2.0, 80.0);
        delays.set_wire("d", "g0", 3000.0);
        let out = simulate(&stg, &lib, &delays, 400).expect("simulates");
        assert!(
            out.glitches.iter().any(|g| g.gate == "g0"),
            "expected a glitch at g0, got {:?}",
            out.glitches
        );
    }

    #[test]
    fn padding_the_adversary_path_restores_correctness() {
        // Same skew, but the adversary path (gate l) padded so that l+
        // again loses the race: clean run. This is the Sec. 5.7 fix.
        let (stg, lib) = fifo();
        let mut delays = DelayModel::uniform(40.0, 2.0, 80.0);
        delays.set_wire("d", "g0", 3000.0);
        delays.set_gate("l", 3200.0);
        let out = simulate(&stg, &lib, &delays, 200).expect("simulates");
        assert!(
            !out.glitches.iter().any(|g| g.gate == "g0"),
            "g0 still glitches: {:?}",
            out.glitches
        );
    }

    #[test]
    fn c_element_tolerates_arbitrary_skew() {
        let text = "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
";
        let stg = si_stg::parse_astg(text).expect("valid");
        let lib = si_synth::synthesize(&stg, 1000).expect("CSC");
        let mut delays = DelayModel::uniform(40.0, 2.0, 80.0);
        delays.set_wire("a", "c", 5000.0); // monstrous skew on one branch
        let out = simulate(&stg, &lib, &delays, 100).expect("simulates");
        assert!(out.glitches.is_empty(), "{:?}", out.glitches);
    }

    #[test]
    fn pure_delay_clean_circuit_stays_clean() {
        let (stg, lib) = fifo();
        let mut delays = DelayModel::uniform(40.0, 2.0, 80.0);
        delays.pure_delay = true;
        let out = simulate(&stg, &lib, &delays, 200).expect("simulates");
        assert!(out.glitches.is_empty(), "{:?}", out.glitches);
        assert!(out.fired >= 200);
    }

    #[test]
    fn pure_delay_propagates_the_runt_pulse() {
        // Thesis Sec. 2.6: under pure delay the withdrawn excitation is
        // not absorbed — the violated constraint produces *specification
        // violations* (the pulse fires against the STG), not just a
        // withdrawal report.
        let (stg, lib) = fifo();
        let mut delays = DelayModel::uniform(40.0, 2.0, 80.0);
        delays.pure_delay = true;
        delays.set_wire("d", "g0", 3000.0);
        let out = simulate(&stg, &lib, &delays, 400).expect("simulates");
        assert!(
            out.glitches
                .iter()
                .any(|g| g.gate == "g0" && g.kind.contains("specification")),
            "expected a propagated pulse at g0, got {:?}",
            out.glitches
        );
    }

    #[test]
    fn every_benchmark_simulates_clean_under_isochronic_forks() {
        for b in si_suite::benchmarks() {
            let (stg, lib) = b.circuit().expect("loads");
            let delays = DelayModel::uniform(30.0, 1.0, 60.0);
            let out = simulate(&stg, &lib, &delays, 100).expect("simulates");
            assert!(out.glitches.is_empty(), "{}: {:?}", b.name, out.glitches);
            assert!(out.fired > 0, "{}: nothing fired", b.name);
        }
    }
}

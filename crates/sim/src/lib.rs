//! Timing simulation and deep-submicron analysis substrate (thesis
//! Sec. 7.2): an event-driven gate-level simulator with per-branch wire
//! delays and glitch detection, synthetic technology models for the
//! 90/65/45/32 nm nodes, the Davis interconnect-length distribution and the
//! thesis error-rate formulas, delay padding elements (repeater vs
//! current-starved) and marked-graph cycle-time analysis for the delay
//! penalty of Fig. 7.7.
//!
//! The thesis ran HSPICE with the ASU PTM bulk libraries; this crate
//! substitutes an analytic calibration with the same trends (gate delay
//! scales down faster than wire delay; buffer insertion decouples fork
//! branches). Absolute numbers differ from silicon, the trends — which are
//! what Figs. 7.5–7.7 plot — are preserved.

mod apply;
mod cycletime;
mod errorrate;
mod event;
mod tech;
mod wirelength;

pub use apply::apply_padding;
pub use cycletime::{cycle_time, max_cycle_ratio, DelayAssignment};
pub use errorrate::{circuit_error_rate, constraint_error_rate, ErrorRateConfig, ForkStyle};
pub use event::{simulate, DelayModel, Glitch, SimOutcome, SimulateError};
pub use tech::{node, TechnologyModel, NODES};
pub use wirelength::WireLengthDistribution;

//! Synthetic technology calibration for the 90–32 nm nodes.
//!
//! Substitutes the ASU PTM + HSPICE characterization of thesis Sec. 7.2
//! with an analytic model keeping the deep-submicron trends: gate delay
//! shrinks roughly linearly with the node, while (local) wire delay per
//! gate pitch shrinks much more slowly and its quadratic RC term grows in
//! relative weight — so the wire-length threshold at which an isochronic
//! fork fails drops from node to node.

/// One technology node's delay calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyModel {
    /// Feature size in nanometres.
    pub node_nm: u32,
    /// FO4-ish gate delay, picoseconds.
    pub gate_delay_ps: f64,
    /// Linear wire delay per gate pitch, picoseconds.
    pub wire_linear_ps: f64,
    /// Quadratic (RC) wire delay coefficient, ps per pitch².
    pub wire_quadratic_ps: f64,
    /// Delay of an inserted repeater, picoseconds.
    pub buffer_delay_ps: f64,
}

impl TechnologyModel {
    /// Delay of an unbuffered wire of `l` gate pitches.
    pub fn wire_delay(&self, l: f64) -> f64 {
        self.wire_linear_ps * l + self.wire_quadratic_ps * l * l
    }

    /// Delay of the same wire split once by a repeater (halves the
    /// quadratic term, adds the buffer delay).
    pub fn buffered_wire_delay(&self, l: f64) -> f64 {
        2.0 * self.wire_delay(l / 2.0) + self.buffer_delay_ps
    }

    /// Delay of an adversary path with `gates` gate hops whose internal
    /// wires are `short` pitches each.
    pub fn path_delay(&self, gates: u32, short: f64) -> f64 {
        f64::from(gates) * (self.gate_delay_ps + self.wire_delay(short))
    }

    /// The wire length (in pitches) beyond which a direct wire becomes
    /// slower than the given path delay — the `error_length` of the thesis
    /// error-rate formula. Solved analytically from the quadratic model.
    pub fn error_length(&self, path_delay_ps: f64) -> f64 {
        // wire_quadratic·L² + wire_linear·L − path = 0
        let a = self.wire_quadratic_ps;
        let b = self.wire_linear_ps;
        let c = -path_delay_ps;
        ((b * b - 4.0 * a * c).sqrt() - b) / (2.0 * a)
    }
}

/// The four nodes of thesis Figs. 7.5 and 7.7 (90, 65, 45, 32 nm).
pub const NODES: [TechnologyModel; 4] = [
    TechnologyModel {
        node_nm: 90,
        gate_delay_ps: 40.0,
        wire_linear_ps: 0.100,
        wire_quadratic_ps: 0.00010,
        buffer_delay_ps: 30.0,
    },
    TechnologyModel {
        node_nm: 65,
        gate_delay_ps: 28.0,
        wire_linear_ps: 0.095,
        wire_quadratic_ps: 0.00016,
        buffer_delay_ps: 22.0,
    },
    TechnologyModel {
        node_nm: 45,
        gate_delay_ps: 18.0,
        wire_linear_ps: 0.092,
        wire_quadratic_ps: 0.00026,
        buffer_delay_ps: 15.0,
    },
    TechnologyModel {
        node_nm: 32,
        gate_delay_ps: 12.0,
        wire_linear_ps: 0.090,
        wire_quadratic_ps: 0.00040,
        buffer_delay_ps: 10.0,
    },
];

/// Looks up a node by feature size.
pub fn node(nm: u32) -> Option<TechnologyModel> {
    NODES.iter().copied().find(|t| t.node_nm == nm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_delay_is_monotone_in_length() {
        for t in NODES {
            assert!(t.wire_delay(100.0) < t.wire_delay(200.0));
            assert!(t.wire_delay(0.0) == 0.0);
        }
    }

    #[test]
    fn gate_delay_shrinks_faster_than_wire_delay() {
        // The deep-submicron premise: across nodes, the ratio of a long
        // wire's delay to a gate delay grows.
        let long = 500.0;
        let mut prev_ratio = 0.0;
        for t in NODES {
            let ratio = t.wire_delay(long) / t.gate_delay_ps;
            assert!(ratio > prev_ratio, "{} nm ratio {ratio}", t.node_nm);
            prev_ratio = ratio;
        }
    }

    #[test]
    fn error_length_shrinks_with_the_node() {
        // The same 1-gate adversary path is overtaken by ever-shorter
        // wires as the node shrinks — the Fig. 7.5 driver.
        let mut prev = f64::INFINITY;
        for t in NODES {
            let l = t.error_length(t.path_delay(1, 20.0));
            assert!(l < prev, "{} nm error length {l}", t.node_nm);
            assert!(l > 20.0, "error length must exceed the short-wire scale");
            prev = l;
        }
    }

    #[test]
    fn error_length_inverts_wire_delay() {
        for t in NODES {
            let d = t.path_delay(2, 15.0);
            let l = t.error_length(d);
            assert!((t.wire_delay(l) - d).abs() < 1e-6);
        }
    }

    #[test]
    fn buffered_long_wire_is_faster() {
        for t in NODES {
            assert!(t.buffered_wire_delay(800.0) < t.wire_delay(800.0));
        }
    }

    #[test]
    fn node_lookup() {
        assert_eq!(node(65).expect("exists").node_nm, 65);
        assert!(node(28).is_none());
    }
}

//! The Davis stochastic interconnect-length distribution used in thesis
//! Sec. 7.2 to estimate isochronic-fork failure rates on an `N`-gate die.
//!
//! The density (up to normalization) is the thesis formula:
//!
//! ```text
//! 1 ≤ l ≤ √N :   i(l) ∝ (l³/3 − 2√N·l² + 2N·l) · l^(2p−4)
//! √N ≤ l ≤ 2√N : i(l) ∝ ((2√N − l)³ / 3)      · l^(2p−4)
//! ```
//!
//! with Rent exponent `p = 0.85`. The normalization constant Γ is computed
//! numerically so the density integrates to one (the thesis uses the
//! closed form; the error-rate formulas only consume probabilities, for
//! which a unit integral is what matters).

/// Wire lengths are measured in gate pitches on a die of `n_gates` gates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireLengthDistribution {
    n_gates: f64,
    p: f64,
    norm: f64,
}

impl WireLengthDistribution {
    /// Builds the distribution for an `n_gates`-gate die with Rent
    /// exponent `p` (the thesis uses `p = 0.85`).
    ///
    /// # Panics
    ///
    /// Panics if `n_gates < 4` or `p` is not in `(0, 1)`.
    pub fn new(n_gates: u64, p: f64) -> Self {
        assert!(n_gates >= 4, "need at least 4 gates");
        assert!(p > 0.0 && p < 1.0, "Rent exponent must be in (0, 1)");
        let mut d = Self {
            n_gates: n_gates as f64,
            p,
            norm: 1.0,
        };
        let total = d.integrate_raw(1.0, d.max_length());
        d.norm = 1.0 / total;
        d
    }

    /// The thesis default: Rent exponent 0.85.
    pub fn with_defaults(n_gates: u64) -> Self {
        Self::new(n_gates, 0.85)
    }

    /// Maximum wire length, `2√N` gate pitches.
    pub fn max_length(&self) -> f64 {
        2.0 * self.n_gates.sqrt()
    }

    fn raw_density(&self, l: f64) -> f64 {
        if l < 1.0 || l > self.max_length() {
            return 0.0;
        }
        let sqrt_n = self.n_gates.sqrt();
        let shape = if l <= sqrt_n {
            l * l * l / 3.0 - 2.0 * sqrt_n * l * l + 2.0 * self.n_gates * l
        } else {
            let r = 2.0 * sqrt_n - l;
            r * r * r / 3.0
        };
        shape * l.powf(2.0 * self.p - 4.0)
    }

    /// The normalized probability density at `l` gate pitches.
    pub fn density(&self, l: f64) -> f64 {
        self.norm * self.raw_density(l)
    }

    fn integrate_raw(&self, lo: f64, hi: f64) -> f64 {
        let lo = lo.max(1.0);
        let hi = hi.min(self.max_length());
        if hi <= lo {
            return 0.0;
        }
        // Adaptive-ish trapezoid on a log grid (the density is heavy near
        // l = 1 and smooth elsewhere).
        let steps = 4000usize;
        let ratio = (hi / lo).powf(1.0 / steps as f64);
        let mut total = 0.0;
        let mut x0 = lo;
        let mut f0 = self.raw_density(x0);
        for _ in 0..steps {
            let x1 = x0 * ratio;
            let f1 = self.raw_density(x1);
            total += 0.5 * (f0 + f1) * (x1 - x0);
            x0 = x1;
            f0 = f1;
        }
        total
    }

    /// Probability that a wire is between `lo` and `hi` gate pitches.
    pub fn probability_between(&self, lo: f64, hi: f64) -> f64 {
        (self.norm * self.integrate_raw(lo, hi)).clamp(0.0, 1.0)
    }

    /// Probability that a wire is longer than `l` gate pitches.
    pub fn probability_longer_than(&self, l: f64) -> f64 {
        self.probability_between(l, self.max_length())
    }

    /// Probability that a wire is shorter than `l` gate pitches.
    pub fn probability_shorter_than(&self, l: f64) -> f64 {
        self.probability_between(1.0, l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_integrates_to_one() {
        for n in [100_000u64, 1_000_000, 4_000_000] {
            let d = WireLengthDistribution::with_defaults(n);
            let total = d.probability_between(1.0, d.max_length());
            assert!((total - 1.0).abs() < 1e-6, "n={n}: {total}");
        }
    }

    #[test]
    fn short_wires_dominate() {
        let d = WireLengthDistribution::with_defaults(1_000_000);
        assert!(d.probability_shorter_than(20.0) > 0.5);
        assert!(d.probability_longer_than(1000.0) < 0.05);
    }

    #[test]
    fn tail_probability_decreases_with_length() {
        let d = WireLengthDistribution::with_defaults(1_000_000);
        let mut prev = 1.0;
        for l in [10.0, 50.0, 200.0, 800.0, 1500.0] {
            let p = d.probability_longer_than(l);
            assert!(p < prev, "l={l}: {p} >= {prev}");
            prev = p;
        }
    }

    #[test]
    fn larger_dies_have_heavier_tails() {
        // Fig. 7.6 driver: at a fixed absolute length the long-wire
        // probability grows with gate count.
        let threshold = 300.0;
        let mut prev = 0.0;
        for n in [500_000u64, 1_000_000, 2_000_000, 4_000_000] {
            let p = WireLengthDistribution::with_defaults(n).probability_longer_than(threshold);
            assert!(p > prev, "n={n}: {p} <= {prev}");
            prev = p;
        }
    }

    #[test]
    fn density_vanishes_outside_support() {
        let d = WireLengthDistribution::with_defaults(1_000_000);
        assert_eq!(d.density(0.5), 0.0);
        assert_eq!(d.density(d.max_length() + 1.0), 0.0);
        assert!(d.density(2.0) > 0.0);
    }

    #[test]
    fn piecewise_joint_is_continuous() {
        let d = WireLengthDistribution::with_defaults(1_000_000);
        let sqrt_n = 1000.0;
        let left = d.density(sqrt_n - 1e-3);
        let right = d.density(sqrt_n + 1e-3);
        let rel = (left - right).abs() / left.max(right);
        assert!(rel < 0.05, "jump at √N: {left} vs {right}");
    }
}

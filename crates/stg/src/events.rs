//! The event-stream layer of the `.g` front-end: [`Token`]s from the
//! [`Lexer`](crate::lexer::Lexer) in, a flat stream of [`ParseEvent`]s
//! out. Every fact the lenient parser reports — section structure for
//! [`SpecSpans`](crate::parse::SpecSpans), declaration and node tokens,
//! every syntactic [`ParseAstgError`](crate::parse::ParseAstgError) —
//! rides the stream in source order, so folding it (see
//! [`TreeBuilder`](crate::tree::TreeBuilder)) reproduces the single-pass
//! parser bit for bit, and serializing it (see [`crate::sexp`]) loses
//! nothing.

use crate::lexer::{Lexer, Token, TokenKind};
use crate::parse::{ParseAstgError, ParseErrorKind, Span};

/// The kind of a structural node in the parse tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseNodeKind {
    /// The whole specification.
    Document,
    /// A `.model` line.
    Model,
    /// A `.inputs` declaration line.
    Inputs,
    /// A `.outputs` declaration line.
    Outputs,
    /// An `.internal` declaration line.
    Internal,
    /// The `.graph` section (from its directive to the next section).
    Graph,
    /// One content line inside the `.graph` section.
    GraphLine,
    /// The `.marking` line.
    Marking,
}

impl ParseNodeKind {
    /// The node's interchange name (the head atom in sexp dumps).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Document => "document",
            Self::Model => "model",
            Self::Inputs => "inputs",
            Self::Outputs => "outputs",
            Self::Internal => "internal",
            Self::Graph => "graph",
            Self::GraphLine => "line",
            Self::Marking => "marking",
        }
    }
}

/// One event of the streaming front-end. `Open`/`Close` pairs nest
/// (document ⊃ sections ⊃ graph lines); `Token` carries the payload
/// words; `Defect` carries a lenient-parse diagnostic at its exact
/// position in the stream — defect *order* is part of the contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseEvent {
    /// A structural node opens at `span`.
    Open {
        /// What opens.
        kind: ParseNodeKind,
        /// The directive/line span recorded in
        /// [`SpecSpans`](crate::parse::SpecSpans).
        span: Span,
    },
    /// The innermost open node of `kind` closes.
    Close {
        /// What closes.
        kind: ParseNodeKind,
    },
    /// A payload token ([`TokenKind::Model`], [`TokenKind::Name`],
    /// [`TokenKind::Node`] or [`TokenKind::MarkingEntry`]).
    Token(Token),
    /// A syntactic defect, in stream order.
    Defect(ParseAstgError),
}

/// Streams [`ParseEvent`]s from `.g` chunks: an incremental
/// [`Lexer`] plus the structural bookkeeping that turns its flat token
/// list into a nested open/close stream.
#[derive(Debug, Default)]
pub struct EventParser {
    lexer: Lexer,
    /// Scratch token buffer, reused across feeds.
    tokens: Vec<Token>,
    /// Open nodes above the document, innermost last.
    stack: Vec<ParseNodeKind>,
    /// Whether `Open(Document)` was emitted.
    started: bool,
    /// Whether a `.graph` directive was seen (else `finish` reports the
    /// missing-section defect, after everything else — matching the
    /// single-pass parser).
    saw_graph: bool,
}

impl EventParser {
    /// A fresh event parser.
    #[must_use]
    pub fn new() -> Self {
        Self {
            lexer: Lexer::new(),
            tokens: Vec::new(),
            stack: Vec::new(),
            started: false,
            saw_graph: false,
        }
    }

    /// Feeds one chunk and returns the events it completes. Chunks may
    /// split anywhere on a UTF-8 boundary.
    pub fn feed(&mut self, chunk: &str) -> Vec<ParseEvent> {
        let mut out = Vec::new();
        self.start(&mut out);
        let mut tokens = std::mem::take(&mut self.tokens);
        tokens.clear();
        self.lexer.feed(chunk, &mut tokens);
        for token in tokens.drain(..) {
            self.token(token, &mut out);
        }
        self.tokens = tokens;
        out
    }

    /// Flushes the final line, closes every open node and ends the
    /// document.
    pub fn finish(mut self) -> Vec<ParseEvent> {
        let mut out = Vec::new();
        self.start(&mut out);
        let lexer = std::mem::take(&mut self.lexer);
        let mut tokens = std::mem::take(&mut self.tokens);
        lexer.finish(&mut tokens);
        for token in tokens.drain(..) {
            self.token(token, &mut out);
        }
        self.close_to(false, &mut out);
        if !self.saw_graph {
            out.push(ParseEvent::Defect(ParseAstgError {
                kind: ParseErrorKind::Syntax,
                span: Span::point(0, 1, 1),
                message: "missing `.graph` section".to_string(),
            }));
        }
        out.push(ParseEvent::Close {
            kind: ParseNodeKind::Document,
        });
        out
    }

    fn start(&mut self, out: &mut Vec<ParseEvent>) {
        if !self.started {
            self.started = true;
            out.push(ParseEvent::Open {
                kind: ParseNodeKind::Document,
                span: Span::point(0, 1, 1),
            });
        }
    }

    /// Closes open nodes, innermost first, stopping at the document.
    /// With `keep_graph`, an open `.graph` section survives — per-line
    /// nodes close at the next line, the section only at `.marking`,
    /// another `.graph`, `.end` or EOF (mirroring the single-pass
    /// parser's `in_graph` flag).
    fn close_to(&mut self, keep_graph: bool, out: &mut Vec<ParseEvent>) {
        while let Some(&kind) = self.stack.last() {
            if keep_graph && kind == ParseNodeKind::Graph {
                break;
            }
            self.stack.pop();
            out.push(ParseEvent::Close { kind });
        }
    }

    fn open(&mut self, kind: ParseNodeKind, span: Span, out: &mut Vec<ParseEvent>) {
        self.stack.push(kind);
        out.push(ParseEvent::Open { kind, span });
    }

    fn defect(kind: ParseErrorKind, span: Span, message: String, out: &mut Vec<ParseEvent>) {
        out.push(ParseEvent::Defect(ParseAstgError {
            kind,
            span,
            message,
        }));
    }

    fn token(&mut self, token: Token, out: &mut Vec<ParseEvent>) {
        match token.kind {
            TokenKind::Model => {
                self.close_to(true, out);
                self.open(ParseNodeKind::Model, token.span, out);
                out.push(ParseEvent::Token(token));
            }
            TokenKind::Decl(kind) => {
                self.close_to(true, out);
                let node = match kind {
                    crate::signal::SignalKind::Input => ParseNodeKind::Inputs,
                    crate::signal::SignalKind::Output => ParseNodeKind::Outputs,
                    crate::signal::SignalKind::Internal => ParseNodeKind::Internal,
                };
                self.open(node, token.span, out);
            }
            TokenKind::Name | TokenKind::Node | TokenKind::MarkingEntry => {
                out.push(ParseEvent::Token(token));
            }
            TokenKind::Graph => {
                self.close_to(false, out);
                self.saw_graph = true;
                self.open(ParseNodeKind::Graph, token.span, out);
            }
            TokenKind::GraphLine => {
                self.close_to(true, out);
                self.open(ParseNodeKind::GraphLine, token.span, out);
            }
            TokenKind::Marking => {
                self.close_to(false, out);
                self.open(ParseNodeKind::Marking, token.span, out);
            }
            TokenKind::MarkingMalformed => Self::defect(
                ParseErrorKind::Syntax,
                token.span,
                "marking must be wrapped in `{ ... }`".to_string(),
                out,
            ),
            TokenKind::Dummy => {
                self.close_to(true, out);
                Self::defect(
                    ParseErrorKind::DummyUnsupported,
                    token.span,
                    "`.dummy` transitions are not supported".to_string(),
                    out,
                );
            }
            TokenKind::Unknown => {
                self.close_to(true, out);
                Self::defect(
                    ParseErrorKind::UnknownSection,
                    token.span,
                    format!("unknown section `{}`", token.text),
                    out,
                );
            }
            TokenKind::Junk => {
                self.close_to(true, out);
                Self::defect(
                    ParseErrorKind::Syntax,
                    token.span,
                    format!("unexpected line outside `.graph`: `{}`", token.text),
                    out,
                );
            }
            TokenKind::End => self.close_to(false, out),
        }
    }
}

/// The full event stream of `text` in one shot — the streaming
/// front-end's equivalent of handing the source to the parser whole.
#[must_use]
pub fn parse_events(text: &str) -> Vec<ParseEvent> {
    let mut parser = EventParser::new();
    let mut out = parser.feed(text);
    out.extend(parser.finish());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_stream_brackets_sections_and_orders_defects() {
        let events =
            parse_events(".model m\n.inputs a\n.graph\na+ a-\nstray\n.marking { <a-,a+> }\n.end\n");
        assert!(matches!(
            events.first(),
            Some(ParseEvent::Open {
                kind: ParseNodeKind::Document,
                ..
            })
        ));
        assert!(matches!(
            events.last(),
            Some(ParseEvent::Close {
                kind: ParseNodeKind::Document
            })
        ));
        let opens: Vec<ParseNodeKind> = events
            .iter()
            .filter_map(|e| match e {
                ParseEvent::Open { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert_eq!(
            opens,
            vec![
                ParseNodeKind::Document,
                ParseNodeKind::Model,
                ParseNodeKind::Inputs,
                ParseNodeKind::Graph,
                ParseNodeKind::GraphLine,
                ParseNodeKind::GraphLine,
                ParseNodeKind::Marking,
            ]
        );
        // `stray` is inside `.graph`, so it is a graph line, not junk.
        assert!(events.iter().all(|e| !matches!(e, ParseEvent::Defect(_))));
    }

    #[test]
    fn a_missing_graph_section_is_reported_last() {
        let events = parse_events(".model m\n");
        let defects: Vec<&ParseAstgError> = events
            .iter()
            .filter_map(|e| match e {
                ParseEvent::Defect(d) => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(defects.len(), 1);
        assert_eq!(defects[0].message, "missing `.graph` section");
        // It precedes only the document close.
        assert!(matches!(events[events.len() - 2], ParseEvent::Defect(_)));
    }

    #[test]
    fn every_open_has_a_matching_close() {
        let events = parse_events(".inputs a\n.graph\na+ a-\n.marking{}\n");
        let mut depth = 0i64;
        for event in &events {
            match event {
                ParseEvent::Open { .. } => depth += 1,
                ParseEvent::Close { .. } => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }
}

//! The incremental lexer of the `.g` front-end: feeds of `&str` chunks in,
//! spanned [`Token`]s out — no whole-input requirement, so a server mode
//! can stream large specifications.
//!
//! The lexer is line-oriented (the `.g` format anchors every construct to
//! a line) and mode-aware: directive classification decides how the rest
//! of the line is tokenized (`.model` keeps its whole trimmed rest as one
//! name, `.marking` bodies group `<a+,b->` entries with their internal
//! whitespace, declaration and graph lines split on whitespace). Line
//! endings are normalized in this layer: CRLF becomes LF before any span
//! is computed, so a CRLF specification produces byte-for-byte the same
//! tokens — spans included — as its LF twin (see [`normalize_source`] for
//! the text those spans index). Columns count **characters**, not bytes,
//! so diagnostics align on non-ASCII names.

use std::borrow::Cow;

use crate::parse::Span;
use crate::signal::SignalKind;

/// What a [`Token`] is. Line-marker kinds (`Model`, `Decl`, `Graph`,
/// `GraphLine`, `Marking`, `Dummy`, `Unknown`, `Junk`, `End`,
/// `MarkingMalformed`) carry the classification of a whole line; the
/// payload kinds (`Name`, `Node`, `MarkingEntry`) carry one
/// whitespace-delimited word each and follow their line's marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A `.model` line; the token text is the trimmed rest (the model
    /// name — possibly empty, possibly containing spaces).
    Model,
    /// A `.inputs`/`.outputs`/`.internal` line marker (span = line).
    Decl(SignalKind),
    /// One declared signal name on a declaration line.
    Name,
    /// The `.graph` line.
    Graph,
    /// A content line inside the `.graph` section (span = line); the
    /// line's [`TokenKind::Node`] tokens follow.
    GraphLine,
    /// One node (`req+`, `csc0-/2`, explicit place name) on a graph line.
    Node,
    /// A `.marking` line marker (span = line).
    Marking,
    /// One marking entry, raw (`p0`, `<a+,b->`, `<a+,b->=2`).
    MarkingEntry,
    /// A `.marking` body not wrapped in `{ ... }` (span = trimmed rest).
    MarkingMalformed,
    /// A `.dummy` line (unsupported by the thesis flow).
    Dummy,
    /// An unrecognized `.section` line; the token text is the trimmed
    /// line.
    Unknown,
    /// A non-directive line outside the `.graph` section; the token text
    /// is the trimmed line.
    Junk,
    /// The `.end` line: lexing stops here, as the parser always has.
    End,
}

/// One spanned token. The text is owned so downstream layers (events,
/// tree builder, interchange dumps) never need the source buffer — the
/// property that makes the front-end streamable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The token's text (empty for pure markers).
    pub text: String,
    /// Where it lives in the (CRLF-normalized) source.
    pub span: Span,
}

/// The text a [`Lexer`]'s spans index: the input with CRLF line endings
/// normalized to LF. Borrowed (free) when the input already is LF-only.
#[must_use]
pub fn normalize_source(text: &str) -> Cow<'_, str> {
    if text.contains("\r\n") {
        Cow::Owned(text.replace("\r\n", "\n"))
    } else {
        Cow::Borrowed(text)
    }
}

/// The incremental `.g` lexer. Feed chunks with [`Lexer::feed`] (complete
/// lines are tokenized as soon as their newline arrives; a partial tail
/// is buffered), then flush the final unterminated line with
/// [`Lexer::finish`].
#[derive(Debug, Default)]
pub struct Lexer {
    /// The buffered partial line (no newline seen yet).
    buf: String,
    /// Byte offset of `buf` in the normalized source.
    abs: usize,
    /// 1-based line number of `buf`.
    line: usize,
    /// Whether we are inside the `.graph` section.
    in_graph: bool,
    /// Whether `.end` was seen (everything after is ignored).
    done: bool,
}

impl Lexer {
    /// A fresh lexer at offset 0, line 1.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buf: String::new(),
            abs: 0,
            line: 1,
            in_graph: false,
            done: false,
        }
    }

    /// Feeds one chunk, appending the tokens of every line the chunk
    /// completes to `out`. Chunks may split lines — and even CRLF pairs —
    /// anywhere on a UTF-8 boundary.
    pub fn feed(&mut self, chunk: &str, out: &mut Vec<Token>) {
        self.buf.push_str(chunk);
        while let Some(pos) = self.buf.find('\n') {
            let rest = self.buf.split_off(pos + 1);
            let mut raw = std::mem::replace(&mut self.buf, rest);
            raw.pop(); // the '\n'
            if raw.ends_with('\r') {
                raw.pop(); // CRLF → LF: spans index the normalized text
            }
            let (abs, lineno) = (self.abs, self.line);
            self.abs += raw.len() + 1;
            self.line += 1;
            if !self.done {
                self.lex_line(&raw, abs, lineno, out);
            }
        }
    }

    /// Flushes the final line when the input does not end in a newline.
    pub fn finish(mut self, out: &mut Vec<Token>) {
        if !self.buf.is_empty() && !self.done {
            let raw = std::mem::take(&mut self.buf);
            self.lex_line(&raw, self.abs, self.line, out);
        }
    }

    /// Classifies and tokenizes one complete (newline-free) line.
    fn lex_line(&mut self, raw: &str, abs: usize, lineno: usize, out: &mut Vec<Token>) {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            return;
        }
        let lead = raw.len() - raw.trim_start().len();
        let lead_chars = raw[..lead].chars().count();
        let line_span = Span {
            start: abs + lead,
            end: abs + lead + line.len(),
            line: lineno,
            col: lead_chars + 1,
        };
        let marker = |kind: TokenKind, text: &str| Token {
            kind,
            text: text.to_string(),
            span: line_span,
        };

        if let Some(rest) = line.strip_prefix(".model") {
            out.push(marker(TokenKind::Model, rest.trim()));
            return;
        }
        if line.starts_with(".dummy") {
            out.push(marker(TokenKind::Dummy, ""));
            return;
        }
        for (directive, kind) in [
            (".inputs", SignalKind::Input),
            (".outputs", SignalKind::Output),
            (".internal", SignalKind::Internal),
        ] {
            if let Some(rest) = line.strip_prefix(directive) {
                out.push(marker(TokenKind::Decl(kind), ""));
                words(
                    rest,
                    abs + lead + directive.len(),
                    lead_chars + directive.len(),
                    lineno,
                    TokenKind::Name,
                    out,
                );
                return;
            }
        }
        if line == ".graph" {
            self.in_graph = true;
            out.push(marker(TokenKind::Graph, ""));
            return;
        }
        if let Some(rest) = line.strip_prefix(".marking") {
            self.in_graph = false;
            out.push(marker(TokenKind::Marking, ""));
            lex_marking(
                rest,
                abs + lead + ".marking".len(),
                lead_chars + ".marking".len(),
                lineno,
                out,
            );
            return;
        }
        if line == ".end" {
            self.done = true;
            out.push(marker(TokenKind::End, ""));
            return;
        }
        if line.starts_with('.') {
            out.push(marker(TokenKind::Unknown, line));
            return;
        }
        if !self.in_graph {
            out.push(marker(TokenKind::Junk, line));
            return;
        }
        out.push(marker(TokenKind::GraphLine, ""));
        words(line, abs + lead, lead_chars, lineno, TokenKind::Node, out);
    }
}

/// Whitespace-separated words of `s` as `kind` tokens. `abs` is the byte
/// offset of `s` in the normalized source, `col0` the number of
/// characters preceding `s` on its line, `lineno` the 1-based line.
fn words(s: &str, abs: usize, col0: usize, lineno: usize, kind: TokenKind, out: &mut Vec<Token>) {
    let mut start: Option<(usize, usize)> = None; // (byte, char) of word start
    for (chars_seen, (i, c)) in s.char_indices().enumerate() {
        if c.is_whitespace() {
            if let Some((b, bc)) = start.take() {
                out.push(Token {
                    kind,
                    text: s[b..i].to_string(),
                    span: Span {
                        start: abs + b,
                        end: abs + i,
                        line: lineno,
                        col: col0 + bc + 1,
                    },
                });
            }
        } else if start.is_none() {
            start = Some((i, chars_seen));
        }
    }
    if let Some((b, bc)) = start {
        out.push(Token {
            kind,
            text: s[b..].to_string(),
            span: Span {
                start: abs + b,
                end: abs + s.len(),
                line: lineno,
                col: col0 + bc + 1,
            },
        });
    }
}

/// Tokenizes the body of a `.marking` line: `<a+,b->` groups (optionally
/// `=k`, internal whitespace allowed inside the angle brackets) and bare
/// place names. A body not wrapped in `{ ... }` yields one
/// [`TokenKind::MarkingMalformed`] marker spanning the trimmed rest.
fn lex_marking(rest: &str, abs: usize, col0: usize, lineno: usize, out: &mut Vec<Token>) {
    let trimmed = rest.trim();
    let lead = rest.len() - rest.trim_start().len();
    let lead_chars = rest[..lead].chars().count();
    let body = trimmed.strip_prefix('{').and_then(|b| b.strip_suffix('}'));
    let Some(body) = body else {
        out.push(Token {
            kind: TokenKind::MarkingMalformed,
            text: String::new(),
            span: Span {
                start: abs + lead,
                end: abs + lead + trimmed.len(),
                line: lineno,
                col: col0 + lead_chars + 1,
            },
        });
        return;
    };
    let body_abs = abs + lead + 1;
    let body_col0 = col0 + lead_chars + 1;

    let cis: Vec<(usize, char)> = body.char_indices().collect();
    let mut idx = 0usize;
    while idx < cis.len() {
        let (start, c) = cis[idx];
        if c.is_whitespace() {
            idx += 1;
            continue;
        }
        let start_chars = idx;
        let mut end = start;
        if c == '<' {
            while idx < cis.len() {
                let (i, ch) = cis[idx];
                end = i + ch.len_utf8();
                idx += 1;
                if ch == '>' {
                    break;
                }
            }
        }
        while idx < cis.len() {
            let (i, ch) = cis[idx];
            if ch.is_whitespace() || ch == '<' {
                break;
            }
            end = i + ch.len_utf8();
            idx += 1;
        }
        let token = &body[start..end];
        if token.is_empty() {
            break;
        }
        out.push(Token {
            kind: TokenKind::MarkingEntry,
            text: token.to_string(),
            span: Span {
                start: body_abs + start,
                end: body_abs + end,
                line: lineno,
                col: body_col0 + start_chars + 1,
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(text: &str) -> Vec<Token> {
        let mut lexer = Lexer::new();
        let mut out = Vec::new();
        lexer.feed(text, &mut out);
        lexer.finish(&mut out);
        out
    }

    #[test]
    fn chunk_boundaries_are_invisible() {
        let text = ".model x\r\n.inputs a b\n.graph\na+ b+\n.end\n";
        let whole = lex(text);
        for step in 1..=5 {
            let mut lexer = Lexer::new();
            let mut out = Vec::new();
            let chars: Vec<char> = text.chars().collect();
            for chunk in chars.chunks(step) {
                lexer.feed(&chunk.iter().collect::<String>(), &mut out);
            }
            lexer.finish(&mut out);
            assert_eq!(out, whole, "chunk step {step}");
        }
    }

    #[test]
    fn crlf_lines_lex_like_lf_lines() {
        let lf = ".model x\n.inputs a\n.graph\na+ a-\n.end\n";
        let crlf = lf.replace('\n', "\r\n");
        assert_eq!(lex(&crlf), lex(lf));
    }

    #[test]
    fn columns_count_characters_not_bytes() {
        // `möde+ ` is six characters (seven bytes): `äck+` starts at
        // character column 7.
        let toks = lex(".graph\nmöde+ äck+\n");
        let nodes: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::Node).collect();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[1].text, "äck+");
        assert_eq!(nodes[1].span.col, 7);
        assert_eq!(nodes[1].span.start, 14); // bytes still index the text
    }

    #[test]
    fn everything_after_end_is_ignored() {
        let toks = lex(".graph\n.end\n.inputs a\njunk\n");
        assert_eq!(toks.last().map(|t| t.kind), Some(TokenKind::End));
        assert_eq!(toks.len(), 2);
    }
}

//! Signal transition graphs (STGs), the `astg`/`.g` interchange format,
//! marked-graph STG views, state graphs with excitation/quiescent regions,
//! and projection onto operator signals (thesis Ch. 3 and Sec. 5.2).
//!
//! An STG is an interpreted Petri net whose transitions are labelled with
//! signal edges (`req+`, `ack-`, `csc0+/2`, …). This crate layers those
//! labels over [`si_petri::PetriNet`], parses and writes the textual `.g`
//! format used by petrify-era tools, converts marked-graph components into
//! the transition-level [`MgStg`] form that the relaxation engine
//! manipulates, generates binary-coded state graphs ([`StateGraph`]) with
//! the region machinery of thesis Sec. 3.4 — including the incremental
//! regeneration ([`StateGraph::of_mg_from`]) that derives a single-arc
//! edit's successor graph from its predecessor's — and implements the local-STG
//! projection of Algorithm 1 together with the shortcut-place redundancy
//! check of Algorithm 3.

mod mg;
mod parse;
mod project;
mod sg;
mod signal;
mod stg;

pub use mg::{ArcAttr, ArcDelta, MgStg, SgKey};
pub use parse::{
    parse_astg, parse_astg_lenient, write_astg, LenientParse, ParseAstgError, ParseErrorKind, Span,
    SpecSpans, IMEC_RAM_READ_SBUF_G,
};
pub use sg::{SgMap, SgState, StateGraph};
pub use signal::{Polarity, SignalId, SignalKind, TransitionLabel};
pub use stg::{Stg, StgError, StgHealth};

//! Signal transition graphs (STGs), the `astg`/`.g` interchange format,
//! marked-graph STG views, state graphs with excitation/quiescent regions,
//! and projection onto operator signals (thesis Ch. 3 and Sec. 5.2).
//!
//! An STG is an interpreted Petri net whose transitions are labelled with
//! signal edges (`req+`, `ack-`, `csc0+/2`, …). This crate layers those
//! labels over [`si_petri::PetriNet`], parses and writes the textual `.g`
//! format used by petrify-era tools, converts marked-graph components into
//! the transition-level [`MgStg`] form that the relaxation engine
//! manipulates, generates binary-coded state graphs ([`StateGraph`]) with
//! the region machinery of thesis Sec. 3.4 — including the incremental
//! regeneration ([`StateGraph::of_mg_from`]) that derives a single-arc
//! edit's successor graph from its predecessor's — and implements the local-STG
//! projection of Algorithm 1 together with the shortcut-place redundancy
//! check of Algorithm 3.
//!
//! The `.g` front-end is layered for streaming: the incremental
//! [`Lexer`] yields spanned tokens from `&str` chunks, the
//! [`EventParser`] turns them into a nested [`ParseEvent`] stream, and
//! the [`TreeBuilder`] folds that stream into the [`LenientParse`] the
//! [`parse_astg`]/[`parse_astg_lenient`] facades return. The [`sexp`]
//! module serializes event streams (plus state graphs) into a lossless,
//! language-neutral S-expression interchange format and reads parse-tree
//! dumps back into events — see `docs/interchange.md`.

mod events;
mod lexer;
mod mg;
mod parse;
mod project;
pub mod sexp;
mod sg;
mod signal;
mod stg;
mod tree;

pub use events::{parse_events, EventParser, ParseEvent, ParseNodeKind};
pub use lexer::{normalize_source, Lexer, Token, TokenKind};
pub use mg::{ArcAttr, ArcDelta, MgStg, SgKey};
pub use parse::{
    parse_astg, parse_astg_lenient, write_astg, LenientParse, ParseAstgError, ParseErrorKind, Span,
    SpecSpans, IMEC_RAM_READ_SBUF_G,
};
pub use sg::{SgMap, SgState, StateGraph};
pub use signal::{Polarity, SignalId, SignalKind, TransitionLabel};
pub use stg::{Stg, StgError, StgHealth};
pub use tree::{tree_of_events, TreeBuilder};

//! Marked-graph STGs at the transition level.
//!
//! Inside an MG every place has exactly one input and one output transition,
//! so the thesis (Sec. 5.2.2) works with *arcs* `t1 ⇒ t2` carrying the
//! tokens of the implicit place `<t1, t2>`. [`MgStg`] is that view: labelled
//! transitions plus token-counted arcs, with the structural predicates the
//! relaxation engine needs (precedence, concurrency, liveness, safeness and
//! the Algorithm 3 shortcut-place redundancy check).

use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::Arc;

use si_petri::MgComponent;

use crate::signal::{SignalId, SignalKind, TransitionLabel};
use crate::stg::{SignalDecl, Stg, StgError};

/// Attributes of an arc (implicit place) of an [`MgStg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcAttr {
    /// Tokens currently held by the implicit place.
    pub tokens: u32,
    /// Whether this is an order-restriction arc (`#` in the thesis Ch. 6):
    /// never relaxed and never removed as redundant.
    pub restriction: bool,
}

/// Canonical structural key of an [`MgStg`] for state-graph memoization.
///
/// Two `MgStg`s with equal keys generate byte-identical [`crate::StateGraph`]s:
/// the key captures exactly the inputs of [`crate::StateGraph::of_mg`] —
/// the initial signal code, the alive transitions with their ids and
/// labels, and the arc skeleton with token counts. Signal *names* and
/// restriction flags are deliberately excluded: neither influences
/// state-graph generation, so excluding them widens cache sharing (e.g. a
/// sub-STG that only adds `#`-restriction markings hits the parent's
/// entry).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SgKey {
    initial_code: u64,
    transitions: Vec<(usize, TransitionLabel)>,
    arcs: Vec<(usize, usize, u32)>,
}

/// The arc-level difference between two [`MgStg`]s sharing a transition
/// space — the "delta" of one relaxation-loop edit, in canonical form.
///
/// Each entry records one arc whose token count differs between the
/// predecessor and the successor graph (`None` = the arc is absent on
/// that side), sorted by arc key. Restriction flags are ignored, matching
/// [`SgKey`] semantics: they never influence state-graph generation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ArcDelta {
    /// `(src, dst, tokens before, tokens after)` per changed arc.
    pub changes: Vec<(usize, usize, Option<u32>, Option<u32>)>,
}

impl ArcDelta {
    /// Whether the two graphs have identical arc skeletons.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Transition ids whose *enabling* the delta can affect: the
    /// destination endpoints of every changed arc. Any transition outside
    /// this set is enabled in the successor graph exactly where it was
    /// enabled in the predecessor (its incoming arcs are untouched).
    pub fn affected_dsts(&self) -> BTreeSet<usize> {
        self.changes.iter().map(|&(_, dst, _, _)| dst).collect()
    }
}

/// A marked-graph STG over transition-level arcs.
///
/// Transition ids are stable across edits (removed transitions are
/// tombstoned), so the relaxation engine can hold ids across structural
/// rewrites. All iteration orders are deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MgStg {
    /// Model name, inherited from the source STG.
    pub name: String,
    /// Shared with every clone: the signal table never changes after
    /// construction, and the relaxation loop clones the graph once per
    /// trial — sharing it keeps those clones off the heap.
    signals: Arc<Vec<SignalDecl>>,
    transitions: Vec<Option<TransitionLabel>>,
    arcs: BTreeMap<(usize, usize), ArcAttr>,
    initial_code: u64,
}

impl MgStg {
    /// Builds the transition-level view of one MG component of `stg`.
    ///
    /// Parallel places between the same transition pair merge to the
    /// binding (minimum-token) constraint.
    ///
    /// # Errors
    ///
    /// [`StgError::MalformedMarkedGraph`] if a place of the component is
    /// dangling, and any error from [`Stg::initial_values`].
    pub fn from_component(stg: &Stg, comp: &MgComponent) -> Result<Self, StgError> {
        let values = stg.initial_values()?;
        let mut initial_code = 0u64;
        for (i, &v) in values.iter().enumerate() {
            if v {
                initial_code |= 1u64 << i;
            }
        }

        let mut mg = Self {
            name: stg.name.clone(),
            signals: Arc::new(stg.signals.clone()),
            transitions: Vec::new(),
            arcs: BTreeMap::new(),
            initial_code,
        };
        for t in comp.net.transitions() {
            let orig = comp.transition_map[t.0];
            mg.transitions.push(Some(stg.label(orig)));
        }
        let m0 = comp.net.initial_marking();
        for p in comp.net.places() {
            let pre = comp.net.place_pre(p);
            let post = comp.net.place_post(p);
            let (&src, &dst) = match (pre.first(), post.first()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(StgError::MalformedMarkedGraph {
                        reason: format!(
                            "place `{}` is dangling in the MG component",
                            comp.net.place_name(p)
                        ),
                    })
                }
            };
            mg.insert_arc(src.0, dst.0, m0[p.0], false);
        }
        Ok(mg)
    }

    /// Builds an `MgStg` directly (used by tests and builders); the caller
    /// supplies the signal table of the owning [`Stg`] via `stg`.
    pub fn from_stg_mg(stg: &Stg) -> Result<Self, StgError> {
        let comps = stg.mg_components(4096)?;
        match comps.len() {
            1 => Ok(comps.into_iter().next().expect("checked")),
            n => Err(StgError::MalformedMarkedGraph {
                reason: format!("expected a marked graph, got {n} MG components"),
            }),
        }
    }

    /// Global initial state code (bit `i` = initial value of signal `i`).
    pub fn initial_code(&self) -> u64 {
        self.initial_code
    }

    /// The canonical [`SgKey`] of this MG — the memoization key for
    /// [`crate::StateGraph::of_mg`]. Deterministic: alive transitions in
    /// ascending id order, arcs in `BTreeMap` key order.
    pub fn sg_key(&self) -> SgKey {
        SgKey {
            initial_code: self.initial_code,
            transitions: (0..self.transitions.len())
                .filter_map(|t| self.transitions[t].map(|l| (t, l)))
                .collect(),
            arcs: self
                .arcs
                .iter()
                .map(|(&(a, b), attr)| (a, b, attr.tokens))
                .collect(),
        }
    }

    /// A cheap 64-bit fingerprint of exactly the content [`MgStg::sg_key`]
    /// canonicalizes — the initial code, the alive transitions with ids
    /// and labels, and the arc skeleton with token counts — computed by
    /// streaming FNV-1a with no allocation, stable across runs and
    /// platforms.
    ///
    /// Equal [`SgKey`]s always yield equal fingerprints; the converse
    /// holds only up to 64-bit collision odds, so use the fingerprint
    /// where a (vanishingly unlikely, but deterministic) false merge is
    /// tolerable — e.g. the relaxation scheduler's progress ledger, which
    /// fingerprints every visited graph once per iteration and must not
    /// pay `sg_key`'s two `Vec` allocations there.
    pub fn sg_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.initial_code);
        for (t, label) in self.transitions.iter().enumerate() {
            if let Some(l) = label {
                mix(t as u64);
                mix(l.signal.0 as u64);
                mix(match l.polarity {
                    crate::Polarity::Plus => 1,
                    crate::Polarity::Minus => 2,
                });
                mix(u64::from(l.occurrence));
            }
        }
        for (&(a, b), attr) in &self.arcs {
            mix(a as u64);
            mix(b as u64);
            mix(u64::from(attr.tokens));
        }
        h
    }

    /// Overrides the initial state code.
    pub fn set_initial_code(&mut self, code: u64) {
        self.initial_code = code;
    }

    /// Whether `self` and `other` share a transition space: the same alive
    /// transition ids with the same labels and the same initial code. Two
    /// such graphs differ only by their [`ArcDelta`], so
    /// `(self.sg_key(), self.arc_delta(other))` determines `other.sg_key()`
    /// — the soundness condition for the delta tier of a state-graph cache.
    pub fn same_transition_space(&self, other: &MgStg) -> bool {
        self.initial_code == other.initial_code && self.transitions == other.transitions
    }

    /// The canonical arc-level difference `self → other` (token counts
    /// only; restriction flags are excluded, as in [`SgKey`]).
    pub fn arc_delta(&self, other: &MgStg) -> ArcDelta {
        let mut changes = Vec::new();
        let mut mine = self.arcs.iter().peekable();
        let mut theirs = other.arcs.iter().peekable();
        loop {
            match (mine.peek(), theirs.peek()) {
                (Some(&(&k1, a1)), Some(&(&k2, a2))) => {
                    if k1 < k2 {
                        changes.push((k1.0, k1.1, Some(a1.tokens), None));
                        mine.next();
                    } else if k2 < k1 {
                        changes.push((k2.0, k2.1, None, Some(a2.tokens)));
                        theirs.next();
                    } else {
                        if a1.tokens != a2.tokens {
                            changes.push((k1.0, k1.1, Some(a1.tokens), Some(a2.tokens)));
                        }
                        mine.next();
                        theirs.next();
                    }
                }
                (Some(&(&k1, a1)), None) => {
                    changes.push((k1.0, k1.1, Some(a1.tokens), None));
                    mine.next();
                }
                (None, Some(&(&k2, a2))) => {
                    changes.push((k2.0, k2.1, None, Some(a2.tokens)));
                    theirs.next();
                }
                (None, None) => return ArcDelta { changes },
            }
        }
    }

    /// Whether every alive transition lies in one weakly connected
    /// component of the arc graph (arcs taken as undirected edges).
    ///
    /// This is the condition under which a reachable marking determines the
    /// transition firing-count vector up to a constant shift, which lets
    /// the incremental state-graph derivation
    /// ([`crate::StateGraph::of_mg_from`]) identify states by normalized
    /// firing counts instead of full markings.
    pub fn arcs_weakly_connected(&self) -> bool {
        let alive = self.transitions();
        let Some(&start) = alive.first() else {
            return false;
        };
        let mut undirected: Vec<Vec<usize>> = vec![Vec::new(); self.transitions.len()];
        for &(a, b) in self.arcs.keys() {
            undirected[a].push(b);
            undirected[b].push(a);
        }
        let mut seen = vec![false; self.transitions.len()];
        seen[start] = true;
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            for &m in &undirected[n] {
                if !seen[m] {
                    seen[m] = true;
                    stack.push(m);
                }
            }
        }
        alive.iter().all(|&t| seen[t])
    }

    /// Number of signals in the signal table.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Name of signal `s`.
    pub fn signal_name(&self, s: SignalId) -> &str {
        &self.signals[s.0].name
    }

    /// Kind of signal `s`.
    pub fn signal_kind(&self, s: SignalId) -> SignalKind {
        self.signals[s.0].kind
    }

    /// Finds a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|d| d.name == name)
            .map(SignalId)
    }

    /// The signal-name table.
    pub fn signal_names(&self) -> Vec<String> {
        self.signals.iter().map(|d| d.name.clone()).collect()
    }

    /// Alive transition ids, ascending.
    pub fn transitions(&self) -> Vec<usize> {
        (0..self.transitions.len())
            .filter(|&i| self.transitions[i].is_some())
            .collect()
    }

    /// Whether transition `t` is alive.
    pub fn is_alive(&self, t: usize) -> bool {
        self.transitions.get(t).is_some_and(|l| l.is_some())
    }

    /// Label of transition `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is dead or out of range.
    pub fn label(&self, t: usize) -> TransitionLabel {
        self.transitions[t].expect("transition is alive")
    }

    /// Renders transition `t`'s label (`req+`, `csc0-/2`).
    pub fn label_string(&self, t: usize) -> String {
        let mut s = String::new();
        self.write_label(t, &mut s);
        s
    }

    /// Appends transition `t`'s rendered label to `buf` — the same text as
    /// [`MgStg::label_string`] without cloning the signal-name table, so
    /// hot loops can reuse one buffer across many renders.
    ///
    /// # Panics
    ///
    /// Panics if `t` is dead or out of range.
    pub fn write_label(&self, t: usize, buf: &mut String) {
        use std::fmt::Write;
        let l = self.label(t);
        buf.push_str(self.signal_name(l.signal));
        let _ = write!(buf, "{}", l.polarity);
        if l.occurrence != 1 {
            let _ = write!(buf, "/{}", l.occurrence);
        }
    }

    /// Finds an alive transition by rendered label.
    pub fn transition_by_label(&self, label: &str) -> Option<usize> {
        self.transitions()
            .into_iter()
            .find(|&t| self.label_string(t) == label)
    }

    /// Adds a transition (used by builders/tests) and returns its id.
    pub fn add_transition(&mut self, label: TransitionLabel) -> usize {
        self.transitions.push(Some(label));
        self.transitions.len() - 1
    }

    /// Creates an empty `MgStg` sharing `stg`'s signal table. The initial
    /// code defaults to all-zero; set it with [`MgStg::set_initial_code`].
    pub fn empty_like(stg: &Stg) -> Self {
        Self {
            name: stg.name.clone(),
            signals: Arc::new(stg.signals.clone()),
            transitions: Vec::new(),
            arcs: BTreeMap::new(),
            initial_code: 0,
        }
    }

    /// All arcs `((src, dst), attr)` in deterministic order.
    pub fn arcs(&self) -> impl Iterator<Item = ((usize, usize), ArcAttr)> + '_ {
        self.arcs.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Attribute of arc `src ⇒ dst`, if present.
    pub fn arc(&self, src: usize, dst: usize) -> Option<ArcAttr> {
        self.arcs.get(&(src, dst)).copied()
    }

    /// Inserts (or merges into) the arc `src ⇒ dst`.
    ///
    /// Parallel insertions merge to the minimum token count (the binding
    /// constraint); restriction status is sticky.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is dead.
    pub fn insert_arc(&mut self, src: usize, dst: usize, tokens: u32, restriction: bool) {
        assert!(
            self.is_alive(src) && self.is_alive(dst),
            "arc endpoints must be alive"
        );
        self.arcs
            .entry((src, dst))
            .and_modify(|a| {
                a.tokens = a.tokens.min(tokens);
                a.restriction |= restriction;
            })
            .or_insert(ArcAttr {
                tokens,
                restriction,
            });
    }

    /// Removes the arc `src ⇒ dst`; returns its attributes if it existed.
    pub fn remove_arc(&mut self, src: usize, dst: usize) -> Option<ArcAttr> {
        self.arcs.remove(&(src, dst))
    }

    /// Removes a transition and all incident arcs.
    pub fn remove_transition(&mut self, t: usize) {
        self.transitions[t] = None;
        self.arcs.retain(|&(a, b), _| a != t && b != t);
    }

    /// Predecessor transitions of `t` (thesis `/t`).
    pub fn preds(&self, t: usize) -> Vec<usize> {
        self.arcs
            .keys()
            .filter(|&&(_, b)| b == t)
            .map(|&(a, _)| a)
            .collect()
    }

    /// Successor transitions of `t` (thesis `t.`).
    pub fn succs(&self, t: usize) -> Vec<usize> {
        self.arcs
            .keys()
            .filter(|&&(a, _)| a == t)
            .map(|&(_, b)| b)
            .collect()
    }

    /// Minimum-token weight of a non-empty directed path from `a` to `b`
    /// (Dijkstra over arc token counts). With `exclude_direct`, the arc
    /// `(a, b)` is removed from the graph entirely, as in the Algorithm 3
    /// shortcut-place construction. `a == b` asks for the lightest cycle
    /// through `a`.
    pub fn min_token_path(&self, a: usize, b: usize, exclude_direct: bool) -> Option<u32> {
        self.min_token_path_in(&self.succ_adjacency(), a, b, exclude_direct)
    }

    /// Successor adjacency indexed by transition id — the Dijkstra helper's
    /// input, hoisted out of loops that query many paths on one graph (the
    /// naive whole-map scan per relaxation step made redundancy sweeps over
    /// big MGs quadratic in practice).
    fn succ_adjacency(&self) -> Vec<Vec<(usize, u32)>> {
        let mut succs: Vec<Vec<(usize, u32)>> = vec![Vec::new(); self.transitions.len()];
        for (&(src, dst), attr) in &self.arcs {
            succs[src].push((dst, attr.tokens));
        }
        succs
    }

    /// [`MgStg::min_token_path`] over a prebuilt adjacency.
    fn min_token_path_in(
        &self,
        succs: &[Vec<(usize, u32)>],
        a: usize,
        b: usize,
        exclude_direct: bool,
    ) -> Option<u32> {
        let blocked = exclude_direct.then_some((a, b));
        let mut dist: Vec<Option<u32>> = vec![None; self.transitions.len()];
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, usize)>> = BinaryHeap::new();
        // Seed with the arcs leaving `a` so that paths are non-empty; `a`
        // itself gets a distance only if reached again through a cycle.
        for &(dst, tokens) in &succs[a] {
            if blocked == Some((a, dst)) {
                continue;
            }
            if dist[dst].is_none_or(|seen| tokens < seen) {
                dist[dst] = Some(tokens);
                heap.push(std::cmp::Reverse((tokens, dst)));
            }
        }
        while let Some(std::cmp::Reverse((d, n))) = heap.pop() {
            if dist[n].is_some_and(|seen| d > seen) {
                continue;
            }
            for &(dst, tokens) in &succs[n] {
                if blocked == Some((n, dst)) {
                    continue;
                }
                let nd = d + tokens;
                if dist[dst].is_none_or(|seen| nd < seen) {
                    dist[dst] = Some(nd);
                    heap.push(std::cmp::Reverse((nd, dst)));
                }
            }
        }
        dist[b]
    }

    /// Whether `a` must fire before `b` in the current cycle: a token-free
    /// directed path `a → b` exists.
    pub fn precedes(&self, a: usize, b: usize) -> bool {
        a != b && self.min_token_path(a, b, false) == Some(0)
    }

    /// Whether `a` and `b` are concurrent (neither precedes the other).
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// Whether the MG is live: strongly connected over alive transitions
    /// and every directed cycle carries at least one token (equivalently,
    /// the token-free subgraph is acyclic).
    pub fn is_live(&self) -> bool {
        let alive = self.transitions();
        if alive.is_empty() {
            return false;
        }
        self.strongly_connected(&alive) && self.zero_token_acyclic(&alive)
    }

    fn strongly_connected(&self, alive: &[usize]) -> bool {
        let reach = |forward: bool| -> BTreeSet<usize> {
            let mut seen = BTreeSet::new();
            let mut stack = vec![alive[0]];
            seen.insert(alive[0]);
            while let Some(n) = stack.pop() {
                for &(a, b) in self.arcs.keys() {
                    let (from, to) = if forward { (a, b) } else { (b, a) };
                    if from == n && seen.insert(to) {
                        stack.push(to);
                    }
                }
            }
            seen
        };
        let fwd = reach(true);
        let bwd = reach(false);
        alive.iter().all(|t| fwd.contains(t) && bwd.contains(t))
    }

    fn zero_token_acyclic(&self, alive: &[usize]) -> bool {
        // Kahn's algorithm on the token-free subgraph.
        let mut indeg: BTreeMap<usize, usize> = alive.iter().map(|&t| (t, 0)).collect();
        for (&(_, b), attr) in &self.arcs {
            if attr.tokens == 0 {
                *indeg.get_mut(&b).expect("alive") += 1;
            }
        }
        let mut queue: Vec<usize> = indeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&t, _)| t)
            .collect();
        let mut removed = 0usize;
        while let Some(n) = queue.pop() {
            removed += 1;
            for (&(a, b), attr) in &self.arcs {
                if attr.tokens == 0 && a == n {
                    let d = indeg.get_mut(&b).expect("alive");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(b);
                    }
                }
            }
        }
        removed == alive.len()
    }

    /// Whether the MG is safe: every implicit place can hold at most one
    /// token in any reachable marking. For a live MG the bound of place
    /// `(a, b)` is `tokens(a, b) + min-token-path(b → a)`.
    pub fn is_safe(&self) -> bool {
        let adj = self.succ_adjacency();
        self.arcs.iter().all(|(&(a, b), attr)| {
            match self.min_token_path_in(&adj, b, a, false) {
                Some(back) => attr.tokens + back <= 1,
                None => attr.tokens <= 1, // no cycle: bound is the initial count
            }
        })
    }

    /// The Algorithm 3 redundancy check for the implicit place on arc
    /// `src ⇒ dst`: the arc is redundant iff a different path `src → dst`
    /// carries no more tokens than the arc itself, or the arc is a marked
    /// self-loop ("loop-only place").
    pub fn is_redundant_arc(&self, src: usize, dst: usize) -> bool {
        self.is_redundant_arc_in(&self.succ_adjacency(), src, dst)
    }

    /// [`MgStg::is_redundant_arc`] over a prebuilt adjacency (which must
    /// mirror the current arc set).
    fn is_redundant_arc_in(&self, adj: &[Vec<(usize, u32)>], src: usize, dst: usize) -> bool {
        let Some(attr) = self.arc(src, dst) else {
            return false;
        };
        if src == dst {
            return attr.tokens >= 1;
        }
        match self.min_token_path_in(adj, src, dst, true) {
            Some(weight) => weight <= attr.tokens,
            None => false,
        }
    }

    /// Removes every redundant non-restriction arc (thesis Sec. 5.3.3);
    /// returns the removed arcs.
    pub fn eliminate_redundant_arcs(&mut self) -> Vec<(usize, usize)> {
        let mut removed = Vec::new();
        loop {
            let candidates: Vec<(usize, usize)> = self
                .arcs
                .iter()
                .filter(|&(_, attr)| !attr.restriction)
                .map(|(&k, _)| k)
                .collect();
            // One adjacency per sweep, patched in place on removal: the
            // per-candidate Dijkstras dominate projection, so they must not
            // each rescan the whole arc map.
            let mut adj = self.succ_adjacency();
            let mut changed = false;
            for (a, b) in candidates {
                if self.arcs.contains_key(&(a, b)) && self.is_redundant_arc_in(&adj, a, b) {
                    self.remove_arc(a, b);
                    adj[a].retain(|&(d, _)| d != b);
                    removed.push((a, b));
                    changed = true;
                }
            }
            if !changed {
                return removed;
            }
        }
    }

    /// The initial marking as a map from arcs to token counts.
    pub fn initial_marking(&self) -> BTreeMap<(usize, usize), u32> {
        self.arcs
            .iter()
            .map(|(&k, attr)| (k, attr.tokens))
            .collect()
    }

    /// Whether transition `t` is enabled in `marking`.
    pub fn enabled_in(&self, t: usize, marking: &BTreeMap<(usize, usize), u32>) -> bool {
        self.is_alive(t)
            && self
                .arcs
                .keys()
                .filter(|&&(_, b)| b == t)
                .all(|k| marking.get(k).copied().unwrap_or(0) > 0)
    }

    /// Fires `t` in `marking`, returning the successor marking.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not enabled.
    pub fn fire_in(
        &self,
        t: usize,
        marking: &BTreeMap<(usize, usize), u32>,
    ) -> BTreeMap<(usize, usize), u32> {
        assert!(self.enabled_in(t, marking), "transition {t} is not enabled");
        let mut next = marking.clone();
        for &(a, b) in self.arcs.keys() {
            if b == t {
                *next.get_mut(&(a, b)).expect("incoming arc") -= 1;
            }
        }
        for &(a, b) in self.arcs.keys() {
            if a == t {
                *next.get_mut(&(a, b)).expect("outgoing arc") += 1;
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sg::StateGraph;
    use crate::signal::Polarity;
    use crate::stg::Stg;

    /// Builds the SR-latch local STG of thesis Fig. 5.4 directly:
    /// b- ⇒ a-, b+/2 ⇒ a+ are the type-4 arcs.
    fn sr_latch_local() -> (MgStg, BTreeMap<&'static str, usize>) {
        let mut stg = Stg::new("sr");
        let a = stg.add_signal("a", SignalKind::Input);
        let b = stg.add_signal("b", SignalKind::Input);
        let o = stg.add_signal("o", SignalKind::Output);
        let mut mg = MgStg {
            name: "sr".into(),
            signals: Arc::new(stg.signals.clone()),
            transitions: Vec::new(),
            arcs: BTreeMap::new(),
            initial_code: 0,
        };
        let am = mg.add_transition(TransitionLabel::first(a, Polarity::Minus));
        let ap = mg.add_transition(TransitionLabel::first(a, Polarity::Plus));
        let bm = mg.add_transition(TransitionLabel::first(b, Polarity::Minus));
        let bp = mg.add_transition(TransitionLabel::first(b, Polarity::Plus));
        let bm2 = mg.add_transition(TransitionLabel::new(b, Polarity::Minus, 2));
        let bp2 = mg.add_transition(TransitionLabel::new(b, Polarity::Plus, 2));
        let op = mg.add_transition(TransitionLabel::first(o, Polarity::Plus));
        let om = mg.add_transition(TransitionLabel::first(o, Polarity::Minus));
        // a- ⇒ o+, a+ ⇒ o-, b-/2 ⇒ o- : type (1)
        mg.insert_arc(am, op, 0, false);
        mg.insert_arc(ap, om, 0, false);
        mg.insert_arc(bm2, om, 0, false);
        // o- ⇒ b+, o+ ⇒ b+/2 : type (2)
        mg.insert_arc(om, bp, 1, false);
        mg.insert_arc(op, bp2, 0, false);
        // b+ ⇒ b-, b+/2 ⇒ b-/2 : type (3)
        mg.insert_arc(bp, bm, 0, false);
        mg.insert_arc(bp2, bm2, 0, false);
        // b- ⇒ a-, b+/2 ⇒ a+ : type (4)
        mg.insert_arc(bm, am, 0, false);
        mg.insert_arc(bp2, ap, 0, false);
        let names = [
            ("a-", am),
            ("a+", ap),
            ("b-", bm),
            ("b+", bp),
            ("b-/2", bm2),
            ("b+/2", bp2),
            ("o+", op),
            ("o-", om),
        ]
        .into_iter()
        .collect();
        (mg, names)
    }

    #[test]
    fn fingerprint_tracks_sg_key() {
        let (mg, names) = sr_latch_local();
        // Stable across calls, and a clone fingerprints identically.
        assert_eq!(mg.sg_fingerprint(), mg.sg_fingerprint());
        assert_eq!(mg.sg_fingerprint(), mg.clone().sg_fingerprint());
        // Equal keys ⟹ equal fingerprints even across different edit
        // histories: removing an arc and re-inserting it lands back on
        // the same canonical content.
        let before = mg.sg_fingerprint();
        let mut edited = mg.clone();
        edited.remove_arc(names["b-"], names["a-"]);
        assert_ne!(edited.sg_fingerprint(), before, "an edit must show up");
        edited.insert_arc(names["b-"], names["a-"], 0, false);
        assert_eq!(edited.sg_key(), mg.sg_key());
        assert_eq!(edited.sg_fingerprint(), before);
        // Token counts and the initial code are part of the content;
        // restriction flags are not (matching `SgKey`).
        let mut tokens = mg.clone();
        tokens.remove_arc(names["b-"], names["a-"]);
        tokens.insert_arc(names["b-"], names["a-"], 1, false);
        assert_ne!(tokens.sg_fingerprint(), before);
        let mut code = mg.clone();
        code.set_initial_code(1);
        assert_ne!(code.sg_fingerprint(), before);
        let mut restricted = mg.clone();
        restricted.remove_arc(names["b-"], names["a-"]);
        restricted.insert_arc(names["b-"], names["a-"], 0, true);
        assert_eq!(restricted.sg_key(), mg.sg_key());
        assert_eq!(restricted.sg_fingerprint(), before);
    }

    #[test]
    fn sr_latch_is_live_and_safe() {
        let (mg, _) = sr_latch_local();
        assert!(mg.is_live());
        assert!(mg.is_safe());
    }

    #[test]
    fn precedence_and_concurrency() {
        let (mg, n) = sr_latch_local();
        assert!(mg.precedes(n["b-"], n["a-"]));
        assert!(mg.precedes(n["a-"], n["o+"]));
        assert!(!mg.precedes(n["o+"], n["a-"]));
        assert!(!mg.concurrent(n["b-"], n["a-"]));
    }

    #[test]
    fn min_token_path_counts_tokens() {
        let (mg, n) = sr_latch_local();
        // o- → b+ carries one token; path o- → a- must go the long way.
        assert_eq!(mg.min_token_path(n["o-"], n["b+"], false), Some(1));
        assert_eq!(mg.min_token_path(n["b+"], n["a-"], false), Some(0));
    }

    #[test]
    fn shortcut_place_is_redundant() {
        // Thesis Fig. 5.14 (a): p4 = <x+, x-> is a shortcut of the path
        // x+ → y+ → x-.
        let mut stg = Stg::new("fig514a");
        let x = stg.add_signal("x", SignalKind::Input);
        let y = stg.add_signal("y", SignalKind::Input);
        let mut mg = MgStg {
            name: "fig514a".into(),
            signals: Arc::new(stg.signals.clone()),
            transitions: Vec::new(),
            arcs: BTreeMap::new(),
            initial_code: 0,
        };
        let xp = mg.add_transition(TransitionLabel::first(x, Polarity::Plus));
        let yp = mg.add_transition(TransitionLabel::first(y, Polarity::Plus));
        let xm = mg.add_transition(TransitionLabel::first(x, Polarity::Minus));
        let ym = mg.add_transition(TransitionLabel::first(y, Polarity::Minus));
        mg.insert_arc(xp, yp, 0, false); // p2
        mg.insert_arc(yp, xm, 0, false); // p3
        mg.insert_arc(xp, xm, 0, false); // p4: the shortcut
        mg.insert_arc(xm, ym, 0, false); // p5
        mg.insert_arc(ym, xp, 1, false); // p1
        assert!(mg.is_redundant_arc(xp, xm));
        assert!(!mg.is_redundant_arc(xp, yp));
        let removed = mg.eliminate_redundant_arcs();
        assert_eq!(removed, vec![(xp, xm)]);
        assert!(mg.is_live());
    }

    #[test]
    fn marked_path_is_not_a_shortcut() {
        // Thesis Fig. 5.14 (b) situation: the place <b-, b+> holds one
        // token, but every alternative path b- → b+ carries two tokens, so
        // the place is NOT a shortcut and must be kept.
        let mut stg = Stg::new("fig514b");
        let x = stg.add_signal("x", SignalKind::Input);
        let y = stg.add_signal("y", SignalKind::Input);
        let b = stg.add_signal("b", SignalKind::Input);
        let mut mg = MgStg {
            name: "fig514b".into(),
            signals: Arc::new(stg.signals.clone()),
            transitions: Vec::new(),
            arcs: BTreeMap::new(),
            initial_code: 0,
        };
        let bm = mg.add_transition(TransitionLabel::first(b, Polarity::Minus));
        let xp = mg.add_transition(TransitionLabel::first(x, Polarity::Plus));
        let yp = mg.add_transition(TransitionLabel::first(y, Polarity::Plus));
        let bp = mg.add_transition(TransitionLabel::first(b, Polarity::Plus));
        mg.insert_arc(bm, xp, 0, false);
        mg.insert_arc(xp, yp, 1, false);
        mg.insert_arc(yp, bp, 1, false);
        mg.insert_arc(bp, bm, 0, false);
        mg.insert_arc(bm, bp, 1, false); // the candidate place: 1 < 2
        assert!(!mg.is_redundant_arc(bm, bp));
        // Raising the candidate's tokens to the path weight makes it
        // redundant again.
        mg.remove_arc(bm, bp);
        mg.insert_arc(bm, bp, 2, false);
        assert!(mg.is_redundant_arc(bm, bp));
    }

    #[test]
    fn zero_token_cycle_is_not_live() {
        let (mut mg, n) = sr_latch_local();
        // Drain the only token: dead.
        mg.insert_arc(n["o-"], n["b+"], 0, false); // merges to min = 0
        assert!(!mg.is_live());
    }

    #[test]
    fn two_tokens_in_cycle_is_unsafe() {
        let mut stg = Stg::new("unsafe");
        let x = stg.add_signal("x", SignalKind::Input);
        let mut mg = MgStg {
            name: "unsafe".into(),
            signals: Arc::new(stg.signals.clone()),
            transitions: Vec::new(),
            arcs: BTreeMap::new(),
            initial_code: 0,
        };
        let xp = mg.add_transition(TransitionLabel::first(x, Polarity::Plus));
        let xm = mg.add_transition(TransitionLabel::first(x, Polarity::Minus));
        mg.insert_arc(xp, xm, 1, false);
        mg.insert_arc(xm, xp, 1, false);
        assert!(mg.is_live());
        assert!(!mg.is_safe());
    }

    #[test]
    fn restriction_arcs_survive_redundancy_elimination() {
        let (mut mg, n) = sr_latch_local();
        mg.insert_arc(n["b-"], n["o+"], 0, true); // redundant but protected
        let removed = mg.eliminate_redundant_arcs();
        assert!(!removed.contains(&(n["b-"], n["o+"])));
        assert!(mg.arc(n["b-"], n["o+"]).is_some());
    }

    #[test]
    fn token_game_round_trip() {
        let (mg, n) = sr_latch_local();
        let m0 = mg.initial_marking();
        assert!(mg.enabled_in(n["b+"], &m0));
        let m1 = mg.fire_in(n["b+"], &m0);
        assert!(mg.enabled_in(n["b-"], &m1));
        assert!(!mg.enabled_in(n["b+"], &m1));
    }

    #[test]
    fn sg_key_distinguishes_structurally_different_mgs() {
        let (mg, n) = sr_latch_local();
        // A clone is key-identical.
        assert_eq!(mg.sg_key(), mg.clone().sg_key());
        // Moving a token changes the key.
        let mut moved = mg.clone();
        moved.remove_arc(n["o-"], n["b+"]);
        moved.insert_arc(n["o-"], n["b+"], 0, false);
        moved.remove_arc(n["b+"], n["b-"]);
        moved.insert_arc(n["b+"], n["b-"], 1, false);
        assert_ne!(mg.sg_key(), moved.sg_key());
        // Removing an arc changes the key.
        let mut fewer = mg.clone();
        fewer.remove_arc(n["b-"], n["a-"]);
        assert_ne!(mg.sg_key(), fewer.sg_key());
        // Removing a transition changes the key.
        let mut dead = mg.clone();
        dead.remove_transition(n["o+"]);
        assert_ne!(mg.sg_key(), dead.sg_key());
        // A different initial code changes the key.
        let mut flipped = mg.clone();
        flipped.set_initial_code(mg.initial_code() ^ 1);
        assert_ne!(mg.sg_key(), flipped.sg_key());
    }

    #[test]
    fn sg_key_ignores_restriction_flags() {
        // Restriction arcs alter relaxation policy, not state-graph
        // semantics: the key (and thus the SG cache) treats them alike.
        let (mg, n) = sr_latch_local();
        let mut restricted = mg.clone();
        restricted.remove_arc(n["b-"], n["a-"]);
        restricted.insert_arc(n["b-"], n["a-"], 0, true);
        assert_eq!(mg.sg_key(), restricted.sg_key());
    }

    #[test]
    fn equal_sg_keys_mean_equal_state_graphs() {
        let stg = crate::parse::parse_astg(
            "\
.model handshake
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
",
        )
        .expect("valid");
        let mg = MgStg::from_stg_mg(&stg).expect("marked graph");
        let mut restricted = mg.clone();
        let (&(a, b), attr) = mg.arcs.iter().next().expect("has arcs");
        restricted.remove_arc(a, b);
        restricted.insert_arc(a, b, attr.tokens, true);
        assert_eq!(mg.sg_key(), restricted.sg_key());
        let x = StateGraph::of_mg(&mg, 1000).expect("consistent");
        let y = StateGraph::of_mg(&restricted, 1000).expect("consistent");
        assert_eq!(x, y);
    }

    #[test]
    fn remove_transition_drops_incident_arcs() {
        let (mut mg, n) = sr_latch_local();
        let before = mg.arc_count();
        mg.remove_transition(n["o+"]);
        assert!(!mg.is_alive(n["o+"]));
        assert!(mg.arc_count() < before);
        assert!(mg.arcs().all(|((a, b), _)| a != n["o+"] && b != n["o+"]));
    }
}

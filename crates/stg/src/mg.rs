//! Marked-graph STGs at the transition level.
//!
//! Inside an MG every place has exactly one input and one output transition,
//! so the thesis (Sec. 5.2.2) works with *arcs* `t1 ⇒ t2` carrying the
//! tokens of the implicit place `<t1, t2>`. [`MgStg`] is that view: labelled
//! transitions plus token-counted arcs, with the structural predicates the
//! relaxation engine needs (precedence, concurrency, liveness, safeness and
//! the Algorithm 3 shortcut-place redundancy check).

use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use si_petri::MgComponent;

use crate::signal::{SignalId, SignalKind, TransitionLabel};
use crate::stg::{SignalDecl, Stg, StgError};

/// Attributes of an arc (implicit place) of an [`MgStg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcAttr {
    /// Tokens currently held by the implicit place.
    pub tokens: u32,
    /// Whether this is an order-restriction arc (`#` in the thesis Ch. 6):
    /// never relaxed and never removed as redundant.
    pub restriction: bool,
}

/// A marked-graph STG over transition-level arcs.
///
/// Transition ids are stable across edits (removed transitions are
/// tombstoned), so the relaxation engine can hold ids across structural
/// rewrites. All iteration orders are deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MgStg {
    /// Model name, inherited from the source STG.
    pub name: String,
    signals: Vec<SignalDecl>,
    transitions: Vec<Option<TransitionLabel>>,
    arcs: BTreeMap<(usize, usize), ArcAttr>,
    initial_code: u64,
}

impl MgStg {
    /// Builds the transition-level view of one MG component of `stg`.
    ///
    /// Parallel places between the same transition pair merge to the
    /// binding (minimum-token) constraint.
    ///
    /// # Errors
    ///
    /// [`StgError::MalformedMarkedGraph`] if a place of the component is
    /// dangling, and any error from [`Stg::initial_values`].
    pub fn from_component(stg: &Stg, comp: &MgComponent) -> Result<Self, StgError> {
        let values = stg.initial_values()?;
        let mut initial_code = 0u64;
        for (i, &v) in values.iter().enumerate() {
            if v {
                initial_code |= 1u64 << i;
            }
        }

        let mut mg = Self {
            name: stg.name.clone(),
            signals: stg.signals.clone(),
            transitions: Vec::new(),
            arcs: BTreeMap::new(),
            initial_code,
        };
        for t in comp.net.transitions() {
            let orig = comp.transition_map[t.0];
            mg.transitions.push(Some(stg.label(orig)));
        }
        let m0 = comp.net.initial_marking();
        for p in comp.net.places() {
            let pre = comp.net.place_pre(p);
            let post = comp.net.place_post(p);
            let (&src, &dst) = match (pre.first(), post.first()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(StgError::MalformedMarkedGraph {
                        reason: format!(
                            "place `{}` is dangling in the MG component",
                            comp.net.place_name(p)
                        ),
                    })
                }
            };
            mg.insert_arc(src.0, dst.0, m0[p.0], false);
        }
        Ok(mg)
    }

    /// Builds an `MgStg` directly (used by tests and builders); the caller
    /// supplies the signal table of the owning [`Stg`] via `stg`.
    pub fn from_stg_mg(stg: &Stg) -> Result<Self, StgError> {
        let comps = stg.mg_components(4096)?;
        match comps.len() {
            1 => Ok(comps.into_iter().next().expect("checked")),
            n => Err(StgError::MalformedMarkedGraph {
                reason: format!("expected a marked graph, got {n} MG components"),
            }),
        }
    }

    /// Global initial state code (bit `i` = initial value of signal `i`).
    pub fn initial_code(&self) -> u64 {
        self.initial_code
    }

    /// Overrides the initial state code.
    pub fn set_initial_code(&mut self, code: u64) {
        self.initial_code = code;
    }

    /// Number of signals in the signal table.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Name of signal `s`.
    pub fn signal_name(&self, s: SignalId) -> &str {
        &self.signals[s.0].name
    }

    /// Kind of signal `s`.
    pub fn signal_kind(&self, s: SignalId) -> SignalKind {
        self.signals[s.0].kind
    }

    /// Finds a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|d| d.name == name)
            .map(SignalId)
    }

    /// The signal-name table.
    pub fn signal_names(&self) -> Vec<String> {
        self.signals.iter().map(|d| d.name.clone()).collect()
    }

    /// Alive transition ids, ascending.
    pub fn transitions(&self) -> Vec<usize> {
        (0..self.transitions.len())
            .filter(|&i| self.transitions[i].is_some())
            .collect()
    }

    /// Whether transition `t` is alive.
    pub fn is_alive(&self, t: usize) -> bool {
        self.transitions.get(t).is_some_and(|l| l.is_some())
    }

    /// Label of transition `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is dead or out of range.
    pub fn label(&self, t: usize) -> TransitionLabel {
        self.transitions[t].expect("transition is alive")
    }

    /// Renders transition `t`'s label (`req+`, `csc0-/2`).
    pub fn label_string(&self, t: usize) -> String {
        self.label(t).display(&self.signal_names()).to_string()
    }

    /// Finds an alive transition by rendered label.
    pub fn transition_by_label(&self, label: &str) -> Option<usize> {
        self.transitions()
            .into_iter()
            .find(|&t| self.label_string(t) == label)
    }

    /// Adds a transition (used by builders/tests) and returns its id.
    pub fn add_transition(&mut self, label: TransitionLabel) -> usize {
        self.transitions.push(Some(label));
        self.transitions.len() - 1
    }

    /// Creates an empty `MgStg` sharing `stg`'s signal table. The initial
    /// code defaults to all-zero; set it with [`MgStg::set_initial_code`].
    pub fn empty_like(stg: &Stg) -> Self {
        Self {
            name: stg.name.clone(),
            signals: stg.signals.clone(),
            transitions: Vec::new(),
            arcs: BTreeMap::new(),
            initial_code: 0,
        }
    }

    /// All arcs `((src, dst), attr)` in deterministic order.
    pub fn arcs(&self) -> impl Iterator<Item = ((usize, usize), ArcAttr)> + '_ {
        self.arcs.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Attribute of arc `src ⇒ dst`, if present.
    pub fn arc(&self, src: usize, dst: usize) -> Option<ArcAttr> {
        self.arcs.get(&(src, dst)).copied()
    }

    /// Inserts (or merges into) the arc `src ⇒ dst`.
    ///
    /// Parallel insertions merge to the minimum token count (the binding
    /// constraint); restriction status is sticky.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is dead.
    pub fn insert_arc(&mut self, src: usize, dst: usize, tokens: u32, restriction: bool) {
        assert!(
            self.is_alive(src) && self.is_alive(dst),
            "arc endpoints must be alive"
        );
        self.arcs
            .entry((src, dst))
            .and_modify(|a| {
                a.tokens = a.tokens.min(tokens);
                a.restriction |= restriction;
            })
            .or_insert(ArcAttr {
                tokens,
                restriction,
            });
    }

    /// Removes the arc `src ⇒ dst`; returns its attributes if it existed.
    pub fn remove_arc(&mut self, src: usize, dst: usize) -> Option<ArcAttr> {
        self.arcs.remove(&(src, dst))
    }

    /// Removes a transition and all incident arcs.
    pub fn remove_transition(&mut self, t: usize) {
        self.transitions[t] = None;
        self.arcs.retain(|&(a, b), _| a != t && b != t);
    }

    /// Predecessor transitions of `t` (thesis `/t`).
    pub fn preds(&self, t: usize) -> Vec<usize> {
        self.arcs
            .keys()
            .filter(|&&(_, b)| b == t)
            .map(|&(a, _)| a)
            .collect()
    }

    /// Successor transitions of `t` (thesis `t.`).
    pub fn succs(&self, t: usize) -> Vec<usize> {
        self.arcs
            .keys()
            .filter(|&&(a, _)| a == t)
            .map(|&(_, b)| b)
            .collect()
    }

    /// Minimum-token weight of a non-empty directed path from `a` to `b`
    /// (Dijkstra over arc token counts). With `exclude_direct`, the arc
    /// `(a, b)` is removed from the graph entirely, as in the Algorithm 3
    /// shortcut-place construction. `a == b` asks for the lightest cycle
    /// through `a`.
    pub fn min_token_path(&self, a: usize, b: usize, exclude_direct: bool) -> Option<u32> {
        let blocked = exclude_direct.then_some((a, b));
        let mut dist: BTreeMap<usize, u32> = BTreeMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, usize)>> = BinaryHeap::new();
        // Seed with the arcs leaving `a` so that paths are non-empty; `a`
        // itself gets a distance only if reached again through a cycle.
        for (&(src, dst), attr) in &self.arcs {
            if src == a && blocked != Some((src, dst)) {
                let d = attr.tokens;
                if dist.get(&dst).is_none_or(|&seen| d < seen) {
                    dist.insert(dst, d);
                    heap.push(std::cmp::Reverse((d, dst)));
                }
            }
        }
        while let Some(std::cmp::Reverse((d, n))) = heap.pop() {
            if dist.get(&n).is_some_and(|&seen| d > seen) {
                continue;
            }
            for (&(src, dst), attr) in &self.arcs {
                if src != n || blocked == Some((src, dst)) {
                    continue;
                }
                let nd = d + attr.tokens;
                if dist.get(&dst).is_none_or(|&seen| nd < seen) {
                    dist.insert(dst, nd);
                    heap.push(std::cmp::Reverse((nd, dst)));
                }
            }
        }
        dist.get(&b).copied()
    }

    /// Whether `a` must fire before `b` in the current cycle: a token-free
    /// directed path `a → b` exists.
    pub fn precedes(&self, a: usize, b: usize) -> bool {
        a != b && self.min_token_path(a, b, false) == Some(0)
    }

    /// Whether `a` and `b` are concurrent (neither precedes the other).
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// Whether the MG is live: strongly connected over alive transitions
    /// and every directed cycle carries at least one token (equivalently,
    /// the token-free subgraph is acyclic).
    pub fn is_live(&self) -> bool {
        let alive = self.transitions();
        if alive.is_empty() {
            return false;
        }
        self.strongly_connected(&alive) && self.zero_token_acyclic(&alive)
    }

    fn strongly_connected(&self, alive: &[usize]) -> bool {
        let reach = |forward: bool| -> BTreeSet<usize> {
            let mut seen = BTreeSet::new();
            let mut stack = vec![alive[0]];
            seen.insert(alive[0]);
            while let Some(n) = stack.pop() {
                for &(a, b) in self.arcs.keys() {
                    let (from, to) = if forward { (a, b) } else { (b, a) };
                    if from == n && seen.insert(to) {
                        stack.push(to);
                    }
                }
            }
            seen
        };
        let fwd = reach(true);
        let bwd = reach(false);
        alive.iter().all(|t| fwd.contains(t) && bwd.contains(t))
    }

    fn zero_token_acyclic(&self, alive: &[usize]) -> bool {
        // Kahn's algorithm on the token-free subgraph.
        let mut indeg: BTreeMap<usize, usize> = alive.iter().map(|&t| (t, 0)).collect();
        for (&(_, b), attr) in &self.arcs {
            if attr.tokens == 0 {
                *indeg.get_mut(&b).expect("alive") += 1;
            }
        }
        let mut queue: Vec<usize> = indeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&t, _)| t)
            .collect();
        let mut removed = 0usize;
        while let Some(n) = queue.pop() {
            removed += 1;
            for (&(a, b), attr) in &self.arcs {
                if attr.tokens == 0 && a == n {
                    let d = indeg.get_mut(&b).expect("alive");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(b);
                    }
                }
            }
        }
        removed == alive.len()
    }

    /// Whether the MG is safe: every implicit place can hold at most one
    /// token in any reachable marking. For a live MG the bound of place
    /// `(a, b)` is `tokens(a, b) + min-token-path(b → a)`.
    pub fn is_safe(&self) -> bool {
        self.arcs.iter().all(|(&(a, b), attr)| {
            match self.min_token_path(b, a, false) {
                Some(back) => attr.tokens + back <= 1,
                None => attr.tokens <= 1, // no cycle: bound is the initial count
            }
        })
    }

    /// The Algorithm 3 redundancy check for the implicit place on arc
    /// `src ⇒ dst`: the arc is redundant iff a different path `src → dst`
    /// carries no more tokens than the arc itself, or the arc is a marked
    /// self-loop ("loop-only place").
    pub fn is_redundant_arc(&self, src: usize, dst: usize) -> bool {
        let Some(attr) = self.arc(src, dst) else {
            return false;
        };
        if src == dst {
            return attr.tokens >= 1;
        }
        match self.min_token_path(src, dst, true) {
            Some(weight) => weight <= attr.tokens,
            None => false,
        }
    }

    /// Removes every redundant non-restriction arc (thesis Sec. 5.3.3);
    /// returns the removed arcs.
    pub fn eliminate_redundant_arcs(&mut self) -> Vec<(usize, usize)> {
        let mut removed = Vec::new();
        loop {
            let candidates: Vec<(usize, usize)> = self
                .arcs
                .iter()
                .filter(|&(_, attr)| !attr.restriction)
                .map(|(&k, _)| k)
                .collect();
            let mut changed = false;
            for (a, b) in candidates {
                if self.arcs.contains_key(&(a, b)) && self.is_redundant_arc(a, b) {
                    self.remove_arc(a, b);
                    removed.push((a, b));
                    changed = true;
                }
            }
            if !changed {
                return removed;
            }
        }
    }

    /// The initial marking as a map from arcs to token counts.
    pub fn initial_marking(&self) -> BTreeMap<(usize, usize), u32> {
        self.arcs
            .iter()
            .map(|(&k, attr)| (k, attr.tokens))
            .collect()
    }

    /// Whether transition `t` is enabled in `marking`.
    pub fn enabled_in(&self, t: usize, marking: &BTreeMap<(usize, usize), u32>) -> bool {
        self.is_alive(t)
            && self
                .arcs
                .keys()
                .filter(|&&(_, b)| b == t)
                .all(|k| marking.get(k).copied().unwrap_or(0) > 0)
    }

    /// Fires `t` in `marking`, returning the successor marking.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not enabled.
    pub fn fire_in(
        &self,
        t: usize,
        marking: &BTreeMap<(usize, usize), u32>,
    ) -> BTreeMap<(usize, usize), u32> {
        assert!(self.enabled_in(t, marking), "transition {t} is not enabled");
        let mut next = marking.clone();
        for &(a, b) in self.arcs.keys() {
            if b == t {
                *next.get_mut(&(a, b)).expect("incoming arc") -= 1;
            }
        }
        for &(a, b) in self.arcs.keys() {
            if a == t {
                *next.get_mut(&(a, b)).expect("outgoing arc") += 1;
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Polarity;
    use crate::stg::Stg;

    /// Builds the SR-latch local STG of thesis Fig. 5.4 directly:
    /// b- ⇒ a-, b+/2 ⇒ a+ are the type-4 arcs.
    fn sr_latch_local() -> (MgStg, BTreeMap<&'static str, usize>) {
        let mut stg = Stg::new("sr");
        let a = stg.add_signal("a", SignalKind::Input);
        let b = stg.add_signal("b", SignalKind::Input);
        let o = stg.add_signal("o", SignalKind::Output);
        let mut mg = MgStg {
            name: "sr".into(),
            signals: stg.signals.clone(),
            transitions: Vec::new(),
            arcs: BTreeMap::new(),
            initial_code: 0,
        };
        let am = mg.add_transition(TransitionLabel::first(a, Polarity::Minus));
        let ap = mg.add_transition(TransitionLabel::first(a, Polarity::Plus));
        let bm = mg.add_transition(TransitionLabel::first(b, Polarity::Minus));
        let bp = mg.add_transition(TransitionLabel::first(b, Polarity::Plus));
        let bm2 = mg.add_transition(TransitionLabel::new(b, Polarity::Minus, 2));
        let bp2 = mg.add_transition(TransitionLabel::new(b, Polarity::Plus, 2));
        let op = mg.add_transition(TransitionLabel::first(o, Polarity::Plus));
        let om = mg.add_transition(TransitionLabel::first(o, Polarity::Minus));
        // a- ⇒ o+, a+ ⇒ o-, b-/2 ⇒ o- : type (1)
        mg.insert_arc(am, op, 0, false);
        mg.insert_arc(ap, om, 0, false);
        mg.insert_arc(bm2, om, 0, false);
        // o- ⇒ b+, o+ ⇒ b+/2 : type (2)
        mg.insert_arc(om, bp, 1, false);
        mg.insert_arc(op, bp2, 0, false);
        // b+ ⇒ b-, b+/2 ⇒ b-/2 : type (3)
        mg.insert_arc(bp, bm, 0, false);
        mg.insert_arc(bp2, bm2, 0, false);
        // b- ⇒ a-, b+/2 ⇒ a+ : type (4)
        mg.insert_arc(bm, am, 0, false);
        mg.insert_arc(bp2, ap, 0, false);
        let names = [
            ("a-", am),
            ("a+", ap),
            ("b-", bm),
            ("b+", bp),
            ("b-/2", bm2),
            ("b+/2", bp2),
            ("o+", op),
            ("o-", om),
        ]
        .into_iter()
        .collect();
        (mg, names)
    }

    #[test]
    fn sr_latch_is_live_and_safe() {
        let (mg, _) = sr_latch_local();
        assert!(mg.is_live());
        assert!(mg.is_safe());
    }

    #[test]
    fn precedence_and_concurrency() {
        let (mg, n) = sr_latch_local();
        assert!(mg.precedes(n["b-"], n["a-"]));
        assert!(mg.precedes(n["a-"], n["o+"]));
        assert!(!mg.precedes(n["o+"], n["a-"]));
        assert!(!mg.concurrent(n["b-"], n["a-"]));
    }

    #[test]
    fn min_token_path_counts_tokens() {
        let (mg, n) = sr_latch_local();
        // o- → b+ carries one token; path o- → a- must go the long way.
        assert_eq!(mg.min_token_path(n["o-"], n["b+"], false), Some(1));
        assert_eq!(mg.min_token_path(n["b+"], n["a-"], false), Some(0));
    }

    #[test]
    fn shortcut_place_is_redundant() {
        // Thesis Fig. 5.14 (a): p4 = <x+, x-> is a shortcut of the path
        // x+ → y+ → x-.
        let mut stg = Stg::new("fig514a");
        let x = stg.add_signal("x", SignalKind::Input);
        let y = stg.add_signal("y", SignalKind::Input);
        let mut mg = MgStg {
            name: "fig514a".into(),
            signals: stg.signals.clone(),
            transitions: Vec::new(),
            arcs: BTreeMap::new(),
            initial_code: 0,
        };
        let xp = mg.add_transition(TransitionLabel::first(x, Polarity::Plus));
        let yp = mg.add_transition(TransitionLabel::first(y, Polarity::Plus));
        let xm = mg.add_transition(TransitionLabel::first(x, Polarity::Minus));
        let ym = mg.add_transition(TransitionLabel::first(y, Polarity::Minus));
        mg.insert_arc(xp, yp, 0, false); // p2
        mg.insert_arc(yp, xm, 0, false); // p3
        mg.insert_arc(xp, xm, 0, false); // p4: the shortcut
        mg.insert_arc(xm, ym, 0, false); // p5
        mg.insert_arc(ym, xp, 1, false); // p1
        assert!(mg.is_redundant_arc(xp, xm));
        assert!(!mg.is_redundant_arc(xp, yp));
        let removed = mg.eliminate_redundant_arcs();
        assert_eq!(removed, vec![(xp, xm)]);
        assert!(mg.is_live());
    }

    #[test]
    fn marked_path_is_not_a_shortcut() {
        // Thesis Fig. 5.14 (b) situation: the place <b-, b+> holds one
        // token, but every alternative path b- → b+ carries two tokens, so
        // the place is NOT a shortcut and must be kept.
        let mut stg = Stg::new("fig514b");
        let x = stg.add_signal("x", SignalKind::Input);
        let y = stg.add_signal("y", SignalKind::Input);
        let b = stg.add_signal("b", SignalKind::Input);
        let mut mg = MgStg {
            name: "fig514b".into(),
            signals: stg.signals.clone(),
            transitions: Vec::new(),
            arcs: BTreeMap::new(),
            initial_code: 0,
        };
        let bm = mg.add_transition(TransitionLabel::first(b, Polarity::Minus));
        let xp = mg.add_transition(TransitionLabel::first(x, Polarity::Plus));
        let yp = mg.add_transition(TransitionLabel::first(y, Polarity::Plus));
        let bp = mg.add_transition(TransitionLabel::first(b, Polarity::Plus));
        mg.insert_arc(bm, xp, 0, false);
        mg.insert_arc(xp, yp, 1, false);
        mg.insert_arc(yp, bp, 1, false);
        mg.insert_arc(bp, bm, 0, false);
        mg.insert_arc(bm, bp, 1, false); // the candidate place: 1 < 2
        assert!(!mg.is_redundant_arc(bm, bp));
        // Raising the candidate's tokens to the path weight makes it
        // redundant again.
        mg.remove_arc(bm, bp);
        mg.insert_arc(bm, bp, 2, false);
        assert!(mg.is_redundant_arc(bm, bp));
    }

    #[test]
    fn zero_token_cycle_is_not_live() {
        let (mut mg, n) = sr_latch_local();
        // Drain the only token: dead.
        mg.insert_arc(n["o-"], n["b+"], 0, false); // merges to min = 0
        assert!(!mg.is_live());
    }

    #[test]
    fn two_tokens_in_cycle_is_unsafe() {
        let mut stg = Stg::new("unsafe");
        let x = stg.add_signal("x", SignalKind::Input);
        let mut mg = MgStg {
            name: "unsafe".into(),
            signals: stg.signals.clone(),
            transitions: Vec::new(),
            arcs: BTreeMap::new(),
            initial_code: 0,
        };
        let xp = mg.add_transition(TransitionLabel::first(x, Polarity::Plus));
        let xm = mg.add_transition(TransitionLabel::first(x, Polarity::Minus));
        mg.insert_arc(xp, xm, 1, false);
        mg.insert_arc(xm, xp, 1, false);
        assert!(mg.is_live());
        assert!(!mg.is_safe());
    }

    #[test]
    fn restriction_arcs_survive_redundancy_elimination() {
        let (mut mg, n) = sr_latch_local();
        mg.insert_arc(n["b-"], n["o+"], 0, true); // redundant but protected
        let removed = mg.eliminate_redundant_arcs();
        assert!(!removed.contains(&(n["b-"], n["o+"])));
        assert!(mg.arc(n["b-"], n["o+"]).is_some());
    }

    #[test]
    fn token_game_round_trip() {
        let (mg, n) = sr_latch_local();
        let m0 = mg.initial_marking();
        assert!(mg.enabled_in(n["b+"], &m0));
        let m1 = mg.fire_in(n["b+"], &m0);
        assert!(mg.enabled_in(n["b-"], &m1));
        assert!(!mg.enabled_in(n["b+"], &m1));
    }

    #[test]
    fn remove_transition_drops_incident_arcs() {
        let (mut mg, n) = sr_latch_local();
        let before = mg.arc_count();
        mg.remove_transition(n["o+"]);
        assert!(!mg.is_alive(n["o+"]));
        assert!(mg.arc_count() < before);
        assert!(mg.arcs().all(|((a, b), _)| a != n["o+"] && b != n["o+"]));
    }
}

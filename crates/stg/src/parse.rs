//! Parser and writer for the `astg` / `.g` STG interchange format used by
//! petrify-era tools (thesis Sec. 7.3.1 shows a complete example).
//!
//! Supported sections: `.model`, `.inputs`, `.outputs`, `.internal`,
//! `.graph`, `.marking { ... }`, `.end`. Graph lines read
//! `src dst1 dst2 ...`; nodes are either signal transitions (`req+`,
//! `csc0-/2`) or explicit places (any other identifier). Arcs between two
//! transitions create an implicit place, markable as `<t1,t2>` in the
//! marking section.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use si_petri::{PlaceId, TransitionId};

use crate::signal::{Polarity, SignalKind, TransitionLabel};
use crate::stg::Stg;

/// Errors from [`parse_astg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAstgError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAstgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "astg parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseAstgError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeRef {
    Transition(String, Polarity, u32),
    Place(String),
}

fn parse_node(token: &str) -> NodeRef {
    let (base, occurrence) = match token.split_once('/') {
        Some((b, occ)) => match occ.parse::<u32>() {
            Ok(n) if n >= 1 => (b, n),
            _ => return NodeRef::Place(token.to_string()),
        },
        None => (token, 1),
    };
    if let Some(name) = base.strip_suffix('+') {
        if !name.is_empty() {
            return NodeRef::Transition(name.to_string(), Polarity::Plus, occurrence);
        }
    }
    if let Some(name) = base.strip_suffix('-') {
        if !name.is_empty() {
            return NodeRef::Transition(name.to_string(), Polarity::Minus, occurrence);
        }
    }
    NodeRef::Place(token.to_string())
}

/// Parses an STG in the `.g` format.
///
/// # Errors
///
/// Returns [`ParseAstgError`] on unknown signals, malformed sections,
/// place-to-place arcs, `.dummy` transitions (unsupported by the thesis
/// flow) or unknown marking entries.
pub fn parse_astg(text: &str) -> Result<Stg, ParseAstgError> {
    let mut stg = Stg::new("stg");
    let mut declared: BTreeMap<String, SignalKind> = BTreeMap::new();
    let mut transitions: BTreeMap<(String, Polarity, u32), TransitionId> = BTreeMap::new();
    let mut places: BTreeMap<String, PlaceId> = BTreeMap::new();
    let mut implicit: BTreeMap<(TransitionId, TransitionId), PlaceId> = BTreeMap::new();
    let mut in_graph = false;
    let mut saw_graph = false;

    let err = |line: usize, message: String| ParseAstgError { line, message };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".model") {
            stg.name = rest.trim().to_string();
            continue;
        }
        if line.starts_with(".dummy") {
            return Err(err(lineno, "`.dummy` transitions are not supported".into()));
        }
        let declare = |kind: SignalKind,
                       rest: &str,
                       stg: &mut Stg,
                       declared: &mut BTreeMap<String, SignalKind>|
         -> Result<(), ParseAstgError> {
            for name in rest.split_whitespace() {
                if declared.contains_key(name) {
                    return Err(ParseAstgError {
                        line: lineno,
                        message: format!("signal `{name}` declared twice"),
                    });
                }
                declared.insert(name.to_string(), kind);
                stg.add_signal(name, kind);
            }
            Ok(())
        };
        if let Some(rest) = line.strip_prefix(".inputs") {
            declare(SignalKind::Input, rest, &mut stg, &mut declared)?;
            continue;
        }
        if let Some(rest) = line.strip_prefix(".outputs") {
            declare(SignalKind::Output, rest, &mut stg, &mut declared)?;
            continue;
        }
        if let Some(rest) = line.strip_prefix(".internal") {
            declare(SignalKind::Internal, rest, &mut stg, &mut declared)?;
            continue;
        }
        if line == ".graph" {
            in_graph = true;
            saw_graph = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix(".marking") {
            in_graph = false;
            parse_marking(rest, lineno, &mut stg, &transitions, &places, &implicit)?;
            continue;
        }
        if line == ".end" {
            break;
        }
        if line.starts_with('.') {
            return Err(err(lineno, format!("unknown section `{line}`")));
        }
        if !in_graph {
            return Err(err(
                lineno,
                format!("unexpected line outside `.graph`: `{line}`"),
            ));
        }

        // A graph line: src dst1 dst2 ...
        let mut tokens = line.split_whitespace();
        let src_tok = tokens.next().expect("non-empty line");
        let resolve_t = |name: &str,
                         pol: Polarity,
                         occ: u32,
                         stg: &mut Stg,
                         transitions: &mut BTreeMap<(String, Polarity, u32), TransitionId>|
         -> Result<TransitionId, ParseAstgError> {
            let sig = stg.signal_by_name(name).ok_or_else(|| ParseAstgError {
                line: lineno,
                message: format!("undeclared signal `{name}`"),
            })?;
            Ok(*transitions
                .entry((name.to_string(), pol, occ))
                .or_insert_with(|| stg.add_transition(TransitionLabel::new(sig, pol, occ))))
        };
        let resolve_p = |name: &str, stg: &mut Stg, places: &mut BTreeMap<String, PlaceId>| {
            *places
                .entry(name.to_string())
                .or_insert_with(|| stg.net_mut().add_place(name, 0))
        };

        let src = match parse_node(src_tok) {
            NodeRef::Transition(name, pol, occ) => {
                NodeKind::T(resolve_t(&name, pol, occ, &mut stg, &mut transitions)?)
            }
            NodeRef::Place(name) => NodeKind::P(resolve_p(&name, &mut stg, &mut places)),
        };
        for dst_tok in tokens {
            let dst = match parse_node(dst_tok) {
                NodeRef::Transition(name, pol, occ) => {
                    NodeKind::T(resolve_t(&name, pol, occ, &mut stg, &mut transitions)?)
                }
                NodeRef::Place(name) => NodeKind::P(resolve_p(&name, &mut stg, &mut places)),
            };
            match (src, dst) {
                (NodeKind::T(a), NodeKind::T(b)) => {
                    implicit.entry((a, b)).or_insert_with(|| {
                        let pname = format!(
                            "<{},{}>",
                            stg.net().transition_name(a),
                            stg.net().transition_name(b)
                        );
                        let p = stg.net_mut().add_place(pname, 0);
                        stg.net_mut().add_arc_tp(a, p);
                        stg.net_mut().add_arc_pt(p, b);
                        p
                    });
                }
                (NodeKind::T(a), NodeKind::P(p)) => stg.net_mut().add_arc_tp(a, p),
                (NodeKind::P(p), NodeKind::T(b)) => stg.net_mut().add_arc_pt(p, b),
                (NodeKind::P(_), NodeKind::P(_)) => {
                    return Err(err(lineno, "place-to-place arcs are not allowed".into()))
                }
            }
        }
    }

    if !saw_graph {
        return Err(err(1, "missing `.graph` section".into()));
    }
    Ok(stg)
}

#[derive(Debug, Clone, Copy)]
enum NodeKind {
    T(TransitionId),
    P(PlaceId),
}

fn parse_marking(
    rest: &str,
    lineno: usize,
    stg: &mut Stg,
    transitions: &BTreeMap<(String, Polarity, u32), TransitionId>,
    places: &BTreeMap<String, PlaceId>,
    implicit: &BTreeMap<(TransitionId, TransitionId), PlaceId>,
) -> Result<(), ParseAstgError> {
    let err = |message: String| ParseAstgError {
        line: lineno,
        message,
    };
    let body = rest.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| err("marking must be wrapped in `{ ... }`".into()))?;

    // Tokenize: `<a+,b->` pairs (optionally `=k`) and bare place names.
    let mut chars = body.chars().peekable();
    let mut entries: Vec<(String, u32)> = Vec::new();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        let mut token = String::new();
        if c == '<' {
            for ch in chars.by_ref() {
                token.push(ch);
                if ch == '>' {
                    break;
                }
            }
        }
        while let Some(&ch) = chars.peek() {
            if ch.is_whitespace() || ch == '<' {
                break;
            }
            token.push(ch);
            chars.next();
        }
        if token.is_empty() {
            break;
        }
        let (name, count) = match token.split_once('=') {
            Some((n, k)) => (
                n.to_string(),
                k.parse::<u32>()
                    .map_err(|_| err(format!("bad token count in `{token}`")))?,
            ),
            None => (token, 1),
        };
        entries.push((name, count));
    }

    for (name, count) in entries {
        if let Some(inner) = name.strip_prefix('<').and_then(|n| n.strip_suffix('>')) {
            let (a, b) = inner
                .split_once(',')
                .ok_or_else(|| err(format!("bad implicit place `{name}`")))?;
            let lookup = |tok: &str| -> Result<TransitionId, ParseAstgError> {
                match parse_node(tok.trim()) {
                    NodeRef::Transition(n, pol, occ) => transitions
                        .get(&(n.clone(), pol, occ))
                        .copied()
                        .ok_or_else(|| err(format!("unknown transition `{tok}` in marking"))),
                    NodeRef::Place(_) => Err(err(format!("`{tok}` is not a transition"))),
                }
            };
            let (ta, tb) = (lookup(a)?, lookup(b)?);
            let p = implicit
                .get(&(ta, tb))
                .copied()
                .ok_or_else(|| err(format!("no implicit place `{name}` in the graph")))?;
            stg.net_mut().set_initial(p, count);
        } else {
            let p = places
                .get(&name)
                .copied()
                .ok_or_else(|| err(format!("unknown place `{name}` in marking")))?;
            stg.net_mut().set_initial(p, count);
        }
    }
    Ok(())
}

/// Writes an STG in the `.g` format (implicit places for 1-in/1-out
/// anonymous places, explicit names otherwise).
pub fn write_astg(stg: &Stg) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", stg.name));
    for (section, kind) in [
        (".inputs", SignalKind::Input),
        (".outputs", SignalKind::Output),
        (".internal", SignalKind::Internal),
    ] {
        let names: Vec<&str> = stg
            .signals_of_kind(kind)
            .into_iter()
            .map(|s| stg.signal_name(s))
            .collect();
        if !names.is_empty() {
            out.push_str(&format!("{section} {}\n", names.join(" ")));
        }
    }
    out.push_str(".graph\n");

    let net = stg.net();
    let implicit = |p: PlaceId| -> Option<(TransitionId, TransitionId)> {
        let pre = net.place_pre(p);
        let post = net.place_post(p);
        if pre.len() == 1 && post.len() == 1 && net.place_name(p).starts_with('<') {
            Some((pre[0], post[0]))
        } else {
            None
        }
    };

    // Group implicit arcs by source transition.
    let mut lines: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for t in net.transitions() {
        let name = net.transition_name(t).to_string();
        order.push(name.clone());
        lines.entry(name).or_default();
    }
    for p in net.places() {
        if let Some((a, b)) = implicit(p) {
            lines
                .get_mut(net.transition_name(a))
                .expect("known transition")
                .push(net.transition_name(b).to_string());
        } else {
            let pname = net.place_name(p).to_string();
            for &b in net.place_post(p) {
                lines
                    .entry(pname.clone())
                    .or_default()
                    .push(net.transition_name(b).to_string());
            }
            for &a in net.place_pre(p) {
                lines
                    .get_mut(net.transition_name(a))
                    .expect("known transition")
                    .push(pname.clone());
            }
            if !order.contains(&pname) {
                order.push(pname);
            }
        }
    }
    for name in order {
        let dsts = &lines[&name];
        if !dsts.is_empty() {
            out.push_str(&format!("{name} {}\n", dsts.join(" ")));
        }
    }

    // Marking.
    let m0 = net.initial_marking();
    let mut entries: Vec<String> = Vec::new();
    for p in net.places() {
        let k = m0[p.0];
        if k == 0 {
            continue;
        }
        let text = match implicit(p) {
            Some((a, b)) => {
                format!("<{},{}>", net.transition_name(a), net.transition_name(b))
            }
            None => net.place_name(p).to_string(),
        };
        if k == 1 {
            entries.push(text);
        } else {
            entries.push(format!("{text}={k}"));
        }
    }
    out.push_str(&format!(".marking {{ {} }}\n.end\n", entries.join(" ")));
    out
}

/// The complete `imec-ram-read-sbuf` STG printed verbatim in thesis
/// Sec. 7.3.1 — the one benchmark input the thesis reproduces in full.
pub const IMEC_RAM_READ_SBUF_G: &str = "\
.model imec-ram-read-sbuf
.inputs req precharged prnotin wenin wsldin
.outputs ack wsen prnot wen wsld
.internal csc0 map0 i0 i2 i4 i8
.graph
req+ i4+
i4+ prnot+
prnot+ prnotin+
precharged+ prnot+
prnotin+ wen+
wen+ precharged- wenin+
precharged- i0-
i0- ack+
wenin+ i0-
ack+ req-
req- i8+ wen-
i8+ csc0-
wen- wenin-
wsen- wenin-
wenin- wsld+ i4- i0+
i0+ ack-
i4- prnot-
wsld+ wsldin+ precharged+
wsldin+ csc0+
prnot- prnotin- precharged+
prnotin- i8-
i8- csc0+
wsld- wsldin-
wsldin- wsen+ map0+
ack- req+
wsen+ req+
csc0+ wsld- i2-
i2- wsen+
csc0- map0-
map0+ ack-
map0- i2+
i2+ wsen-
.marking { <i4+,prnot+> <precharged+,prnot+> }
.end
";

#[cfg(test)]
mod tests {
    use super::*;

    const HANDSHAKE: &str = "\
.model handshake
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
";

    #[test]
    fn parses_simple_handshake() {
        let stg = parse_astg(HANDSHAKE).expect("valid");
        assert_eq!(stg.name, "handshake");
        assert_eq!(stg.signal_count(), 2);
        assert_eq!(stg.net().transition_count(), 4);
        assert_eq!(stg.net().place_count(), 4);
        let m0 = stg.net().initial_marking();
        assert_eq!(m0.iter().sum::<u32>(), 1);
        assert!(stg.net().is_live(100).expect("small"));
        assert!(stg.net().is_safe(100).expect("small"));
    }

    #[test]
    fn parses_occurrence_indices() {
        let text = "\
.model multi
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b+/2
b+/2 a+
.marking { <b+/2,a+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let b = stg.signal_by_name("b").expect("declared");
        assert_eq!(stg.transitions_of(b).len(), 2);
        let t = stg
            .net()
            .transition_by_name("b+/2")
            .expect("occurrence transition exists");
        assert_eq!(stg.label(t).occurrence, 2);
    }

    #[test]
    fn parses_thesis_imec_ram_read_sbuf() {
        let stg = parse_astg(IMEC_RAM_READ_SBUF_G).expect("valid");
        assert_eq!(stg.name, "imec-ram-read-sbuf");
        assert_eq!(stg.signals_of_kind(SignalKind::Input).len(), 5);
        assert_eq!(stg.signals_of_kind(SignalKind::Output).len(), 5);
        assert_eq!(stg.signals_of_kind(SignalKind::Internal).len(), 6);
        assert!(stg.net().is_live(100_000).expect("bounded"));
        assert!(stg.net().is_safe(100_000).expect("bounded"));
        // Thesis Table 7.2: 112 reachable markings.
        let reach = stg.net().reachability(100_000).expect("bounded");
        assert_eq!(reach.markings.len(), 112);
    }

    #[test]
    fn rejects_undeclared_signal() {
        let text = ".model x\n.inputs a\n.graph\na+ zz+\n.marking { }\n.end\n";
        let e = parse_astg(text).unwrap_err();
        assert!(e.message.contains("undeclared"));
    }

    #[test]
    fn rejects_dummy_section() {
        let text = ".model x\n.dummy d\n.graph\n.end\n";
        assert!(parse_astg(text).is_err());
    }

    #[test]
    fn explicit_places_work() {
        let text = "\
.model choice
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ c+
b+ c+
c+ p1
p1 a-
a- c-
c- p0
.marking { p0 }
.end
";
        let stg = parse_astg(text).expect("valid");
        assert!(stg.net().place_by_name("p0").is_some());
        let p0 = stg.net().place_by_name("p0").expect("exists");
        assert!(stg.net().is_choice_place(p0));
        assert!(stg.net().is_free_choice());
    }

    #[test]
    fn round_trips_through_writer() {
        let stg = parse_astg(IMEC_RAM_READ_SBUF_G).expect("valid");
        let text = write_astg(&stg);
        let stg2 = parse_astg(&text).expect("round trip");
        assert_eq!(stg2.signal_count(), stg.signal_count());
        assert_eq!(stg2.net().transition_count(), stg.net().transition_count());
        let r1 = stg.net().reachability(100_000).expect("bounded");
        let r2 = stg2.net().reachability(100_000).expect("bounded");
        assert_eq!(r1.markings.len(), r2.markings.len());
    }

    #[test]
    fn rejects_place_to_place_arcs() {
        let text = ".model x\n.inputs a\n.graph\np0 p1\n.end\n";
        let e = parse_astg(text).unwrap_err();
        assert!(e.message.contains("place-to-place"));
    }

    #[test]
    fn rejects_unknown_marking_entries() {
        let text = "\
.model x
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <zz+,a+> }
.end
";
        assert!(parse_astg(text).is_err());
    }

    #[test]
    fn rejects_double_declaration() {
        let text = ".model x\n.inputs a\n.outputs a\n.graph\na+ a-\n.end\n";
        let e = parse_astg(text).unwrap_err();
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn missing_graph_section_is_an_error() {
        assert!(parse_astg(".model x\n.inputs a\n.end\n").is_err());
    }

    #[test]
    fn duplicate_arcs_are_merged() {
        let text = "\
.model dup
.inputs a
.outputs b
.graph
a+ b+
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        // Only one implicit place between a+ and b+.
        assert_eq!(stg.net().place_count(), 4);
    }

    #[test]
    fn marking_with_counts() {
        let text = "\
.model counts
.inputs a
.outputs b
.graph
a+ b+
b+ a+
.marking { <b+,a+>=2 }
.end
";
        let stg = parse_astg(text).expect("valid");
        assert_eq!(stg.net().initial_marking().iter().sum::<u32>(), 2);
    }
}

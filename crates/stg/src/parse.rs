//! Parser and writer for the `astg` / `.g` STG interchange format used by
//! petrify-era tools (thesis Sec. 7.3.1 shows a complete example).
//!
//! Supported sections: `.model`, `.inputs`, `.outputs`, `.internal`,
//! `.graph`, `.marking { ... }`, `.end`. Graph lines read
//! `src dst1 dst2 ...`; nodes are either signal transitions (`req+`,
//! `csc0-/2`) or explicit places (any other identifier). Arcs between two
//! transitions create an implicit place, markable as `<t1,t2>` in the
//! marking section.
//!
//! Two entry points share one implementation:
//!
//! - [`parse_astg`] — strict: stops at the first fatal defect and returns
//!   it as a [`ParseAstgError`] carrying a byte [`Span`] with 1-based
//!   line/column.
//! - [`parse_astg_lenient`] — error-recovering: keeps parsing past
//!   recoverable defects (undeclared signals are assumed to be inputs,
//!   malformed lines are skipped, duplicate arcs are merged) and returns
//!   the best-effort [`Stg`] together with *every* defect found and a
//!   [`SpecSpans`] side table locating each signal, transition and place
//!   in the source — the front-end the `si-lint` static analyzer builds
//!   its diagnostics on.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use si_petri::{PlaceId, TransitionId};

use crate::signal::{Polarity, SignalKind, TransitionLabel};
use crate::stg::Stg;

/// A byte range in the source text plus the 1-based line and column of its
/// start. Columns count bytes within the line (the format is ASCII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: usize,
    /// 1-based byte column of `start` within its line.
    pub col: usize,
}

impl Span {
    /// A zero-width span at a position.
    pub fn point(offset: usize, line: usize, col: usize) -> Self {
        Self {
            start: offset,
            end: offset,
            line,
            col,
        }
    }

    /// Length in bytes (zero for point spans).
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// What category of defect a [`ParseAstgError`] reports. The lenient
/// parser recovers from every kind; the strict parser fails on every kind
/// except [`ParseErrorKind::DuplicateArc`] (which it has always merged
/// silently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Malformed syntax: place-to-place arcs, bad marking bodies, graph
    /// lines outside `.graph`, a missing `.graph` section.
    Syntax,
    /// An unrecognized `.section` directive.
    UnknownSection,
    /// `.dummy` transitions (unsupported by the thesis flow).
    DummyUnsupported,
    /// A `.graph` transition on a signal no section declares.
    UndeclaredSignal,
    /// A signal declared in more than one place.
    DuplicateSignal,
    /// The same arc written twice (merged, never fatal).
    DuplicateArc,
}

impl ParseErrorKind {
    /// Whether strict [`parse_astg`] fails on this kind.
    pub fn is_fatal(self) -> bool {
        !matches!(self, ParseErrorKind::DuplicateArc)
    }
}

/// Errors from [`parse_astg`] / defects collected by
/// [`parse_astg_lenient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAstgError {
    /// Defect category.
    pub kind: ParseErrorKind,
    /// Where in the source text.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl ParseAstgError {
    /// 1-based line number (start of the span).
    pub fn line(&self) -> usize {
        self.span.line
    }

    /// 1-based byte column (start of the span).
    pub fn col(&self) -> usize {
        self.span.col
    }
}

impl fmt::Display for ParseAstgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "astg parse error at line {}, column {}: {}",
            self.span.line, self.span.col, self.message
        )
    }
}

impl Error for ParseAstgError {}

/// Source locations of everything the parser created, indexed like the
/// [`Stg`]'s own tables: `signals[SignalId.0]`, `transitions[TransitionId.0]`,
/// `places[PlaceId.0]`. Implicit places carry the span of the arc token
/// that created them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecSpans {
    /// Declaration site of each signal (first use for undeclared-signal
    /// recoveries).
    pub signals: Vec<Span>,
    /// First occurrence of each transition in the `.graph` section.
    pub transitions: Vec<Span>,
    /// First occurrence of each place (explicit name or the arc that
    /// created the implicit place).
    pub places: Vec<Span>,
    /// The `.marking` line, if present.
    pub marking: Option<Span>,
    /// The `.model` line, if present.
    pub model: Option<Span>,
}

/// Result of [`parse_astg_lenient`]: a best-effort [`Stg`], every defect
/// found, and the source locations of the recovered structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LenientParse {
    /// The recovered STG (undeclared signals assumed `.inputs`, malformed
    /// lines skipped, duplicate arcs merged).
    pub stg: Stg,
    /// Every defect, in source order.
    pub errors: Vec<ParseAstgError>,
    /// Where each signal/transition/place lives in the source.
    pub spans: SpecSpans,
}

impl LenientParse {
    /// The first defect the strict parser would have failed on.
    pub fn first_fatal(&self) -> Option<&ParseAstgError> {
        self.errors.iter().find(|e| e.kind.is_fatal())
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeRef {
    Transition(String, Polarity, u32),
    Place(String),
}

fn parse_node(token: &str) -> NodeRef {
    let (base, occurrence) = match token.split_once('/') {
        Some((b, occ)) => match occ.parse::<u32>() {
            Ok(n) if n >= 1 => (b, n),
            _ => return NodeRef::Place(token.to_string()),
        },
        None => (token, 1),
    };
    if let Some(name) = base.strip_suffix('+') {
        if !name.is_empty() {
            return NodeRef::Transition(name.to_string(), Polarity::Plus, occurrence);
        }
    }
    if let Some(name) = base.strip_suffix('-') {
        if !name.is_empty() {
            return NodeRef::Transition(name.to_string(), Polarity::Minus, occurrence);
        }
    }
    NodeRef::Place(token.to_string())
}

#[derive(Debug, Clone, Copy)]
enum NodeKind {
    T(TransitionId),
    P(PlaceId),
}

impl NodeKind {
    /// A stable dedup key: transitions and places in disjoint ranges.
    fn key(self) -> (u8, usize) {
        match self {
            NodeKind::T(t) => (0, t.0),
            NodeKind::P(p) => (1, p.0),
        }
    }
}

/// Whitespace-separated tokens of `s` with their spans. `abs` is the byte
/// offset of `s` in the whole source, `line_off` its byte offset within
/// its line, `lineno` the 1-based line number.
fn tokens_at(s: &str, abs: usize, line_off: usize, lineno: usize) -> Vec<(&str, Span)> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in s.char_indices() {
        if c.is_whitespace() {
            if let Some(b) = start.take() {
                out.push((
                    &s[b..i],
                    Span {
                        start: abs + b,
                        end: abs + i,
                        line: lineno,
                        col: line_off + b + 1,
                    },
                ));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(b) = start {
        out.push((
            &s[b..],
            Span {
                start: abs + b,
                end: abs + s.len(),
                line: lineno,
                col: line_off + b + 1,
            },
        ));
    }
    out
}

struct Parser {
    stg: Stg,
    declared: BTreeMap<String, SignalKind>,
    transitions: BTreeMap<(String, Polarity, u32), TransitionId>,
    places: BTreeMap<String, PlaceId>,
    implicit: BTreeMap<(TransitionId, TransitionId), PlaceId>,
    arcs_seen: BTreeSet<((u8, usize), (u8, usize))>,
    errors: Vec<ParseAstgError>,
    spans: SpecSpans,
    in_graph: bool,
    saw_graph: bool,
}

impl Parser {
    fn new() -> Self {
        Self {
            stg: Stg::new("stg"),
            declared: BTreeMap::new(),
            transitions: BTreeMap::new(),
            places: BTreeMap::new(),
            implicit: BTreeMap::new(),
            arcs_seen: BTreeSet::new(),
            errors: Vec::new(),
            spans: SpecSpans::default(),
            in_graph: false,
            saw_graph: false,
        }
    }

    fn error(&mut self, kind: ParseErrorKind, span: Span, message: impl Into<String>) {
        self.errors.push(ParseAstgError {
            kind,
            span,
            message: message.into(),
        });
    }

    fn declare(&mut self, kind: SignalKind, tokens: &[(&str, Span)]) {
        for &(name, span) in tokens {
            if self.declared.contains_key(name) {
                self.error(
                    ParseErrorKind::DuplicateSignal,
                    span,
                    format!("signal `{name}` declared twice"),
                );
                continue;
            }
            self.declared.insert(name.to_string(), kind);
            self.stg.add_signal(name, kind);
            self.spans.signals.push(span);
        }
    }

    /// Resolves a transition node, auto-declaring undeclared signals as
    /// inputs (with an [`ParseErrorKind::UndeclaredSignal`] defect) so the
    /// rest of the specification can still be analyzed.
    fn resolve_transition(
        &mut self,
        name: &str,
        pol: Polarity,
        occ: u32,
        span: Span,
    ) -> TransitionId {
        if self.stg.signal_by_name(name).is_none() {
            self.error(
                ParseErrorKind::UndeclaredSignal,
                span,
                format!("undeclared signal `{name}`"),
            );
            self.declared.insert(name.to_string(), SignalKind::Input);
            self.stg.add_signal(name, SignalKind::Input);
            self.spans.signals.push(span);
        }
        let sig = self.stg.signal_by_name(name).expect("just ensured");
        if let Some(&t) = self.transitions.get(&(name.to_string(), pol, occ)) {
            return t;
        }
        let t = self.stg.add_transition(TransitionLabel::new(sig, pol, occ));
        self.transitions.insert((name.to_string(), pol, occ), t);
        self.spans.transitions.push(span);
        t
    }

    fn resolve_place(&mut self, name: &str, span: Span) -> PlaceId {
        if let Some(&p) = self.places.get(name) {
            return p;
        }
        let p = self.stg.net_mut().add_place(name, 0);
        self.places.insert(name.to_string(), p);
        self.spans.places.push(span);
        p
    }

    fn resolve_node(&mut self, token: &str, span: Span) -> NodeKind {
        match parse_node(token) {
            NodeRef::Transition(name, pol, occ) => {
                NodeKind::T(self.resolve_transition(&name, pol, occ, span))
            }
            NodeRef::Place(name) => NodeKind::P(self.resolve_place(&name, span)),
        }
    }

    /// Adds one `.graph` arc, merging duplicates (with a defect) and
    /// skipping place-to-place arcs (with a defect).
    fn add_arc(&mut self, src: NodeKind, dst: NodeKind, dst_span: Span) {
        if !self.arcs_seen.insert((src.key(), dst.key())) {
            let name = |n: NodeKind| match n {
                NodeKind::T(t) => self.stg.net().transition_name(t).to_string(),
                NodeKind::P(p) => self.stg.net().place_name(p).to_string(),
            };
            self.error(
                ParseErrorKind::DuplicateArc,
                dst_span,
                format!("duplicate arc `{} {}` is merged", name(src), name(dst)),
            );
            return;
        }
        match (src, dst) {
            (NodeKind::T(a), NodeKind::T(b)) => {
                if !self.implicit.contains_key(&(a, b)) {
                    let pname = format!(
                        "<{},{}>",
                        self.stg.net().transition_name(a),
                        self.stg.net().transition_name(b)
                    );
                    let p = self.stg.net_mut().add_place(pname, 0);
                    self.stg.net_mut().add_arc_tp(a, p);
                    self.stg.net_mut().add_arc_pt(p, b);
                    self.implicit.insert((a, b), p);
                    self.spans.places.push(dst_span);
                }
            }
            (NodeKind::T(a), NodeKind::P(p)) => self.stg.net_mut().add_arc_tp(a, p),
            (NodeKind::P(p), NodeKind::T(b)) => self.stg.net_mut().add_arc_pt(p, b),
            (NodeKind::P(_), NodeKind::P(_)) => {
                self.error(
                    ParseErrorKind::Syntax,
                    dst_span,
                    "place-to-place arcs are not allowed",
                );
            }
        }
    }

    fn marking_entry(&mut self, name: &str, count: u32, span: Span) {
        if let Some(inner) = name.strip_prefix('<').and_then(|n| n.strip_suffix('>')) {
            let Some((a, b)) = inner.split_once(',') else {
                self.error(
                    ParseErrorKind::Syntax,
                    span,
                    format!("bad implicit place `{name}`"),
                );
                return;
            };
            let mut lookup = |tok: &str| -> Option<TransitionId> {
                match parse_node(tok.trim()) {
                    NodeRef::Transition(n, pol, occ) => {
                        let t = self.transitions.get(&(n, pol, occ)).copied();
                        if t.is_none() {
                            self.error(
                                ParseErrorKind::Syntax,
                                span,
                                format!("unknown transition `{tok}` in marking"),
                            );
                        }
                        t
                    }
                    NodeRef::Place(_) => {
                        self.error(
                            ParseErrorKind::Syntax,
                            span,
                            format!("`{tok}` is not a transition"),
                        );
                        None
                    }
                }
            };
            let (Some(ta), Some(tb)) = (lookup(a), lookup(b)) else {
                return;
            };
            match self.implicit.get(&(ta, tb)).copied() {
                Some(p) => self.stg.net_mut().set_initial(p, count),
                None => self.error(
                    ParseErrorKind::Syntax,
                    span,
                    format!("no implicit place `{name}` in the graph"),
                ),
            }
        } else {
            match self.places.get(name).copied() {
                Some(p) => self.stg.net_mut().set_initial(p, count),
                None => self.error(
                    ParseErrorKind::Syntax,
                    span,
                    format!("unknown place `{name}` in marking"),
                ),
            }
        }
    }

    /// Parses the body of a `.marking` line. `rest` is everything after
    /// the directive, `abs`/`line_off` locate it in the source.
    fn marking(&mut self, rest: &str, abs: usize, line_off: usize, lineno: usize) {
        let trimmed = rest.trim();
        let lead = rest.len() - rest.trim_start().len();
        let body = trimmed.strip_prefix('{').and_then(|b| b.strip_suffix('}'));
        let Some(body) = body else {
            self.error(
                ParseErrorKind::Syntax,
                Span {
                    start: abs + lead,
                    end: abs + lead + trimmed.len(),
                    line: lineno,
                    col: line_off + lead + 1,
                },
                "marking must be wrapped in `{ ... }`",
            );
            return;
        };
        let body_abs = abs + lead + 1;
        let body_off = line_off + lead + 1;

        // Tokenize: `<a+,b->` groups (optionally `=k`) and bare names.
        let mut chars = body.char_indices().peekable();
        while let Some(&(start, c)) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
                continue;
            }
            let mut end = start;
            if c == '<' {
                for (i, ch) in chars.by_ref() {
                    end = i + ch.len_utf8();
                    if ch == '>' {
                        break;
                    }
                }
            }
            while let Some(&(i, ch)) = chars.peek() {
                if ch.is_whitespace() || ch == '<' {
                    break;
                }
                end = i + ch.len_utf8();
                chars.next();
            }
            let token = &body[start..end];
            if token.is_empty() {
                break;
            }
            let span = Span {
                start: body_abs + start,
                end: body_abs + end,
                line: lineno,
                col: body_off + start + 1,
            };
            let (name, count) = match token.split_once('=') {
                Some((n, k)) => match k.parse::<u32>() {
                    Ok(count) => (n, count),
                    Err(_) => {
                        self.error(
                            ParseErrorKind::Syntax,
                            span,
                            format!("bad token count in `{token}`"),
                        );
                        continue;
                    }
                },
                None => (token, 1),
            };
            self.marking_entry(name, count, span);
        }
    }

    fn line(&mut self, raw: &str, abs: usize, lineno: usize) -> bool {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            return true;
        }
        let lead = raw.len() - raw.trim_start().len();
        let line_span = Span {
            start: abs + lead,
            end: abs + lead + line.len(),
            line: lineno,
            col: lead + 1,
        };
        // Offset (absolute, in-line) of `rest` after a directive prefix.
        let after = |n: usize| (abs + lead + n, lead + n);

        if let Some(rest) = line.strip_prefix(".model") {
            self.stg.name = rest.trim().to_string();
            self.spans.model = Some(line_span);
            return true;
        }
        if line.starts_with(".dummy") {
            self.error(
                ParseErrorKind::DummyUnsupported,
                line_span,
                "`.dummy` transitions are not supported",
            );
            return true;
        }
        for (directive, kind) in [
            (".inputs", SignalKind::Input),
            (".outputs", SignalKind::Output),
            (".internal", SignalKind::Internal),
        ] {
            if let Some(rest) = line.strip_prefix(directive) {
                let (rest_abs, rest_off) = after(directive.len());
                let tokens = tokens_at(rest, rest_abs, rest_off, lineno);
                self.declare(kind, &tokens);
                return true;
            }
        }
        if line == ".graph" {
            self.in_graph = true;
            self.saw_graph = true;
            return true;
        }
        if let Some(rest) = line.strip_prefix(".marking") {
            self.in_graph = false;
            self.spans.marking = Some(line_span);
            let (rest_abs, rest_off) = after(".marking".len());
            self.marking(rest, rest_abs, rest_off, lineno);
            return true;
        }
        if line == ".end" {
            return false;
        }
        if line.starts_with('.') {
            self.error(
                ParseErrorKind::UnknownSection,
                line_span,
                format!("unknown section `{line}`"),
            );
            return true;
        }
        if !self.in_graph {
            self.error(
                ParseErrorKind::Syntax,
                line_span,
                format!("unexpected line outside `.graph`: `{line}`"),
            );
            return true;
        }

        // A graph line: src dst1 dst2 ...
        let tokens = tokens_at(line, abs + lead, lead, lineno);
        let Some(&(src_tok, src_span)) = tokens.first() else {
            return true;
        };
        let src = self.resolve_node(src_tok, src_span);
        for &(dst_tok, dst_span) in &tokens[1..] {
            let dst = self.resolve_node(dst_tok, dst_span);
            self.add_arc(src, dst, dst_span);
        }
        true
    }

    fn finish(mut self) -> LenientParse {
        if !self.saw_graph {
            self.errors.push(ParseAstgError {
                kind: ParseErrorKind::Syntax,
                span: Span::point(0, 1, 1),
                message: "missing `.graph` section".into(),
            });
        }
        LenientParse {
            stg: self.stg,
            errors: self.errors,
            spans: self.spans,
        }
    }
}

/// Parses an STG in the `.g` format, recovering from every defect: the
/// result carries the best-effort [`Stg`] plus all defects with spans.
/// Never panics, on any input.
pub fn parse_astg_lenient(text: &str) -> LenientParse {
    let mut parser = Parser::new();
    let mut abs = 0usize;
    for (idx, raw_incl) in text.split_inclusive('\n').enumerate() {
        let raw = raw_incl
            .strip_suffix('\n')
            .map_or(raw_incl, |r| r.strip_suffix('\r').unwrap_or(r));
        if !parser.line(raw, abs, idx + 1) {
            break;
        }
        abs += raw_incl.len();
    }
    parser.finish()
}

/// Parses an STG in the `.g` format, strictly.
///
/// # Errors
///
/// Returns the first fatal [`ParseAstgError`] — unknown signals, malformed
/// sections, place-to-place arcs, `.dummy` transitions (unsupported by the
/// thesis flow) or unknown marking entries. Duplicate arcs are merged
/// silently, as the petrify-era tools do.
pub fn parse_astg(text: &str) -> Result<Stg, ParseAstgError> {
    let parsed = parse_astg_lenient(text);
    match parsed.errors.into_iter().find(|e| e.kind.is_fatal()) {
        Some(e) => Err(e),
        None => Ok(parsed.stg),
    }
}

/// Writes an STG in the `.g` format (implicit places for 1-in/1-out
/// anonymous places, explicit names otherwise).
pub fn write_astg(stg: &Stg) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", stg.name));
    for (section, kind) in [
        (".inputs", SignalKind::Input),
        (".outputs", SignalKind::Output),
        (".internal", SignalKind::Internal),
    ] {
        let names: Vec<&str> = stg
            .signals_of_kind(kind)
            .into_iter()
            .map(|s| stg.signal_name(s))
            .collect();
        if !names.is_empty() {
            out.push_str(&format!("{section} {}\n", names.join(" ")));
        }
    }
    out.push_str(".graph\n");

    let net = stg.net();
    let implicit = |p: PlaceId| -> Option<(TransitionId, TransitionId)> {
        let pre = net.place_pre(p);
        let post = net.place_post(p);
        if pre.len() == 1 && post.len() == 1 && net.place_name(p).starts_with('<') {
            Some((pre[0], post[0]))
        } else {
            None
        }
    };

    // Group implicit arcs by source transition.
    let mut lines: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for t in net.transitions() {
        let name = net.transition_name(t).to_string();
        order.push(name.clone());
        lines.entry(name).or_default();
    }
    for p in net.places() {
        if let Some((a, b)) = implicit(p) {
            lines
                .get_mut(net.transition_name(a))
                .expect("known transition")
                .push(net.transition_name(b).to_string());
        } else {
            let pname = net.place_name(p).to_string();
            for &b in net.place_post(p) {
                lines
                    .entry(pname.clone())
                    .or_default()
                    .push(net.transition_name(b).to_string());
            }
            for &a in net.place_pre(p) {
                lines
                    .get_mut(net.transition_name(a))
                    .expect("known transition")
                    .push(pname.clone());
            }
            if !order.contains(&pname) {
                order.push(pname);
            }
        }
    }
    for name in order {
        let dsts = &lines[&name];
        if !dsts.is_empty() {
            out.push_str(&format!("{name} {}\n", dsts.join(" ")));
        }
    }

    // Marking.
    let m0 = net.initial_marking();
    let mut entries: Vec<String> = Vec::new();
    for p in net.places() {
        let k = m0[p.0];
        if k == 0 {
            continue;
        }
        let text = match implicit(p) {
            Some((a, b)) => {
                format!("<{},{}>", net.transition_name(a), net.transition_name(b))
            }
            None => net.place_name(p).to_string(),
        };
        if k == 1 {
            entries.push(text);
        } else {
            entries.push(format!("{text}={k}"));
        }
    }
    out.push_str(&format!(".marking {{ {} }}\n.end\n", entries.join(" ")));
    out
}

/// The complete `imec-ram-read-sbuf` STG printed verbatim in thesis
/// Sec. 7.3.1 — the one benchmark input the thesis reproduces in full.
pub const IMEC_RAM_READ_SBUF_G: &str = "\
.model imec-ram-read-sbuf
.inputs req precharged prnotin wenin wsldin
.outputs ack wsen prnot wen wsld
.internal csc0 map0 i0 i2 i4 i8
.graph
req+ i4+
i4+ prnot+
prnot+ prnotin+
precharged+ prnot+
prnotin+ wen+
wen+ precharged- wenin+
precharged- i0-
i0- ack+
wenin+ i0-
ack+ req-
req- i8+ wen-
i8+ csc0-
wen- wenin-
wsen- wenin-
wenin- wsld+ i4- i0+
i0+ ack-
i4- prnot-
wsld+ wsldin+ precharged+
wsldin+ csc0+
prnot- prnotin- precharged+
prnotin- i8-
i8- csc0+
wsld- wsldin-
wsldin- wsen+ map0+
ack- req+
wsen+ req+
csc0+ wsld- i2-
i2- wsen+
csc0- map0-
map0+ ack-
map0- i2+
i2+ wsen-
.marking { <i4+,prnot+> <precharged+,prnot+> }
.end
";

#[cfg(test)]
mod tests {
    use super::*;

    const HANDSHAKE: &str = "\
.model handshake
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
";

    #[test]
    fn parses_simple_handshake() {
        let stg = parse_astg(HANDSHAKE).expect("valid");
        assert_eq!(stg.name, "handshake");
        assert_eq!(stg.signal_count(), 2);
        assert_eq!(stg.net().transition_count(), 4);
        assert_eq!(stg.net().place_count(), 4);
        let m0 = stg.net().initial_marking();
        assert_eq!(m0.iter().sum::<u32>(), 1);
        assert!(stg.net().is_live(100).expect("small"));
        assert!(stg.net().is_safe(100).expect("small"));
    }

    #[test]
    fn parses_occurrence_indices() {
        let text = "\
.model multi
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b+/2
b+/2 a+
.marking { <b+/2,a+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let b = stg.signal_by_name("b").expect("declared");
        assert_eq!(stg.transitions_of(b).len(), 2);
        let t = stg
            .net()
            .transition_by_name("b+/2")
            .expect("occurrence transition exists");
        assert_eq!(stg.label(t).occurrence, 2);
    }

    #[test]
    fn parses_thesis_imec_ram_read_sbuf() {
        let stg = parse_astg(IMEC_RAM_READ_SBUF_G).expect("valid");
        assert_eq!(stg.name, "imec-ram-read-sbuf");
        assert_eq!(stg.signals_of_kind(SignalKind::Input).len(), 5);
        assert_eq!(stg.signals_of_kind(SignalKind::Output).len(), 5);
        assert_eq!(stg.signals_of_kind(SignalKind::Internal).len(), 6);
        assert!(stg.net().is_live(100_000).expect("bounded"));
        assert!(stg.net().is_safe(100_000).expect("bounded"));
        // Thesis Table 7.2: 112 reachable markings.
        let reach = stg.net().reachability(100_000).expect("bounded");
        assert_eq!(reach.markings.len(), 112);
    }

    #[test]
    fn rejects_undeclared_signal() {
        let text = ".model x\n.inputs a\n.graph\na+ zz+\n.marking { }\n.end\n";
        let e = parse_astg(text).unwrap_err();
        assert!(e.message.contains("undeclared"));
        assert_eq!(e.kind, ParseErrorKind::UndeclaredSignal);
        assert_eq!(e.span.line, 4);
        assert_eq!(e.span.col, 4);
    }

    #[test]
    fn rejects_dummy_section() {
        let text = ".model x\n.dummy d\n.graph\n.end\n";
        assert!(parse_astg(text).is_err());
    }

    #[test]
    fn explicit_places_work() {
        let text = "\
.model choice
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ c+
b+ c+
c+ p1
p1 a-
a- c-
c- p0
.marking { p0 }
.end
";
        let stg = parse_astg(text).expect("valid");
        assert!(stg.net().place_by_name("p0").is_some());
        let p0 = stg.net().place_by_name("p0").expect("exists");
        assert!(stg.net().is_choice_place(p0));
        assert!(stg.net().is_free_choice());
    }

    #[test]
    fn round_trips_through_writer() {
        let stg = parse_astg(IMEC_RAM_READ_SBUF_G).expect("valid");
        let text = write_astg(&stg);
        let stg2 = parse_astg(&text).expect("round trip");
        assert_eq!(stg2.signal_count(), stg.signal_count());
        assert_eq!(stg2.net().transition_count(), stg.net().transition_count());
        let r1 = stg.net().reachability(100_000).expect("bounded");
        let r2 = stg2.net().reachability(100_000).expect("bounded");
        assert_eq!(r1.markings.len(), r2.markings.len());
    }

    #[test]
    fn rejects_place_to_place_arcs() {
        let text = ".model x\n.inputs a\n.graph\np0 p1\n.end\n";
        let e = parse_astg(text).unwrap_err();
        assert!(e.message.contains("place-to-place"));
    }

    #[test]
    fn rejects_unknown_marking_entries() {
        let text = "\
.model x
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <zz+,a+> }
.end
";
        assert!(parse_astg(text).is_err());
    }

    #[test]
    fn rejects_double_declaration() {
        let text = ".model x\n.inputs a\n.outputs a\n.graph\na+ a-\n.end\n";
        let e = parse_astg(text).unwrap_err();
        assert!(e.message.contains("twice"));
        assert_eq!(e.span.line, 3);
        assert_eq!(e.span.col, 10);
    }

    #[test]
    fn missing_graph_section_is_an_error() {
        assert!(parse_astg(".model x\n.inputs a\n.end\n").is_err());
    }

    #[test]
    fn duplicate_arcs_are_merged() {
        let text = "\
.model dup
.inputs a
.outputs b
.graph
a+ b+
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        // Only one implicit place between a+ and b+.
        assert_eq!(stg.net().place_count(), 4);
        // The lenient parser reports the merge as a non-fatal defect.
        let parsed = parse_astg_lenient(text);
        assert_eq!(parsed.errors.len(), 1);
        assert_eq!(parsed.errors[0].kind, ParseErrorKind::DuplicateArc);
        assert!(parsed.first_fatal().is_none());
    }

    #[test]
    fn marking_with_counts() {
        let text = "\
.model counts
.inputs a
.outputs b
.graph
a+ b+
b+ a+
.marking { <b+,a+>=2 }
.end
";
        let stg = parse_astg(text).expect("valid");
        assert_eq!(stg.net().initial_marking().iter().sum::<u32>(), 2);
    }

    #[test]
    fn lenient_parse_recovers_and_reports_every_defect() {
        // Five distinct defects in one file; the strict parser would stop
        // at the first, the lenient one reports all and still recovers a
        // usable net from the well-formed remainder.
        let text = "\
.model broken
.inputs a a
.frequency 50
.dummy d0
.graph
a+ b+
b+ a-
a- b-
b- a+
p0 p1
.marking { <b-,a+> qq }
.end
";
        let parsed = parse_astg_lenient(text);
        let kinds: Vec<ParseErrorKind> = parsed.errors.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ParseErrorKind::DuplicateSignal,
                ParseErrorKind::UnknownSection,
                ParseErrorKind::DummyUnsupported,
                ParseErrorKind::UndeclaredSignal,
                ParseErrorKind::Syntax, // place-to-place
                ParseErrorKind::Syntax, // unknown marking place
            ]
        );
        // Recovery: `b` was assumed to be an input, the ring is intact and
        // the marked implicit place got its token.
        let stg = &parsed.stg;
        assert_eq!(stg.signal_count(), 2);
        assert_eq!(stg.net().transition_count(), 4);
        assert_eq!(stg.net().initial_marking().iter().sum::<u32>(), 1);
        // Strict mode reports the first fatal defect.
        assert_eq!(
            parse_astg(text).unwrap_err().kind,
            ParseErrorKind::DuplicateSignal
        );
    }

    #[test]
    fn lenient_parse_records_spans_for_every_entity() {
        let parsed = parse_astg_lenient(HANDSHAKE);
        assert!(parsed.errors.is_empty());
        let spans = &parsed.spans;
        assert_eq!(spans.signals.len(), parsed.stg.signal_count());
        assert_eq!(spans.transitions.len(), parsed.stg.net().transition_count());
        assert_eq!(spans.places.len(), parsed.stg.net().place_count());
        // `.inputs req` is line 2; the name starts at column 9.
        assert_eq!(spans.signals[0].line, 2);
        assert_eq!(spans.signals[0].col, 9);
        // `req+` first occurs on line 5, column 1.
        assert_eq!(spans.transitions[0].line, 5);
        assert_eq!(spans.transitions[0].col, 1);
        assert_eq!(spans.marking.expect("present").line, 9);
        // Spans point back into the source text.
        let s = spans.signals[0];
        assert_eq!(&HANDSHAKE[s.start..s.end], "req");
    }

    #[test]
    fn lenient_parse_never_panics_on_garbage() {
        for text in [
            "",
            "\n\n\n",
            ".end",
            ".graph",
            ".marking { <a+ }",
            ".marking x",
            "a+ b+",
            ".inputs\n.graph\n+ -\n/ //\n.marking { = <,> x=y }\n.end",
            ".model \u{fe0f}\n.graph\n\u{fe0f}+ \u{fe0f}-\n.end",
        ] {
            let _ = parse_astg_lenient(text);
            let _ = parse_astg(text);
        }
    }
}

//! Parser and writer for the `astg` / `.g` STG interchange format used by
//! petrify-era tools (thesis Sec. 7.3.1 shows a complete example).
//!
//! Supported sections: `.model`, `.inputs`, `.outputs`, `.internal`,
//! `.graph`, `.marking { ... }`, `.end`. Graph lines read
//! `src dst1 dst2 ...`; nodes are either signal transitions (`req+`,
//! `csc0-/2`) or explicit places (any other identifier). Arcs between two
//! transitions create an implicit place, markable as `<t1,t2>` in the
//! marking section.
//!
//! Two entry points share one implementation — both are thin facades
//! over the layered streaming front-end (the incremental
//! [`Lexer`](crate::lexer::Lexer), the [`ParseEvent`](crate::events::ParseEvent)
//! stream, and the [`TreeBuilder`](crate::tree::TreeBuilder) fold):
//!
//! - [`parse_astg`] — strict: stops at the first fatal defect and returns
//!   it as a [`ParseAstgError`] carrying a byte [`Span`] with 1-based
//!   line/column.
//! - [`parse_astg_lenient`] — error-recovering: keeps parsing past
//!   recoverable defects (undeclared signals are assumed to be inputs,
//!   malformed lines are skipped, duplicate arcs are merged) and returns
//!   the best-effort [`Stg`] together with *every* defect found and a
//!   [`SpecSpans`] side table locating each signal, transition and place
//!   in the source — the front-end the `si-lint` static analyzer builds
//!   its diagnostics on.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use si_petri::{PlaceId, TransitionId};

use crate::signal::SignalKind;
use crate::stg::Stg;

/// A byte range in the source text plus the 1-based line and column of its
/// start. Byte offsets index the CRLF-normalized source (see
/// [`normalize_source`](crate::lexer::normalize_source)); columns count
/// **characters** within the line, so diagnostics align on non-ASCII
/// specifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: usize,
    /// 1-based character column of `start` within its line.
    pub col: usize,
}

impl Span {
    /// A zero-width span at a position.
    pub fn point(offset: usize, line: usize, col: usize) -> Self {
        Self {
            start: offset,
            end: offset,
            line,
            col,
        }
    }

    /// Length in bytes (zero for point spans).
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// What category of defect a [`ParseAstgError`] reports. The lenient
/// parser recovers from every kind; the strict parser fails on every kind
/// except [`ParseErrorKind::DuplicateArc`] (which it has always merged
/// silently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Malformed syntax: place-to-place arcs, bad marking bodies, graph
    /// lines outside `.graph`, a missing `.graph` section.
    Syntax,
    /// An unrecognized `.section` directive.
    UnknownSection,
    /// `.dummy` transitions (unsupported by the thesis flow).
    DummyUnsupported,
    /// A `.graph` transition on a signal no section declares.
    UndeclaredSignal,
    /// A signal declared in more than one place.
    DuplicateSignal,
    /// The same arc written twice (merged, never fatal).
    DuplicateArc,
}

impl ParseErrorKind {
    /// Whether strict [`parse_astg`] fails on this kind.
    pub fn is_fatal(self) -> bool {
        !matches!(self, ParseErrorKind::DuplicateArc)
    }
}

/// Errors from [`parse_astg`] / defects collected by
/// [`parse_astg_lenient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAstgError {
    /// Defect category.
    pub kind: ParseErrorKind,
    /// Where in the source text.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl ParseAstgError {
    /// 1-based line number (start of the span).
    pub fn line(&self) -> usize {
        self.span.line
    }

    /// 1-based character column (start of the span).
    pub fn col(&self) -> usize {
        self.span.col
    }
}

impl fmt::Display for ParseAstgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "astg parse error at line {}, column {}: {}",
            self.span.line, self.span.col, self.message
        )
    }
}

impl Error for ParseAstgError {}

/// Source locations of everything the parser created, indexed like the
/// [`Stg`]'s own tables: `signals[SignalId.0]`, `transitions[TransitionId.0]`,
/// `places[PlaceId.0]`. Implicit places carry the span of the arc token
/// that created them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecSpans {
    /// Declaration site of each signal (first use for undeclared-signal
    /// recoveries).
    pub signals: Vec<Span>,
    /// First occurrence of each transition in the `.graph` section.
    pub transitions: Vec<Span>,
    /// First occurrence of each place (explicit name or the arc that
    /// created the implicit place).
    pub places: Vec<Span>,
    /// The `.marking` line, if present.
    pub marking: Option<Span>,
    /// The `.model` line, if present.
    pub model: Option<Span>,
}

/// Result of [`parse_astg_lenient`]: a best-effort [`Stg`], every defect
/// found, and the source locations of the recovered structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LenientParse {
    /// The recovered STG (undeclared signals assumed `.inputs`, malformed
    /// lines skipped, duplicate arcs merged).
    pub stg: Stg,
    /// Every defect, in source order.
    pub errors: Vec<ParseAstgError>,
    /// Where each signal/transition/place lives in the source.
    pub spans: SpecSpans,
}

impl LenientParse {
    /// The first defect the strict parser would have failed on.
    pub fn first_fatal(&self) -> Option<&ParseAstgError> {
        self.errors.iter().find(|e| e.kind.is_fatal())
    }
}

/// Parses an STG in the `.g` format, recovering from every defect: the
/// result carries the best-effort [`Stg`] plus all defects with spans.
/// Never panics, on any input.
///
/// This is a thin facade over the layered streaming front-end —
/// [`parse_events`](crate::events::parse_events) to produce the event
/// stream, [`tree_of_events`](crate::tree::tree_of_events) to fold it —
/// and produces bit-identical output (same [`Stg`], same [`SpecSpans`],
/// same defect order) to the historical single-pass parser.
pub fn parse_astg_lenient(text: &str) -> LenientParse {
    crate::tree::tree_of_events(&crate::events::parse_events(text))
}

/// Parses an STG in the `.g` format, strictly.
///
/// # Errors
///
/// Returns the first fatal [`ParseAstgError`] — unknown signals, malformed
/// sections, place-to-place arcs, `.dummy` transitions (unsupported by the
/// thesis flow) or unknown marking entries. Duplicate arcs are merged
/// silently, as the petrify-era tools do.
pub fn parse_astg(text: &str) -> Result<Stg, ParseAstgError> {
    let parsed = parse_astg_lenient(text);
    match parsed.errors.into_iter().find(|e| e.kind.is_fatal()) {
        Some(e) => Err(e),
        None => Ok(parsed.stg),
    }
}

/// Writes an STG in the `.g` format (implicit places for 1-in/1-out
/// anonymous places, explicit names otherwise).
///
/// The output is **canonical**: graph lines, the destinations within
/// each line, and marking entries are sorted by name, so the text
/// depends only on the net's structure — never on transition or place
/// numbering. `write_astg ∘ parse_astg` is therefore idempotent: writing
/// a just-parsed writer output reproduces it byte for byte.
pub fn write_astg(stg: &Stg) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", stg.name));
    for (section, kind) in [
        (".inputs", SignalKind::Input),
        (".outputs", SignalKind::Output),
        (".internal", SignalKind::Internal),
    ] {
        let names: Vec<&str> = stg
            .signals_of_kind(kind)
            .into_iter()
            .map(|s| stg.signal_name(s))
            .collect();
        if !names.is_empty() {
            out.push_str(&format!("{section} {}\n", names.join(" ")));
        }
    }
    out.push_str(".graph\n");

    let net = stg.net();
    let implicit = |p: PlaceId| -> Option<(TransitionId, TransitionId)> {
        let pre = net.place_pre(p);
        let post = net.place_post(p);
        if pre.len() == 1 && post.len() == 1 && net.place_name(p).starts_with('<') {
            Some((pre[0], post[0]))
        } else {
            None
        }
    };

    // Group implicit arcs by source transition.
    let mut lines: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for t in net.transitions() {
        let name = net.transition_name(t).to_string();
        order.push(name.clone());
        lines.entry(name).or_default();
    }
    for p in net.places() {
        if let Some((a, b)) = implicit(p) {
            lines
                .get_mut(net.transition_name(a))
                .expect("known transition")
                .push(net.transition_name(b).to_string());
        } else {
            let pname = net.place_name(p).to_string();
            for &b in net.place_post(p) {
                lines
                    .entry(pname.clone())
                    .or_default()
                    .push(net.transition_name(b).to_string());
            }
            for &a in net.place_pre(p) {
                lines
                    .get_mut(net.transition_name(a))
                    .expect("known transition")
                    .push(pname.clone());
            }
            if !order.contains(&pname) {
                order.push(pname);
            }
        }
    }
    order.sort();
    for name in order {
        let mut dsts = lines[&name].clone();
        dsts.sort();
        if !dsts.is_empty() {
            out.push_str(&format!("{name} {}\n", dsts.join(" ")));
        }
    }

    // Marking.
    let m0 = net.initial_marking();
    let mut entries: Vec<String> = Vec::new();
    for p in net.places() {
        let k = m0[p.0];
        if k == 0 {
            continue;
        }
        let text = match implicit(p) {
            Some((a, b)) => {
                format!("<{},{}>", net.transition_name(a), net.transition_name(b))
            }
            None => net.place_name(p).to_string(),
        };
        if k == 1 {
            entries.push(text);
        } else {
            entries.push(format!("{text}={k}"));
        }
    }
    entries.sort();
    out.push_str(&format!(".marking {{ {} }}\n.end\n", entries.join(" ")));
    out
}

/// The complete `imec-ram-read-sbuf` STG printed verbatim in thesis
/// Sec. 7.3.1 — the one benchmark input the thesis reproduces in full.
pub const IMEC_RAM_READ_SBUF_G: &str = "\
.model imec-ram-read-sbuf
.inputs req precharged prnotin wenin wsldin
.outputs ack wsen prnot wen wsld
.internal csc0 map0 i0 i2 i4 i8
.graph
req+ i4+
i4+ prnot+
prnot+ prnotin+
precharged+ prnot+
prnotin+ wen+
wen+ precharged- wenin+
precharged- i0-
i0- ack+
wenin+ i0-
ack+ req-
req- i8+ wen-
i8+ csc0-
wen- wenin-
wsen- wenin-
wenin- wsld+ i4- i0+
i0+ ack-
i4- prnot-
wsld+ wsldin+ precharged+
wsldin+ csc0+
prnot- prnotin- precharged+
prnotin- i8-
i8- csc0+
wsld- wsldin-
wsldin- wsen+ map0+
ack- req+
wsen+ req+
csc0+ wsld- i2-
i2- wsen+
csc0- map0-
map0+ ack-
map0- i2+
i2+ wsen-
.marking { <i4+,prnot+> <precharged+,prnot+> }
.end
";

#[cfg(test)]
mod tests {
    use super::*;

    const HANDSHAKE: &str = "\
.model handshake
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
";

    #[test]
    fn parses_simple_handshake() {
        let stg = parse_astg(HANDSHAKE).expect("valid");
        assert_eq!(stg.name, "handshake");
        assert_eq!(stg.signal_count(), 2);
        assert_eq!(stg.net().transition_count(), 4);
        assert_eq!(stg.net().place_count(), 4);
        let m0 = stg.net().initial_marking();
        assert_eq!(m0.iter().sum::<u32>(), 1);
        assert!(stg.net().is_live(100).expect("small"));
        assert!(stg.net().is_safe(100).expect("small"));
    }

    #[test]
    fn parses_occurrence_indices() {
        let text = "\
.model multi
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b+/2
b+/2 a+
.marking { <b+/2,a+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let b = stg.signal_by_name("b").expect("declared");
        assert_eq!(stg.transitions_of(b).len(), 2);
        let t = stg
            .net()
            .transition_by_name("b+/2")
            .expect("occurrence transition exists");
        assert_eq!(stg.label(t).occurrence, 2);
    }

    #[test]
    fn parses_thesis_imec_ram_read_sbuf() {
        let stg = parse_astg(IMEC_RAM_READ_SBUF_G).expect("valid");
        assert_eq!(stg.name, "imec-ram-read-sbuf");
        assert_eq!(stg.signals_of_kind(SignalKind::Input).len(), 5);
        assert_eq!(stg.signals_of_kind(SignalKind::Output).len(), 5);
        assert_eq!(stg.signals_of_kind(SignalKind::Internal).len(), 6);
        assert!(stg.net().is_live(100_000).expect("bounded"));
        assert!(stg.net().is_safe(100_000).expect("bounded"));
        // Thesis Table 7.2: 112 reachable markings.
        let reach = stg.net().reachability(100_000).expect("bounded");
        assert_eq!(reach.markings.len(), 112);
    }

    #[test]
    fn rejects_undeclared_signal() {
        let text = ".model x\n.inputs a\n.graph\na+ zz+\n.marking { }\n.end\n";
        let e = parse_astg(text).unwrap_err();
        assert!(e.message.contains("undeclared"));
        assert_eq!(e.kind, ParseErrorKind::UndeclaredSignal);
        assert_eq!(e.span.line, 4);
        assert_eq!(e.span.col, 4);
    }

    #[test]
    fn rejects_dummy_section() {
        let text = ".model x\n.dummy d\n.graph\n.end\n";
        assert!(parse_astg(text).is_err());
    }

    #[test]
    fn explicit_places_work() {
        let text = "\
.model choice
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ c+
b+ c+
c+ p1
p1 a-
a- c-
c- p0
.marking { p0 }
.end
";
        let stg = parse_astg(text).expect("valid");
        assert!(stg.net().place_by_name("p0").is_some());
        let p0 = stg.net().place_by_name("p0").expect("exists");
        assert!(stg.net().is_choice_place(p0));
        assert!(stg.net().is_free_choice());
    }

    #[test]
    fn round_trips_through_writer() {
        let stg = parse_astg(IMEC_RAM_READ_SBUF_G).expect("valid");
        let text = write_astg(&stg);
        let stg2 = parse_astg(&text).expect("round trip");
        assert_eq!(stg2.signal_count(), stg.signal_count());
        assert_eq!(stg2.net().transition_count(), stg.net().transition_count());
        let r1 = stg.net().reachability(100_000).expect("bounded");
        let r2 = stg2.net().reachability(100_000).expect("bounded");
        assert_eq!(r1.markings.len(), r2.markings.len());
    }

    #[test]
    fn rejects_place_to_place_arcs() {
        let text = ".model x\n.inputs a\n.graph\np0 p1\n.end\n";
        let e = parse_astg(text).unwrap_err();
        assert!(e.message.contains("place-to-place"));
    }

    #[test]
    fn rejects_unknown_marking_entries() {
        let text = "\
.model x
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <zz+,a+> }
.end
";
        assert!(parse_astg(text).is_err());
    }

    #[test]
    fn rejects_double_declaration() {
        let text = ".model x\n.inputs a\n.outputs a\n.graph\na+ a-\n.end\n";
        let e = parse_astg(text).unwrap_err();
        assert!(e.message.contains("twice"));
        assert_eq!(e.span.line, 3);
        assert_eq!(e.span.col, 10);
    }

    #[test]
    fn missing_graph_section_is_an_error() {
        assert!(parse_astg(".model x\n.inputs a\n.end\n").is_err());
    }

    #[test]
    fn duplicate_arcs_are_merged() {
        let text = "\
.model dup
.inputs a
.outputs b
.graph
a+ b+
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        // Only one implicit place between a+ and b+.
        assert_eq!(stg.net().place_count(), 4);
        // The lenient parser reports the merge as a non-fatal defect.
        let parsed = parse_astg_lenient(text);
        assert_eq!(parsed.errors.len(), 1);
        assert_eq!(parsed.errors[0].kind, ParseErrorKind::DuplicateArc);
        assert!(parsed.first_fatal().is_none());
    }

    #[test]
    fn marking_with_counts() {
        let text = "\
.model counts
.inputs a
.outputs b
.graph
a+ b+
b+ a+
.marking { <b+,a+>=2 }
.end
";
        let stg = parse_astg(text).expect("valid");
        assert_eq!(stg.net().initial_marking().iter().sum::<u32>(), 2);
    }

    #[test]
    fn lenient_parse_recovers_and_reports_every_defect() {
        // Five distinct defects in one file; the strict parser would stop
        // at the first, the lenient one reports all and still recovers a
        // usable net from the well-formed remainder.
        let text = "\
.model broken
.inputs a a
.frequency 50
.dummy d0
.graph
a+ b+
b+ a-
a- b-
b- a+
p0 p1
.marking { <b-,a+> qq }
.end
";
        let parsed = parse_astg_lenient(text);
        let kinds: Vec<ParseErrorKind> = parsed.errors.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ParseErrorKind::DuplicateSignal,
                ParseErrorKind::UnknownSection,
                ParseErrorKind::DummyUnsupported,
                ParseErrorKind::UndeclaredSignal,
                ParseErrorKind::Syntax, // place-to-place
                ParseErrorKind::Syntax, // unknown marking place
            ]
        );
        // Recovery: `b` was assumed to be an input, the ring is intact and
        // the marked implicit place got its token.
        let stg = &parsed.stg;
        assert_eq!(stg.signal_count(), 2);
        assert_eq!(stg.net().transition_count(), 4);
        assert_eq!(stg.net().initial_marking().iter().sum::<u32>(), 1);
        // Strict mode reports the first fatal defect.
        assert_eq!(
            parse_astg(text).unwrap_err().kind,
            ParseErrorKind::DuplicateSignal
        );
    }

    #[test]
    fn lenient_parse_records_spans_for_every_entity() {
        let parsed = parse_astg_lenient(HANDSHAKE);
        assert!(parsed.errors.is_empty());
        let spans = &parsed.spans;
        assert_eq!(spans.signals.len(), parsed.stg.signal_count());
        assert_eq!(spans.transitions.len(), parsed.stg.net().transition_count());
        assert_eq!(spans.places.len(), parsed.stg.net().place_count());
        // `.inputs req` is line 2; the name starts at column 9.
        assert_eq!(spans.signals[0].line, 2);
        assert_eq!(spans.signals[0].col, 9);
        // `req+` first occurs on line 5, column 1.
        assert_eq!(spans.transitions[0].line, 5);
        assert_eq!(spans.transitions[0].col, 1);
        assert_eq!(spans.marking.expect("present").line, 9);
        // Spans point back into the source text.
        let s = spans.signals[0];
        assert_eq!(&HANDSHAKE[s.start..s.end], "req");
    }

    #[test]
    fn lenient_parse_never_panics_on_garbage() {
        for text in [
            "",
            "\n\n\n",
            ".end",
            ".graph",
            ".marking { <a+ }",
            ".marking x",
            "a+ b+",
            ".inputs\n.graph\n+ -\n/ //\n.marking { = <,> x=y }\n.end",
            ".model \u{fe0f}\n.graph\n\u{fe0f}+ \u{fe0f}-\n.end",
        ] {
            let _ = parse_astg_lenient(text);
            let _ = parse_astg(text);
        }
    }

    #[test]
    fn crlf_input_parses_identically_to_lf() {
        let crlf = HANDSHAKE.replace('\n', "\r\n");
        // Spans included: the lexer normalizes CRLF to LF before any
        // offset is computed.
        assert_eq!(parse_astg_lenient(&crlf), parse_astg_lenient(HANDSHAKE));
    }

    #[test]
    fn missing_trailing_newline_parses_identically() {
        let trimmed = HANDSHAKE.trim_end_matches('\n');
        assert_eq!(parse_astg_lenient(trimmed), parse_astg_lenient(HANDSHAKE));
    }

    #[test]
    fn columns_count_characters_on_non_ascii_lines() {
        // `möde+ ` is six characters but seven bytes: `äck+` must be
        // reported at character column 7, not byte column 8.
        let text = ".model x\n.inputs möde\n.graph\nmöde+ äck+\n.end\n";
        let e = parse_astg(text).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UndeclaredSignal);
        assert_eq!(e.span.line, 4);
        assert_eq!(e.span.col, 7);
        // Byte offsets still index the source text.
        assert_eq!(&text[e.span.start..e.span.end], "äck+");
    }

    #[test]
    fn writer_output_is_a_fixed_point_of_parse_then_write() {
        // The canonical (name-sorted) writer depends only on the net's
        // structure, so re-parsing and re-writing its own output is the
        // identity — even though the re-parse renumbers transitions.
        let first = write_astg(&parse_astg(IMEC_RAM_READ_SBUF_G).expect("valid"));
        let second = write_astg(&parse_astg(&first).expect("round trip"));
        assert_eq!(first, second);
    }
}

//! Projection of a marked-graph STG onto a subset of signals — Algorithm 1
//! of the thesis (Sec. 5.2.2).
//!
//! Hiding a transition `t` replaces it with arcs from every predecessor to
//! every successor, summing tokens along the collapsed path; redundant arcs
//! are eliminated after each hiding step.

use std::collections::BTreeSet;

use crate::mg::MgStg;
use crate::signal::SignalId;
use crate::stg::StgError;

impl MgStg {
    /// Projects the marked graph onto `keep` (Algorithm 1): hides every
    /// transition whose signal is not in the set, preserving the firing
    /// order of the kept transitions.
    ///
    /// # Errors
    ///
    /// [`StgError::MalformedMarkedGraph`] if hiding exposes a token-free
    /// self-loop (the input was not live).
    pub fn project(&self, keep: &BTreeSet<SignalId>) -> Result<MgStg, StgError> {
        let mut g = self.clone();
        for t in g.transitions() {
            if keep.contains(&g.label(t).signal) {
                continue;
            }
            let preds = g.preds(t);
            let succs = g.succs(t);
            for &a in &preds {
                let in_tokens = g.arc(a, t).expect("pred arc").tokens;
                for &b in &succs {
                    let out_tokens = g.arc(t, b).expect("succ arc").tokens;
                    let tokens = in_tokens + out_tokens;
                    if a == b {
                        // The collapsed path closes a cycle a → t → a. In a
                        // live MG it must carry a token, making the
                        // self-loop a redundant loop-only place: drop it.
                        if tokens == 0 {
                            return Err(StgError::MalformedMarkedGraph {
                                reason: format!(
                                    "hiding `{}` exposes a token-free self-loop",
                                    self.label_string(t)
                                ),
                            });
                        }
                        continue;
                    }
                    g.insert_arc(a, b, tokens, false);
                }
            }
            g.remove_transition(t);
            g.eliminate_redundant_arcs();
        }
        Ok(g)
    }

    /// Projects onto the operator signals of a gate: the gate's output plus
    /// its fan-in signals (`X = o ∪ fan-in(o)` of thesis Sec. 5.2.2).
    ///
    /// # Errors
    ///
    /// Same as [`MgStg::project`].
    pub fn project_on_gate(&self, output: SignalId, fanin: &[SignalId]) -> Result<MgStg, StgError> {
        let mut keep: BTreeSet<SignalId> = fanin.iter().copied().collect();
        keep.insert(output);
        self.project(&keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_astg;
    use crate::sg::StateGraph;
    use crate::signal::Polarity;

    fn chain() -> MgStg {
        // a+ → x+ → b+ → a- → x- → b- → (token) a+
        let text = "\
.model chain
.inputs a
.outputs x b
.graph
a+ x+
x+ b+
b+ a-
a- x-
x- b-
b- a+
.marking { <b-,a+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        MgStg::from_stg_mg(&stg).expect("marked graph")
    }

    #[test]
    fn hiding_middle_signal_collapses_path() {
        let mg = chain();
        let a = mg.signal_by_name("a").expect("declared");
        let b = mg.signal_by_name("b").expect("declared");
        let keep: BTreeSet<SignalId> = [a, b].into_iter().collect();
        let proj = mg.project(&keep).expect("live");
        assert_eq!(proj.transitions().len(), 4);
        let ap = proj.transition_by_label("a+").expect("kept");
        let bp = proj.transition_by_label("b+").expect("kept");
        assert!(proj.arc(ap, bp).is_some(), "a+ ⇒ b+ after hiding x+");
        assert!(proj.is_live());
        assert!(proj.is_safe());
    }

    #[test]
    fn projection_preserves_firing_order_language() {
        // The order of kept transitions in the projected MG's SG must match
        // the order observed in the original SG restricted to kept signals.
        let mg = chain();
        let a = mg.signal_by_name("a").expect("declared");
        let b = mg.signal_by_name("b").expect("declared");
        let keep: BTreeSet<SignalId> = [a, b].into_iter().collect();
        let proj = mg.project(&keep).expect("live");

        let trace = |g: &MgStg, n: usize| -> Vec<String> {
            // Deterministic firing sequence, recording the first `n` kept
            // transitions.
            let mut m = g.initial_marking();
            let mut out = Vec::new();
            while out.len() < n {
                let t = g
                    .transitions()
                    .into_iter()
                    .find(|&t| g.enabled_in(t, &m))
                    .expect("live");
                if keep.contains(&g.label(t).signal) {
                    out.push(g.label_string(t));
                }
                m = g.fire_in(t, &m);
            }
            out
        };
        // The chain has a single firing sequence, so the kept subsequence
        // must match exactly between original and projection.
        assert_eq!(trace(&mg, 8), trace(&proj, 8));
    }

    #[test]
    fn thesis_fig_5_3_shape() {
        // Fig. 5.3: hiding t* between two layers produces the complete
        // bipartite connection of its predecessors and successors.
        let text = "\
.model fig53
.inputs p q t r s
.graph
p+ t+
q+ t+
t+ r+
t+ s+
r+ p+
s+ q+
.marking { <r+,p+> <s+,q+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let mg = MgStg::from_stg_mg(&stg).expect("marked graph");
        let keep: BTreeSet<SignalId> = ["p", "q", "r", "s"]
            .iter()
            .map(|n| mg.signal_by_name(n).expect("declared"))
            .collect();
        let proj = mg.project(&keep).expect("live");
        let id = |l: &str| proj.transition_by_label(l).expect("kept");
        for src in ["p+", "q+"] {
            for dst in ["r+", "s+"] {
                assert!(
                    proj.arc(id(src), id(dst)).is_some(),
                    "{src} ⇒ {dst} missing after hiding t+"
                );
            }
        }
    }

    #[test]
    fn projection_of_imec_onto_gate_i0() {
        // Gate i0 = precharged + wenin' (fan-in {precharged, wenin}).
        let stg = parse_astg(crate::parse::IMEC_RAM_READ_SBUF_G).expect("valid");
        let mg = MgStg::from_stg_mg(&stg).expect("MG: the STG has no choice places");
        let i0 = mg.signal_by_name("i0").expect("declared");
        let pre = mg.signal_by_name("precharged").expect("declared");
        let wenin = mg.signal_by_name("wenin").expect("declared");
        let local = mg.project_on_gate(i0, &[pre, wenin]).expect("live");
        assert!(local.is_live());
        assert!(local.is_safe());
        // Only transitions on {i0, precharged, wenin} remain.
        for t in local.transitions() {
            let s = local.label(t).signal;
            assert!([i0, pre, wenin].contains(&s));
        }
        let sg = StateGraph::of_mg(&local, 10_000).expect("consistent");
        assert!(sg.state_count() >= 4);
    }

    #[test]
    fn projecting_away_everything_but_one_signal() {
        let mg = chain();
        let a = mg.signal_by_name("a").expect("declared");
        let keep: BTreeSet<SignalId> = [a].into_iter().collect();
        let proj = mg.project(&keep).expect("live");
        assert_eq!(proj.transitions().len(), 2);
        assert!(proj.is_live());
        let sg = StateGraph::of_mg(&proj, 100).expect("consistent");
        assert_eq!(sg.state_count(), 2);
        let _ = Polarity::Plus;
    }

    #[test]
    fn tokens_accumulate_across_hidden_transitions() {
        // a+ →(1 token) x+ →(1 token) b+ → a+: hiding x+ must give the arc
        // a+ ⇒ b+ two tokens.
        let text = "\
.model toks
.inputs a x b
.graph
a+ x+
x+ b+
b+ a+
.marking { <a+,x+> <x+,b+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let mg = MgStg::from_stg_mg(&stg).expect("marked graph");
        let a = mg.signal_by_name("a").expect("declared");
        let b = mg.signal_by_name("b").expect("declared");
        let keep: BTreeSet<SignalId> = [a, b].into_iter().collect();
        let proj = mg.project(&keep).expect("live");
        let ap = proj.transition_by_label("a+").expect("kept");
        let bp = proj.transition_by_label("b+").expect("kept");
        assert_eq!(proj.arc(ap, bp).expect("arc").tokens, 2);
    }
}

//! Lossless S-expression interchange for front-end artifacts, in the
//! styx compliance-grammar style: every node is
//! `(kind [start, end, line, col] payload...)`, strings are
//! JSON-escaped, and each document opens with a versioned header comment
//! (`; si-sexp 1 <document-kind>`). The format is language-neutral and
//! diff-friendly, so external implementations can consume — and test
//! against — our parse trees, state graphs and constraint reports
//! without linking any Rust. The grammar is documented in
//! `docs/interchange.md`.
//!
//! Three writers and one reader:
//!
//! - [`write_events`] dumps a [`ParseEvent`] stream (a parse tree);
//!   [`read_events`] reads such a dump back into the *identical* event
//!   stream, so `parse → events → sexp → read → tree` reproduces
//!   [`parse_astg_lenient`](crate::parse::parse_astg_lenient) bit for
//!   bit — the round-trip contract the compliance corpus and the fuzz
//!   oracle pin.
//! - [`write_state_graph`] dumps a [`StateGraph`] with its binary codes
//!   and labelled edges.
//! - [`SexpWriter`] is the shared low-level emitter; downstream crates
//!   (`si-lint` diagnostics, `si-core` constraint reports) build their
//!   own documents on it.

use std::error::Error;
use std::fmt;

use crate::events::{ParseEvent, ParseNodeKind};
use crate::lexer::{Token, TokenKind};
use crate::parse::{ParseAstgError, ParseErrorKind, Span};
use crate::sg::StateGraph;

/// The interchange format version, bumped on any grammar change. Written
/// into every document header; [`read_events`] rejects mismatches.
pub const SEXP_VERSION: u32 = 1;

/// Escapes a string for a double-quoted sexp payload (JSON rules:
/// `\" \\ \n \r \t`, other control characters as `\u00XX`).
#[must_use]
pub fn escape(s: &str) -> String {
    use fmt::Write;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Low-level emitter for si-sexp documents: two-space indentation, one
/// node per line, leaves on a single line. [`SexpWriter::open`] starts a
/// child node, the payload helpers append onto the current line, and
/// [`SexpWriter::close`] ends the innermost node.
#[derive(Debug)]
pub struct SexpWriter {
    out: String,
    depth: usize,
}

impl SexpWriter {
    /// A writer primed with the versioned header for `document_kind`
    /// (e.g. `parse-tree`, `state-graph`, `lint-report`).
    #[must_use]
    pub fn new(document_kind: &str) -> Self {
        Self {
            out: format!("; si-sexp {SEXP_VERSION} {document_kind}\n"),
            depth: 0,
        }
    }

    /// Opens a node `(head`; nested opens indent by two spaces per level.
    pub fn open(&mut self, head: &str) {
        if self.depth > 0 || !self.out.ends_with('\n') {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }
        self.out.push('(');
        self.out.push_str(head);
        self.depth += 1;
    }

    /// Closes the innermost open node.
    pub fn close(&mut self) {
        self.depth = self.depth.saturating_sub(1);
        self.out.push(')');
        if self.depth == 0 {
            self.out.push('\n');
        }
    }

    /// Appends a bare atom (no quoting) to the current line.
    pub fn atom(&mut self, s: &str) {
        self.out.push(' ');
        self.out.push_str(s);
    }

    /// Appends a JSON-escaped, double-quoted string payload.
    pub fn string(&mut self, s: &str) {
        self.out.push_str(" \"");
        self.out.push_str(&escape(s));
        self.out.push('"');
    }

    /// Appends a span payload `[start, end, line, col]`.
    pub fn span(&mut self, span: Span) {
        use fmt::Write;
        let _ = write!(
            self.out,
            " [{}, {}, {}, {}]",
            span.start, span.end, span.line, span.col
        );
    }

    /// The finished document.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// The interchange atom of a defect kind.
fn kind_name(kind: ParseErrorKind) -> &'static str {
    match kind {
        ParseErrorKind::Syntax => "syntax",
        ParseErrorKind::UnknownSection => "unknown-section",
        ParseErrorKind::DummyUnsupported => "dummy-unsupported",
        ParseErrorKind::UndeclaredSignal => "undeclared-signal",
        ParseErrorKind::DuplicateSignal => "duplicate-signal",
        ParseErrorKind::DuplicateArc => "duplicate-arc",
    }
}

fn kind_of_name(name: &str) -> Option<ParseErrorKind> {
    Some(match name {
        "syntax" => ParseErrorKind::Syntax,
        "unknown-section" => ParseErrorKind::UnknownSection,
        "dummy-unsupported" => ParseErrorKind::DummyUnsupported,
        "undeclared-signal" => ParseErrorKind::UndeclaredSignal,
        "duplicate-signal" => ParseErrorKind::DuplicateSignal,
        "duplicate-arc" => ParseErrorKind::DuplicateArc,
        _ => return None,
    })
}

/// Serializes a [`ParseEvent`] stream as a `parse-tree` document.
/// Structural nodes nest; `model` carries its name as a string payload;
/// token leaves are `(name|node|entry [span] "text")`; defects are
/// `(defect [span] <kind> "message")` at their exact stream position.
#[must_use]
pub fn write_events(events: &[ParseEvent]) -> String {
    let mut w = SexpWriter::new("parse-tree");
    let leaf = |w: &mut SexpWriter, head: &str, token: &Token| {
        w.open(head);
        w.span(token.span);
        w.string(&token.text);
        w.close();
    };
    for event in events {
        match event {
            ParseEvent::Open { kind, span } => {
                w.open(kind.name());
                w.span(*span);
            }
            ParseEvent::Close { .. } => w.close(),
            ParseEvent::Token(token) => match token.kind {
                // The model name rides its node's own line.
                TokenKind::Model => w.string(&token.text),
                TokenKind::Name => leaf(&mut w, "name", token),
                TokenKind::Node => leaf(&mut w, "node", token),
                TokenKind::MarkingEntry => leaf(&mut w, "entry", token),
                // Marker kinds never appear inside event streams.
                _ => {}
            },
            ParseEvent::Defect(e) => {
                w.open("defect");
                w.span(e.span);
                w.atom(kind_name(e.kind));
                w.string(&e.message);
                w.close();
            }
        }
    }
    w.finish()
}

/// Serializes a [`StateGraph`] as a `state-graph` document: the signal
/// name table, one `(state i "code")` per state (bit `j` of the code
/// string is signal `j`, `0` printed first), and one
/// `(edge from "label" to)` per transition edge.
#[must_use]
pub fn write_state_graph(sg: &StateGraph, names: &[String]) -> String {
    let mut w = SexpWriter::new("state-graph");
    w.open("state-graph");
    w.open("signals");
    for name in names {
        w.string(name);
    }
    w.close();
    for i in 0..sg.state_count() {
        let code = sg.code(i);
        let bits: String = (0..names.len())
            .map(|b| if code & (1u64 << b) != 0 { '1' } else { '0' })
            .collect();
        w.open("state");
        w.atom(&i.to_string());
        w.string(&bits);
        w.close();
    }
    for i in 0..sg.state_count() {
        for &(t, j) in &sg.edges[i] {
            w.open("edge");
            w.atom(&i.to_string());
            w.string(&sg.label(t).display(names).to_string());
            w.atom(&j.to_string());
            w.close();
        }
    }
    w.close();
    w.finish()
}

/// A malformed si-sexp document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SexpError {
    /// What is wrong.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl fmt::Display for SexpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sexp parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for SexpError {}

/// Reads a `parse-tree` document back into the [`ParseEvent`] stream
/// that produced it. Exact inverse of [`write_events`]: the returned
/// stream is event-for-event identical, so folding it through
/// [`tree_of_events`](crate::tree::tree_of_events) reproduces the
/// original [`LenientParse`](crate::parse::LenientParse).
///
/// # Errors
///
/// Returns a [`SexpError`] on malformed input or an unsupported
/// `; si-sexp <version>` header.
pub fn read_events(text: &str) -> Result<Vec<ParseEvent>, SexpError> {
    let mut reader = Reader { text, pos: 0 };
    reader.check_version()?;
    let mut out = Vec::new();
    loop {
        reader.skip_trivia();
        if reader.peek().is_none() {
            break;
        }
        reader.node(&mut out)?;
    }
    Ok(out)
}

struct Reader<'a> {
    text: &'a str,
    pos: usize,
}

impl Reader<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, SexpError> {
        Err(SexpError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Skips whitespace and `;` line comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some(';') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    /// Validates the `; si-sexp <version> <kind>` header if one leads
    /// the document (possibly after other comment lines).
    fn check_version(&mut self) -> Result<(), SexpError> {
        for line in self.text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some(rest) = line.strip_prefix(';') else {
                break; // content reached without a version header: tolerated
            };
            if let Some(v) = rest.trim().strip_prefix("si-sexp ") {
                let digits: String = v.chars().take_while(char::is_ascii_digit).collect();
                match digits.parse::<u32>() {
                    Ok(n) if n == SEXP_VERSION => return Ok(()),
                    Ok(n) => {
                        return self.err(format!(
                            "unsupported si-sexp version {n} (expected {SEXP_VERSION})"
                        ))
                    }
                    Err(_) => return self.err("malformed si-sexp version header"),
                }
            }
        }
        Ok(())
    }

    fn expect(&mut self, want: char) -> Result<(), SexpError> {
        self.skip_trivia();
        match self.peek() {
            Some(c) if c == want => {
                self.bump();
                Ok(())
            }
            Some(c) => self.err(format!("expected `{want}`, found `{c}`")),
            None => self.err(format!("expected `{want}`, found end of input")),
        }
    }

    fn atom(&mut self) -> Result<String, SexpError> {
        self.skip_trivia();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '-' || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected an atom");
        }
        Ok(self.text[start..self.pos].to_string())
    }

    fn number(&mut self) -> Result<usize, SexpError> {
        self.skip_trivia();
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return self.err("expected a number");
        }
        self.text[start..self.pos].parse().map_err(|_| SexpError {
            message: "number out of range".to_string(),
            offset: start,
        })
    }

    fn span(&mut self) -> Result<Span, SexpError> {
        self.expect('[')?;
        let start = self.number()?;
        self.expect(',')?;
        let end = self.number()?;
        self.expect(',')?;
        let line = self.number()?;
        self.expect(',')?;
        let col = self.number()?;
        self.expect(']')?;
        Ok(Span {
            start,
            end,
            line,
            col,
        })
    }

    fn string(&mut self) -> Result<String, SexpError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.bump() else {
                return self.err("unterminated string");
            };
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(esc) = self.bump() else {
                        return self.err("unterminated escape");
                    };
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let hex = self.text.get(self.pos..self.pos + 4);
                            let Some(hex) = hex else {
                                return self.err("truncated \\u escape");
                            };
                            let Ok(n) = u32::from_str_radix(hex, 16) else {
                                return self.err("malformed \\u escape");
                            };
                            let Some(c) = char::from_u32(n) else {
                                return self.err("invalid \\u code point");
                            };
                            self.pos += 4;
                            out.push(c);
                        }
                        other => return self.err(format!("unknown escape `\\{other}`")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn peek_is(&mut self, want: char) -> bool {
        self.skip_trivia();
        self.peek() == Some(want)
    }

    /// One node, emitted as events. Structural heads recurse; leaf heads
    /// (`name`, `node`, `entry`, `defect`) emit a single event.
    fn node(&mut self, out: &mut Vec<ParseEvent>) -> Result<(), SexpError> {
        self.expect('(')?;
        let head = self.atom()?;
        let structural = |name: &str| -> Option<ParseNodeKind> {
            Some(match name {
                "document" => ParseNodeKind::Document,
                "model" => ParseNodeKind::Model,
                "inputs" => ParseNodeKind::Inputs,
                "outputs" => ParseNodeKind::Outputs,
                "internal" => ParseNodeKind::Internal,
                "graph" => ParseNodeKind::Graph,
                "line" => ParseNodeKind::GraphLine,
                "marking" => ParseNodeKind::Marking,
                _ => return None,
            })
        };
        if let Some(kind) = structural(&head) {
            let span = self.span()?;
            out.push(ParseEvent::Open { kind, span });
            if kind == ParseNodeKind::Model && self.peek_is('"') {
                let text = self.string()?;
                out.push(ParseEvent::Token(Token {
                    kind: TokenKind::Model,
                    text,
                    span,
                }));
            }
            while !self.peek_is(')') {
                if self.peek().is_none() {
                    return self.err(format!("unclosed `{head}` node"));
                }
                self.node(out)?;
            }
            self.expect(')')?;
            out.push(ParseEvent::Close { kind });
            return Ok(());
        }
        let token_kind = match head.as_str() {
            "name" => Some(TokenKind::Name),
            "node" => Some(TokenKind::Node),
            "entry" => Some(TokenKind::MarkingEntry),
            _ => None,
        };
        if let Some(kind) = token_kind {
            let span = self.span()?;
            let text = self.string()?;
            self.expect(')')?;
            out.push(ParseEvent::Token(Token { kind, text, span }));
            return Ok(());
        }
        if head == "defect" {
            let span = self.span()?;
            let kind_atom = self.atom()?;
            let Some(kind) = kind_of_name(&kind_atom) else {
                return self.err(format!("unknown defect kind `{kind_atom}`"));
            };
            let message = self.string()?;
            self.expect(')')?;
            out.push(ParseEvent::Defect(ParseAstgError {
                kind,
                span,
                message,
            }));
            return Ok(());
        }
        self.err(format!("unknown node kind `{head}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::parse_events;
    use crate::parse::{parse_astg_lenient, IMEC_RAM_READ_SBUF_G};
    use crate::tree::tree_of_events;

    #[test]
    fn events_round_trip_through_the_interchange_format() {
        let events = parse_events(IMEC_RAM_READ_SBUF_G);
        let dump = write_events(&events);
        let back = read_events(&dump).expect("reader accepts writer output");
        assert_eq!(back, events);
        assert_eq!(
            tree_of_events(&back),
            parse_astg_lenient(IMEC_RAM_READ_SBUF_G)
        );
    }

    #[test]
    fn defective_specs_round_trip_too() {
        let text = ".model broken\n.inputs a a\n.weird\n.graph\na+ b+\np0 p1\n.marking x\n";
        let events = parse_events(text);
        let dump = write_events(&events);
        let back = read_events(&dump).expect("round trip");
        assert_eq!(back, events);
        assert_eq!(tree_of_events(&back), parse_astg_lenient(text));
    }

    #[test]
    fn strings_with_escapes_survive() {
        let text = ".model \"q\\u\"\n.graph\n\ta+\tb+\n.end\n";
        let events = parse_events(text);
        let back = read_events(&write_events(&events)).expect("round trip");
        assert_eq!(back, events);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dump = write_events(&parse_events(".graph\na+ b+\n.end\n"));
        let bumped = dump.replace("; si-sexp 1 ", "; si-sexp 99 ");
        let e = read_events(&bumped).unwrap_err();
        assert!(e.message.contains("version 99"));
    }

    #[test]
    fn malformed_documents_error_instead_of_panicking() {
        for text in [
            "(",
            ")",
            "(document",
            "(document [0, 0, 1, 1]",
            "(wat [0, 0, 1, 1])",
            "(defect [0, 0, 1, 1] nonsense \"m\")",
            "(name [0, 1, 1] \"x\")",
            "(name [0, 1, 1, 1] \"x)",
        ] {
            assert!(read_events(text).is_err(), "accepted {text:?}");
        }
    }
}

//! Binary-coded state graphs and the region machinery of thesis Sec. 3.4.
//!
//! Besides the scratch generators ([`StateGraph::of_mg`],
//! [`StateGraph::of_stg`]) this module implements the *incremental*
//! regeneration used by the relaxation loop: [`StateGraph::of_mg_from`]
//! derives the successor state graph of a single-arc edit from the
//! predecessor's graph, re-exploring only the cone of states whose
//! enabling conditions the edit can affect, while reproducing the scratch
//! generator's output — including its failures — bit for bit. It also
//! returns the parent↔child state correspondence and the affected cone as
//! an [`SgMap`], so downstream per-state analyses (the conformance sweep)
//! can reuse the unaffected states' verdicts. For *cold* exploration of
//! weakly connected marked graphs, [`StateGraph::of_mg_sigma`] replaces
//! the packed-marking state keys with the cheaper normalized
//! firing-count-vector (σ-space) keys the delta path already uses.

use std::collections::HashMap;

use crate::mg::MgStg;
use crate::signal::{Polarity, SignalId, TransitionLabel};
use crate::stg::{Stg, StgError};

/// Normalizes a firing-count vector to its canonical representative:
/// firing counts are only determined up to a constant shift (one full
/// cycle fires every transition once), so subtract the minimum over the
/// alive transitions. Entries of dead transitions stay untouched (they
/// are never fired and remain zero).
fn normalized(sigma: &[i64], alive: &[usize]) -> Vec<i64> {
    let min = alive
        .iter()
        .map(|&t| sigma[t])
        .min()
        .expect("alive set is non-empty");
    let mut v = sigma.to_vec();
    for &t in alive {
        v[t] -= min;
    }
    v
}

/// The parent↔child state correspondence and the *affected cone* of one
/// incremental derivation ([`StateGraph::of_mg_from`]).
///
/// The correspondence identifies states by normalized firing-count class:
/// `parent_of[i]` is the predecessor state whose firing counts equal child
/// state `i`'s (it is a partial bijection — both graphs dedup states by
/// the same key).
///
/// The affected cone is the contract downstream verdict reuse rests on:
/// `affected[i]` is `false` only when child state `i` has a parent
/// counterpart `p = parent_of[i]` with the **same binary code and the
/// same edge list** — elementwise equal transition ids, with each
/// successor pair related by the correspondence — and the two graphs
/// share their transition-label table. Every *local* per-state verdict
/// (a function of the state's code, its own outgoing edges and the shared
/// labels — excitedness, cover evaluation, premature/lagging membership)
/// therefore coincides between `i` and `p` whenever `affected[i]` is
/// `false`. Verdicts that traverse *paths* (next-transition-to-fire,
/// pending-ness) are **not** covered by the contract and must be
/// recomputed by the consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgMap {
    /// `parent_of[i]` = the parent state sharing child state `i`'s
    /// normalized firing-count class, if any.
    pub parent_of: Vec<Option<usize>>,
    /// Whether child state `i` is in the affected cone (no parent
    /// counterpart, or its code/edge list differs from the counterpart's
    /// under the correspondence).
    pub affected: Vec<bool>,
}

impl SgMap {
    /// Number of states outside the affected cone (whose local verdicts
    /// the correspondence makes reusable).
    pub fn unaffected_count(&self) -> usize {
        self.affected.iter().filter(|&&a| !a).count()
    }

    /// Derives the cone from the exploration's correspondence vector:
    /// child state `i` is affected iff it has no counterpart, the label
    /// tables differ, its code differs, or its edge list differs
    /// elementwise (transition ids, and successors related by
    /// `parent_of`).
    fn derive(child: &StateGraph, parent: &StateGraph, parent_of: Vec<Option<usize>>) -> Self {
        let labels_match = child.labels == parent.labels;
        let affected = (0..child.states.len())
            .map(|i| match parent_of[i] {
                None => true,
                Some(p) => {
                    !labels_match
                        || child.states[i].code != parent.states[p].code
                        || child.edges[i].len() != parent.edges[p].len()
                        || child.edges[i]
                            .iter()
                            .zip(&parent.edges[p])
                            .any(|(&(t, j), &(pt, pj))| t != pt || parent_of[j] != Some(pj))
                }
            })
            .collect();
        Self {
            parent_of,
            affected,
        }
    }
}

/// One state of a [`StateGraph`]: a reachable marking labelled with the
/// binary signal vector (bit `i` = value of signal `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SgState {
    /// Packed signal values.
    pub code: u64,
}

/// A state graph: reachable markings of an STG with consistent binary codes
/// (thesis Sec. 3.4). State 0 is the initial state. Edge labels are the
/// transition ids of the source [`MgStg`] or [`Stg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateGraph {
    /// States; index 0 is the initial state.
    pub states: Vec<SgState>,
    /// `edges[i]` lists `(transition id, successor state)` pairs.
    pub edges: Vec<Vec<(usize, usize)>>,
    labels: Vec<Option<TransitionLabel>>,
}

impl StateGraph {
    /// Generates the state graph of a marked-graph STG (the `Write_sg` step
    /// of Algorithm 4), checking consistency along the way.
    ///
    /// # Errors
    ///
    /// [`StgError::Inconsistent`] if rising/falling transitions do not
    /// alternate, [`StgError::Petri`] via budget exhaustion.
    pub fn of_mg(mg: &MgStg, budget: usize) -> Result<Self, StgError> {
        let arc_keys: Vec<(usize, usize)> = mg.arcs().map(|(k, _)| k).collect();
        let pack = |m: &std::collections::BTreeMap<(usize, usize), u32>| -> Vec<u32> {
            arc_keys
                .iter()
                .map(|k| m.get(k).copied().unwrap_or(0))
                .collect()
        };
        let alive = mg.transitions();
        let mut labels: Vec<Option<TransitionLabel>> = Vec::new();
        for &t in &alive {
            while labels.len() <= t {
                labels.push(None);
            }
            labels[t] = Some(mg.label(t));
        }

        let m0 = mg.initial_marking();
        let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
        let mut markings = vec![m0.clone()];
        let mut states = vec![SgState {
            code: mg.initial_code(),
        }];
        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new()];
        index.insert(pack(&m0), 0);
        let mut frontier = vec![0usize];

        while let Some(i) = frontier.pop() {
            let m = markings[i].clone();
            let code = states[i].code;
            for &t in &alive {
                if !mg.enabled_in(t, &m) {
                    continue;
                }
                let label = mg.label(t);
                let bit = 1u64 << label.signal.0;
                let before = code & bit != 0;
                if before == label.polarity.target_value() {
                    return Err(StgError::Inconsistent {
                        signal: mg.signal_name(label.signal).to_string(),
                    });
                }
                let next_code = code ^ bit;
                let next_m = mg.fire_in(t, &m);
                let key = pack(&next_m);
                let j = match index.get(&key) {
                    Some(&j) => {
                        if states[j].code != next_code {
                            return Err(StgError::Inconsistent {
                                signal: mg.signal_name(label.signal).to_string(),
                            });
                        }
                        j
                    }
                    None => {
                        if markings.len() >= budget {
                            return Err(StgError::Petri(
                                si_petri::PetriError::StateBudgetExceeded { budget },
                            ));
                        }
                        let j = markings.len();
                        markings.push(next_m);
                        states.push(SgState { code: next_code });
                        edges.push(Vec::new());
                        index.insert(key, j);
                        frontier.push(j);
                        j
                    }
                };
                edges[i].push((t, j));
            }
        }
        Ok(Self {
            states,
            edges,
            labels,
        })
    }

    /// Derives the state graph of `mg` from the predecessor `parent`'s
    /// graph, re-exploring only the cone of states affected by the arc
    /// delta between the two — the incremental regeneration behind each
    /// relaxation-loop edit.
    ///
    /// `parent_sg` must be the graph [`StateGraph::of_mg`] returns for
    /// `parent` (any budget it fits in). The contract is exact equivalence
    /// with a scratch run: the returned graph is bit-identical to
    /// `StateGraph::of_mg(mg, budget)` — same state indexing, same edge
    /// order — and every failure (consistency violation, budget
    /// exhaustion) is the error the scratch run would report, raised at
    /// the same point of the exploration. The returned [`SgMap`] carries
    /// the parent↔child state correspondence the delta path builds
    /// internally plus the affected cone (see [`SgMap`] for the exact
    /// reuse contract); it is `None` when the inputs were ineligible
    /// (different alive-transition sets, or an arc skeleton that is not
    /// weakly connected) and the result came from a scratch generation.
    ///
    /// The delta-guided path identifies states by *normalized firing-count
    /// vectors* instead of full markings: in a weakly connected marked
    /// graph a reachable marking determines the firing counts up to a
    /// constant shift, so the count vector is a faithful state key shared
    /// between predecessor and successor. A transition whose incoming arcs
    /// the delta does not touch is enabled in the successor exactly where
    /// the predecessor's graph has an edge for it — those verdicts (and
    /// the successor states they lead to) are copied in O(1) per edge;
    /// only transitions downstream of the edited arc, and states beyond
    /// the predecessor's horizon, are recomputed.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`StateGraph::of_mg`] under `budget`.
    pub fn of_mg_from(
        parent: &MgStg,
        parent_sg: &StateGraph,
        mg: &MgStg,
        budget: usize,
    ) -> Result<(Self, Option<SgMap>), StgError> {
        let alive = mg.transitions();
        if parent.transitions() != alive || !mg.arcs_weakly_connected() {
            return Ok((Self::of_mg(mg, budget)?, None));
        }
        let nt = alive.last().copied().expect("connected implies non-empty") + 1;

        let mut labels: Vec<Option<TransitionLabel>> = Vec::new();
        for &t in &alive {
            while labels.len() <= t {
                labels.push(None);
            }
            labels[t] = Some(mg.label(t));
        }

        // Transitions whose enabling the delta can affect (their incoming
        // arcs changed); everything else inherits the parent's verdicts.
        let delta = parent.arc_delta(mg);
        let mut changed_dst = vec![false; nt];
        for t in delta.affected_dsts() {
            changed_dst[t] = true;
        }
        // Incoming arcs of each transition with token counts, for the
        // firing-count enabling test `tokens + σ(src) − σ(dst) > 0`.
        let mut preds_of: Vec<Vec<(usize, i64)>> = vec![Vec::new(); nt];
        for ((a, b), attr) in mg.arcs() {
            preds_of[b].push((a, i64::from(attr.tokens)));
        }

        // Recover the parent's firing-count vector per state (BFS over its
        // edges from the initial state) and index states by the normalized
        // vector.
        let pn = parent_sg.states.len();
        let mut parent_index: HashMap<Vec<i64>, usize> = HashMap::with_capacity(pn);
        {
            let mut sig: Vec<Vec<i64>> = vec![Vec::new(); pn];
            sig[0] = vec![0i64; nt];
            parent_index.insert(normalized(&sig[0], &alive), 0);
            let mut stack = vec![0usize];
            while let Some(p) = stack.pop() {
                for &(t, j) in &parent_sg.edges[p] {
                    if sig[j].is_empty() {
                        let mut s = sig[p].clone();
                        s[t] += 1;
                        parent_index.insert(normalized(&s, &alive), j);
                        sig[j] = s;
                        stack.push(j);
                    }
                }
            }
        }

        // The successor exploration, mirroring `of_mg`'s loop exactly:
        // same LIFO frontier, same ascending transition order, same
        // consistency and budget checks at the same points.
        let mut index: HashMap<Vec<i64>, usize> = HashMap::new();
        let mut sigma: Vec<Vec<i64>> = vec![vec![0i64; nt]];
        let mut states = vec![SgState {
            code: mg.initial_code(),
        }];
        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new()];
        let key0 = normalized(&sigma[0], &alive);
        let mapped0 = parent_index.get(&key0).copied();
        index.insert(key0, 0);
        // `mapped[i]` = the parent state sharing child state `i`'s
        // firing-count class; `child_of_parent` is the inverse.
        let mut mapped: Vec<Option<usize>> = vec![mapped0];
        let mut child_of_parent: Vec<Option<usize>> = vec![None; pn];
        if let Some(p0) = mapped0 {
            child_of_parent[p0] = Some(0);
        }
        let mut frontier = vec![0usize];

        while let Some(i) = frontier.pop() {
            let code = states[i].code;
            let at_parent = mapped[i];
            for &t in &alive {
                let (enabled, parent_succ) = match at_parent {
                    Some(p) if !changed_dst[t] => {
                        match parent_sg.edges[p].iter().find(|&&(u, _)| u == t) {
                            Some(&(_, pj)) => (true, Some(pj)),
                            None => (false, None),
                        }
                    }
                    _ => {
                        let s = &sigma[i];
                        let enabled = preds_of[t].iter().all(|&(a, tok)| tok + s[a] - s[t] > 0);
                        (enabled, None)
                    }
                };
                if !enabled {
                    continue;
                }
                let label = mg.label(t);
                let bit = 1u64 << label.signal.0;
                let before = code & bit != 0;
                if before == label.polarity.target_value() {
                    return Err(StgError::Inconsistent {
                        signal: mg.signal_name(label.signal).to_string(),
                    });
                }
                let next_code = code ^ bit;
                let known = parent_succ.and_then(|pj| child_of_parent[pj]);
                let j = match known {
                    Some(j) => j,
                    None => {
                        let mut s2 = sigma[i].clone();
                        s2[t] += 1;
                        let key = normalized(&s2, &alive);
                        match index.get(&key) {
                            Some(&j) => {
                                if let Some(pj) = parent_succ {
                                    child_of_parent[pj] = Some(j);
                                }
                                j
                            }
                            None => {
                                if states.len() >= budget {
                                    return Err(StgError::Petri(
                                        si_petri::PetriError::StateBudgetExceeded { budget },
                                    ));
                                }
                                let j = states.len();
                                let pm = match parent_succ {
                                    Some(pj) => Some(pj),
                                    None => parent_index.get(&key).copied(),
                                };
                                if let Some(pp) = pm {
                                    child_of_parent[pp] = Some(j);
                                }
                                mapped.push(pm);
                                index.insert(key, j);
                                sigma.push(s2);
                                states.push(SgState { code: next_code });
                                edges.push(Vec::new());
                                frontier.push(j);
                                j
                            }
                        }
                    }
                };
                if states[j].code != next_code {
                    return Err(StgError::Inconsistent {
                        signal: mg.signal_name(label.signal).to_string(),
                    });
                }
                edges[i].push((t, j));
            }
        }
        let sg = Self {
            states,
            edges,
            labels,
        };
        let map = SgMap::derive(&sg, parent_sg, mapped);
        Ok((sg, Some(map)))
    }

    /// Generates the state graph of a *weakly connected* marked-graph STG
    /// using normalized firing-count vectors (σ-space) as state keys — the
    /// cheaper identification [`StateGraph::of_mg_from`] already uses for
    /// its delta path, applied to cold (no-predecessor) exploration. In a
    /// weakly connected marked graph a reachable marking determines the
    /// firing counts up to a constant shift, so the normalized vector is a
    /// faithful state key; enabledness reduces to the per-arc test
    /// `tokens + σ(src) − σ(dst) > 0`, with no marking maps cloned per
    /// state.
    ///
    /// The output contract is exact equivalence with [`StateGraph::of_mg`]:
    /// the same LIFO frontier and ascending transition order visit the
    /// same states under either key, so the returned graph — and every
    /// failure, raised at the same exploration point — is bit-identical.
    /// Inputs that are not weakly connected fall back to
    /// [`StateGraph::of_mg`] transparently.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`StateGraph::of_mg`] under `budget`.
    pub fn of_mg_sigma(mg: &MgStg, budget: usize) -> Result<Self, StgError> {
        if !mg.arcs_weakly_connected() {
            return Self::of_mg(mg, budget);
        }
        let alive = mg.transitions();
        let nt = alive.last().copied().expect("connected implies non-empty") + 1;
        let mut labels: Vec<Option<TransitionLabel>> = Vec::new();
        for &t in &alive {
            while labels.len() <= t {
                labels.push(None);
            }
            labels[t] = Some(mg.label(t));
        }
        let mut preds_of: Vec<Vec<(usize, i64)>> = vec![Vec::new(); nt];
        for ((a, b), attr) in mg.arcs() {
            preds_of[b].push((a, i64::from(attr.tokens)));
        }

        let mut index: HashMap<Vec<i64>, usize> = HashMap::new();
        let mut sigma: Vec<Vec<i64>> = vec![vec![0i64; nt]];
        let mut states = vec![SgState {
            code: mg.initial_code(),
        }];
        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new()];
        index.insert(normalized(&sigma[0], &alive), 0);
        let mut frontier = vec![0usize];

        while let Some(i) = frontier.pop() {
            let code = states[i].code;
            for &t in &alive {
                let enabled = {
                    let s = &sigma[i];
                    preds_of[t].iter().all(|&(a, tok)| tok + s[a] - s[t] > 0)
                };
                if !enabled {
                    continue;
                }
                let label = mg.label(t);
                let bit = 1u64 << label.signal.0;
                let before = code & bit != 0;
                if before == label.polarity.target_value() {
                    return Err(StgError::Inconsistent {
                        signal: mg.signal_name(label.signal).to_string(),
                    });
                }
                let next_code = code ^ bit;
                let mut s2 = sigma[i].clone();
                s2[t] += 1;
                let key = normalized(&s2, &alive);
                let j = match index.get(&key) {
                    Some(&j) => {
                        if states[j].code != next_code {
                            return Err(StgError::Inconsistent {
                                signal: mg.signal_name(label.signal).to_string(),
                            });
                        }
                        j
                    }
                    None => {
                        if states.len() >= budget {
                            return Err(StgError::Petri(
                                si_petri::PetriError::StateBudgetExceeded { budget },
                            ));
                        }
                        let j = states.len();
                        index.insert(key, j);
                        sigma.push(s2);
                        states.push(SgState { code: next_code });
                        edges.push(Vec::new());
                        frontier.push(j);
                        j
                    }
                };
                edges[i].push((t, j));
            }
        }
        Ok(Self {
            states,
            edges,
            labels,
        })
    }

    /// Generates the state graph of a full (possibly free-choice) STG.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StateGraph::of_mg`], plus errors from
    /// [`Stg::initial_values`].
    pub fn of_stg(stg: &Stg, budget: usize) -> Result<Self, StgError> {
        let values = stg.initial_values()?;
        let mut code0 = 0u64;
        for (i, &v) in values.iter().enumerate() {
            if v {
                code0 |= 1u64 << i;
            }
        }
        let net = stg.net();
        let labels: Vec<Option<TransitionLabel>> =
            net.transitions().map(|t| Some(stg.label(t))).collect();

        let m0 = net.initial_marking();
        let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
        let mut markings = vec![m0.clone()];
        let mut states = vec![SgState { code: code0 }];
        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new()];
        index.insert(m0, 0);
        let mut frontier = vec![0usize];

        while let Some(i) = frontier.pop() {
            let m = markings[i].clone();
            let code = states[i].code;
            for t in net.enabled_transitions(&m) {
                let label = stg.label(t);
                let bit = 1u64 << label.signal.0;
                if (code & bit != 0) == label.polarity.target_value() {
                    return Err(StgError::Inconsistent {
                        signal: stg.signal_name(label.signal).to_string(),
                    });
                }
                let next_code = code ^ bit;
                let next_m = net.fire(t, &m);
                let j = match index.get(&next_m) {
                    Some(&j) => {
                        if states[j].code != next_code {
                            return Err(StgError::Inconsistent {
                                signal: stg.signal_name(label.signal).to_string(),
                            });
                        }
                        j
                    }
                    None => {
                        if markings.len() >= budget {
                            return Err(StgError::Petri(
                                si_petri::PetriError::StateBudgetExceeded { budget },
                            ));
                        }
                        let j = markings.len();
                        markings.push(next_m.clone());
                        states.push(SgState { code: next_code });
                        edges.push(Vec::new());
                        index.insert(next_m, j);
                        frontier.push(j);
                        j
                    }
                };
                edges[i].push((t.0, j));
            }
        }
        Ok(Self {
            states,
            edges,
            labels,
        })
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Label of transition id `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` was not alive when the graph was generated.
    pub fn label(&self, t: usize) -> TransitionLabel {
        self.labels[t].expect("transition was alive at SG generation")
    }

    /// The binary code of state `i`.
    pub fn code(&self, i: usize) -> u64 {
        self.states[i].code
    }

    /// Value of `signal` in state `i`.
    pub fn value(&self, i: usize, signal: SignalId) -> bool {
        self.states[i].code & (1u64 << signal.0) != 0
    }

    /// Whether `signal` is excited in state `i` (some transition of the
    /// signal is enabled).
    pub fn is_excited(&self, i: usize, signal: SignalId) -> bool {
        self.edges[i]
            .iter()
            .any(|&(t, _)| self.label(t).signal == signal)
    }

    /// The successor of state `i` by transition `t`, if enabled there.
    pub fn successor_by(&self, i: usize, t: usize) -> Option<usize> {
        self.edges[i]
            .iter()
            .find(|&&(u, _)| u == t)
            .map(|&(_, j)| j)
    }

    /// States where transition `t` is enabled: the excitation region of that
    /// particular occurrence.
    pub fn er_of_transition(&self, t: usize) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| self.edges[i].iter().any(|&(u, _)| u == t))
            .collect()
    }

    /// `ER(signal±)`: states where any occurrence of the edge is enabled.
    pub fn er_states(&self, signal: SignalId, polarity: Polarity) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| {
                self.edges[i].iter().any(|&(t, _)| {
                    let l = self.label(t);
                    l.signal == signal && l.polarity == polarity
                })
            })
            .collect()
    }

    /// `QR(signal+)` (`value = true`) or `QR(signal-)` (`value = false`):
    /// states where the signal is stable at `value`.
    pub fn qr_states(&self, signal: SignalId, value: bool) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| !self.is_excited(i, signal) && self.value(i, signal) == value)
            .collect()
    }

    /// The indexed excitation regions `ERi(signal±)` of thesis Sec. 3.4:
    /// the connected components of the excitation region, each sorted, in
    /// deterministic order.
    pub fn er_regions(&self, signal: SignalId, polarity: Polarity) -> Vec<Vec<usize>> {
        self.connected_components(&self.er_states(signal, polarity))
    }

    /// The indexed quiescent regions `QRi` (`value = true` for `QR(sig+)`).
    pub fn qr_regions(&self, signal: SignalId, value: bool) -> Vec<Vec<usize>> {
        self.connected_components(&self.qr_states(signal, value))
    }

    fn connected_components(&self, members: &[usize]) -> Vec<Vec<usize>> {
        let member_set: std::collections::BTreeSet<usize> = members.iter().copied().collect();
        let mut assigned: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        let mut components: Vec<Vec<usize>> = Vec::new();
        for &start in members {
            if assigned.contains_key(&start) {
                continue;
            }
            let id = components.len();
            let mut component = Vec::new();
            let mut stack = vec![start];
            assigned.insert(start, id);
            while let Some(s) = stack.pop() {
                component.push(s);
                // Undirected adjacency restricted to the member set.
                for &(_, j) in &self.edges[s] {
                    if member_set.contains(&j) && !assigned.contains_key(&j) {
                        assigned.insert(j, id);
                        stack.push(j);
                    }
                }
                for (p, outs) in self.edges.iter().enumerate() {
                    if member_set.contains(&p)
                        && !assigned.contains_key(&p)
                        && outs.iter().any(|&(_, j)| j == s)
                    {
                        assigned.insert(p, id);
                        stack.push(p);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// The next transition of `signal` to fire from state `i`: the unique
    /// transition of the signal first reachable along any path. Returns
    /// `None` if the signal never fires from `i`.
    ///
    /// # Errors
    ///
    /// [`StgError::Inconsistent`] if different paths reach different
    /// occurrences first (impossible in a consistent STG).
    pub fn next_transition_of(
        &self,
        i: usize,
        signal: SignalId,
        signal_name: &str,
    ) -> Result<Option<usize>, StgError> {
        let mut seen = vec![false; self.states.len()];
        let mut stack = vec![i];
        seen[i] = true;
        let mut found: Option<usize> = None;
        while let Some(s) = stack.pop() {
            for &(t, j) in &self.edges[s] {
                if self.label(t).signal == signal {
                    match found {
                        None => found = Some(t),
                        Some(prev) if prev != t => {
                            return Err(StgError::Inconsistent {
                                signal: signal_name.to_string(),
                            })
                        }
                        _ => {}
                    }
                } else if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_astg;
    use crate::signal::SignalKind;

    fn handshake_mg() -> (Stg, MgStg) {
        let text = "\
.model handshake
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let mg = MgStg::from_stg_mg(&stg).expect("marked graph");
        (stg, mg)
    }

    #[test]
    fn handshake_sg_has_four_states() {
        let (_, mg) = handshake_mg();
        let sg = StateGraph::of_mg(&mg, 100).expect("consistent");
        assert_eq!(sg.state_count(), 4);
        // Initial state 00.
        assert_eq!(sg.code(0), 0);
    }

    #[test]
    fn regions_partition_states() {
        let (stg, mg) = handshake_mg();
        let sg = StateGraph::of_mg(&mg, 100).expect("consistent");
        let req = stg.signal_by_name("req").expect("declared");
        let ack = stg.signal_by_name("ack").expect("declared");
        // ER(ack+) = {state after req+}, one state; QR(ack+) similar.
        assert_eq!(sg.er_states(ack, Polarity::Plus).len(), 1);
        assert_eq!(sg.er_states(ack, Polarity::Minus).len(), 1);
        assert_eq!(sg.qr_states(ack, true).len(), 1);
        assert_eq!(sg.qr_states(ack, false).len(), 1);
        // req is an input: every state has req either excited or stable.
        let total = sg.er_states(req, Polarity::Plus).len()
            + sg.er_states(req, Polarity::Minus).len()
            + sg.qr_states(req, true).len()
            + sg.qr_states(req, false).len();
        assert_eq!(total, 4);
    }

    #[test]
    fn inconsistent_mg_is_rejected() {
        // x+ followed by x+ again: inconsistent.
        let mut stg = Stg::new("bad");
        let x = stg.add_signal("x", SignalKind::Input);
        let mut mg = MgStg::empty_like(&stg);
        let a = mg.add_transition(TransitionLabel::new(x, Polarity::Plus, 1));
        let b = mg.add_transition(TransitionLabel::new(x, Polarity::Plus, 2));
        mg.insert_arc(a, b, 0, false);
        mg.insert_arc(b, a, 1, false);
        assert!(matches!(
            StateGraph::of_mg(&mg, 100),
            Err(StgError::Inconsistent { .. })
        ));
    }

    #[test]
    fn full_stg_sg_handles_choice() {
        let text = "\
.model choice
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ c+
b+ c+
c+ p1
p1 a- b-
a- c-
b- c-
c- p0
.marking { p0 }
.end
";
        // A free-choice STG where either a or b handshakes with c. Note the
        // second choice must match the first for consistency, so this STG is
        // only consistent if a+ pairs with a- — here both orders exist, so
        // consistency fails. Use it to check error reporting:
        let stg = parse_astg(text).expect("parses");
        assert!(StateGraph::of_stg(&stg, 1000).is_err());
    }

    #[test]
    fn full_stg_sg_of_imec_benchmark() {
        let stg = parse_astg(crate::parse::IMEC_RAM_READ_SBUF_G).expect("valid");
        let sg = StateGraph::of_stg(&stg, 100_000).expect("consistent");
        assert_eq!(sg.state_count(), 112); // thesis Table 7.2
    }

    #[test]
    fn indexed_regions_are_connected_partitions() {
        // fifo-double style: a signal toggling twice per cycle has two
        // disjoint positive excitation regions. Use a chain where x rises
        // twice: x+ a+ x- x+/2 b+ x-/2 (ring).
        let text = "\
.model twice
.inputs a b
.outputs x
.graph
x+ a+
a+ x-
x- a-
a- x+/2
x+/2 b+
b+ x-/2
x-/2 b-
b- x+
.marking { <b-,x+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let mg = MgStg::from_stg_mg(&stg).expect("marked graph");
        let sg = StateGraph::of_mg(&mg, 1000).expect("consistent");
        let x = stg.signal_by_name("x").expect("declared");
        let ers = sg.er_regions(x, Polarity::Plus);
        assert_eq!(ers.len(), 2, "two separate ER(x+) components: {ers:?}");
        let qrs = sg.qr_regions(x, true);
        assert_eq!(qrs.len(), 2, "two separate QR(x+) components: {qrs:?}");
        // Regions partition their aggregate sets.
        let total: usize = ers.iter().map(Vec::len).sum();
        assert_eq!(total, sg.er_states(x, Polarity::Plus).len());
    }

    /// The chain `x+ → y+ → o+ → x- → y- → o- → x+` of the relaxation
    /// tests, plus its relaxed successor (the arcs `relax_arc` produces
    /// for `x+ ⇒ y+`: the direct arc removed, bypasses `o- ⇒ y+` and
    /// `x+ ⇒ o+` inserted).
    fn chain_and_relaxed() -> (MgStg, MgStg) {
        let text = "\
.model chain
.inputs x y
.outputs o
.graph
x+ y+
y+ o+
o+ x-
x- y-
y- o-
o- x+
.marking { <o-,x+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let parent = MgStg::from_stg_mg(&stg).expect("marked graph");
        let xp = parent.transition_by_label("x+").expect("present");
        let yp = parent.transition_by_label("y+").expect("present");
        let op = parent.transition_by_label("o+").expect("present");
        let om = parent.transition_by_label("o-").expect("present");
        let mut child = parent.clone();
        child.remove_arc(xp, yp);
        child.insert_arc(om, yp, 1, false);
        child.insert_arc(xp, op, 0, false);
        (parent, child)
    }

    #[test]
    fn incremental_regeneration_matches_scratch_after_relaxation_edit() {
        let (parent, child) = chain_and_relaxed();
        let parent_sg = StateGraph::of_mg(&parent, 1000).expect("consistent");
        let scratch = StateGraph::of_mg(&child, 1000).expect("consistent");
        let (inc, map) =
            StateGraph::of_mg_from(&parent, &parent_sg, &child, 1000).expect("derives");
        let map = map.expect("a relaxation edit must take the delta path");
        assert_eq!(inc, scratch);
        assert!(
            inc.state_count() > parent_sg.state_count(),
            "relaxation grows the interleaving space: {} vs {}",
            inc.state_count(),
            parent_sg.state_count()
        );
        assert_sg_map_contract(&inc, &parent_sg, &map);
    }

    /// Checks the [`SgMap`] reuse contract against its definition: every
    /// unaffected child state has a parent counterpart with the same code
    /// and an elementwise-identical edge list under the correspondence.
    fn assert_sg_map_contract(child: &StateGraph, parent: &StateGraph, map: &SgMap) {
        assert_eq!(map.parent_of.len(), child.state_count());
        assert_eq!(map.affected.len(), child.state_count());
        for i in 0..child.state_count() {
            if map.affected[i] {
                continue;
            }
            let p = map.parent_of[i].expect("unaffected implies mapped");
            assert_eq!(child.states[i].code, parent.states[p].code, "state {i}");
            assert_eq!(
                child.edges[i].len(),
                parent.edges[p].len(),
                "state {i} edge count"
            );
            for (&(t, j), &(pt, pj)) in child.edges[i].iter().zip(&parent.edges[p]) {
                assert_eq!(t, pt, "state {i}");
                assert_eq!(map.parent_of[j], Some(pj), "state {i} successor");
                assert_eq!(child.label(t), parent.label(pt), "state {i} label");
            }
        }
    }

    #[test]
    fn incremental_regeneration_matches_scratch_after_token_move() {
        let (_, mg) = handshake_mg();
        let parent_sg = StateGraph::of_mg(&mg, 100).expect("consistent");
        // Advance the cycle by one firing of req+: the token moves from
        // <ack-, req+> to <req+, ack+> and the initial code flips req.
        let reqp = mg.transition_by_label("req+").expect("present");
        let ackp = mg.transition_by_label("ack+").expect("present");
        let ackm = mg.transition_by_label("ack-").expect("present");
        let mut child = mg.clone();
        child.remove_arc(reqp, ackp);
        child.insert_arc(reqp, ackp, 1, false);
        child.remove_arc(ackm, reqp);
        child.insert_arc(ackm, reqp, 0, false);
        child.set_initial_code(1);
        let scratch = StateGraph::of_mg(&child, 100).expect("consistent");
        let (inc, map) = StateGraph::of_mg_from(&mg, &parent_sg, &child, 100).expect("derives");
        let map = map.expect("delta path");
        assert_eq!(inc, scratch);
        assert_sg_map_contract(&inc, &parent_sg, &map);
        // The token move shifts every code, so no verdict is reusable.
        assert_eq!(map.unaffected_count(), 0);
    }

    #[test]
    fn incremental_regeneration_replays_failures_exactly() {
        // Under every budget — including ones neither graph fits in — the
        // incremental derivation must reproduce the scratch result, Ok or
        // Err alike.
        let (parent, child) = chain_and_relaxed();
        let parent_sg = StateGraph::of_mg(&parent, 1000).expect("consistent");
        for budget in 1..=10 {
            let scratch = StateGraph::of_mg(&child, budget);
            let inc = StateGraph::of_mg_from(&parent, &parent_sg, &child, budget).map(|(sg, _)| sg);
            assert_eq!(inc, scratch, "budget {budget}");
        }
        // An inconsistent edit (removing y+'s only ordering toward o+
        // leaves o+ racing) must fail identically on both paths.
        let mut bad = parent.clone();
        let yp = bad.transition_by_label("y+").expect("present");
        let op = bad.transition_by_label("o+").expect("present");
        let om = bad.transition_by_label("o-").expect("present");
        bad.remove_arc(yp, op);
        bad.insert_arc(om, op, 1, false);
        let scratch = StateGraph::of_mg(&bad, 1000);
        let inc = StateGraph::of_mg_from(&parent, &parent_sg, &bad, 1000).map(|(sg, _)| sg);
        assert!(scratch.is_err(), "edit must be inconsistent");
        assert_eq!(inc, scratch);
    }

    #[test]
    fn incremental_regeneration_falls_back_on_alive_mismatch() {
        // Projecting the handshake down to the ack cycle removes both req
        // transitions: the alive sets differ, so the delta path must
        // decline and the scratch fallback must still match.
        let (_, mg) = handshake_mg();
        let parent_sg = StateGraph::of_mg(&mg, 100).expect("consistent");
        let reqp = mg.transition_by_label("req+").expect("present");
        let reqm = mg.transition_by_label("req-").expect("present");
        let ackp = mg.transition_by_label("ack+").expect("present");
        let ackm = mg.transition_by_label("ack-").expect("present");
        let mut child = mg.clone();
        child.remove_transition(reqp);
        child.remove_transition(reqm);
        child.insert_arc(ackp, ackm, 0, false);
        child.insert_arc(ackm, ackp, 1, false);
        let scratch = StateGraph::of_mg(&child, 100).expect("consistent");
        let (inc, map) = StateGraph::of_mg_from(&mg, &parent_sg, &child, 100).expect("derives");
        assert!(
            map.is_none(),
            "a removed transition must force the fallback"
        );
        assert_eq!(inc, scratch);
    }

    #[test]
    fn sg_map_leaves_undisturbed_states_unaffected() {
        // A redundant ordering arc (req+ ⇒ req-) changes no reachable
        // behaviour: every state keeps its code and edge list, so the
        // affected cone must be empty and the correspondence total.
        let (_, mg) = handshake_mg();
        let parent_sg = StateGraph::of_mg(&mg, 100).expect("consistent");
        let reqp = mg.transition_by_label("req+").expect("present");
        let reqm = mg.transition_by_label("req-").expect("present");
        let mut child = mg.clone();
        child.insert_arc(reqp, reqm, 0, false);
        let (inc, map) = StateGraph::of_mg_from(&mg, &parent_sg, &child, 100).expect("derives");
        let map = map.expect("delta path");
        assert_eq!(inc, StateGraph::of_mg(&child, 100).expect("consistent"));
        assert_eq!(map.unaffected_count(), inc.state_count());
        assert_sg_map_contract(&inc, &parent_sg, &map);
    }

    #[test]
    fn sigma_cold_generation_matches_marking_keyed_generation() {
        let (_, mg) = handshake_mg();
        let (parent, child) = chain_and_relaxed();
        for mg in [&mg, &parent, &child] {
            assert_eq!(
                StateGraph::of_mg_sigma(mg, 1000).expect("consistent"),
                StateGraph::of_mg(mg, 1000).expect("consistent")
            );
        }
        // Budget and consistency failures replay at the same point.
        for budget in 1..=10 {
            let scratch = StateGraph::of_mg(&child, budget);
            let sigma = StateGraph::of_mg_sigma(&child, budget);
            assert_eq!(sigma, scratch, "budget {budget}");
        }
    }

    #[test]
    fn next_transition_of_follows_paths() {
        let (stg, mg) = handshake_mg();
        let sg = StateGraph::of_mg(&mg, 100).expect("consistent");
        let ack = stg.signal_by_name("ack").expect("declared");
        let next = sg
            .next_transition_of(0, ack, "ack")
            .expect("consistent")
            .expect("fires");
        assert_eq!(sg.label(next).polarity, Polarity::Plus);
    }

    #[test]
    fn concurrency_diamonds_enumerate_all_interleavings() {
        // a+ → (b+ ∥ c+) → a- → (b- ∥ c-) → a+: two diamonds, 8 states.
        let text = "\
.model diamonds
.inputs a
.outputs b c
.graph
a+ b+ c+
b+ a-
c+ a-
a- b- c-
b- a+
c- a+
.marking { <b-,a+> <c-,a+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let mg = MgStg::from_stg_mg(&stg).expect("marked graph");
        let sg = StateGraph::of_mg(&mg, 1000).expect("consistent");
        assert_eq!(sg.state_count(), 8);
        // Codes are unique per marking here and consistent: b and c are
        // concurrent after a+, so both orders exist.
        let b = stg.signal_by_name("b").expect("declared");
        let c = stg.signal_by_name("c").expect("declared");
        assert_eq!(sg.er_states(b, Polarity::Plus).len(), 2);
        assert_eq!(sg.er_states(c, Polarity::Plus).len(), 2);
    }
}

use std::fmt;

/// Index of a signal inside an [`crate::Stg`]'s signal table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub usize);

/// Direction of a signal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Polarity {
    /// Rising transition (`a+`): logic low to logic high.
    Plus,
    /// Falling transition (`a-`): logic high to logic low.
    Minus,
}

impl Polarity {
    /// The opposite polarity.
    pub fn opposite(self) -> Self {
        match self {
            Polarity::Plus => Polarity::Minus,
            Polarity::Minus => Polarity::Plus,
        }
    }

    /// The signal value *after* a transition of this polarity fires.
    pub fn target_value(self) -> bool {
        matches!(self, Polarity::Plus)
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::Plus => write!(f, "+"),
            Polarity::Minus => write!(f, "-"),
        }
    }
}

/// Role of a signal in the circuit (thesis Sec. 2.3: `A = I ∪ O ∪ R`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SignalKind {
    /// Primary input: driven by the environment.
    Input,
    /// Primary output: driven by a gate and observed by the environment.
    Output,
    /// Internal: driven by a gate, not visible to the environment.
    Internal,
}

impl SignalKind {
    /// Whether a gate in the circuit drives this signal.
    pub fn is_gate_driven(self) -> bool {
        !matches!(self, SignalKind::Input)
    }
}

/// A signal-transition label `a+/i` (thesis Sec. 3.3): signal, polarity and
/// 1-based occurrence index distinguishing multiple transitions on the same
/// signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionLabel {
    /// The underlying signal.
    pub signal: SignalId,
    /// Rising or falling.
    pub polarity: Polarity,
    /// 1-based occurrence index (`a+` is occurrence 1, `a+/2` is 2, …).
    pub occurrence: u32,
}

impl TransitionLabel {
    /// Builds a label; `occurrence` defaults to 1 via [`Self::first`].
    pub fn new(signal: SignalId, polarity: Polarity, occurrence: u32) -> Self {
        Self {
            signal,
            polarity,
            occurrence,
        }
    }

    /// The first occurrence `sig±`.
    pub fn first(signal: SignalId, polarity: Polarity) -> Self {
        Self::new(signal, polarity, 1)
    }

    /// Whether the two labels are transitions on the same signal.
    pub fn same_signal(&self, other: &Self) -> bool {
        self.signal == other.signal
    }

    /// Renders the label with a signal-name table (`req+`, `csc0-/2`).
    pub fn display<'a>(&'a self, names: &'a [String]) -> impl fmt::Display + 'a {
        struct D<'a>(&'a TransitionLabel, &'a [String]);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.1[self.0.signal.0], self.0.polarity)?;
                if self.0.occurrence != 1 {
                    write!(f, "/{}", self.0.occurrence)?;
                }
                Ok(())
            }
        }
        D(self, names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_round_trip() {
        assert_eq!(Polarity::Plus.opposite(), Polarity::Minus);
        assert_eq!(Polarity::Minus.opposite(), Polarity::Plus);
        assert!(Polarity::Plus.target_value());
        assert!(!Polarity::Minus.target_value());
    }

    #[test]
    fn label_display() {
        let names = vec!["req".to_string(), "ack".to_string()];
        let l1 = TransitionLabel::first(SignalId(0), Polarity::Plus);
        let l2 = TransitionLabel::new(SignalId(1), Polarity::Minus, 2);
        assert_eq!(l1.display(&names).to_string(), "req+");
        assert_eq!(l2.display(&names).to_string(), "ack-/2");
    }

    #[test]
    fn kinds() {
        assert!(!SignalKind::Input.is_gate_driven());
        assert!(SignalKind::Output.is_gate_driven());
        assert!(SignalKind::Internal.is_gate_driven());
    }
}

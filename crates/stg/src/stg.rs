use std::error::Error;
use std::fmt;

use si_petri::{decompose_into_mg_components, PetriError, PetriNet, TransitionId};

use crate::mg::MgStg;
use crate::signal::{Polarity, SignalId, SignalKind, TransitionLabel};

/// Errors produced by STG-level analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StgError {
    /// An underlying net analysis failed.
    Petri(PetriError),
    /// The STG violates consistency: rising and falling transitions of a
    /// signal do not alternate (thesis Sec. 3.3).
    Inconsistent {
        /// Name of the offending signal.
        signal: String,
    },
    /// A signal never fires from the initial marking, so its initial value
    /// cannot be determined.
    DeadSignal {
        /// Name of the signal.
        signal: String,
    },
    /// More signals than the 64-bit state encoding supports.
    TooManySignals {
        /// Signal count.
        count: usize,
    },
    /// The marked-graph view cannot be built (e.g. a dangling place).
    MalformedMarkedGraph {
        /// Explanation.
        reason: String,
    },
    /// A referenced signal does not exist.
    UnknownSignal {
        /// The missing name.
        name: String,
    },
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::Petri(e) => write!(f, "{e}"),
            StgError::Inconsistent { signal } => {
                write!(f, "STG is not consistent on signal `{signal}`")
            }
            StgError::DeadSignal { signal } => {
                write!(f, "signal `{signal}` never fires from the initial marking")
            }
            StgError::TooManySignals { count } => {
                write!(f, "{count} signals exceed the 64-signal state encoding")
            }
            StgError::MalformedMarkedGraph { reason } => {
                write!(f, "malformed marked graph: {reason}")
            }
            StgError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
        }
    }
}

impl Error for StgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StgError::Petri(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PetriError> for StgError {
    fn from(e: PetriError) -> Self {
        StgError::Petri(e)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SignalDecl {
    pub name: String,
    pub kind: SignalKind,
}

/// A signal transition graph: a labelled Petri net (thesis Sec. 3.3).
///
/// Transitions of the underlying net carry [`TransitionLabel`]s; signals are
/// declared with a [`SignalKind`] matching the `.inputs` / `.outputs` /
/// `.internal` sections of the `.g` format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stg {
    /// Model name (the `.model` line).
    pub name: String,
    pub(crate) net: PetriNet,
    pub(crate) signals: Vec<SignalDecl>,
    pub(crate) labels: Vec<TransitionLabel>,
}

impl Stg {
    /// Creates an empty STG.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            net: PetriNet::new(),
            signals: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Declares a signal and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared.
    pub fn add_signal(&mut self, name: impl Into<String>, kind: SignalKind) -> SignalId {
        let name = name.into();
        assert!(
            self.signal_by_name(&name).is_none(),
            "signal `{name}` is already declared"
        );
        self.signals.push(SignalDecl { name, kind });
        SignalId(self.signals.len() - 1)
    }

    /// Adds a labelled transition and returns the underlying net id.
    pub fn add_transition(&mut self, label: TransitionLabel) -> TransitionId {
        let name = label.display(&self.signal_names()).to_string();
        let t = self.net.add_transition(name);
        self.labels.push(label);
        t
    }

    /// Connects two transitions through a fresh implicit place holding
    /// `tokens` tokens; returns nothing (the place is anonymous).
    pub fn add_arc(&mut self, from: TransitionId, to: TransitionId, tokens: u32) {
        let pname = format!(
            "<{},{}>",
            self.net.transition_name(from),
            self.net.transition_name(to)
        );
        let p = self.net.add_place(pname, tokens);
        self.net.add_arc_tp(from, p);
        self.net.add_arc_pt(p, to);
    }

    /// The underlying Petri net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// Mutable access to the underlying net, for explicit-place construction.
    pub fn net_mut(&mut self) -> &mut PetriNet {
        &mut self.net
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// All signal ids.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> {
        (0..self.signals.len()).map(SignalId)
    }

    /// Name of signal `s`.
    pub fn signal_name(&self, s: SignalId) -> &str {
        &self.signals[s.0].name
    }

    /// Kind of signal `s`.
    pub fn signal_kind(&self, s: SignalId) -> SignalKind {
        self.signals[s.0].kind
    }

    /// The full name table, indexed by [`SignalId`].
    pub fn signal_names(&self) -> Vec<String> {
        self.signals.iter().map(|d| d.name.clone()).collect()
    }

    /// Finds a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|d| d.name == name)
            .map(SignalId)
    }

    /// Label of transition `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn label(&self, t: TransitionId) -> TransitionLabel {
        self.labels[t.0]
    }

    /// All transitions labelled with signal `s`.
    pub fn transitions_of(&self, s: SignalId) -> Vec<TransitionId> {
        self.net
            .transitions()
            .filter(|t| self.labels[t.0].signal == s)
            .collect()
    }

    /// Signals of kind Input / Output / Internal.
    pub fn signals_of_kind(&self, kind: SignalKind) -> Vec<SignalId> {
        self.signal_ids()
            .filter(|&s| self.signal_kind(s) == kind)
            .collect()
    }

    /// Non-input signals (`R ∪ O`): those implemented by gates.
    pub fn gate_signals(&self) -> Vec<SignalId> {
        self.signal_ids()
            .filter(|&s| self.signal_kind(s).is_gate_driven())
            .collect()
    }

    /// Computes the initial value of every signal by simulating a firing
    /// sequence until each signal has fired once: a signal whose first
    /// transition is falling starts at 1, rising starts at 0 (consistency
    /// makes the first polarity path-independent).
    ///
    /// # Errors
    ///
    /// [`StgError::DeadSignal`] if some signal never fires (the STG is not
    /// live), [`StgError::TooManySignals`] for > 64 signals.
    pub fn initial_values(&self) -> Result<Vec<bool>, StgError> {
        if self.signals.len() > 64 {
            return Err(StgError::TooManySignals {
                count: self.signals.len(),
            });
        }
        // For each signal, the first transition reachable along any path
        // determines the initial value; consistency makes the polarity
        // path-independent, which is verified here. A per-signal BFS over
        // the reachability graph handles free choice (a deterministic
        // firing sequence could starve one branch).
        let reach = self.net.reachability(1_000_000)?;
        let mut values = Vec::with_capacity(self.signals.len());
        for s in 0..self.signals.len() {
            let mut polarity: Option<Polarity> = None;
            let mut seen = vec![false; reach.markings.len()];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(i) = stack.pop() {
                for &(t, j) in &reach.edges[i] {
                    let label = self.labels[t.0];
                    if label.signal.0 == s {
                        match polarity {
                            None => polarity = Some(label.polarity),
                            Some(p) if p != label.polarity => {
                                return Err(StgError::Inconsistent {
                                    signal: self.signals[s].name.clone(),
                                });
                            }
                            _ => {}
                        }
                    } else if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
            match polarity {
                Some(Polarity::Plus) => values.push(false),
                Some(Polarity::Minus) => values.push(true),
                None => {
                    return Err(StgError::DeadSignal {
                        signal: self.signals[s].name.clone(),
                    })
                }
            }
        }
        Ok(values)
    }

    /// Decomposes the (free-choice) STG into marked-graph STG components
    /// (thesis Sec. 5.2.1), capping allocation enumeration at `cap`.
    ///
    /// # Errors
    ///
    /// Propagates decomposition errors and malformed-component errors.
    pub fn mg_components(&self, cap: usize) -> Result<Vec<MgStg>, StgError> {
        let comps = decompose_into_mg_components(&self.net, cap)?;
        comps
            .iter()
            .map(|c| MgStg::from_component(self, c))
            .collect()
    }

    /// A label rendered with this STG's signal names.
    pub fn label_string(&self, label: TransitionLabel) -> String {
        label.display(&self.signal_names()).to_string()
    }

    /// Checks the well-formedness properties the thesis flow assumes:
    /// liveness, safeness, free choice and consistency, plus basic size
    /// statistics. `budget` bounds the state exploration.
    ///
    /// # Errors
    ///
    /// Propagates state-budget exhaustion; individual property failures
    /// are reported in the returned [`StgHealth`], not as errors.
    pub fn validate(&self, budget: usize) -> Result<StgHealth, StgError> {
        let live = self.net.is_live(budget)?;
        let safe = self.net.is_safe(budget)?;
        let free_choice = self.net.is_free_choice();
        let consistent = match crate::sg::StateGraph::of_stg(self, budget) {
            Ok(sg) => {
                return Ok(StgHealth {
                    live,
                    safe,
                    free_choice,
                    consistent: true,
                    states: Some(sg.state_count()),
                    transitions: self.net.transition_count(),
                    signals: self.signal_count(),
                })
            }
            Err(StgError::Inconsistent { .. }) => false,
            Err(e) => return Err(e),
        };
        Ok(StgHealth {
            live,
            safe,
            free_choice,
            consistent,
            states: None,
            transitions: self.net.transition_count(),
            signals: self.signal_count(),
        })
    }
}

/// Well-formedness summary returned by [`Stg::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StgHealth {
    /// Every transition stays fireable (thesis Sec. 3.2).
    pub live: bool,
    /// Every place holds at most one token.
    pub safe: bool,
    /// Every choice place is free-choice (required by Hack decomposition).
    pub free_choice: bool,
    /// Rising/falling transitions alternate per signal.
    pub consistent: bool,
    /// Reachable state count, when consistent.
    pub states: Option<usize>,
    /// Transition count.
    pub transitions: usize,
    /// Signal count.
    pub signals: usize,
}

impl StgHealth {
    /// Whether the STG satisfies everything the derivation flow requires.
    pub fn is_well_formed(&self) -> bool {
        self.live && self.safe && self.free_choice && self.consistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple handshake: req+ → ack+ → req- → ack- → (back).
    pub(crate) fn handshake() -> Stg {
        let mut stg = Stg::new("handshake");
        let req = stg.add_signal("req", SignalKind::Input);
        let ack = stg.add_signal("ack", SignalKind::Output);
        let rp = stg.add_transition(TransitionLabel::first(req, Polarity::Plus));
        let ap = stg.add_transition(TransitionLabel::first(ack, Polarity::Plus));
        let rm = stg.add_transition(TransitionLabel::first(req, Polarity::Minus));
        let am = stg.add_transition(TransitionLabel::first(ack, Polarity::Minus));
        stg.add_arc(rp, ap, 0);
        stg.add_arc(ap, rm, 0);
        stg.add_arc(rm, am, 0);
        stg.add_arc(am, rp, 1);
        stg
    }

    #[test]
    fn initial_values_from_first_polarity() {
        let stg = handshake();
        assert_eq!(stg.initial_values().expect("live"), vec![false, false]);
    }

    #[test]
    fn initial_values_high_signal() {
        // ack starts high: ack- fires first.
        let mut stg = Stg::new("inv");
        let a = stg.add_signal("a", SignalKind::Input);
        let b = stg.add_signal("b", SignalKind::Output);
        let ap = stg.add_transition(TransitionLabel::first(a, Polarity::Plus));
        let bm = stg.add_transition(TransitionLabel::first(b, Polarity::Minus));
        let am = stg.add_transition(TransitionLabel::first(a, Polarity::Minus));
        let bp = stg.add_transition(TransitionLabel::first(b, Polarity::Plus));
        stg.add_arc(ap, bm, 0);
        stg.add_arc(bm, am, 0);
        stg.add_arc(am, bp, 0);
        stg.add_arc(bp, ap, 1);
        assert_eq!(stg.initial_values().expect("live"), vec![false, true]);
    }

    #[test]
    fn dead_signal_is_reported() {
        let mut stg = Stg::new("dead");
        let a = stg.add_signal("a", SignalKind::Input);
        let b = stg.add_signal("b", SignalKind::Output);
        let ap = stg.add_transition(TransitionLabel::first(a, Polarity::Plus));
        let am = stg.add_transition(TransitionLabel::first(a, Polarity::Minus));
        stg.add_arc(ap, am, 0);
        stg.add_arc(am, ap, 1);
        // b has a transition that can never fire.
        let bp = stg.add_transition(TransitionLabel::first(b, Polarity::Plus));
        let dead = stg.net_mut().add_place("dead", 0);
        stg.net_mut().add_arc_pt(dead, bp);
        assert_eq!(
            stg.initial_values(),
            Err(StgError::DeadSignal {
                signal: "b".to_string()
            })
        );
    }

    #[test]
    fn transitions_of_signal() {
        let stg = handshake();
        let req = stg.signal_by_name("req").expect("declared");
        let ts = stg.transitions_of(req);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already declared")]
    fn duplicate_signal_panics() {
        let mut stg = Stg::new("dup");
        stg.add_signal("a", SignalKind::Input);
        stg.add_signal("a", SignalKind::Output);
    }

    #[test]
    fn validate_reports_well_formedness() {
        let health = handshake().validate(1000).expect("bounded");
        assert!(health.is_well_formed());
        assert_eq!(health.states, Some(4));
        assert_eq!(health.signals, 2);
        assert_eq!(health.transitions, 4);
    }

    #[test]
    fn validate_flags_inconsistency() {
        let mut stg = Stg::new("bad");
        let a = stg.add_signal("a", SignalKind::Input);
        let t1 = stg.add_transition(TransitionLabel::new(a, Polarity::Plus, 1));
        let t2 = stg.add_transition(TransitionLabel::new(a, Polarity::Plus, 2));
        stg.add_arc(t1, t2, 0);
        stg.add_arc(t2, t1, 1);
        let health = stg.validate(1000).expect("bounded");
        assert!(!health.consistent);
        assert!(!health.is_well_formed());
        assert!(health.live);
    }

    #[test]
    fn gate_signals_exclude_inputs() {
        let stg = handshake();
        let gs = stg.gate_signals();
        assert_eq!(gs.len(), 1);
        assert_eq!(stg.signal_name(gs[0]), "ack");
    }
}

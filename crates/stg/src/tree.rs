//! The tree-building layer of the `.g` front-end: folds the
//! [`ParseEvent`] stream into the [`Stg`] + [`SpecSpans`] + defect list
//! that [`parse_astg_lenient`](crate::parse::parse_astg_lenient) has
//! always produced. All semantic recovery lives here — auto-declaring
//! undeclared signals as inputs, merging duplicate arcs, resolving
//! implicit `<t1,t2>` places — while the lexer and event layers stay
//! purely syntactic. Because syntactic defects arrive as
//! [`ParseEvent::Defect`] entries *interleaved* with the tokens, the
//! folded defect list preserves the single-pass parser's source order
//! exactly.

use std::collections::{BTreeMap, BTreeSet};

use si_petri::{PlaceId, TransitionId};

use crate::events::{ParseEvent, ParseNodeKind};
use crate::lexer::{Token, TokenKind};
use crate::parse::{LenientParse, ParseAstgError, ParseErrorKind, Span, SpecSpans};
use crate::signal::{Polarity, SignalKind, TransitionLabel};
use crate::stg::Stg;

/// What a `.graph` node token denotes, before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeRef {
    Transition(String, Polarity, u32),
    Place(String),
}

fn parse_node(token: &str) -> NodeRef {
    let (base, occurrence) = match token.split_once('/') {
        Some((b, occ)) => match occ.parse::<u32>() {
            Ok(n) if n >= 1 => (b, n),
            _ => return NodeRef::Place(token.to_string()),
        },
        None => (token, 1),
    };
    if let Some(name) = base.strip_suffix('+') {
        if !name.is_empty() {
            return NodeRef::Transition(name.to_string(), Polarity::Plus, occurrence);
        }
    }
    if let Some(name) = base.strip_suffix('-') {
        if !name.is_empty() {
            return NodeRef::Transition(name.to_string(), Polarity::Minus, occurrence);
        }
    }
    NodeRef::Place(token.to_string())
}

#[derive(Debug, Clone, Copy)]
enum NodeKind {
    T(TransitionId),
    P(PlaceId),
}

impl NodeKind {
    /// A stable dedup key: transitions and places in disjoint ranges.
    fn key(self) -> (u8, usize) {
        match self {
            NodeKind::T(t) => (0, t.0),
            NodeKind::P(p) => (1, p.0),
        }
    }
}

/// Folds [`ParseEvent`]s into a [`LenientParse`]. Push events in stream
/// order with [`TreeBuilder::push`] (feed-by-feed is fine — the builder
/// is as incremental as the event source), then take the result with
/// [`TreeBuilder::finish`].
#[derive(Debug)]
pub struct TreeBuilder {
    stg: Stg,
    declared: BTreeMap<String, SignalKind>,
    transitions: BTreeMap<(String, Polarity, u32), TransitionId>,
    places: BTreeMap<String, PlaceId>,
    implicit: BTreeMap<(TransitionId, TransitionId), PlaceId>,
    arcs_seen: BTreeSet<((u8, usize), (u8, usize))>,
    errors: Vec<ParseAstgError>,
    spans: SpecSpans,
    /// Declaration kind of the open `.inputs`/`.outputs`/`.internal`
    /// node, if any.
    decl_kind: Option<SignalKind>,
    /// Source node of the open graph line (its first token), if resolved.
    graph_src: Option<NodeKind>,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    /// A fresh builder around an empty `Stg` named `stg` (overwritten by
    /// a `.model` line, exactly as the single-pass parser did).
    #[must_use]
    pub fn new() -> Self {
        Self {
            stg: Stg::new("stg"),
            declared: BTreeMap::new(),
            transitions: BTreeMap::new(),
            places: BTreeMap::new(),
            implicit: BTreeMap::new(),
            arcs_seen: BTreeSet::new(),
            errors: Vec::new(),
            spans: SpecSpans::default(),
            decl_kind: None,
            graph_src: None,
        }
    }

    /// Folds one event.
    pub fn push(&mut self, event: &ParseEvent) {
        match event {
            ParseEvent::Open { kind, span } => match kind {
                ParseNodeKind::Model => self.spans.model = Some(*span),
                ParseNodeKind::Inputs => self.decl_kind = Some(SignalKind::Input),
                ParseNodeKind::Outputs => self.decl_kind = Some(SignalKind::Output),
                ParseNodeKind::Internal => self.decl_kind = Some(SignalKind::Internal),
                ParseNodeKind::GraphLine => self.graph_src = None,
                ParseNodeKind::Marking => self.spans.marking = Some(*span),
                ParseNodeKind::Document | ParseNodeKind::Graph => {}
            },
            ParseEvent::Close { kind } => match kind {
                ParseNodeKind::Inputs | ParseNodeKind::Outputs | ParseNodeKind::Internal => {
                    self.decl_kind = None;
                }
                ParseNodeKind::GraphLine => self.graph_src = None,
                _ => {}
            },
            ParseEvent::Token(token) => self.token(token),
            ParseEvent::Defect(e) => self.errors.push(e.clone()),
        }
    }

    /// The folded result. No synthetic defects are added here — the
    /// event source owns syntax (including the missing-`.graph` check).
    #[must_use]
    pub fn finish(self) -> LenientParse {
        LenientParse {
            stg: self.stg,
            errors: self.errors,
            spans: self.spans,
        }
    }

    fn token(&mut self, token: &Token) {
        match token.kind {
            TokenKind::Model => self.stg.name = token.text.clone(),
            TokenKind::Name => {
                // Outside a declaration node (possible only in hand-built
                // or foreign event streams) names default to inputs, the
                // same recovery the parser uses for undeclared signals.
                let kind = self.decl_kind.unwrap_or(SignalKind::Input);
                self.declare(kind, &token.text, token.span);
            }
            TokenKind::Node => {
                let node = self.resolve_node(&token.text, token.span);
                match self.graph_src {
                    None => self.graph_src = Some(node),
                    Some(src) => self.add_arc(src, node, token.span),
                }
            }
            TokenKind::MarkingEntry => self.marking_token(&token.text, token.span),
            // Marker kinds never appear inside event streams: the event
            // layer turns them into Open/Close/Defect entries.
            _ => {}
        }
    }

    fn error(&mut self, kind: ParseErrorKind, span: Span, message: impl Into<String>) {
        self.errors.push(ParseAstgError {
            kind,
            span,
            message: message.into(),
        });
    }

    fn declare(&mut self, kind: SignalKind, name: &str, span: Span) {
        if self.declared.contains_key(name) {
            self.error(
                ParseErrorKind::DuplicateSignal,
                span,
                format!("signal `{name}` declared twice"),
            );
            return;
        }
        self.declared.insert(name.to_string(), kind);
        self.stg.add_signal(name, kind);
        self.spans.signals.push(span);
    }

    /// Resolves a transition node, auto-declaring undeclared signals as
    /// inputs (with an [`ParseErrorKind::UndeclaredSignal`] defect) so the
    /// rest of the specification can still be analyzed.
    fn resolve_transition(
        &mut self,
        name: &str,
        pol: Polarity,
        occ: u32,
        span: Span,
    ) -> TransitionId {
        if self.stg.signal_by_name(name).is_none() {
            self.error(
                ParseErrorKind::UndeclaredSignal,
                span,
                format!("undeclared signal `{name}`"),
            );
            self.declared.insert(name.to_string(), SignalKind::Input);
            self.stg.add_signal(name, SignalKind::Input);
            self.spans.signals.push(span);
        }
        let sig = self.stg.signal_by_name(name).expect("just ensured");
        if let Some(&t) = self.transitions.get(&(name.to_string(), pol, occ)) {
            return t;
        }
        let t = self.stg.add_transition(TransitionLabel::new(sig, pol, occ));
        self.transitions.insert((name.to_string(), pol, occ), t);
        self.spans.transitions.push(span);
        t
    }

    fn resolve_place(&mut self, name: &str, span: Span) -> PlaceId {
        if let Some(&p) = self.places.get(name) {
            return p;
        }
        let p = self.stg.net_mut().add_place(name, 0);
        self.places.insert(name.to_string(), p);
        self.spans.places.push(span);
        p
    }

    fn resolve_node(&mut self, token: &str, span: Span) -> NodeKind {
        match parse_node(token) {
            NodeRef::Transition(name, pol, occ) => {
                NodeKind::T(self.resolve_transition(&name, pol, occ, span))
            }
            NodeRef::Place(name) => NodeKind::P(self.resolve_place(&name, span)),
        }
    }

    /// Adds one `.graph` arc, merging duplicates (with a defect) and
    /// skipping place-to-place arcs (with a defect).
    fn add_arc(&mut self, src: NodeKind, dst: NodeKind, dst_span: Span) {
        if !self.arcs_seen.insert((src.key(), dst.key())) {
            let name = |n: NodeKind| match n {
                NodeKind::T(t) => self.stg.net().transition_name(t).to_string(),
                NodeKind::P(p) => self.stg.net().place_name(p).to_string(),
            };
            self.error(
                ParseErrorKind::DuplicateArc,
                dst_span,
                format!("duplicate arc `{} {}` is merged", name(src), name(dst)),
            );
            return;
        }
        match (src, dst) {
            (NodeKind::T(a), NodeKind::T(b)) => {
                if !self.implicit.contains_key(&(a, b)) {
                    let pname = format!(
                        "<{},{}>",
                        self.stg.net().transition_name(a),
                        self.stg.net().transition_name(b)
                    );
                    let p = self.stg.net_mut().add_place(pname, 0);
                    self.stg.net_mut().add_arc_tp(a, p);
                    self.stg.net_mut().add_arc_pt(p, b);
                    self.implicit.insert((a, b), p);
                    self.spans.places.push(dst_span);
                }
            }
            (NodeKind::T(a), NodeKind::P(p)) => self.stg.net_mut().add_arc_tp(a, p),
            (NodeKind::P(p), NodeKind::T(b)) => self.stg.net_mut().add_arc_pt(p, b),
            (NodeKind::P(_), NodeKind::P(_)) => {
                self.error(
                    ParseErrorKind::Syntax,
                    dst_span,
                    "place-to-place arcs are not allowed",
                );
            }
        }
    }

    /// One raw marking entry token (`p0`, `<a+,b->`, `<a+,b->=2`).
    fn marking_token(&mut self, token: &str, span: Span) {
        let (name, count) = match token.split_once('=') {
            Some((n, k)) => match k.parse::<u32>() {
                Ok(count) => (n, count),
                Err(_) => {
                    self.error(
                        ParseErrorKind::Syntax,
                        span,
                        format!("bad token count in `{token}`"),
                    );
                    return;
                }
            },
            None => (token, 1),
        };
        self.marking_entry(name, count, span);
    }

    fn marking_entry(&mut self, name: &str, count: u32, span: Span) {
        if let Some(inner) = name.strip_prefix('<').and_then(|n| n.strip_suffix('>')) {
            let Some((a, b)) = inner.split_once(',') else {
                self.error(
                    ParseErrorKind::Syntax,
                    span,
                    format!("bad implicit place `{name}`"),
                );
                return;
            };
            let mut lookup = |tok: &str| -> Option<TransitionId> {
                match parse_node(tok.trim()) {
                    NodeRef::Transition(n, pol, occ) => {
                        let t = self.transitions.get(&(n, pol, occ)).copied();
                        if t.is_none() {
                            self.error(
                                ParseErrorKind::Syntax,
                                span,
                                format!("unknown transition `{tok}` in marking"),
                            );
                        }
                        t
                    }
                    NodeRef::Place(_) => {
                        self.error(
                            ParseErrorKind::Syntax,
                            span,
                            format!("`{tok}` is not a transition"),
                        );
                        None
                    }
                }
            };
            let (Some(ta), Some(tb)) = (lookup(a), lookup(b)) else {
                return;
            };
            match self.implicit.get(&(ta, tb)).copied() {
                Some(p) => self.stg.net_mut().set_initial(p, count),
                None => self.error(
                    ParseErrorKind::Syntax,
                    span,
                    format!("no implicit place `{name}` in the graph"),
                ),
            }
        } else {
            match self.places.get(name).copied() {
                Some(p) => self.stg.net_mut().set_initial(p, count),
                None => self.error(
                    ParseErrorKind::Syntax,
                    span,
                    format!("unknown place `{name}` in marking"),
                ),
            }
        }
    }
}

/// Folds a complete event stream into a [`LenientParse`] — the last leg
/// of the `lexer → events → tree` stack, also reachable from interchange
/// dumps via [`crate::sexp::read_events`].
pub fn tree_of_events<'a, I>(events: I) -> LenientParse
where
    I: IntoIterator<Item = &'a ParseEvent>,
{
    let mut builder = TreeBuilder::new();
    for event in events {
        builder.push(event);
    }
    builder.finish()
}

//! Property tests for the incremental state-graph regeneration: on a
//! random marked graph and a random single-arc edit, the delta-guided
//! derivation ([`StateGraph::of_mg_from`]) must agree with a from-scratch
//! regeneration *exactly* — identical states, arcs and edge order on
//! success, and the identical error under tight budgets or inconsistent
//! edits. The scratch generator is the pinned reference; any divergence
//! here is a soundness bug in the delta path.

use proptest::prelude::*;
use si_corpus::strategies::{random_mg_case, Edit, RandomMg};
use si_stg::StateGraph;

/// The shared [`si_corpus::strategies::random_mg_case`] drives these
/// properties: a random consistent ring MG plus a random single-arc
/// [`Edit`] (the same case shape the incremental classification
/// proptests in `si-core` use).
fn random_case() -> impl Strategy<Value = (RandomMg, Edit)> {
    random_mg_case()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn incremental_matches_scratch_under_a_generous_budget((spec, edit) in random_case()) {
        let parent = spec.build();
        let Ok(parent_sg) = StateGraph::of_mg(&parent, 10_000) else {
            return Ok(()); // no predecessor graph to regenerate from
        };
        let child = edit.apply_mg(&parent);
        let scratch = StateGraph::of_mg(&child, 10_000);
        let incremental =
            StateGraph::of_mg_from(&parent, &parent_sg, &child, 10_000).map(|(sg, _)| sg);
        prop_assert_eq!(incremental, scratch);
    }

    /// The [`si_stg::SgMap`] reuse contract: every state outside the
    /// affected cone has a parent counterpart with the same code and an
    /// elementwise-identical edge list under the correspondence — the
    /// exact precondition incremental conformance classification rests on.
    #[test]
    fn sg_map_unaffected_states_reproduce_their_parent((spec, edit) in random_case()) {
        let parent = spec.build();
        let Ok(parent_sg) = StateGraph::of_mg(&parent, 10_000) else {
            return Ok(());
        };
        let child = edit.apply_mg(&parent);
        let Ok((child_sg, Some(map))) =
            StateGraph::of_mg_from(&parent, &parent_sg, &child, 10_000) else {
            return Ok(()); // error or scratch fallback: no map to check
        };
        prop_assert_eq!(map.parent_of.len(), child_sg.state_count());
        prop_assert_eq!(map.affected.len(), child_sg.state_count());
        for i in 0..child_sg.state_count() {
            if map.affected[i] {
                continue;
            }
            let p = map.parent_of[i].expect("unaffected implies mapped");
            prop_assert_eq!(child_sg.states[i].code, parent_sg.states[p].code);
            prop_assert_eq!(child_sg.edges[i].len(), parent_sg.edges[p].len());
            for (&(t, j), &(pt, pj)) in child_sg.edges[i].iter().zip(&parent_sg.edges[p]) {
                prop_assert_eq!(t, pt);
                prop_assert_eq!(map.parent_of[j], Some(pj));
                prop_assert_eq!(child_sg.label(t), parent_sg.label(pt));
            }
        }
    }

    /// σ-space cold exploration must agree with the marking-keyed scratch
    /// generator exactly — Ok and Err alike, generous and tight budgets.
    #[test]
    fn sigma_cold_matches_scratch((spec, edit) in random_case()) {
        let parent = spec.build();
        let child = edit.apply_mg(&parent);
        for mg in [&parent, &child] {
            prop_assert_eq!(
                StateGraph::of_mg_sigma(mg, 10_000),
                StateGraph::of_mg(mg, 10_000)
            );
            for budget in [1usize, 2, 3, 5, 9, 17] {
                prop_assert_eq!(
                    StateGraph::of_mg_sigma(mg, budget),
                    StateGraph::of_mg(mg, budget)
                );
            }
        }
    }

    #[test]
    fn incremental_replays_tight_budget_failures_exactly((spec, edit) in random_case()) {
        let parent = spec.build();
        let Ok(parent_sg) = StateGraph::of_mg(&parent, 10_000) else {
            return Ok(());
        };
        let child = edit.apply_mg(&parent);
        for budget in [1usize, 2, 3, 5, 9, 17] {
            let scratch = StateGraph::of_mg(&child, budget);
            let incremental =
                StateGraph::of_mg_from(&parent, &parent_sg, &child, budget).map(|(sg, _)| sg);
            prop_assert_eq!(incremental, scratch);
        }
    }

    #[test]
    fn arc_delta_reconstructs_the_edited_arc_set((spec, edit) in random_case()) {
        let parent = spec.build();
        let child = edit.apply_mg(&parent);
        let delta = parent.arc_delta(&child);
        // Replaying the delta over the parent's arc set must yield the
        // child's arc set (token counts; restriction flags are out of
        // scope by design, matching `SgKey`).
        let mut arcs: std::collections::BTreeMap<(usize, usize), u32> = parent
            .arcs()
            .map(|((a, b), attr)| ((a, b), attr.tokens))
            .collect();
        for &(a, b, before, after) in &delta.changes {
            prop_assert_eq!(arcs.get(&(a, b)).copied(), before);
            match after {
                Some(tokens) => {
                    arcs.insert((a, b), tokens);
                }
                None => {
                    arcs.remove(&(a, b));
                }
            }
        }
        let child_arcs: std::collections::BTreeMap<(usize, usize), u32> = child
            .arcs()
            .map(|((a, b), attr)| ((a, b), attr.tokens))
            .collect();
        prop_assert_eq!(arcs, child_arcs);
        // Every changed arc's enabling effect lands on its destination.
        let dsts = delta.affected_dsts();
        for &(_, b, _, _) in &delta.changes {
            prop_assert!(dsts.contains(&b));
        }
    }
}

//! Property tests for the incremental state-graph regeneration: on a
//! random marked graph and a random single-arc edit, the delta-guided
//! derivation ([`StateGraph::of_mg_from`]) must agree with a from-scratch
//! regeneration *exactly* — identical states, arcs and edge order on
//! success, and the identical error under tight budgets or inconsistent
//! edits. The scratch generator is the pinned reference; any divergence
//! here is a soundness bug in the delta path.

use proptest::prelude::*;
use si_stg::{MgStg, Polarity, SignalKind, StateGraph, Stg, TransitionLabel};

/// One randomly generated marked graph: a consistent ring
/// `s0+ … s(k-1)+ s0- … s(k-1)-` (one token on the closing arc) plus a
/// handful of random extra arcs that may introduce concurrency, deadlock
/// or inconsistency — all of which the two derivation paths must report
/// identically.
#[derive(Debug, Clone)]
struct RandomMg {
    signals: usize,
    extras: Vec<(usize, usize, u32)>,
}

impl RandomMg {
    fn build(&self) -> MgStg {
        let mut stg = Stg::new("prop");
        let sigs: Vec<_> = (0..self.signals)
            .map(|i| stg.add_signal(format!("s{i}"), SignalKind::Input))
            .collect();
        let mut mg = MgStg::empty_like(&stg);
        let mut ring = Vec::new();
        for &s in &sigs {
            ring.push(mg.add_transition(TransitionLabel::first(s, Polarity::Plus)));
        }
        for &s in &sigs {
            ring.push(mg.add_transition(TransitionLabel::first(s, Polarity::Minus)));
        }
        for w in 0..ring.len() {
            let next = (w + 1) % ring.len();
            let tokens = u32::from(next == 0);
            mg.insert_arc(ring[w], ring[next], tokens, false);
        }
        for &(a, b, tokens) in &self.extras {
            mg.insert_arc(ring[a % ring.len()], ring[b % ring.len()], tokens, false);
        }
        mg
    }
}

/// A single-arc edit: remove an arc, insert one, or retoken one.
#[derive(Debug, Clone)]
enum Edit {
    Remove(usize),
    Insert(usize, usize, u32),
    Retoken(usize, u32),
}

impl Edit {
    /// Applies the edit to a clone of `mg` (indices wrap over the current
    /// arc list / transition list, so every drawn edit is applicable).
    fn apply(&self, mg: &MgStg) -> MgStg {
        let mut out = mg.clone();
        let arcs: Vec<(usize, usize)> = mg.arcs().map(|(k, _)| k).collect();
        let ts = mg.transitions();
        match *self {
            Edit::Remove(i) => {
                let (a, b) = arcs[i % arcs.len()];
                out.remove_arc(a, b);
            }
            Edit::Insert(a, b, tokens) => {
                out.insert_arc(ts[a % ts.len()], ts[b % ts.len()], tokens, false);
            }
            Edit::Retoken(i, tokens) => {
                let (a, b) = arcs[i % arcs.len()];
                out.remove_arc(a, b);
                out.insert_arc(a, b, tokens, false);
            }
        }
        out
    }
}

fn random_case() -> impl Strategy<Value = (RandomMg, Edit)> {
    let mg = (
        2usize..=5,
        proptest::collection::vec((0usize..10, 0usize..10, 0u32..=1), 0..4),
    )
        .prop_map(|(signals, extras)| RandomMg { signals, extras });
    let edit =
        (0u8..3, 0usize..32, 0usize..32, 0u32..=2).prop_map(|(kind, a, b, tokens)| match kind {
            0 => Edit::Remove(a),
            1 => Edit::Insert(a, b, tokens),
            _ => Edit::Retoken(a, tokens),
        });
    (mg, edit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn incremental_matches_scratch_under_a_generous_budget((spec, edit) in random_case()) {
        let parent = spec.build();
        let Ok(parent_sg) = StateGraph::of_mg(&parent, 10_000) else {
            return Ok(()); // no predecessor graph to regenerate from
        };
        let child = edit.apply(&parent);
        let scratch = StateGraph::of_mg(&child, 10_000);
        let incremental =
            StateGraph::of_mg_from(&parent, &parent_sg, &child, 10_000).map(|(sg, _)| sg);
        prop_assert_eq!(incremental, scratch);
    }

    /// The [`si_stg::SgMap`] reuse contract: every state outside the
    /// affected cone has a parent counterpart with the same code and an
    /// elementwise-identical edge list under the correspondence — the
    /// exact precondition incremental conformance classification rests on.
    #[test]
    fn sg_map_unaffected_states_reproduce_their_parent((spec, edit) in random_case()) {
        let parent = spec.build();
        let Ok(parent_sg) = StateGraph::of_mg(&parent, 10_000) else {
            return Ok(());
        };
        let child = edit.apply(&parent);
        let Ok((child_sg, Some(map))) =
            StateGraph::of_mg_from(&parent, &parent_sg, &child, 10_000) else {
            return Ok(()); // error or scratch fallback: no map to check
        };
        prop_assert_eq!(map.parent_of.len(), child_sg.state_count());
        prop_assert_eq!(map.affected.len(), child_sg.state_count());
        for i in 0..child_sg.state_count() {
            if map.affected[i] {
                continue;
            }
            let p = map.parent_of[i].expect("unaffected implies mapped");
            prop_assert_eq!(child_sg.states[i].code, parent_sg.states[p].code);
            prop_assert_eq!(child_sg.edges[i].len(), parent_sg.edges[p].len());
            for (&(t, j), &(pt, pj)) in child_sg.edges[i].iter().zip(&parent_sg.edges[p]) {
                prop_assert_eq!(t, pt);
                prop_assert_eq!(map.parent_of[j], Some(pj));
                prop_assert_eq!(child_sg.label(t), parent_sg.label(pt));
            }
        }
    }

    /// σ-space cold exploration must agree with the marking-keyed scratch
    /// generator exactly — Ok and Err alike, generous and tight budgets.
    #[test]
    fn sigma_cold_matches_scratch((spec, edit) in random_case()) {
        let parent = spec.build();
        let child = edit.apply(&parent);
        for mg in [&parent, &child] {
            prop_assert_eq!(
                StateGraph::of_mg_sigma(mg, 10_000),
                StateGraph::of_mg(mg, 10_000)
            );
            for budget in [1usize, 2, 3, 5, 9, 17] {
                prop_assert_eq!(
                    StateGraph::of_mg_sigma(mg, budget),
                    StateGraph::of_mg(mg, budget)
                );
            }
        }
    }

    #[test]
    fn incremental_replays_tight_budget_failures_exactly((spec, edit) in random_case()) {
        let parent = spec.build();
        let Ok(parent_sg) = StateGraph::of_mg(&parent, 10_000) else {
            return Ok(());
        };
        let child = edit.apply(&parent);
        for budget in [1usize, 2, 3, 5, 9, 17] {
            let scratch = StateGraph::of_mg(&child, budget);
            let incremental =
                StateGraph::of_mg_from(&parent, &parent_sg, &child, budget).map(|(sg, _)| sg);
            prop_assert_eq!(incremental, scratch);
        }
    }

    #[test]
    fn arc_delta_reconstructs_the_edited_arc_set((spec, edit) in random_case()) {
        let parent = spec.build();
        let child = edit.apply(&parent);
        let delta = parent.arc_delta(&child);
        // Replaying the delta over the parent's arc set must yield the
        // child's arc set (token counts; restriction flags are out of
        // scope by design, matching `SgKey`).
        let mut arcs: std::collections::BTreeMap<(usize, usize), u32> = parent
            .arcs()
            .map(|((a, b), attr)| ((a, b), attr.tokens))
            .collect();
        for &(a, b, before, after) in &delta.changes {
            prop_assert_eq!(arcs.get(&(a, b)).copied(), before);
            match after {
                Some(tokens) => {
                    arcs.insert((a, b), tokens);
                }
                None => {
                    arcs.remove(&(a, b));
                }
            }
        }
        let child_arcs: std::collections::BTreeMap<(usize, usize), u32> = child
            .arcs()
            .map(|((a, b), attr)| ((a, b), attr.tokens))
            .collect();
        prop_assert_eq!(arcs, child_arcs);
        // Every changed arc's enabling effect lands on its destination.
        let dsts = delta.affected_dsts();
        for &(_, b, _, _) in &delta.changes {
            prop_assert!(dsts.contains(&b));
        }
    }
}

//! The layered front-end's load-bearing equivalences, pinned as
//! properties over the corpus generator's spec envelope:
//!
//! 1. the S-expression interchange round-trip (`parse → events → sexp →
//!    reader → tree`) is lossless — it rebuilds the exact parse the text
//!    itself produces;
//! 2. feeding the incremental [`EventParser`] arbitrary chunk boundaries
//!    yields the same event stream as a one-shot parse;
//! 3. CRLF line endings and a missing trailing newline parse identically
//!    to the plain LF text;
//! 4. the canonical writer is a fixed point of `parse → write` from the
//!    first application.

use proptest::prelude::*;
use si_corpus::{generate, strategies::corpus_case};
use si_stg::sexp::{read_events, write_events};
use si_stg::{
    parse_astg, parse_astg_lenient, parse_events, tree_of_events, write_astg, EventParser,
    LenientParse,
};

/// Structural equality of two lenient parses: the rebuilt `Stg`, the
/// recorded spans and the ordered defect list all have to match.
fn assert_same_parse(a: &LenientParse, b: &LenientParse, what: &str) {
    assert_eq!(a.stg, b.stg, "{what}: Stg differs");
    assert_eq!(a.spans, b.spans, "{what}: spans differ");
    assert_eq!(a.errors, b.errors, "{what}: defects differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Property 1: events → sexp → reader → tree is bit-identical to the
    /// direct parse.
    #[test]
    fn sexp_round_trip_is_lossless((spec, seed) in corpus_case()) {
        let text = generate(&spec, seed).g_text;
        let direct = parse_astg_lenient(&text);
        let dump = write_events(&parse_events(&text));
        let events = read_events(&dump).expect("writer output reads back");
        let rebuilt = tree_of_events(&events);
        assert_same_parse(&rebuilt, &direct, "sexp round-trip");
    }

    /// Property 2: chunked feeding is invisible — the event stream does
    /// not depend on where the `&str` chunks split, even mid-line or
    /// mid-UTF-8 *line*, because the lexer buffers to line boundaries.
    #[test]
    fn chunked_event_parsing_matches_one_shot(((spec, seed), split) in (corpus_case(), 1usize..97)) {
        let text = generate(&spec, seed).g_text;
        let one_shot = parse_events(&text);
        let mut parser = EventParser::new();
        let mut chunked = Vec::new();
        let mut rest = text.as_str();
        while !rest.is_empty() {
            let mut at = split.min(rest.len());
            while !rest.is_char_boundary(at) {
                at += 1;
            }
            let (chunk, tail) = rest.split_at(at);
            chunked.extend(parser.feed(chunk));
            rest = tail;
        }
        chunked.extend(parser.finish());
        prop_assert_eq!(chunked, one_shot);
    }

    /// Property 3: CRLF line endings and a trimmed final newline are
    /// cosmetic — spans, defects and the rebuilt `Stg` all match the LF
    /// text byte-for-byte.
    #[test]
    fn line_ending_variants_parse_identically((spec, seed) in corpus_case()) {
        let text = generate(&spec, seed).g_text;
        let lf = parse_astg_lenient(&text);
        let crlf = text.replace('\n', "\r\n");
        assert_same_parse(&parse_astg_lenient(&crlf), &lf, "CRLF");
        let trimmed = text.strip_suffix('\n').unwrap_or(&text);
        assert_same_parse(&parse_astg_lenient(trimmed), &lf, "missing trailing newline");
    }

    /// Property 4: the canonical writer converges immediately —
    /// `write(parse(write(stg)))` equals `write(stg)`.
    #[test]
    fn writer_is_a_parse_write_fixed_point((spec, seed) in corpus_case()) {
        let stg = generate(&spec, seed).stg;
        let written = write_astg(&stg);
        let reparsed = parse_astg(&written).expect("writer output strict-parses");
        prop_assert_eq!(write_astg(&reparsed), written);
    }
}

//! Batch execution: the whole Table 7.2 corpus through one shared
//! [`Engine`].
//!
//! One engine means one state-graph cache and one configuration for all
//! thirteen circuits — the memoization carries across benchmarks (the
//! cache key is structural, so name-different but shape-identical local
//! STGs share entries), and a single `jobs` knob parallelizes every
//! circuit's per-gate fan-out.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use si_core::{CoreError, Engine, EngineReport, LintPolicy};
use si_lint::{LintOptions, LintReport};

use crate::{benchmarks, Benchmark, LoadBenchmarkError};

/// Memoized lint pre-flights: linting is a pure function of the (static)
/// source text and the state budget, so repeated batch passes over the
/// bundled corpus reuse the findings instead of re-walking the lenient
/// parse. Bounded like the circuit memo.
fn lint_memo() -> &'static Mutex<HashMap<(&'static str, usize), LintReport>> {
    static MEMO: OnceLock<Mutex<HashMap<(&'static str, usize), LintReport>>> = OnceLock::new();
    MEMO.get_or_init(Mutex::default)
}

const LINT_MEMO_CAP: usize = 64;

fn lint_cached(stg_text: &'static str, budget: usize) -> LintReport {
    if let Some(cached) = lint_memo()
        .lock()
        .expect("lint memo poisoned")
        .get(&(stg_text, budget))
    {
        return cached.clone();
    }
    let opts = LintOptions {
        state_budget: Some(budget),
    };
    let report = si_lint::lint_text_with(stg_text, &opts);
    let mut memo = lint_memo().lock().expect("lint memo poisoned");
    if memo.len() < LINT_MEMO_CAP {
        memo.insert((stg_text, budget), report.clone());
    }
    report
}

/// One benchmark's result in a batch run.
#[derive(Debug, Clone)]
pub struct BatchEntry {
    /// Table 7.2 row name.
    pub name: &'static str,
    /// The engine's extended report.
    pub report: EngineReport,
    /// The pre-flight lint findings on the benchmark's `.g` source
    /// (empty under [`LintPolicy::Off`]).
    pub lint: LintReport,
}

/// Failure of one benchmark inside a batch run.
#[derive(Debug)]
pub enum BatchError {
    /// The circuit failed to load or synthesize.
    Load(LoadBenchmarkError),
    /// The specification failed the lint pre-flight under
    /// [`LintPolicy::Deny`].
    Lint {
        /// The benchmark name.
        name: &'static str,
        /// The findings (at least one error-severity).
        report: LintReport,
    },
    /// The derivation failed.
    Derive {
        /// The benchmark name.
        name: &'static str,
        /// The engine error.
        source: CoreError,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Load(e) => write!(f, "{e}"),
            BatchError::Lint { name, report } => write!(
                f,
                "benchmark `{name}` failed the lint pre-flight with {} error(s)",
                report.error_count()
            ),
            BatchError::Derive { name, source } => {
                write!(f, "benchmark `{name}` failed to derive: {source}")
            }
        }
    }
}

impl Error for BatchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BatchError::Load(e) => Some(e),
            BatchError::Lint { .. } => None,
            BatchError::Derive { source, .. } => Some(source),
        }
    }
}

/// Runs one benchmark through `engine` (loading/synthesizing its circuit
/// under the engine's global state budget), with the same lint pre-flight
/// [`si_core::Engine::run_source`] applies: the engine's
/// [`LintPolicy`] decides whether findings are skipped, carried in
/// [`BatchEntry::lint`], or fail the benchmark.
///
/// # Errors
///
/// [`BatchError::Load`], [`BatchError::Lint`] or [`BatchError::Derive`].
pub fn run_benchmark(engine: &Engine, bench: &Benchmark) -> Result<BatchEntry, BatchError> {
    let policy = engine.config().lint;
    let lint = if policy == LintPolicy::Off {
        LintReport::default()
    } else {
        lint_cached(bench.stg_text, engine.config().global_sg_budget)
    };
    if policy == LintPolicy::Deny && lint.has_errors() {
        return Err(BatchError::Lint {
            name: bench.name,
            report: lint,
        });
    }
    let (stg, library) = bench
        .circuit_with_budget(engine.config().global_sg_budget)
        .map_err(BatchError::Load)?;
    let report = engine
        .run(&stg, &library)
        .map_err(|source| BatchError::Derive {
            name: bench.name,
            source,
        })?;
    Ok(BatchEntry {
        name: bench.name,
        report,
        lint,
    })
}

/// Runs all thirteen Table 7.2 benchmarks through one shared `engine`, in
/// the table's row order.
///
/// # Errors
///
/// The first [`BatchError`] in row order.
///
/// # Example
///
/// ```
/// use si_core::{Engine, EngineConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = Engine::new(EngineConfig::parallel(2));
/// let entries = si_suite::run_suite(&engine)?;
/// assert_eq!(entries.len(), 13);
/// let imec = entries
///     .iter()
///     .find(|e| e.name == "imec-ram-read-sbuf")
///     .expect("bundled");
/// assert_eq!(imec.report.report.baseline.len(), 19);
/// assert_eq!(imec.report.report.constraints.len(), 12);
/// # Ok(())
/// # }
/// ```
pub fn run_suite(engine: &Engine) -> Result<Vec<BatchEntry>, BatchError> {
    benchmarks()
        .iter()
        .map(|bench| run_benchmark(engine, bench))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_core::EngineConfig;

    #[test]
    fn batch_runs_the_fifo_through_a_shared_engine() {
        let engine = Engine::new(EngineConfig::default());
        let bench = crate::benchmark("fifo").expect("bundled");
        let first = run_benchmark(&engine, &bench).expect("derives");
        let second = run_benchmark(&engine, &bench).expect("derives");
        assert_eq!(first.report.report, second.report.report);
        // The second pass reuses the first pass's state graphs.
        assert!(second.report.cache.hits > first.report.cache.hits);
        // The bundled corpus lints error-free, so Warn carries no errors.
        assert_eq!(first.lint.error_count(), 0);
    }

    #[test]
    fn deny_policy_blocks_defective_specs_before_derivation() {
        let bench = Benchmark {
            name: "defective",
            // Undeclared signal `b`: lint error SI004.
            stg_text: "\
.model defective
.inputs a
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
",
            eqn_text: Some("b = a;"),
        };
        let deny = Engine::new(EngineConfig {
            lint: si_core::LintPolicy::Deny,
            ..EngineConfig::default()
        });
        match run_benchmark(&deny, &bench) {
            Err(BatchError::Lint { name, report }) => {
                assert_eq!(name, "defective");
                assert!(report.has_errors());
            }
            other => panic!("expected BatchError::Lint, got {other:?}"),
        }
        // Off skips the pre-flight; the strict parser then rejects it at
        // load time instead.
        let off = Engine::new(EngineConfig {
            lint: si_core::LintPolicy::Off,
            ..EngineConfig::default()
        });
        assert!(matches!(
            run_benchmark(&off, &bench),
            Err(BatchError::Load(_))
        ));
    }
}

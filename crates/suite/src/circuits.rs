//! The benchmark STGs (and the one verbatim netlist).
//!
//! Interface widths follow thesis Table 7.2. Reconstructed controllers are
//! documented inline; every one is validated by the suite tests (live,
//! safe, consistent, CSC, conformant).

use crate::Benchmark;

/// A/D converter fast controller: sample → compare → count handshake with
/// a completion-sensing branch (3 in / 3 out).
const ADFAST_G: &str = "\
.model adfast
.inputs go cmp rdy
.outputs samp cnt done
.graph
go+ samp+
samp+ cmp+
cmp+ cnt+
cnt+ rdy+
rdy+ samp- done+
samp- cmp-
done+ go-
cmp- cnt-
go- cnt-
cnt- rdy-
rdy- done-
done- go+
.marking { <done-,go+> }
.end
";

/// A-to-D start/latch/ack controller with a concurrent end-of-conversion
/// branch (3 in / 3 out).
const ATOD_G: &str = "\
.model atod
.inputs req eoc d
.outputs start la ack
.graph
req+ start+
start+ eoc+
eoc+ la+
la+ d+ start-
start- eoc-
d+ ack+
eoc- ack+
ack+ req-
req- la-
la- d-
d- ack-
ack- req+
.marking { <ack-,req+> }
.end
";

/// Three-stage AND-chain controller: each stage waits for the previous
/// stage's gate and its own environment echo (3 in / 3 out).
const CHU133_G: &str = "\
.model chu133
.inputs a b c
.outputs x y z
.graph
a+ x+
x+ b+
b+ y+
y+ c+
c+ z+
z+ a-
a- x-
x- b- y-
y- z-
z- c-
c- a+
b- a+
.marking { <c-,a+> <b-,a+> }
.end
";

/// Handshake protocol converter with an internal phase signal
/// (2 in / 3 out).
const CONVERTA_G: &str = "\
.model converta
.inputs a k
.outputs b r x
.graph
a+ r+
r+ k+
k+ b+
b+ a-
a- x+
x+ r-
r- k-
k- x-
x- b-
b- a+
.marking { <b-,a+> }
.end
";

/// Two-port sequencer in the Ebergen style: the right port's request is
/// gated by the left port's progress (2 in / 3 out).
const EBERGEN_G: &str = "\
.model ebergen
.inputs i j
.outputs p q r
.graph
i+ p+
p+ j+
j+ q+
q+ r+
r+ i-
i- p- r-
p- q-
q- j-
j- i+
r- i+
.marking { <j-,i+> <r-,i+> }
.end
";

/// The FIFO latch controller of thesis Ch. 7.1 (chu150 flavour): latch
/// enable `l` mirrored by the environment's delay line `d`, done detector
/// `g0 = l·d` (3 in / 3 out + 1 internal).
pub const FIFO_G: &str = "\
.model fifo
.inputs ri ao d
.outputs ai ro l
.internal g0
.graph
ri+ l+
l+ d+
d+ g0+
g0+ ai+
ai+ ri- ro+
ro+ ao+
ao+ l-
l- ro- g0- d-
d- l+ ai-
g0- l+ ai-
ri- ai-
ro- ai-
ai- ri+
ro- ao-
ao- ro+
.marking { <ai-,ri+> <g0-,l+> <d-,l+> <ao-,ro+> }
.end
";

/// Request/nak/ack arbiter-free controller: a request fans through two
/// resource handshakes before the (n)ack phase (4 in / 5 out).
const IMEC_NAK_PA_G: &str = "\
.model imec-nak-pa
.inputs req a0 a1 nak
.outputs r0 r1 ack g h
.graph
req+ g+
g+ r0+
r0+ a0+
a0+ r1+
r1+ a1+
a1+ h+
h+ nak+
nak+ ack+
ack+ req-
req- r0- h-
r0- a0-
a0- r1-
r1- a1-
a1- g-
g- nak-
nak- ack-
h- ack-
ack- req+
.marking { <ack-,req+> }
.end
";

/// Verbatim thesis benchmark (Sec. 7.3.1): STG and netlist as printed.
const IMEC_RAM_READ_SBUF_EQN: &str = "\
i0 = precharged + wenin';
ack = i0' + map0';
i2 = csc0' * map0';
wsen = wsldin' * i2';
i4 = wenin + req;
prnot = i4* precharged + i4 * prnot + precharged * prnot;
wen = req * prnotin;
wsld = wenin' * csc0';
i8 = req' * prnotin;
csc0 = i8' *wsldin + i8' * csc0;
map0 = wsldin' * csc0;
";

/// Sense-buffer read control: precharge pulse then enable/done handshake
/// (2 in / 4 out).
const IMEC_SBUF_READ_CTL_G: &str = "\
.model imec-sbuf-read-ctl
.inputs req prin
.outputs ack pr en done
.graph
req+ pr+
pr+ prin+
prin+ en+
en+ pr-
pr- prin-
prin- done+
done+ ack+
ack+ req-
req- en-
en- done-
done- ack-
ack- req+
.marking { <ack-,req+> }
.end
";

/// Packet-forwarding controller: forward to channel 0, then channel 1,
/// then acknowledge (3 in / 5 out).
const MP_FORWARD_PKT_G: &str = "\
.model mp-forward-pkt
.inputs req a0 a1
.outputs s r0 t r1 ack
.graph
req+ s+
s+ r0+
r0+ a0+
a0+ t+
t+ r0- r1+
r0- a0-
r1+ a1+
a1+ ack+
ack+ r1- req-
r1- a1-
req- s-
s- t-
t- ack-
ack- req+
a0- s-
a1- t-
.marking { <ack-,req+> }
.end
";

/// Free-choice controller in the Nowick burst-mode flavour: the
/// environment chooses between a long (a/x/c/y) and a short (b/z) burst
/// (3 in / 3 out, two MG components).
const NOWICK_G: &str = "\
.model nowick
.inputs a b c
.outputs x y z
.graph
p0 a+ b+
a+ x+
x+ c+
c+ y+
y+ a-
a- x-
x- y-
y- c-
c- p0
b+ z+
z+ b-
b- z-
z- p0
.marking { p0 }
.end
";

/// Three-stage memory-send sequencer: grant gates g0..g2 thread a request
/// through two data handshakes (3 in / 6 out).
const TRIMOS_SEND_G: &str = "\
.model trimos-send
.inputs req am ad
.outputs g0 rm g1 rd g2 done
.graph
req+ g0+
g0+ rm+
rm+ am+
am+ g1+
g1+ rd+
rd+ ad+
ad+ g2+
g2+ done+
done+ g0- req-
g0- rm- g1-
rm- am-
g1- rd- g2-
rd- ad-
g2- done-
am- done-
ad- done-
req- done-
done- req+
.marking { <done-,req+> }
.end
";

/// Chained broadcast with a C-element join at the far end
/// (3 in / 5 out).
const VBE5C_G: &str = "\
.model vbe5c
.inputs a b c
.outputs x y z w v
.graph
a+ x+
x+ y+
y+ b+
b+ z+
z+ c+
c+ w+
w+ v+
v+ a-
a- x-
x- y-
y- b-
b- z- w-
z- c-
c- v-
w- v-
v- a+
.marking { <v-,a+> }
.end
";

/// All thirteen benchmarks in Table 7.2 row order.
pub fn all() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "adfast",
            stg_text: ADFAST_G,
            eqn_text: None,
        },
        Benchmark {
            name: "atod",
            stg_text: ATOD_G,
            eqn_text: None,
        },
        Benchmark {
            name: "chu133",
            stg_text: CHU133_G,
            eqn_text: None,
        },
        Benchmark {
            name: "converta",
            stg_text: CONVERTA_G,
            eqn_text: None,
        },
        Benchmark {
            name: "ebergen",
            stg_text: EBERGEN_G,
            eqn_text: None,
        },
        Benchmark {
            name: "fifo",
            stg_text: FIFO_G,
            eqn_text: None,
        },
        Benchmark {
            name: "imec-nak-pa",
            stg_text: IMEC_NAK_PA_G,
            eqn_text: None,
        },
        Benchmark {
            name: "imec-ram-read-sbuf",
            stg_text: si_stg::IMEC_RAM_READ_SBUF_G,
            eqn_text: Some(IMEC_RAM_READ_SBUF_EQN),
        },
        Benchmark {
            name: "imec-sbuf-read-ctl",
            stg_text: IMEC_SBUF_READ_CTL_G,
            eqn_text: None,
        },
        Benchmark {
            name: "mp-forward-pkt",
            stg_text: MP_FORWARD_PKT_G,
            eqn_text: None,
        },
        Benchmark {
            name: "nowick",
            stg_text: NOWICK_G,
            eqn_text: None,
        },
        Benchmark {
            name: "trimos-send",
            stg_text: TRIMOS_SEND_G,
            eqn_text: None,
        },
        Benchmark {
            name: "vbe5c",
            stg_text: VBE5C_G,
            eqn_text: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use si_core::derive_timing_constraints;
    use si_stg::{SignalKind, StateGraph};
    use si_synth::verify_implements;

    use super::*;

    #[test]
    fn every_benchmark_parses_live_safe_consistent() {
        for b in all() {
            let stg = b.stg().unwrap_or_else(|e| panic!("{e}"));
            assert!(
                stg.net().is_live(1_000_000).expect("bounded"),
                "{} is not live",
                b.name
            );
            assert!(
                stg.net().is_safe(1_000_000).expect("bounded"),
                "{} is not safe",
                b.name
            );
            // Consistency: the SG builds.
            StateGraph::of_stg(&stg, 1_000_000).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn every_benchmark_synthesizes_and_implements_its_sg() {
        for b in all() {
            let (stg, lib) = b.circuit().unwrap_or_else(|e| panic!("{e}"));
            let sg = StateGraph::of_stg(&stg, 1_000_000).expect("consistent");
            let mismatches = verify_implements(&stg, &sg, &lib);
            assert!(mismatches.is_empty(), "{}: {mismatches:?}", b.name);
        }
    }

    #[test]
    fn every_benchmark_derives_constraints() {
        for b in all() {
            let (stg, lib) = b.circuit().unwrap_or_else(|e| panic!("{e}"));
            let report =
                derive_timing_constraints(&stg, &lib).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(
                report.constraints.len() <= report.baseline.len(),
                "{}: derived {} > baseline {}",
                b.name,
                report.constraints.len(),
                report.baseline.len()
            );
        }
    }

    #[test]
    fn interface_widths_match_table_7_2() {
        let expected: &[(&str, usize, usize)] = &[
            ("adfast", 3, 3),
            ("atod", 3, 3),
            ("chu133", 3, 3),
            ("converta", 2, 3),
            ("ebergen", 2, 3),
            ("fifo", 3, 3),
            ("imec-nak-pa", 4, 5),
            ("imec-ram-read-sbuf", 5, 5),
            ("imec-sbuf-read-ctl", 2, 4),
            ("mp-forward-pkt", 3, 5),
            ("nowick", 3, 3),
            ("trimos-send", 3, 6),
            ("vbe5c", 3, 5),
        ];
        for &(name, inputs, outputs) in expected {
            let stg = crate::benchmark(name)
                .expect("present")
                .stg()
                .expect("parses");
            assert_eq!(
                stg.signals_of_kind(SignalKind::Input).len(),
                inputs,
                "{name} inputs"
            );
            assert_eq!(
                stg.signals_of_kind(SignalKind::Output).len(),
                outputs,
                "{name} outputs"
            );
        }
    }

    #[test]
    fn nowick_is_free_choice_with_two_components() {
        let stg = crate::benchmark("nowick")
            .expect("present")
            .stg()
            .expect("parses");
        assert!(stg.net().is_free_choice());
        let comps = stg.mg_components(64).expect("decomposes");
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn imec_gold_counts_match_the_thesis() {
        let b = crate::benchmark("imec-ram-read-sbuf").expect("present");
        let (stg, lib) = b.circuit().expect("loads");
        let report = derive_timing_constraints(&stg, &lib).expect("derives");
        // Thesis Table 7.2 row: 19 before, 12 after, 112 states.
        assert_eq!(report.baseline.len(), 19);
        assert_eq!(report.constraints.len(), 12);
        assert_eq!(report.state_count, 112);
    }
}

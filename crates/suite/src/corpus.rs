//! Circuit-level sharded batch execution over *generated* corpora.
//!
//! [`run_suite`](crate::run_suite) parallelizes inside one circuit
//! (per-gate fan-out); a synthetic corpus is the opposite shape — many
//! small circuits — so [`run_corpus`] shards across *circuits* instead:
//! `jobs` scoped workers pull manifest rows off a shared atomic cursor
//! (the same work-stealing scheme as the engine's gate pool) and run them
//! through **one shared engine**, so the structural `SgCache` /
//! `ProjCache` / `ConformanceCache` tiers are shared across shards —
//! shape-identical circuits pay for exploration once, whichever worker
//! meets them first.
//!
//! The row-order merge contract of `run_suite` is preserved: results land
//! in manifest order, and each row's *payload* (constraint report, lint
//! findings, error value) is bit-identical to a sequential
//! single-engine loop over the same manifest — sharding affects wall
//! clock and cache traffic only. `tests/corpus_differential.rs` pins
//! this for jobs 1, 4 and 8, cold and warm.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use si_boolean::{parse_eqn, GateLibrary};
use si_core::{CoreError, Engine, EngineReport, LintPolicy};
use si_lint::{LintOptions, LintReport};
use si_stg::parse_astg;
use si_synth::synthesize;

/// One corpus manifest row: an owned circuit source (generated corpora
/// are not `'static`, unlike the bundled [`Benchmark`](crate::Benchmark)
/// texts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The circuit name (e.g. `corpus-0000002a`).
    pub name: String,
    /// The STG in `.g` format.
    pub stg_text: String,
    /// A fixed netlist in restricted EQN format; when `None`, the
    /// netlist is synthesized under the engine's global state budget.
    pub eqn_text: Option<String>,
}

/// One corpus row's result.
#[derive(Debug, Clone)]
pub struct CorpusRow {
    /// The manifest row name.
    pub name: String,
    /// The engine's extended report.
    pub report: EngineReport,
    /// The pre-flight lint findings (empty under [`LintPolicy::Off`]).
    pub lint: LintReport,
}

/// Failure of one corpus row. `PartialEq` so differential harnesses can
/// compare error values across engine configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// The circuit failed to parse or synthesize.
    Load {
        /// The manifest row name.
        name: String,
        /// The rendered parse/synthesis failure.
        detail: String,
    },
    /// The specification failed the lint pre-flight under
    /// [`LintPolicy::Deny`].
    Lint {
        /// The manifest row name.
        name: String,
        /// Error-severity finding count (at least one).
        errors: usize,
    },
    /// The derivation failed.
    Derive {
        /// The manifest row name.
        name: String,
        /// The engine error.
        source: CoreError,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Load { name, detail } => {
                write!(f, "corpus row `{name}` failed to load: {detail}")
            }
            CorpusError::Lint { name, errors } => write!(
                f,
                "corpus row `{name}` failed the lint pre-flight with {errors} error(s)"
            ),
            CorpusError::Derive { name, source } => {
                write!(f, "corpus row `{name}` failed to derive: {source}")
            }
        }
    }
}

impl Error for CorpusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CorpusError::Derive { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One row's outcome: every row completes independently (a corpus run
/// never aborts on the first failure, unlike `run_suite` — defective
/// rows are part of the differential contract).
pub type CorpusOutcome = Result<CorpusRow, CorpusError>;

/// Runs one manifest row through `engine`: lint pre-flight under the
/// engine's [`LintPolicy`], strict parse, netlist (fixed or synthesized
/// under the engine's global state budget), derivation.
///
/// # Errors
///
/// [`CorpusError::Load`], [`CorpusError::Lint`] or
/// [`CorpusError::Derive`].
pub fn run_corpus_entry(engine: &Engine, entry: &CorpusEntry) -> CorpusOutcome {
    let policy = engine.config().lint;
    let lint = if policy == LintPolicy::Off {
        LintReport::default()
    } else {
        si_lint::lint_text_with(
            &entry.stg_text,
            &LintOptions {
                state_budget: Some(engine.config().global_sg_budget),
            },
        )
    };
    if policy == LintPolicy::Deny && lint.has_errors() {
        return Err(CorpusError::Lint {
            name: entry.name.clone(),
            errors: lint.error_count(),
        });
    }
    let load = |detail: String| CorpusError::Load {
        name: entry.name.clone(),
        detail,
    };
    let stg = parse_astg(&entry.stg_text).map_err(|e| load(e.to_string()))?;
    let library = match &entry.eqn_text {
        Some(text) => GateLibrary::from_netlist(&parse_eqn(text).map_err(|e| load(e.to_string()))?),
        None => {
            synthesize(&stg, engine.config().global_sg_budget).map_err(|e| load(e.to_string()))?
        }
    };
    let report = engine
        .run(&stg, &library)
        .map_err(|source| CorpusError::Derive {
            name: entry.name.clone(),
            source,
        })?;
    Ok(CorpusRow {
        name: entry.name.clone(),
        report,
        lint,
    })
}

/// Runs a whole corpus manifest through one shared `engine`, sharded
/// across `jobs` worker threads (`0` = available parallelism, `1` =
/// sequential in the calling thread). Results are returned in manifest
/// row order regardless of which worker ran which row, and every row's
/// payload is identical to what a sequential loop over
/// [`run_corpus_entry`] produces.
#[must_use]
pub fn run_corpus(engine: &Engine, manifest: &[CorpusEntry], jobs: usize) -> Vec<CorpusOutcome> {
    let requested = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        jobs
    };
    let jobs = requested.min(manifest.len()).max(1);
    if jobs <= 1 {
        return manifest
            .iter()
            .map(|entry| run_corpus_entry(engine, entry))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<CorpusOutcome>> = (0..manifest.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= manifest.len() {
                            return mine;
                        }
                        mine.push((i, run_corpus_entry(engine, &manifest[i])));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, outcome) in handle.join().expect("corpus worker panicked") {
                slots[i] = Some(outcome);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every manifest row was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_core::EngineConfig;

    fn tiny_manifest() -> Vec<CorpusEntry> {
        // A handshake ring, a second copy under a different name (cache
        // sharing pays off on the repeat), and one defective row.
        let ring = "\
.model ring
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        vec![
            CorpusEntry {
                name: "ring".into(),
                stg_text: ring.into(),
                eqn_text: Some("b = a;".into()),
            },
            CorpusEntry {
                name: "ring-again".into(),
                stg_text: ring.into(),
                eqn_text: Some("b = a;".into()),
            },
            CorpusEntry {
                name: "defective".into(),
                stg_text: ".model broken\n.inputs a\n.graph\na+ c+\n.marking { }\n.end\n".into(),
                eqn_text: None,
            },
        ]
    }

    #[test]
    fn rows_come_back_in_manifest_order_with_errors_in_place() {
        let engine = Engine::new(EngineConfig::default());
        let manifest = tiny_manifest();
        for jobs in [1, 2, 8, 0] {
            let rows = run_corpus(&engine, &manifest, jobs);
            assert_eq!(rows.len(), 3);
            assert_eq!(rows[0].as_ref().expect("derives").name, "ring");
            assert_eq!(rows[1].as_ref().expect("derives").name, "ring-again");
            assert!(matches!(rows[2], Err(CorpusError::Load { .. })));
        }
    }

    #[test]
    fn shards_share_one_cache_across_rows() {
        let engine = Engine::new(EngineConfig::default());
        let manifest = tiny_manifest();
        let rows = run_corpus(&engine, &manifest, 2);
        let (a, b) = (
            rows[0].as_ref().expect("derives"),
            rows[1].as_ref().expect("derives"),
        );
        // The two copies are shape-identical, so between them the shared
        // structural cache serves at least one of the repeat lookups.
        assert!(a.report.cache.hits + b.report.cache.hits > 0);
        assert_eq!(a.report.report, b.report.report);
    }

    #[test]
    fn deny_policy_fails_defective_rows_without_aborting_the_run() {
        let engine = Engine::new(EngineConfig {
            lint: LintPolicy::Deny,
            ..EngineConfig::default()
        });
        let rows = run_corpus(&engine, &tiny_manifest(), 1);
        assert!(rows[0].is_ok());
        assert!(matches!(rows[2], Err(CorpusError::Lint { .. })));
    }
}

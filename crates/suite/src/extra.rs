//! Extended corpus beyond Table 7.2: circuits exercising features the
//! main suite touches only lightly — multiple occurrences per signal
//! (`l+/2`, the double latch pulse of the thesis Fig. 7.1 FIFO) and the
//! classic VME-bus read controller.

use crate::Benchmark;

/// The thesis Fig. 7.1 FIFO with the **double** latch pulse: `l` (and the
/// delay-line echo `d`, and the done detector `g0`) toggle twice per
/// handshake cycle, so the local STGs carry `/2` occurrence indices
/// through projection, relaxation and constraint reporting.
pub const FIFO_DOUBLE_G: &str = "\
.model fifo-double
.inputs ri ao d
.outputs ai ro l
.internal g0 p
.graph
ri+ l+
l+ d+
d+ g0+
g0+ p+
p+ ai+
ai+ l- ri-
l- g0- d-
g0- ro+
ro+ ao+
ao+ l+/2
d- l+/2
l+/2 d+/2
d+/2 g0+/2
g0+/2 p-
p- ro-
ro- ao-
ao- l-/2
l-/2 g0-/2 d-/2
ri- ai-
g0-/2 ai-
ai- ri+
d-/2 l+
.marking { <ai-,ri+> <d-/2,l+> }
.end
";

/// The VME-bus read-cycle controller (thesis Fig. 8.1 discusses the
/// read/write version; the read cycle alone is free of CSC conflicts):
/// `dsr`/`ldtack` in, `lds`/`d`/`dtack` out.
pub const VME_READ_G: &str = "\
.model vme-read
.inputs dsr ldtack
.outputs lds d dtack
.graph
dsr+ lds+
lds+ ldtack+
ldtack+ d+
d+ dtack+
dtack+ dsr-
dsr- d-
d- dtack- lds-
lds- ldtack-
ldtack- dsr+
dtack- dsr+
.marking { <ldtack-,dsr+> <dtack-,dsr+> }
.end
";

/// Extended benchmarks (not part of the Table 7.2 row set).
pub fn extended() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "fifo-double",
            stg_text: FIFO_DOUBLE_G,
            eqn_text: None,
        },
        Benchmark {
            name: "vme-read",
            stg_text: VME_READ_G,
            eqn_text: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use si_core::derive_timing_constraints;
    use si_stg::StateGraph;
    use si_synth::verify_implements;

    #[test]
    fn extended_circuits_validate_like_the_main_suite() {
        for b in super::extended() {
            let stg = b.stg().unwrap_or_else(|e| panic!("{e}"));
            assert!(
                stg.net().is_live(1_000_000).expect("bounded"),
                "{} live",
                b.name
            );
            assert!(
                stg.net().is_safe(1_000_000).expect("bounded"),
                "{} safe",
                b.name
            );
            let (stg, lib) = b.circuit().unwrap_or_else(|e| panic!("{e}"));
            let sg = StateGraph::of_stg(&stg, 1_000_000).expect("consistent");
            assert!(verify_implements(&stg, &sg, &lib).is_empty(), "{}", b.name);
        }
    }

    #[test]
    fn double_pulse_constraints_carry_occurrence_indices() {
        let b = super::extended()
            .into_iter()
            .find(|b| b.name == "fifo-double")
            .expect("present");
        let (stg, lib) = b.circuit().expect("loads");
        let report = derive_timing_constraints(&stg, &lib).expect("derives");
        assert!(
            report.constraints.len() < report.baseline.len(),
            "no reduction: {} vs {}",
            report.constraints.len(),
            report.baseline.len()
        );
        // The second latch pulse must appear somewhere in the constraint
        // universe with its /2 suffix.
        let all: Vec<String> = report
            .baseline
            .iter()
            .chain(report.constraints.iter())
            .map(|c| c.to_string())
            .collect();
        assert!(
            all.iter().any(|c| c.contains("/2")),
            "no occurrence-indexed constraint in {all:?}"
        );
    }

    #[test]
    fn vme_read_reduces_its_baseline() {
        let b = super::extended()
            .into_iter()
            .find(|b| b.name == "vme-read")
            .expect("present");
        let (stg, lib) = b.circuit().expect("loads");
        let report = derive_timing_constraints(&stg, &lib).expect("derives");
        assert!(report.constraints.len() <= report.baseline.len());
        assert!(!report.baseline.is_empty());
    }
}

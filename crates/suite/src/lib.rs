//! The benchmark corpus: the thirteen speed-independent control circuits of
//! thesis Table 7.2.
//!
//! `imec-ram-read-sbuf` is reproduced **verbatim** from the thesis
//! (Sec. 7.3.1 prints both its STG and its EQN netlist); the FIFO follows
//! the Ch. 7.1 design example (a latch controller with an explicit delay
//! line `d` mirroring the latch-enable `l`, so its done-detector gate
//! exhibits exactly the case-1/case-3/case-4 mixture of Fig. 7.3). The
//! remaining eleven circuits are reconstructions: SI controllers with the
//! same names and interface widths as the historic petrify-era benchmarks,
//! synthesized by [`si_synth`] into complex gates. Each circuit is
//! validated by the suite tests: live, safe, consistent, CSC-clean, and
//! timing-conformant gate by gate.
//!
//! # Example
//!
//! ```
//! use si_suite::{benchmarks, Benchmark};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let suite = benchmarks();
//! assert_eq!(suite.len(), 13);
//! let fifo = suite.iter().find(|b| b.name == "fifo").expect("present");
//! let (stg, library) = fifo.circuit()?;
//! assert_eq!(stg.signal_count(), library.gates.len() + 3); // 3 inputs
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use si_boolean::{parse_eqn, GateLibrary};
use si_stg::{parse_astg, Stg};
use si_synth::synthesize;

mod batch;
mod circuits;
mod corpus;
mod extra;

pub use batch::{run_benchmark, run_suite, BatchEntry, BatchError};
pub use circuits::FIFO_G;
pub use corpus::{
    run_corpus, run_corpus_entry, CorpusEntry, CorpusError, CorpusOutcome, CorpusRow,
};
pub use extra::{extended, FIFO_DOUBLE_G, VME_READ_G};

/// Loading/synthesis failure for a benchmark.
#[derive(Debug)]
pub struct LoadBenchmarkError {
    /// The benchmark name.
    pub name: &'static str,
    /// The underlying failure.
    pub source: Box<dyn Error + Send + Sync>,
}

impl fmt::Display for LoadBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "benchmark `{}` failed to load: {}",
            self.name, self.source
        )
    }
}

impl Error for LoadBenchmarkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(self.source.as_ref())
    }
}

/// One benchmark circuit: an STG plus (optionally) a fixed EQN netlist.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Table 7.2 row name.
    pub name: &'static str,
    /// The STG in `.g` format.
    pub stg_text: &'static str,
    /// A fixed netlist in restricted EQN format; when `None`, the netlist
    /// is synthesized from the state graph.
    pub eqn_text: Option<&'static str>,
}

impl Benchmark {
    /// Parses the STG and produces the gate library (fixed or synthesized)
    /// under the default synthesis state budget
    /// ([`si_core::EngineConfig::global_sg_budget`]'s default).
    ///
    /// # Errors
    ///
    /// Wraps parse/synthesis failures in [`LoadBenchmarkError`].
    pub fn circuit(&self) -> Result<(Stg, GateLibrary), LoadBenchmarkError> {
        self.circuit_with_budget(si_core::EngineConfig::default().global_sg_budget)
    }

    /// [`Benchmark::circuit`] under an explicit synthesis state budget —
    /// batch runs take it from their engine's configuration.
    ///
    /// Parsing and synthesis are pure functions of the (static) source
    /// texts and the budget, so successful results are memoized
    /// process-wide: repeated suite passes — warm benchmarks, batch
    /// drivers, differential test matrices — pay for synthesis once per
    /// `(texts, budget)` instead of once per call. Failures are never
    /// cached.
    ///
    /// # Errors
    ///
    /// Wraps parse/synthesis failures in [`LoadBenchmarkError`].
    pub fn circuit_with_budget(
        &self,
        budget: usize,
    ) -> Result<(Stg, GateLibrary), LoadBenchmarkError> {
        let key = (self.stg_text, self.eqn_text, budget);
        if let Some(cached) = circuit_memo()
            .lock()
            .expect("circuit memo poisoned")
            .get(&key)
        {
            return Ok(cached.clone());
        }
        let wrap = |e: Box<dyn Error + Send + Sync>| LoadBenchmarkError {
            name: self.name,
            source: e,
        };
        let stg = parse_astg(self.stg_text).map_err(|e| wrap(Box::new(e)))?;
        let library = match self.eqn_text {
            Some(text) => {
                GateLibrary::from_netlist(&parse_eqn(text).map_err(|e| wrap(Box::new(e)))?)
            }
            None => synthesize(&stg, budget).map_err(|e| wrap(Box::new(e)))?,
        };
        let mut memo = circuit_memo().lock().expect("circuit memo poisoned");
        if memo.len() < CIRCUIT_MEMO_CAP {
            memo.insert(key, (stg.clone(), library.clone()));
        }
        Ok((stg, library))
    }

    /// Parses only the STG.
    ///
    /// # Errors
    ///
    /// Wraps parse failures in [`LoadBenchmarkError`].
    pub fn stg(&self) -> Result<Stg, LoadBenchmarkError> {
        parse_astg(self.stg_text).map_err(|e| LoadBenchmarkError {
            name: self.name,
            source: Box::new(e),
        })
    }
}

/// Memoized circuits, keyed by source texts + synthesis budget. The keys
/// are `&'static str`, so equality is by content: any two benchmarks with
/// the same sources share one entry.
type CircuitKey = (&'static str, Option<&'static str>, usize);

/// Distinct circuits memoized process-wide; beyond this, loads are
/// recomputed (the bundled corpus plus the extended set is well under).
const CIRCUIT_MEMO_CAP: usize = 64;

fn circuit_memo() -> &'static Mutex<HashMap<CircuitKey, (Stg, GateLibrary)>> {
    static MEMO: OnceLock<Mutex<HashMap<CircuitKey, (Stg, GateLibrary)>>> = OnceLock::new();
    MEMO.get_or_init(Mutex::default)
}

/// The thirteen benchmarks of Table 7.2, in the table's row order.
pub fn benchmarks() -> Vec<Benchmark> {
    circuits::all()
}

/// Finds a benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    circuits::all().into_iter().find(|b| b.name == name)
}

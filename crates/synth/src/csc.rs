//! Complete state coding (CSC) verification.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use si_stg::{Polarity, SignalId, StateGraph, Stg};

/// A CSC violation: two reachable states share a binary code but disagree on
/// the excitation of a non-input signal, so no logic function can implement
/// that signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscViolation {
    /// Name of the signal whose next-state function is ill-defined.
    pub signal: String,
    /// The shared binary code of the conflicting states.
    pub code: u64,
}

impl fmt::Display for CscViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CSC violation on signal `{}`: states with code {:#b} disagree on its excitation",
            self.signal, self.code
        )
    }
}

impl Error for CscViolation {}

/// The "next value" a signal takes from a state: its current value unless an
/// enabled transition changes it.
pub(crate) fn next_value(sg: &StateGraph, state: usize, signal: SignalId) -> bool {
    for &(t, _) in &sg.edges[state] {
        let l = sg.label(t);
        if l.signal == signal {
            return l.polarity == Polarity::Plus;
        }
    }
    sg.value(state, signal)
}

/// Checks complete state coding over all non-input signals.
///
/// # Errors
///
/// Returns the first [`CscViolation`] found (deterministic order).
pub fn check_csc(stg: &Stg, sg: &StateGraph) -> Result<(), CscViolation> {
    let gate_signals = stg.gate_signals();
    let mut by_code: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for i in 0..sg.state_count() {
        by_code.entry(sg.code(i)).or_default().push(i);
    }
    for (&code, states) in &by_code {
        if states.len() < 2 {
            continue;
        }
        for &a in &gate_signals {
            let first = next_value(sg, states[0], a);
            if states[1..].iter().any(|&s| next_value(sg, s, a) != first) {
                return Err(CscViolation {
                    signal: stg.signal_name(a).to_string(),
                    code,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::parse_astg;

    #[test]
    fn imec_benchmark_has_csc() {
        // The thesis benchmark already contains csc0/map0 resolving state
        // conflicts.
        let stg = parse_astg(si_stg::IMEC_RAM_READ_SBUF_G).expect("valid");
        let sg = StateGraph::of_stg(&stg, 100_000).expect("consistent");
        assert!(check_csc(&stg, &sg).is_ok());
    }

    #[test]
    fn classic_csc_violation_is_detected() {
        // The canonical CSC conflict: two handshakes in sequence pass
        // through the all-zero code twice with different future behaviour.
        let text = "\
.model cscviol
.inputs a
.outputs b c
.graph
a+ b+
b+ a-
a- c+
c+ b-
b- c-
c- a+
.marking { <c-,a+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let sg = StateGraph::of_stg(&stg, 1000).expect("consistent");
        // Trace the codes: 000 →a+ 100 →b+ 110 →a- 010 →c+ 011 →b- 001
        // →c- 000. Every code is unique, so this one actually has CSC.
        // Extend with a second a+/a- pulse that revisits a code:
        let text2 = "\
.model cscviol2
.inputs a
.outputs b
.graph
a+ a-
a- a+/2
a+/2 b+
b+ a-/2
a-/2 b-
b- a+
.marking { <b-,a+> }
.end
";
        let stg2 = parse_astg(text2).expect("valid");
        let sg2 = StateGraph::of_stg(&stg2, 1000).expect("consistent");
        // After a+ a- the code returns to 00 but b+ is not yet due at the
        // initial 00: violation on b.
        let violation = check_csc(&stg2, &sg2).unwrap_err();
        assert_eq!(violation.signal, "b");
        let _ = check_csc(&stg, &sg); // either outcome; exercised above
    }
}

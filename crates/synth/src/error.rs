use std::error::Error;
use std::fmt;

use si_stg::StgError;

use crate::csc::CscViolation;

/// Errors reported by the synthesis flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The STG itself is malformed (inconsistent, unbounded, …).
    Stg(StgError),
    /// Complete state coding is violated; internal signal insertion (which
    /// the thesis delegates to petrify) would be required.
    Csc(CscViolation),
    /// The support of a gate exceeds the exact-minimization cap.
    SupportTooLarge {
        /// The signal being synthesized.
        signal: String,
        /// The support size found.
        support: usize,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Stg(e) => write!(f, "{e}"),
            SynthError::Csc(v) => write!(f, "{v}"),
            SynthError::SupportTooLarge { signal, support } => write!(
                f,
                "gate `{signal}` needs a {support}-variable support, beyond the exact-minimization cap"
            ),
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Stg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StgError> for SynthError {
    fn from(e: StgError) -> Self {
        SynthError::Stg(e)
    }
}

impl From<CscViolation> for SynthError {
    fn from(v: CscViolation) -> Self {
        SynthError::Csc(v)
    }
}

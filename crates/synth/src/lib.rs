//! State-graph based complex-gate synthesis of speed-independent circuits.
//!
//! The thesis synthesizes its benchmark netlists with *petrify* (ref. \[60\]); this
//! crate provides the equivalent substrate: given a consistent STG with
//! complete state coding (CSC), it derives, for every non-input signal, the
//! next-state function over a minimal well-defined support and produces the
//! irredundant prime pull-up/pull-down covers (`f↑` / `f↓`) the relaxation
//! engine consumes.
//!
//! Synthesis recipe (standard SG-based flow, thesis Sec. 3.4 definitions):
//!
//! 1. generate the binary-coded state graph;
//! 2. check CSC: two reachable states with equal codes must excite the same
//!    non-input signals in the same direction;
//! 3. for each non-input signal `a`, the on-set is
//!    `ER(a+) ∪ QR(a+)` and the off-set `ER(a-) ∪ QR(a-)`; unreachable
//!    codes are don't-cares;
//! 4. greedily shrink the support while the function stays well defined,
//!    then run exact two-level minimization.
//!
//! # Example
//!
//! ```
//! use si_stg::parse_astg;
//! use si_synth::synthesize;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stg = parse_astg(si_stg::IMEC_RAM_READ_SBUF_G)?;
//! let library = synthesize(&stg, 100_000)?;
//! assert_eq!(library.gates.len(), 11); // 5 outputs + 6 internal signals
//! # Ok(())
//! # }
//! ```

mod csc;
mod error;
mod synth;

pub use csc::{check_csc, CscViolation};
pub use error::SynthError;
pub use synth::{synthesize, verify_implements};

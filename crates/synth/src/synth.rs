//! The complex-gate synthesis procedure.

use std::collections::BTreeMap;

use si_boolean::{expand_cover, irredundant_cover, Gate, GateLibrary, MAX_EXACT_VARS};
use si_stg::{SignalId, StateGraph, Stg};

use crate::csc::{check_csc, next_value};
use crate::error::SynthError;

/// Exact-minimization cap on support size (QM enumerates `2^n` minterms).
const MAX_SUPPORT: usize = 16;

/// Synthesizes a complex-gate implementation for every non-input signal of
/// `stg`, exploring at most `budget` states.
///
/// # Errors
///
/// - [`SynthError::Stg`] for inconsistent/unbounded STGs;
/// - [`SynthError::Csc`] when no logic function exists for some signal;
/// - [`SynthError::SupportTooLarge`] when a gate would need more than 16
///   support variables.
pub fn synthesize(stg: &Stg, budget: usize) -> Result<GateLibrary, SynthError> {
    let sg = StateGraph::of_stg(stg, budget)?;
    check_csc(stg, &sg)?;

    let mut gates = Vec::new();
    for a in stg.gate_signals() {
        gates.push(synthesize_signal(stg, &sg, a)?);
    }
    Ok(GateLibrary { gates })
}

/// Builds the gate for one signal: minimal well-defined support, then exact
/// two-level minimization of `f↑` and `f↓`.
fn synthesize_signal(stg: &Stg, sg: &StateGraph, a: SignalId) -> Result<Gate, SynthError> {
    let n_all = stg.signal_count();
    // next(a) per reachable state.
    let targets: Vec<bool> = (0..sg.state_count())
        .map(|s| next_value(sg, s, a))
        .collect();

    // Greedy support shrinking: start from every signal (in id order) and
    // drop those whose removal keeps the function well defined. Dropping is
    // attempted for signals other than `a` first so that feedback is only
    // kept when genuinely needed.
    let mut support: Vec<SignalId> = (0..n_all).map(SignalId).collect();
    let mut order: Vec<SignalId> = support.clone();
    order.sort_by_key(|&s| if s == a { 0 } else { 1 });
    order.reverse(); // feedback literal considered for removal last
    for &candidate in &order {
        let trial: Vec<SignalId> = support
            .iter()
            .copied()
            .filter(|&s| s != candidate)
            .collect();
        if well_defined(sg, &trial, &targets) {
            support = trial;
        }
    }

    if support.len() > MAX_SUPPORT {
        return Err(SynthError::SupportTooLarge {
            signal: stg.signal_name(a).to_string(),
            support: support.len(),
        });
    }

    // Project states onto the support and build on/off/dc minterm sets.
    let project = |code: u64| -> u64 {
        let mut packed = 0u64;
        for (i, &s) in support.iter().enumerate() {
            if code & (1u64 << s.0) != 0 {
                packed |= 1u64 << i;
            }
        }
        packed
    };
    let mut on: Vec<u64> = Vec::new();
    let mut off: Vec<u64> = Vec::new();
    let mut seen: BTreeMap<u64, bool> = BTreeMap::new();
    for (s, &target) in targets.iter().enumerate() {
        let m = project(sg.code(s));
        if seen.insert(m, target).is_none() {
            if target {
                on.push(m);
            } else {
                off.push(m);
            }
        }
    }
    // Minimize the pull-up with the unreachable codes as don't-cares, then
    // freeze the don't-care choices: the gate is the resulting function
    // everywhere and `f↓` is its exact complement. This matches the EQN
    // netlist semantics (a netlist only records `f↑`), so synthesized
    // gates round-trip through the restricted EQN format bit-exactly.
    // Past MAX_EXACT_VARS support variables the unreachable-code
    // don't-care set approaches the full 2^n space and exact QM takes
    // minutes; the off-set-driven expansion stays linear in the (small)
    // reachable off-set instead.
    let up = if support.len() <= MAX_EXACT_VARS {
        let dc: Vec<u64> = (0..(1u64 << support.len()))
            .filter(|m| !seen.contains_key(m))
            .collect();
        irredundant_cover(&on, &dc, support.len())
    } else {
        expand_cover(&on, &off, support.len())
    };
    let vars: Vec<String> = support
        .iter()
        .map(|&s| stg.signal_name(s).to_string())
        .collect();
    Ok(Gate::from_up_cover(
        stg.signal_name(a).to_string(),
        vars,
        up,
    ))
}

/// Whether `next` is a function of the chosen support: any two states that
/// agree on the support must agree on the target value.
fn well_defined(sg: &StateGraph, support: &[SignalId], targets: &[bool]) -> bool {
    let mut table: BTreeMap<u64, bool> = BTreeMap::new();
    for (s, &target) in targets.iter().enumerate() {
        let mut key = 0u64;
        for (i, &sig) in support.iter().enumerate() {
            if sg.value(s, sig) {
                key |= 1u64 << i;
            }
        }
        match table.get(&key) {
            Some(&v) if v != target => return false,
            Some(_) => {}
            None => {
                table.insert(key, target);
            }
        }
    }
    true
}

/// Verifies that a gate library implements the STG: in every reachable
/// state, each gate's pull-up cover is true exactly when the signal's next
/// value is 1 (and the pull-down when it is 0).
///
/// Returns the list of `(signal, state index)` mismatches (empty = correct).
pub fn verify_implements(
    stg: &Stg,
    sg: &StateGraph,
    library: &GateLibrary,
) -> Vec<(String, usize)> {
    let mut mismatches = Vec::new();
    for gate in &library.gates {
        let Some(a) = stg.signal_by_name(&gate.output) else {
            mismatches.push((gate.output.clone(), usize::MAX));
            continue;
        };
        for s in 0..sg.state_count() {
            let values = |name: &str| -> bool {
                stg.signal_by_name(name).is_some_and(|sig| sg.value(s, sig))
            };
            let up = gate.eval_up(values);
            let down = gate.eval_down(values);
            let target = next_value(sg, s, a);
            if up != target || down == target {
                mismatches.push((gate.output.clone(), s));
                break;
            }
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::parse_astg;

    #[test]
    fn synthesizes_a_c_element_for_the_join() {
        // Classic Muller C-element environment: c waits for both a and b.
        let text = "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let lib = synthesize(&stg, 1000).expect("CSC holds");
        assert_eq!(lib.gates.len(), 1);
        let c = &lib.gates[0];
        // A C-element needs feedback: support {a, b, c}.
        assert_eq!(c.vars.len(), 3);
        assert!(c.vars.contains(&"c".to_string()));
        // f↑ = a·b + a·c + b·c (3 cubes); f↓ symmetric.
        assert_eq!(c.up.cubes().len(), 3);
        assert_eq!(c.down.cubes().len(), 3);
    }

    #[test]
    fn synthesizes_combinational_gate_without_feedback() {
        // b is a simple buffer of a.
        let text = "\
.model buffer
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        let lib = synthesize(&stg, 100).expect("CSC holds");
        let b = &lib.gates[0];
        assert_eq!(b.vars, vec!["a".to_string()]);
        assert_eq!(b.up.cubes().len(), 1);
    }

    #[test]
    fn synthesized_library_implements_the_sg() {
        let stg = parse_astg(si_stg::IMEC_RAM_READ_SBUF_G).expect("valid");
        let lib = synthesize(&stg, 100_000).expect("CSC holds");
        assert_eq!(lib.gates.len(), 11);
        let sg = StateGraph::of_stg(&stg, 100_000).expect("consistent");
        assert!(verify_implements(&stg, &sg, &lib).is_empty());
    }

    #[test]
    fn thesis_eqn_netlist_also_implements_the_imec_sg() {
        // Cross-check: the EQN netlist printed in the thesis implements the
        // same STG our synthesizer consumes.
        let eqn = "\
i0 = precharged + wenin';
ack = i0' + map0';
i2 = csc0' * map0';
wsen = wsldin' * i2';
i4 = wenin + req;
prnot = i4* precharged + i4 * prnot + precharged * prnot;
wen = req * prnotin;
wsld = wenin' * csc0';
i8 = req' * prnotin;
csc0 = i8' *wsldin + i8' * csc0;
map0 = wsldin' * csc0;
";
        let stg = parse_astg(si_stg::IMEC_RAM_READ_SBUF_G).expect("valid");
        let sg = StateGraph::of_stg(&stg, 100_000).expect("consistent");
        let netlist = si_boolean::parse_eqn(eqn).expect("valid");
        let lib = GateLibrary::from_netlist(&netlist);
        assert!(verify_implements(&stg, &sg, &lib).is_empty());
    }

    #[test]
    fn csc_violation_is_propagated() {
        let text = "\
.model viol
.inputs a
.outputs b
.graph
a+ a-
a- a+/2
a+/2 b+
b+ a-/2
a-/2 b-
b- a+
.marking { <b-,a+> }
.end
";
        let stg = parse_astg(text).expect("valid");
        assert!(matches!(synthesize(&stg, 1000), Err(SynthError::Csc(_))));
    }
}

//! Deep-submicron error-rate study (thesis Sec. 7.2): how likely is an
//! isochronic-fork failure for the FIFO's derived constraints across
//! technology nodes, die sizes and fork constructions, using the Davis
//! interconnect-length distribution.
//!
//! Run with `cargo run --example error_rate_study`.

use si_redress::prelude::*;
use si_redress::sim::{
    circuit_error_rate, constraint_error_rate, ErrorRateConfig, ForkStyle, WireLengthDistribution,
    NODES,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = si_redress::suite::benchmark("fifo").expect("bundled");
    let (stg, library) = bench.circuit()?;
    let report = derive_timing_constraints(&stg, &library)?;
    let oracle = si_redress::core::AdversaryOracle::new(&stg);

    // Gate counts of the strong adversary paths.
    let mut gates: Vec<u32> = Vec::new();
    for c in &report.constraints {
        let (Some(b), Some(a)) = (
            stg.signal_by_name(&c.before.signal),
            stg.signal_by_name(&c.after.signal),
        ) else {
            continue;
        };
        let x = si_redress::stg::TransitionLabel::new(b, c.before.polarity, c.before.occurrence);
        let y = si_redress::stg::TransitionLabel::new(a, c.after.polarity, c.after.occurrence);
        if let Some(path) = oracle.path(x, y) {
            if !path.through_env {
                gates.push(path.gates);
            }
        }
    }
    println!("strong constraints and their adversary depths: {gates:?}\n");

    let dist = WireLengthDistribution::with_defaults(1_000_000);
    println!("wire-length distribution on a 1M-gate die:");
    for l in [10.0, 50.0, 200.0, 800.0] {
        println!(
            "  P(length > {l:>5} pitches) = {:.4}",
            dist.probability_longer_than(l)
        );
    }

    println!("\nper-constraint and circuit error rates:");
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "node", "ER(1 gate)", "circuit", "buf-1"
    );
    for tech in NODES {
        let config = ErrorRateConfig::new(1_000_000, ForkStyle::Unbuffered);
        let single = constraint_error_rate(&tech, &config, 1);
        let circuit = circuit_error_rate(&tech, &config, &gates);
        let buffered = circuit_error_rate(
            &tech,
            &ErrorRateConfig::new(1_000_000, ForkStyle::BufferedDirect),
            &gates,
        );
        println!(
            "{:>5}nm {:>11.3}% {:>11.2}% {:>11.2}%",
            tech.node_nm,
            100.0 * single,
            100.0 * circuit,
            100.0 * buffered
        );
    }
    Ok(())
}

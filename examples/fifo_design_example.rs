//! The thesis Ch. 7.1 design example, end to end: the FIFO latch
//! controller with its explicit delay line, the derived Table 7.1
//! constraints with their wire-vs-adversary-path readings, the Sec. 5.7
//! padding plan, and a timing-simulation demonstration that a violated
//! constraint glitches while the padded circuit runs clean.
//!
//! Run with `cargo run --example fifo_design_example`.

use si_redress::core::{plan_padding, AdversaryOracle, TraceEvent};
use si_redress::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = si_redress::suite::benchmark("fifo").expect("bundled");
    let (stg, library) = bench.circuit()?;
    println!(
        "FIFO latch controller: {} signals, gates:",
        stg.signal_count()
    );
    for gate in &library.gates {
        println!("  {} = {}", gate.output, gate.up.display(&gate.vars));
    }

    let report = derive_timing_constraints(&stg, &library)?;
    let oracle = AdversaryOracle::new(&stg);
    println!(
        "\n{} baseline orderings relied on the isochronic fork; {} constraints remain:",
        report.baseline.len(),
        report.constraints.len()
    );
    for c in &report.constraints {
        let path = stg
            .signal_by_name(&c.before.signal)
            .zip(stg.signal_by_name(&c.after.signal))
            .and_then(|(b, a)| {
                oracle.path(
                    si_redress::stg::TransitionLabel::new(
                        b,
                        c.before.polarity,
                        c.before.occurrence,
                    ),
                    si_redress::stg::TransitionLabel::new(a, c.after.polarity, c.after.occurrence),
                )
            });
        match path {
            Some(p) if p.through_env => println!("  {c}   [crosses ENV: fulfilled]"),
            Some(p) => println!("  {c}   [adversary: {}]", p.hops.join(" => ")),
            None => println!("  {c}"),
        }
    }

    // The relaxation narrative of Fig. 7.3 for gate g0 (the done detector).
    println!("\nrelaxation steps touching gate g0:");
    for event in &report.trace {
        match event {
            TraceEvent::Relaxed { gate, arc, case } if gate == "g0" => {
                println!("  relax {arc}: case {case}");
            }
            TraceEvent::Decomposed { gate, parts } if gate == "g0" => {
                println!("  OR-causality decomposition into {parts} sub-STGs");
            }
            _ => {}
        }
    }

    // Padding per Sec. 5.7 for the strong constraints.
    let plan = plan_padding(&stg, &oracle, &report.constraints, 5);
    println!(
        "\npadding plan ({} strong constraints):",
        plan.entries.len()
    );
    for (c, pos) in &plan.entries {
        println!("  {c}  ->  {pos:?}");
    }

    // Demonstration: break the `g0: d- < l+` race, watch the glitch, then
    // pad the adversary (gate l) and watch it disappear.
    let mut broken = DelayModel::uniform(40.0, 2.0, 80.0);
    broken.set_wire("d", "g0", 3000.0);
    let glitchy = simulate(&stg, &library, &broken, 400)?;
    println!(
        "\nwith a 3 ns skew on the d -> g0 branch: {} glitch(es) at g0",
        glitchy.glitches.iter().filter(|g| g.gate == "g0").count()
    );

    let mut padded = broken.clone();
    padded.set_gate("l", 3200.0);
    let clean = simulate(&stg, &library, &padded, 400)?;
    println!(
        "after padding the adversary path (gate l): {} glitch(es) at g0",
        clean.glitches.iter().filter(|g| g.gate == "g0").count()
    );
    Ok(())
}

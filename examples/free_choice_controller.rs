//! Free-choice STGs end to end: the `nowick` benchmark lets its
//! environment choose between two bursts, so its STG has a free-choice
//! place and the flow must first decompose it into marked-graph components
//! (Hack's algorithm, thesis Sec. 5.2.1) before projecting local STGs.
//!
//! Run with `cargo run --example free_choice_controller`.

use si_redress::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = si_redress::suite::benchmark("nowick").expect("bundled");
    let stg = bench.stg()?;
    println!(
        "`{}` is free-choice: {}",
        stg.name,
        stg.net().is_free_choice()
    );

    let components = stg.mg_components(64)?;
    println!(
        "Hack decomposition yields {} MG components:",
        components.len()
    );
    for (i, mg) in components.iter().enumerate() {
        let labels: Vec<String> = mg
            .transitions()
            .into_iter()
            .map(|t| mg.label_string(t))
            .collect();
        println!("  component {}: {}", i + 1, labels.join(" "));
    }

    let (stg, library) = bench.circuit()?;
    let report = derive_timing_constraints(&stg, &library)?;
    println!(
        "\nconstraints: {} before relaxation, {} after:",
        report.baseline.len(),
        report.constraints.len()
    );
    for c in &report.constraints {
        println!("  {c}");
    }

    // Both environment choices must simulate cleanly under isochronic
    // forks (the simulator resolves free choices deterministically by
    // scheduling order, exercising one branch per enabling).
    let delays = DelayModel::uniform(30.0, 1.0, 60.0);
    let outcome = simulate(&stg, &library, &delays, 120)?;
    println!(
        "\nsimulated {} output transitions with {} glitches",
        outcome.fired,
        outcome.glitches.len()
    );
    Ok(())
}

//! OR-causality up close (thesis Ch. 6): relaxing an input ordering on an
//! OR gate lets two clauses race to fire the output; no safe marked graph
//! expresses the race, so the local STG is decomposed into sub-STGs with
//! `#` order-restriction arcs — one per way the race can be won.
//!
//! Run with `cargo run --example or_causality_demo`.

use si_redress::core::{
    classify_states, find_candidate_clauses, find_candidate_transitions, initial_restrictions,
    or_causality_decomposition, prerequisite_sets, relax_arc, GateContext, LocalStg,
    RelaxationCase,
};
use si_redress::prelude::*;

const STG: &str = "\
.model case3
.inputs x y
.outputs o
.graph
x+ o+
x+ y+
o+ x-
y+ x-
x- y-
y- o-
o- x+
.marking { <o-,x+> }
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // o = x + y, with o+ triggered by x+ and y+ ordered after x+ only by
    // a type-4 arc. Relaxing x+ => y+ lets y+ overtake: the clause `y`
    // can now legitimately fire o+ before x+ lands — OR-causality.
    let stg = parse_astg(STG)?;
    let library = GateLibrary::from_netlist(&parse_eqn("o = x + y;")?);
    let ctx = GateContext::bind(library.gate("o").expect("present"), &stg)?;
    let component = MgStg::from_stg_mg(&stg)?;
    let mut local = LocalStg::project_from(&component, &ctx)?;

    let x = local.mg.transition_by_label("x+").expect("present");
    let y = local.mg.transition_by_label("y+").expect("present");
    let epre = prerequisite_sets(&local);
    relax_arc(&mut local.mg, x, y)?;
    let sg = StateGraph::of_mg(&local.mg, 10_000)?;
    let (case, report) = classify_states(&local, &sg, &epre, Some(x))?;
    assert_eq!(case, RelaxationCase::Case3);
    println!("relaxing x+ => y+ gives relaxation case 3 (OR-causality)");

    let (_, t_out) = report.premature[0];
    let e = epre.get(&t_out).cloned().unwrap_or_default();
    let clauses = find_candidate_clauses(&local, &sg, t_out, &e);
    println!("candidate clauses of f_up = x + y: {} of 2", clauses.len());

    let mut cands = std::collections::BTreeMap::new();
    for c in clauses {
        let set = find_candidate_transitions(&local, c, t_out, x, Polarity::Plus);
        let rendered: Vec<String> = set.iter().map(|&t| local.mg.label_string(t)).collect();
        println!("  clause {}: candidates {{{}}}", c, rendered.join(", "));
        cands.insert(c, set);
    }
    let all: std::collections::BTreeSet<usize> = cands.values().flatten().copied().collect();
    let init = initial_restrictions(&local, &all);
    let solution = or_causality_decomposition(&cands, &init);
    println!("\nsolution group ({} sub-STGs):", solution.len());
    for (clause, restrictions) in &solution {
        let rendered: Vec<String> = restrictions
            .iter()
            .map(|&(a, b)| {
                format!(
                    "{} # {}",
                    local.mg.label_string(a),
                    local.mg.label_string(b)
                )
            })
            .collect();
        println!("  clause {clause} wins under {{{}}}", rendered.join(", "));
    }

    // The full pipeline resolves this without emitting the ordering as a
    // timing constraint.
    let full = derive_timing_constraints(&stg, &library)?;
    println!(
        "\nfull derivation keeps {} of {} baseline orderings (x+ < y+ was discharged)",
        full.constraints.len(),
        full.baseline.len()
    );
    Ok(())
}

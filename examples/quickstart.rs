//! Quickstart: parse an STG, synthesize a speed-independent netlist,
//! derive the relative timing constraints that keep it hazard-free when
//! isochronic forks are relaxed, and print both constraint sets.
//!
//! Run with `cargo run --example quickstart`.

use si_redress::prelude::*;

const STG: &str = "\
.model handover
.inputs y z
.outputs o
.graph
z+ y-
y- z-
z- o-
o- y+
y+ o+
o+ z+
.marking { <o+,z+> }
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An OR gate `o = y + z` holding its output high across the handover
    // from input y to input z — the classic deep-submicron trap: if the
    // wire carrying z+ is slow, y- overtakes it and the gate dips.
    let stg = parse_astg(STG)?;
    let library = synthesize(&stg, 10_000)?;
    for gate in &library.gates {
        println!(
            "gate {} : f_up = {}, f_down = {}",
            gate.output,
            gate.up.display(&gate.vars),
            gate.down.display(&gate.vars)
        );
    }

    let report = derive_timing_constraints(&stg, &library)?;
    println!("\nadversary-path constraints before relaxation (Keller et al.):");
    for c in &report.baseline {
        println!("  {c}");
    }
    println!("relative timing constraints after relaxation (this paper):");
    for c in &report.constraints {
        println!("  {c}");
    }
    println!(
        "\n{} of {} orderings were discharged by the relaxation.",
        report.baseline.len() - report.constraints.len(),
        report.baseline.len()
    );

    // Demonstrate the surviving constraint with the timing simulator:
    // honour it and the circuit is clean; violate it and the gate glitches.
    let mut skewed = DelayModel::uniform(40.0, 2.0, 80.0);
    skewed.set_wire("z", "o", 2000.0); // z+ loses the race to y-
    let outcome = simulate(&stg, &library, &skewed, 100)?;
    println!(
        "violating `o: z+ < y-` in simulation produces {} glitch(es) at gate o",
        outcome.glitches.len()
    );
    Ok(())
}

//! `check_hazard [OPTIONS] STG.g EQN.eqn` — the thesis tool's command line
//! (Sec. 7.3.1), now backed by the staged [`si_core::Engine`]: reads an
//! STG and a restricted-EQN netlist, derives the adversary-path
//! constraints of the original specification and the relaxed constraint
//! set sufficient for correctness, and prints them as the thesis text
//! report or as machine-readable JSON with per-stage/per-gate metrics
//! and the lint pre-flight's diagnostics.
//!
//! Exit codes are meaningful: `0` when the circuit needs no relative
//! timing constraints, `1` when a hazard was found (the derived set is
//! non-empty), `2` on parse/lint/IO/derivation errors, `3` on usage
//! errors.

use std::process::ExitCode;
use std::time::Instant;

use si_core::{CoreError, Engine, EngineConfig, EngineReport, LintPolicy, RelaxationOrder};
use si_lint::LintReport;
use si_redress::suite::BatchError;

const USAGE: &str = "\
usage: check_hazard [OPTIONS] <stg.g> <netlist.eqn>
       check_hazard [OPTIONS] --bench <NAME>

Derives the relative timing constraints sufficient for the circuit
(netlist.eqn) to implement its STG (stg.g) hazard-free under the
intra-operator fork assumption, plus the pre-relaxation baseline.

OPTIONS:
        --bench <NAME>    run a bundled Table 7.2 benchmark by name
                          (synthesizing its netlist when the thesis gives
                          none) instead of reading the two files;
                          `corpus:<seed>` runs the seeded synthetic
                          corpus circuit for that seed instead — the
                          canonical spec derivation at 12 signals max,
                          synthesized netlist, and the corpus-harness
                          divergence bail-out, exactly as `si_fuzz` and
                          `corpus_bench` name them
        --lint            strict lint pre-flight: refuse to derive when
                          the specification has lint errors (the default
                          policy only reports them on stderr)
    -j, --jobs <N>        worker threads for the per-gate fan-out
                          (default 1 = sequential, 0 = one per CPU)
    -f, --format <FMT>    output format: text (default), json or sexp
                          (the S-expression constraint report of
                          docs/interchange.md)
        --order <ORDER>   relaxation order: tightest (default), lex or
                          contraction (prefer arcs whose relaxation
                          inserts the fewest new bypass arcs)
        --no-cache        disable state-graph memoization
        --no-incremental  regenerate every relaxation trial's state graph
                          from scratch instead of deriving it from its
                          predecessor's (escape hatch; output is identical)
        --no-incremental-classify
                          re-classify every state of every trial from
                          scratch instead of copying verdicts of states
                          the edit did not touch, and disable the
                          conformance verdict cache (escape hatch; output
                          is identical)
        --no-sigma-cold   explore cold state graphs in the classic
                          marking space instead of the σ (firing count)
                          space (escape hatch; output is identical)
        --no-memo         disable the local-STG projection memo
    -h, --help            print this help and exit

EXIT CODES:
    0    clean: the circuit needs no relative timing constraints
    1    hazard found: the derived constraint set is non-empty
    2    parse, lint, I/O or derivation error
    3    usage error
";

/// Where the circuit comes from.
enum Source {
    /// `.g` + `.eqn` files on disk.
    Files { stg_path: String, eqn_path: String },
    /// A bundled Table 7.2 benchmark by name.
    Bench(String),
}

/// Output format for the derivation report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sexp,
}

/// Parsed command line.
struct Args {
    source: Source,
    config: EngineConfig,
    format: Format,
}

enum ArgsOutcome {
    Run(Box<Args>),
    Help,
    Error(String),
}

fn parse_args(argv: &[String]) -> ArgsOutcome {
    let mut config = EngineConfig::default();
    let mut format = Format::Text;
    let mut bench: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return ArgsOutcome::Help,
            "--bench" => match it.next() {
                Some(name) => bench = Some(name.clone()),
                None => return ArgsOutcome::Error("--bench expects a benchmark name".into()),
            },
            "--lint" => config.lint = LintPolicy::Deny,
            "-j" | "--jobs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => config.jobs = n,
                _ => return ArgsOutcome::Error("--jobs expects a non-negative integer".into()),
            },
            "-f" | "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sexp") => format = Format::Sexp,
                _ => return ArgsOutcome::Error("--format expects `text`, `json` or `sexp`".into()),
            },
            "--order" => match it.next().map(String::as_str) {
                Some("tightest") => config.order = RelaxationOrder::TightestFirst,
                Some("lex") => config.order = RelaxationOrder::Lexicographic,
                Some("contraction") => config.order = RelaxationOrder::ContractionFirst,
                _ => {
                    return ArgsOutcome::Error(
                        "--order expects `tightest`, `lex` or `contraction`".into(),
                    )
                }
            },
            "--no-cache" => config.cache = false,
            "--no-incremental" => config.incremental = false,
            "--no-incremental-classify" => config.incremental_classify = false,
            "--no-sigma-cold" => config.sigma_cold = false,
            "--no-memo" => config.memo_projection = false,
            flag if flag.starts_with('-') => {
                return ArgsOutcome::Error(format!("unknown option `{flag}`"))
            }
            _ => positional.push(arg.clone()),
        }
    }
    match (bench, <[String; 2]>::try_from(positional)) {
        (Some(name), Err(rest)) if rest.is_empty() => ArgsOutcome::Run(Box::new(Args {
            source: Source::Bench(name),
            config,
            format,
        })),
        (Some(_), _) => ArgsOutcome::Error("--bench takes no positional paths".into()),
        (None, Ok([stg_path, eqn_path])) => ArgsOutcome::Run(Box::new(Args {
            source: Source::Files { stg_path, eqn_path },
            config,
            format,
        })),
        (None, Err(_)) => {
            ArgsOutcome::Error("expected exactly two paths: <stg.g> <netlist.eqn>".into())
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        ArgsOutcome::Run(args) => args,
        ArgsOutcome::Help => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        ArgsOutcome::Error(message) => {
            eprintln!("check_hazard: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(3);
        }
    };
    match run(&args) {
        // 0 = no constraints needed, 1 = hazard found (constraints derived).
        Ok(hazard) => ExitCode::from(u8::from(hazard)),
        Err(message) => {
            eprintln!("check_hazard: {message}");
            ExitCode::from(2)
        }
    }
}

/// Prints the lint pre-flight's findings (if any) to stderr so the
/// pinned stdout report stays byte-identical for lint-clean runs.
fn report_lint(report: &LintReport, source: &str, origin: &str) {
    if !report.is_clean() {
        eprint!("{}", si_lint::render_text(report, source, origin));
    }
}

fn run(args: &Args) -> Result<bool, String> {
    let started = Instant::now();
    let engine = Engine::new(args.config);
    let out = match &args.source {
        Source::Files { stg_path, eqn_path } => {
            let stg_text = std::fs::read_to_string(stg_path)
                .map_err(|e| format!("cannot read `{stg_path}`: {e}"))?;
            let eqn_text = std::fs::read_to_string(eqn_path)
                .map_err(|e| format!("cannot read `{eqn_path}`: {e}"))?;
            match engine.run_source(&stg_text, &eqn_text) {
                Ok(out) => {
                    report_lint(&out.lint, &stg_text, stg_path);
                    out
                }
                Err(CoreError::Lint { errors, .. }) => {
                    // Re-lint for the full findings: the engine error only
                    // carries the first one.
                    let report = si_lint::lint_text_with(
                        &stg_text,
                        &si_lint::LintOptions {
                            state_budget: Some(args.config.global_sg_budget),
                        },
                    );
                    report_lint(&report, &stg_text, stg_path);
                    return Err(format!(
                        "`{stg_path}` failed the lint pre-flight with {errors} error(s)"
                    ));
                }
                Err(e) => return Err(e.to_string()),
            }
        }
        Source::Bench(name) if name.starts_with("corpus:") => {
            let seed: u64 = name["corpus:".len()..]
                .parse()
                .map_err(|_| format!("`{name}`: expected `corpus:<seed>` with a numeric seed"))?;
            // Mirror the fuzz harness exactly: canonical spec derivation,
            // fuzz signal bound, divergence bail-out at the default
            // budget — so a fuzz reproducer's circuit can be inspected
            // under the same knobs.
            let engine = Engine::new(si_redress::corpus::harness_config(args.config));
            let spec = si_redress::corpus::CorpusSpec::from_seed(seed, 12);
            let circuit = si_redress::corpus::generate(&spec, seed);
            let entry = si_redress::suite::CorpusEntry {
                name: si_redress::corpus::corpus_name(seed),
                stg_text: circuit.g_text,
                eqn_text: None,
            };
            match si_redress::suite::run_corpus_entry(&engine, &entry) {
                Ok(row) => {
                    report_lint(&row.lint, &entry.stg_text, &entry.name);
                    let mut out = row.report;
                    out.lint = row.lint;
                    out
                }
                Err(e) => return Err(e.to_string()),
            }
        }
        Source::Bench(name) => {
            let bench = si_redress::suite::benchmark(name)
                .ok_or_else(|| format!("no bundled benchmark named `{name}`"))?;
            match si_redress::suite::run_benchmark(&engine, &bench) {
                Ok(entry) => {
                    report_lint(&entry.lint, bench.stg_text, name);
                    let mut out = entry.report;
                    out.lint = entry.lint;
                    out
                }
                Err(BatchError::Lint { report, .. }) => {
                    report_lint(&report, bench.stg_text, name);
                    return Err(format!(
                        "benchmark `{name}` failed the lint pre-flight with {} error(s)",
                        report.error_count()
                    ));
                }
                Err(e) => return Err(e.to_string()),
            }
        }
    };
    let elapsed = started.elapsed().as_secs_f64();

    match args.format {
        Format::Text => print_text(&out, elapsed),
        Format::Json => println!("{}", render_json(&out, elapsed)),
        Format::Sexp => print!("{}", out.report.sexp()),
    }
    Ok(!out.report.constraints.is_empty())
}

fn print_text(out: &EngineReport, elapsed: f64) {
    println!("The timing constraints in the original specification are:");
    for c in &out.report.baseline {
        println!("{c}");
    }
    println!();
    println!("The timing constraints for this circuit to work correctly are:");
    for c in &out.report.constraints {
        println!("{c}");
    }
    println!();
    println!("The running time for this program is {elapsed:.6} seconds");
}

/// Minimal JSON string escaping (the identifiers here are plain ASCII,
/// but be correct anyway).
fn json_str(s: &str) -> String {
    format!("\"{}\"", si_lint::json_escape(s))
}

fn json_list<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
    let parts: Vec<String> = items.iter().map(f).collect();
    format!("[{}]", parts.join(","))
}

fn render_json(out: &EngineReport, elapsed: f64) -> String {
    let constraints = |set: &std::collections::BTreeSet<si_core::Constraint>| {
        let parts: Vec<String> = set.iter().map(|c| json_str(&c.to_string())).collect();
        format!("[{}]", parts.join(","))
    };
    let stages = json_list(&out.stages, |s| {
        format!(
            "{{\"stage\":{},\"wall_us\":{},\"states_explored\":{},\"sg_cache_hits\":{},\"sg_cache_misses\":{},\"sg_delta_hits\":{},\"sg_inc_derived\":{},\"proj_memo_hits\":{},\"proj_memo_misses\":{},\"conf_cache_hits\":{},\"conf_cache_misses\":{},\"conf_inc_classified\":{},\"sched_fingerprints\":{},\"sched_cycle_bails\":{},\"sched_watchdog_bails\":{}}}",
            json_str(s.stage.name()),
            s.wall.as_micros(),
            s.states_explored,
            s.sg_cache_hits,
            s.sg_cache_misses,
            s.sg_delta_hits,
            s.sg_inc_derived,
            s.proj_memo_hits,
            s.proj_memo_misses,
            s.conf_cache_hits,
            s.conf_cache_misses,
            s.conf_inc_classified,
            s.sched_fingerprints,
            s.sched_cycle_bails,
            s.sched_watchdog_bails,
        )
    });
    let gates = json_list(&out.gates, |g| {
        format!(
            "{{\"gate\":{},\"project_us\":{},\"relax_us\":{},\"iterations\":{},\"states_explored\":{},\"sg_cache_hits\":{},\"sg_cache_misses\":{},\"sg_delta_hits\":{},\"sg_inc_derived\":{},\"proj_memo_hits\":{},\"proj_memo_misses\":{},\"conf_cache_hits\":{},\"conf_cache_misses\":{},\"conf_inc_classified\":{},\"sched_fingerprints\":{},\"sched_cycle_bails\":{},\"sched_watchdog_bails\":{}}}",
            json_str(&g.gate),
            g.project_wall.as_micros(),
            g.relax_wall.as_micros(),
            g.iterations,
            g.states_explored,
            g.sg_cache_hits,
            g.sg_cache_misses,
            g.sg_delta_hits,
            g.sg_inc_derived,
            g.proj_memo_hits,
            g.proj_memo_misses,
            g.conf_cache_hits,
            g.conf_cache_misses,
            g.conf_inc_classified,
            g.sched_fingerprints,
            g.sched_cycle_bails,
            g.sched_watchdog_bails,
        )
    });
    let lint = format!(
        "{{\"errors\":{},\"warnings\":{},\"diagnostics\":{}}}",
        out.lint.error_count(),
        out.lint.warning_count(),
        si_lint::json_diagnostics(&out.lint, ""),
    );
    format!(
        "{{\"baseline\":{},\"constraints\":{},\"hazard\":{},\"state_count\":{},\"iterations\":{},\"jobs\":{},\"lint\":{},\"stages\":{},\"gates\":{},\"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"delta_hits\":{},\"delta_entries\":{},\"inc_derived\":{}}},\"projections\":{{\"hits\":{},\"misses\":{},\"entries\":{}}},\"conformance\":{{\"hits\":{},\"misses\":{},\"entries\":{}}},\"fanout_wall_us\":{},\"total_wall_us\":{},\"elapsed_seconds\":{elapsed:.6}}}",
        constraints(&out.report.baseline),
        constraints(&out.report.constraints),
        !out.report.constraints.is_empty(),
        out.report.state_count,
        out.report.iterations,
        out.jobs,
        lint,
        stages,
        gates,
        out.cache.hits,
        out.cache.misses,
        out.cache.entries,
        out.cache.delta_hits,
        out.cache.delta_entries,
        out.cache.inc_derived,
        out.projections.hits,
        out.projections.misses,
        out.projections.entries,
        out.conformance.hits,
        out.conformance.misses,
        out.conformance.entries,
        out.fanout_wall.as_micros(),
        out.total_wall.as_micros(),
    )
}

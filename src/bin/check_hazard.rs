//! `check_hazard STG.g EQN.eqn` — the thesis tool's command line
//! (Sec. 7.3.1): reads an STG and a restricted-EQN netlist, prints the
//! adversary-path constraints of the original specification and the
//! relaxed constraint set sufficient for correctness, then the running
//! time.

use std::process::ExitCode;
use std::time::Instant;

use si_boolean::{parse_eqn, GateLibrary};
use si_core::derive_timing_constraints;
use si_stg::parse_astg;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: check_hazard <stg.g> <netlist.eqn>");
        return ExitCode::from(2);
    }
    match run(&args[1], &args[2]) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("check_hazard: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(stg_path: &str, eqn_path: &str) -> Result<(), String> {
    let stg_text =
        std::fs::read_to_string(stg_path).map_err(|e| format!("cannot read `{stg_path}`: {e}"))?;
    let eqn_text =
        std::fs::read_to_string(eqn_path).map_err(|e| format!("cannot read `{eqn_path}`: {e}"))?;

    let started = Instant::now();
    let stg = parse_astg(&stg_text).map_err(|e| e.to_string())?;
    let health = stg.validate(1_000_000).map_err(|e| e.to_string())?;
    if !health.is_well_formed() {
        return Err(format!(
            "STG `{}` is not well formed (live: {}, safe: {}, free-choice: {}, consistent: {})",
            stg.name, health.live, health.safe, health.free_choice, health.consistent
        ));
    }
    let netlist = parse_eqn(&eqn_text).map_err(|e| e.to_string())?;
    let library = GateLibrary::from_netlist(&netlist);
    let report = derive_timing_constraints(&stg, &library).map_err(|e| e.to_string())?;

    println!("The timing constraints in the original specification are:");
    for c in &report.baseline {
        println!("{c}");
    }
    println!();
    println!("The timing constraints for this circuit to work correctly are:");
    for c in &report.constraints {
        println!("{c}");
    }
    println!();
    println!(
        "The running time for this program is {:.6} seconds",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

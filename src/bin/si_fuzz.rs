//! `si_fuzz` — the differential fuzz harness over the synthetic corpus.
//!
//! For every seed, generates a circuit ([`si_corpus::generate`] under the
//! canonical [`CorpusSpec::from_seed`] derivation), checks the
//! generator's validity guarantee (zero lint errors), synthesizes its
//! complex-gate netlist, and runs the **full-featured engine**
//! ([`EngineConfig::default`]: caches, incremental regeneration,
//! incremental classification, σ-cold exploration) against the pinned
//! **reference engine** ([`EngineConfig::reference`]: sequential,
//! uncached, from-scratch). Any difference in the derived constraint
//! sets, per-gate verdicts or error values is a soundness bug in one of
//! the reuse layers; the harness then *minimizes* the spec (fewer
//! signals, choices, forks; two-phase; no OR tail) while the divergence
//! persists and prints a one-line reproducer:
//!
//! ```text
//! seed=42 signals=7 choices=1 or=60 fork=3 interleave=0 marking=place
//! ```
//!
//! Replay it with `si_fuzz --replay 'seed=42 signals=7 …'`. Circuits the
//! synthesizer rejects (CSC conflicts in interleaved mode, input-only
//! bursts) are counted and skipped — both engines need the same netlist
//! to compare.
//!
//! A cheap extra oracle rides along on every scanned seed: the generated
//! spec's parse-event stream must survive the S-expression interchange
//! round-trip (`parse → events → sexp → reader → tree`,
//! `docs/interchange.md`) bit-identically. A divergence is minimized and
//! reported through the same reproducer machinery as an engine mismatch.
//!
//! Exit codes: `0` no divergence, `1` divergence found (reproducer on
//! stdout and in the artifact file), `3` usage error.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use si_corpus::{generate, harness_config, CorpusSpec, GeneratedCircuit, MarkingStyle, Reproducer};
use si_redress::core::{ConstraintReport, CoreError, Engine, EngineConfig};
use si_redress::lint::LintOptions;
use si_redress::synth::synthesize;

const USAGE: &str = "\
usage: si_fuzz [OPTIONS]
       si_fuzz --replay '<reproducer line>'

Differential fuzzing: seeded synthetic circuits through the full-featured
engine vs the pinned sequential reference; any divergence in constraints,
verdicts or error values fails the run with a minimized reproducer. The
S-expression interchange round-trip is checked on every seed as a cheap
extra oracle under the same contract.

OPTIONS:
        --seeds <N>        number of seeds to scan (default 1000)
        --start <S>        first seed (default 1)
        --max-signals <K>  upper signal-count bound for generated
                           circuits (default 12, clamped to 2..=24)
    -j, --jobs <N>         parallel fuzz workers sharing one full-featured
                           engine (default 1, 0 = one per CPU)
        --artifact <PATH>  where to write the reproducer on failure
                           (default si_fuzz_failure.txt)
        --replay <LINE>    re-run one reproducer (`seed=… signals=… …`)
                           instead of scanning
    -h, --help             print this help and exit

EXIT CODES:
    0    no divergence over the scanned seeds
    1    divergence found; reproducer printed and written to the artifact
    3    usage error
";

struct Args {
    seeds: u64,
    start: u64,
    max_signals: usize,
    jobs: usize,
    artifact: String,
    replay: Option<Reproducer>,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args {
        seeds: 1000,
        start: 1,
        max_signals: 12,
        jobs: 1,
        artifact: "si_fuzz_failure.txt".into(),
        replay: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--seeds" => args.seeds = parse_num(&value("--seeds")?)?,
            "--start" => args.start = parse_num(&value("--start")?)?,
            "--max-signals" => args.max_signals = parse_num(&value("--max-signals")?)? as usize,
            "-j" | "--jobs" => args.jobs = parse_num(&value("--jobs")?)? as usize,
            "--artifact" => args.artifact = value("--artifact")?,
            "--replay" => args.replay = Some(value("--replay")?.parse()?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(args))
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("expected a number, got `{s}`"))
}

/// The semantic payload compared across engines: the constraint report
/// (baseline + relaxed sets, per-gate cases) or the error value. Wall
/// times and cache counters are config-dependent by design and excluded.
type Payload = Result<ConstraintReport, CoreError>;

/// Synthesizes the netlist once and runs it through both engines (they
/// share the same state budget, so one library serves both).
fn payloads(full: &Engine, reference: &Engine, c: &GeneratedCircuit) -> Option<(Payload, Payload)> {
    let library = synthesize(&c.stg, full.config().global_sg_budget).ok()?;
    let a = full.run(&c.stg, &library).map(|report| report.report);
    let b = reference.run(&c.stg, &library).map(|report| report.report);
    Some((a, b))
}

/// What went wrong on one seed.
enum Fault {
    /// The generator's zero-lint-errors guarantee broke.
    Guarantee(usize),
    /// Full-featured and reference engines disagree.
    Diverged(Box<Payload>, Box<Payload>),
    /// The S-expression interchange round-trip lost or changed a fact.
    SexpRoundTrip(String),
}

/// The interchange oracle: the spec's event stream, dumped to the sexp
/// format and read back, must rebuild the exact same parse (same `Stg`,
/// spans and defect list) as parsing the text directly. Returns a
/// what-differs description on violation.
fn sexp_divergence(g_text: &str) -> Option<String> {
    let direct = si_stg::parse_astg_lenient(g_text);
    let dump = si_stg::sexp::write_events(&si_stg::parse_events(g_text));
    let events = match si_stg::sexp::read_events(&dump) {
        Ok(events) => events,
        Err(e) => return Some(format!("reader rejects the writer's own dump: {e}")),
    };
    let rebuilt = si_stg::tree_of_events(&events);
    if rebuilt.stg != direct.stg {
        return Some("rebuilt Stg differs from the direct parse".into());
    }
    if rebuilt.spans != direct.spans {
        return Some("rebuilt spans differ from the direct parse".into());
    }
    if rebuilt.errors != direct.errors {
        return Some(format!(
            "rebuilt defect list differs: {:?} vs {:?}",
            rebuilt.errors, direct.errors
        ));
    }
    None
}

/// Checks one `(spec, seed)` case with **fresh, cold** engines — the
/// verification and minimization oracle, immune to shared-cache state.
fn fault_of(spec: &CorpusSpec, seed: u64) -> Option<Fault> {
    let c = generate(spec, seed);
    let budget = harness_config(EngineConfig::default()).global_sg_budget;
    let lint = si_redress::lint::lint_text_with(
        &c.g_text,
        &LintOptions {
            state_budget: Some(budget),
        },
    );
    if lint.error_count() > 0 {
        return Some(Fault::Guarantee(lint.error_count()));
    }
    if let Some(detail) = sexp_divergence(&c.g_text) {
        return Some(Fault::SexpRoundTrip(detail));
    }
    let (full, reference) = payloads(
        &Engine::new(harness_config(EngineConfig::default())),
        &Engine::new(harness_config(EngineConfig::reference())),
        &c,
    )?;
    (full != reference).then(|| Fault::Diverged(Box::new(full), Box::new(reference)))
}

/// Greedily shrinks the spec while the fault persists: fewer signals,
/// fewer choices, no OR tail, narrower forks, two-phase, implicit
/// marking.
fn minimize(spec: CorpusSpec, seed: u64) -> CorpusSpec {
    let mut spec = spec;
    loop {
        let candidates = [
            CorpusSpec {
                signals: spec.signals.saturating_sub(1),
                ..spec
            },
            CorpusSpec {
                choices: spec.choices.saturating_sub(1),
                ..spec
            },
            CorpusSpec {
                or_density: 0,
                ..spec
            },
            CorpusSpec {
                max_fork: spec.max_fork.saturating_sub(1),
                ..spec
            },
            CorpusSpec {
                interleave: false,
                ..spec
            },
            CorpusSpec {
                marking: MarkingStyle::ImplicitArcs,
                ..spec
            },
        ];
        let Some(smaller) = candidates
            .iter()
            .map(CorpusSpec::sanitized)
            .find(|cand| *cand != spec && fault_of(cand, seed).is_some())
        else {
            return spec;
        };
        spec = smaller;
    }
}

fn describe(fault: &Fault) -> String {
    match fault {
        Fault::Guarantee(errors) => {
            format!("generator validity guarantee violated: {errors} lint error(s)")
        }
        Fault::Diverged(full, reference) => format!(
            "engine diverges from reference\n--- full-featured ---\n{full:?}\n--- reference ---\n{reference:?}"
        ),
        Fault::SexpRoundTrip(detail) => {
            format!("sexp round-trip oracle violated: {detail}")
        }
    }
}

/// Reports one verified fault: minimize, print, write the artifact.
fn report_fault(seed: u64, max_signals: usize, artifact: &str) -> ExitCode {
    let spec = CorpusSpec::from_seed(seed, max_signals);
    let min_spec = minimize(spec, seed);
    let fault = fault_of(&min_spec, seed).expect("minimization preserves the fault");
    let repro = Reproducer {
        seed,
        spec: min_spec,
    };
    let c = generate(&min_spec, seed);
    let body = format!(
        "si_fuzz divergence\nreproducer: {repro}\nreplay: si_fuzz --replay '{repro}'\n\n{}\n\n--- minimized circuit ---\n{}",
        describe(&fault),
        c.g_text
    );
    println!("FAIL {repro}");
    println!("{}", describe(&fault));
    if let Err(e) = std::fs::write(artifact, &body) {
        eprintln!("si_fuzz: cannot write artifact `{artifact}`: {e}");
    } else {
        println!("reproducer written to {artifact}");
    }
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("si_fuzz: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(3);
        }
    };

    if let Some(repro) = args.replay {
        return match fault_of(&repro.spec, repro.seed) {
            Some(fault) => {
                println!("FAIL {repro}");
                println!("{}", describe(&fault));
                ExitCode::from(1)
            }
            None => {
                println!("ok: {repro} shows no divergence (or is skipped by synthesis)");
                ExitCode::SUCCESS
            }
        };
    }

    let jobs = if args.jobs == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        args.jobs
    }
    .max(1);

    // The scan phase shares one warm full-featured engine across all
    // workers — exactly how a corpus batch exercises the reuse tiers —
    // while the reference engine is stateless by construction. Hits are
    // re-verified with fresh cold engines before being reported. Both
    // sides run with the divergence bail-out forced on (see
    // `si_corpus::harness_config`) at the real default iteration budget:
    // pathological fork shapes abort deterministically within one
    // watchdog window instead of spending hours in one circuit's
    // relaxation loop, and the `Diverged` verdict is itself a compared
    // payload.
    let full = Engine::new(harness_config(EngineConfig::default()));
    let reference = Engine::new(harness_config(EngineConfig::reference()));
    let next = AtomicU64::new(args.start);
    let end = args.start.saturating_add(args.seeds);
    let compared = AtomicU64::new(0);
    let skipped = AtomicU64::new(0);
    let suspects: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let started = Instant::now();

    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let seed = next.fetch_add(1, Ordering::Relaxed);
                if seed >= end {
                    return;
                }
                let spec = CorpusSpec::from_seed(seed, args.max_signals);
                let c = generate(&spec, seed);
                let lint = si_redress::lint::lint_text_with(
                    &c.g_text,
                    &LintOptions {
                        state_budget: Some(full.config().global_sg_budget),
                    },
                );
                if lint.error_count() > 0 || sexp_divergence(&c.g_text).is_some() {
                    suspects.lock().expect("suspects").push(seed);
                    continue;
                }
                let Some((a, b)) = payloads(&full, &reference, &c) else {
                    skipped.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                compared.fetch_add(1, Ordering::Relaxed);
                if a != b {
                    suspects.lock().expect("suspects").push(seed);
                }
            });
        }
    });

    let mut suspects = suspects.into_inner().expect("suspects");
    suspects.sort_unstable();
    // Re-verify cold: a warm-engine hit that a cold run cannot reproduce
    // would itself be a bug, but the reproducer must stand alone.
    let confirmed = suspects
        .iter()
        .find(|&&seed| fault_of(&CorpusSpec::from_seed(seed, args.max_signals), seed).is_some());

    let compared = compared.load(Ordering::Relaxed);
    let skipped = skipped.load(Ordering::Relaxed);
    println!(
        "scanned {} seeds [{}..{}) in {:.1}s: {compared} compared, {skipped} skipped (synthesis), {} divergent",
        args.seeds,
        args.start,
        end,
        started.elapsed().as_secs_f64(),
        suspects.len(),
    );
    match (confirmed, suspects.is_empty()) {
        (Some(&seed), _) => report_fault(seed, args.max_signals, &args.artifact),
        (None, false) => {
            // Warm-only anomaly: reproduce via the scan, not a one-liner.
            println!(
                "warm-engine divergence on seed(s) {suspects:?} did not reproduce cold; \
                 rerun with --start {} --seeds 1 --jobs 1 to investigate",
                suspects[0]
            );
            ExitCode::from(1)
        }
        (None, true) => {
            println!("no divergence");
            ExitCode::SUCCESS
        }
    }
}

//! `si_lint` — the standalone static specification analyzer.
//!
//! Lints `.g` STG specifications: single files, whole directories
//! (recursing into `*.g` files, plus `.g` blocks embedded in `*.rs`
//! sources), or the bundled benchmark suite.
//!
//! ```text
//! si_lint spec.g                      lint one file
//! si_lint benches/ --format json     lint a tree, JSON output
//! si_lint --suite                    lint the 13 bundled benchmarks
//! ```
//!
//! Exit codes: 0 = no errors (warnings allowed unless `--deny-warnings`),
//! 1 = lint errors found, 2 = usage or I/O error.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use si_lint::{
    json_diagnostics, json_escape, lint_text_with, render_sexp, render_text, LintOptions,
};

const USAGE: &str = "\
si_lint - static specification analyzer for STGs

USAGE:
    si_lint [OPTIONS] [PATH...]

ARGS:
    PATH...            .g files, directories (recursed for *.g and for
                       .model/.end blocks embedded in *.rs files), or
                       .rs files

OPTIONS:
    --suite            lint the bundled benchmark suite instead of paths
    -f, --format FMT   output format: text (default), json or sexp
    --budget N         state-graph budget for the SI016 feasibility check
    --deny-warnings    exit nonzero on warnings too
    -h, --help         print this help

EXIT CODES:
    0    no lint errors
    1    at least one lint error (or warning with --deny-warnings)
    2    usage or I/O error
";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sexp,
}

#[derive(Debug)]
struct Args {
    paths: Vec<PathBuf>,
    suite: bool,
    format: Format,
    budget: Option<usize>,
    deny_warnings: bool,
}

enum ArgsOutcome {
    Run(Args),
    Help,
    Error(String),
}

fn parse_args(argv: &[String]) -> ArgsOutcome {
    let mut args = Args {
        paths: Vec::new(),
        suite: false,
        format: Format::Text,
        budget: None,
        deny_warnings: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return ArgsOutcome::Help,
            "--suite" => args.suite = true,
            "--deny-warnings" => args.deny_warnings = true,
            "-f" | "--format" => match it.next().map(String::as_str) {
                Some("text") => args.format = Format::Text,
                Some("json") => args.format = Format::Json,
                Some("sexp") => args.format = Format::Sexp,
                Some(other) => {
                    return ArgsOutcome::Error(format!("unknown format `{other}`"));
                }
                None => return ArgsOutcome::Error("missing value for --format".into()),
            },
            "--budget" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => args.budget = Some(n),
                None => {
                    return ArgsOutcome::Error("missing or invalid value for --budget".into());
                }
            },
            other if other.starts_with('-') => {
                return ArgsOutcome::Error(format!("unknown option `{other}`"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if !args.suite && args.paths.is_empty() {
        return ArgsOutcome::Error("no input: pass at least one PATH or --suite".into());
    }
    ArgsOutcome::Run(args)
}

/// One specification to lint: where it came from and its text.
struct Input {
    origin: String,
    text: String,
}

/// Extracts `.g` blocks embedded in a Rust source: every run of lines
/// from one starting with `.model` through one equal to `.end`.
fn embedded_blocks(source: &str, origin: &Path) -> Vec<Input> {
    let mut blocks = Vec::new();
    let mut current: Option<Vec<&str>> = None;
    for line in source.lines() {
        let trimmed = line.trim();
        if current.is_none() && trimmed.starts_with(".model") {
            current = Some(Vec::new());
        }
        if let Some(block) = current.as_mut() {
            block.push(trimmed);
            if trimmed == ".end" {
                let text = block.join("\n") + "\n";
                blocks.push(Input {
                    origin: format!("{}#{}", origin.display(), blocks.len() + 1),
                    text,
                });
                current = None;
            }
        }
    }
    blocks
}

/// Collects lintable inputs from a path: `.g` files verbatim, `.rs`
/// files via embedded-block extraction, directories recursively.
fn collect(path: &Path, inputs: &mut Vec<Input>) -> Result<(), String> {
    let meta = fs::metadata(path).map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    if meta.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(path)
            .map_err(|e| format!("cannot list `{}`: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            let ext = entry.extension().and_then(|e| e.to_str());
            if entry.is_dir() || matches!(ext, Some("g") | Some("rs")) {
                collect(&entry, inputs)?;
            }
        }
        return Ok(());
    }
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    if path.extension().and_then(|e| e.to_str()) == Some("rs") {
        inputs.extend(embedded_blocks(&text, path));
    } else {
        inputs.push(Input {
            origin: path.display().to_string(),
            text,
        });
    }
    Ok(())
}

fn gather_inputs(args: &Args) -> Result<Vec<Input>, String> {
    let mut inputs = Vec::new();
    if args.suite {
        for bench in si_redress::suite::benchmarks() {
            inputs.push(Input {
                origin: format!("suite:{}", bench.name),
                text: bench.stg_text.to_string(),
            });
        }
    }
    for path in &args.paths {
        collect(path, &mut inputs)?;
    }
    Ok(inputs)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        ArgsOutcome::Run(args) => args,
        ArgsOutcome::Help => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        ArgsOutcome::Error(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let inputs = match gather_inputs(&args) {
        Ok(inputs) => inputs,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    if inputs.is_empty() {
        eprintln!("error: no .g specifications found");
        return ExitCode::from(2);
    }

    let opts = LintOptions {
        state_budget: args.budget,
    };
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut json_files = Vec::new();
    for input in &inputs {
        let report = lint_text_with(&input.text, &opts);
        errors += report.error_count();
        warnings += report.warning_count();
        match args.format {
            Format::Text => print!("{}", render_text(&report, &input.text, &input.origin)),
            Format::Sexp => print!("{}", render_sexp(&report, &input.origin)),
            Format::Json => json_files.push(format!(
                "    {{\n      \"origin\": \"{}\",\n      \"model\": \"{}\",\n      \
                 \"errors\": {},\n      \"warnings\": {},\n      \"diagnostics\": {}\n    }}",
                json_escape(&input.origin),
                json_escape(&report.model),
                report.error_count(),
                report.warning_count(),
                json_diagnostics(&report, "      ")
            )),
        }
    }
    match args.format {
        Format::Text => {
            if inputs.len() > 1 {
                println!(
                    "total: {} file(s), {errors} error(s), {warnings} warning(s)",
                    inputs.len()
                );
            }
        }
        Format::Json => println!(
            "{{\n  \"files\": [\n{}\n  ],\n  \"errors\": {errors},\n  \"warnings\": {warnings}\n}}",
            json_files.join(",\n")
        ),
        Format::Sexp => {}
    }

    if errors > 0 || (args.deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! `si-redress` — relative-timing repair for speed-independent circuits.
//!
//! A reproduction of *"Redressing timing issues for speed-independent
//! circuits in deep submicron age"* (Li, DATE 2011; full algorithm suite
//! from the accompanying Newcastle PhD thesis). Given a speed-independent
//! control circuit and its implementation STG, the library derives — in
//! polynomial time — the weakest known set of relative timing constraints
//! under which the circuit stays hazard-free when the isochronic-fork
//! assumption is relaxed to the intra-operator fork assumption.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! - [`petri`]: Petri nets, marked graphs, Hack's MG decomposition;
//! - [`stg`]: signal transition graphs, the `.g` format (with an
//!   error-recovering, span-carrying parser), state graphs, projection;
//! - [`lint`]: the static specification analyzer — stable `SI0xx`
//!   diagnostic codes with spans, fix hints, text/JSON renderers — run as
//!   the engine's pre-flight stage and by the `si_lint` binary;
//! - [`boolean`]: cubes/covers, exact two-level minimization, the EQN
//!   netlist format;
//! - [`synth`]: SG-based complex-gate synthesis (the petrify stand-in);
//! - [`core`]: the paper's contribution — arc relaxation, the four-case
//!   hazard criterion, OR-causality decomposition, constraint derivation,
//!   delay padding — and the staged [`core::Engine`] pipeline (explicit
//!   config, state-graph memoization, parallel per-gate fan-out);
//! - [`sim`]: event-driven timing simulation, technology models,
//!   error-rate and cycle-time analysis;
//! - [`corpus`]: the seeded synthetic circuit generator (deterministic
//!   `(spec, seed)` → valid `.g`, plus the shared proptest strategies)
//!   behind the `si_fuzz` differential harness;
//! - [`suite`]: the thirteen-benchmark corpus of the paper's Table 7.2,
//!   and the circuit-level sharded [`suite::run_corpus`] runner.
//!
//! # Quickstart
//!
//! ```
//! use si_redress::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = si_redress::suite::benchmark("imec-ram-read-sbuf").expect("bundled");
//! let (stg, library) = bench.circuit()?;
//! let report = derive_timing_constraints(&stg, &library)?;
//! // The thesis numbers: 19 adversary-path constraints before, 12 after.
//! assert_eq!(report.baseline.len(), 19);
//! assert_eq!(report.constraints.len(), 12);
//! # Ok(())
//! # }
//! ```

pub use si_boolean as boolean;
pub use si_core as core;
pub use si_corpus as corpus;
pub use si_lint as lint;
pub use si_petri as petri;
pub use si_sim as sim;
pub use si_stg as stg;
pub use si_suite as suite;
pub use si_synth as synth;

/// The most commonly used items in one import.
pub mod prelude {
    pub use si_boolean::{parse_eqn, Cover, Cube, Gate, GateLibrary};
    pub use si_core::{
        derive_timing_constraints, plan_padding, AdversaryOracle, Constraint, ConstraintReport,
        Engine, EngineConfig, EngineReport, LintPolicy, RelaxationCase,
    };
    pub use si_lint::{lint_text, LintReport};
    pub use si_sim::{simulate, DelayModel};
    pub use si_stg::{parse_astg, MgStg, Polarity, SignalKind, StateGraph, Stg};
    pub use si_suite::run_suite;
    pub use si_synth::synthesize;
}

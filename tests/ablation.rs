//! Ablation of the relaxation-order policy (thesis Sec. 5.5, Fig. 5.23):
//! both orders must produce *sound* constraint sets, the tightest-first
//! policy never produces more constraints in total, and the
//! tightest-first set preferentially discharges the short (dangerous)
//! adversary paths.

use si_redress::core::{derive_timing_constraints_with_order, AdversaryOracle, RelaxationOrder};
use si_redress::prelude::*;

#[test]
fn both_orders_are_sound_and_tightest_first_is_never_worse() {
    let (mut tight_total, mut lex_total) = (0usize, 0usize);
    for bench in si_redress::suite::benchmarks() {
        let (stg, library) = bench.circuit().expect("loads");
        let tight =
            derive_timing_constraints_with_order(&stg, &library, RelaxationOrder::TightestFirst)
                .expect("derives");
        let lex =
            derive_timing_constraints_with_order(&stg, &library, RelaxationOrder::Lexicographic)
                .expect("derives");
        // Both runs share the baseline and both reduce it.
        assert_eq!(tight.baseline, lex.baseline, "{}", bench.name);
        assert!(tight.constraints.len() <= tight.baseline.len());
        assert!(lex.constraints.len() <= lex.baseline.len());
        tight_total += tight.constraints.len();
        lex_total += lex.constraints.len();
    }
    assert!(
        tight_total <= lex_total,
        "tightest-first produced more constraints overall: {tight_total} vs {lex_total}"
    );
}

#[test]
fn tightest_first_keeps_fewer_short_adversary_constraints() {
    // The policy's purpose: relax the short (most dangerous) orderings
    // while they are still relaxable. Aggregated over the suite, the
    // tightest-first run must keep no more level-≤5 constraints than the
    // naive order.
    let (mut tight5, mut lex5) = (0usize, 0usize);
    for bench in si_redress::suite::benchmarks() {
        let (stg, library) = bench.circuit().expect("loads");
        let oracle = AdversaryOracle::new(&stg);
        let tight =
            derive_timing_constraints_with_order(&stg, &library, RelaxationOrder::TightestFirst)
                .expect("derives");
        let lex =
            derive_timing_constraints_with_order(&stg, &library, RelaxationOrder::Lexicographic)
                .expect("derives");
        tight5 += tight
            .constraints_within_level(&tight.constraints, &oracle, &stg, 5)
            .len();
        lex5 += lex
            .constraints_within_level(&lex.constraints, &oracle, &stg, 5)
            .len();
    }
    assert!(
        tight5 <= lex5,
        "tightest-first kept more short constraints: {tight5} vs {lex5}"
    );
}

#[test]
fn default_order_is_tightest_first() {
    let bench = si_redress::suite::benchmark("imec-ram-read-sbuf").expect("bundled");
    let (stg, library) = bench.circuit().expect("loads");
    let default = derive_timing_constraints(&stg, &library).expect("derives");
    let explicit =
        derive_timing_constraints_with_order(&stg, &library, RelaxationOrder::TightestFirst)
            .expect("derives");
    assert_eq!(default.constraints, explicit.constraints);
}

//! End-to-end test of the `check_hazard` command line (the thesis tool's
//! interface, Sec. 7.3.1) and its exit-code contract:
//!
//! - `0` — clean: the derived constraint set is empty;
//! - `1` — hazard found: the derived constraint set is non-empty;
//! - `2` — parse/lint/IO/derivation error;
//! - `3` — usage error.

use std::io::Write;
use std::process::Command;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("si-redress-cli-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

/// A lint-clean circuit whose derived constraint set is empty (the
/// C-element acknowledges both inputs, so no isochronic-fork orderings
/// remain).
const CELEM_G: &str = "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
";
const CELEM_EQN: &str = "c = a*b + a*c + b*c;\n";

#[test]
fn check_hazard_reproduces_the_thesis_report() {
    let bench = si_redress::suite::benchmark("imec-ram-read-sbuf").expect("bundled");
    let stg_path = write_temp("imec.g", bench.stg_text);
    let eqn_path = write_temp("imec.eqn", bench.eqn_text.expect("verbatim netlist"));

    let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
        .arg(&stg_path)
        .arg(&eqn_path)
        .output()
        .expect("binary runs");
    // 12 derived constraints: a hazard was found, so exit code 1.
    assert_eq!(
        output.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);

    assert!(stdout.contains("The timing constraints in the original specification are:"));
    assert!(stdout.contains("The timing constraints for this circuit to work correctly are:"));
    assert!(stdout.contains("The running time for this program is"));
    // Spot-check thesis lines from both sections.
    assert!(stdout.contains("i0: precharged+ < wenin+"));
    assert!(stdout.contains("i0: wenin- < precharged-"));
    assert!(stdout.contains("csc0: wsldin- < i8-"));

    // 19 + 12 constraint lines in total.
    let lines = stdout.lines().filter(|l| l.contains(" < ")).count();
    assert_eq!(lines, 31);

    let _ = std::fs::remove_file(stg_path);
    let _ = std::fs::remove_file(eqn_path);
}

#[test]
fn check_hazard_exits_zero_on_a_constraint_free_circuit() {
    let stg_path = write_temp("celem.g", CELEM_G);
    let eqn_path = write_temp("celem.eqn", CELEM_EQN);
    let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
        .arg("--lint")
        .arg(&stg_path)
        .arg(&eqn_path)
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("The timing constraints for this circuit to work correctly are:"));
    assert_eq!(stdout.matches(" < ").count(), 0);
    let _ = std::fs::remove_file(stg_path);
    let _ = std::fs::remove_file(eqn_path);
}

#[test]
fn check_hazard_rejects_bad_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert_eq!(output.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage"));
}

#[test]
fn check_hazard_help_exits_zero() {
    for flag in ["--help", "-h"] {
        let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
            .arg(flag)
            .output()
            .expect("binary runs");
        assert!(output.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(stdout.contains("usage"), "{flag}: {stdout}");
        assert!(stdout.contains("--jobs"));
        assert!(stdout.contains("--format"));
        assert!(stdout.contains("--lint"));
        assert!(stdout.contains("--no-incremental-classify"));
        assert!(stdout.contains("--no-sigma-cold"));
        assert!(stdout.contains("EXIT CODES"));
    }
}

#[test]
fn check_hazard_rejects_unknown_options() {
    let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
        .args(["--frobnicate", "a.g", "b.eqn"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--frobnicate"));
}

#[test]
fn check_hazard_parallel_json_reports_the_gold_circuit() {
    let bench = si_redress::suite::benchmark("imec-ram-read-sbuf").expect("bundled");
    let stg_path = write_temp("imec-json.g", bench.stg_text);
    let eqn_path = write_temp("imec-json.eqn", bench.eqn_text.expect("verbatim netlist"));

    let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
        .args(["--jobs", "4", "--format", "json"])
        .arg(&stg_path)
        .arg(&eqn_path)
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    // One JSON object with the thesis numbers and the stage metrics.
    assert!(stdout.trim_start().starts_with('{'), "not JSON: {stdout}");
    assert!(stdout.contains("\"state_count\":112"));
    assert!(stdout.contains("\"jobs\":4"));
    assert!(stdout.contains("\"hazard\":true"));
    // The lint pre-flight payload: the gold circuit is clean.
    assert!(stdout.contains("\"lint\":{\"errors\":0,\"warnings\":0,\"diagnostics\":[]}"));
    for stage in [
        "lint",
        "parse",
        "validate",
        "decompose",
        "project",
        "relax",
        "merge",
    ] {
        assert!(
            stdout.contains(&format!("\"stage\":\"{stage}\"")),
            "{stage}"
        );
    }
    assert!(stdout.contains("\"i0: precharged+ < wenin+\""));
    assert!(stdout.contains("\"csc0: wsldin- < i8-\""));
    // 19 baseline + 12 derived constraint strings.
    assert_eq!(stdout.matches(" < ").count(), 31);
    assert!(stdout.contains("\"cache\":{"));
    assert!(stdout.contains("\"projections\":{"));
    assert!(stdout.contains("\"conformance\":{"));
    assert!(stdout.contains("\"sg_delta_hits\""));
    assert!(stdout.contains("\"proj_memo_hits\""));
    assert!(stdout.contains("\"conf_cache_hits\""));
    assert!(stdout.contains("\"conf_inc_classified\""));

    let _ = std::fs::remove_file(stg_path);
    let _ = std::fs::remove_file(eqn_path);
}

#[test]
fn check_hazard_text_output_is_identical_across_jobs_and_cache_settings() {
    let bench = si_redress::suite::benchmark("imec-ram-read-sbuf").expect("bundled");
    let stg_path = write_temp("imec-jobs.g", bench.stg_text);
    let eqn_path = write_temp("imec-jobs.eqn", bench.eqn_text.expect("verbatim netlist"));

    let constraint_lines = |args: &[&str]| -> Vec<String> {
        let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
            .args(args)
            .arg(&stg_path)
            .arg(&eqn_path)
            .output()
            .expect("binary runs");
        assert_eq!(
            output.status.code(),
            Some(1),
            "{args:?}: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stdout)
            .lines()
            .filter(|l| l.contains(" < "))
            .map(str::to_string)
            .collect()
    };
    let sequential = constraint_lines(&["--no-cache", "--jobs", "1"]);
    let parallel = constraint_lines(&["--jobs", "4"]);
    assert_eq!(sequential.len(), 31);
    assert_eq!(sequential, parallel);
    // The incremental-regeneration and projection-memo escape hatches
    // must not change a single constraint line either.
    let scratch = constraint_lines(&["--no-incremental", "--no-memo"]);
    assert_eq!(sequential, scratch);
    // Nor the incremental-classification and σ-space escape hatches.
    let classic = constraint_lines(&["--no-incremental-classify", "--no-sigma-cold"]);
    assert_eq!(sequential, classic);
    let fully_reused = constraint_lines(&[]);
    assert_eq!(sequential, fully_reused);
    // Neither must the strict lint pre-flight (the spec is clean).
    let linted = constraint_lines(&["--lint"]);
    assert_eq!(sequential, linted);

    let _ = std::fs::remove_file(stg_path);
    let _ = std::fs::remove_file(eqn_path);
}

#[test]
fn check_hazard_bench_mode_runs_bundled_circuits() {
    let constraint_lines = |args: &[&str]| -> Vec<String> {
        let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
            .args(args)
            .output()
            .expect("binary runs");
        assert_eq!(
            output.status.code(),
            Some(1),
            "{args:?}: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stdout)
            .lines()
            .filter(|l| l.contains(" < "))
            .map(str::to_string)
            .collect()
    };
    let default = constraint_lines(&["--bench", "imec-ram-read-sbuf"]);
    assert_eq!(default.len(), 31, "19 baseline + 12 derived");
    // The CI smoke diff in miniature: the incremental path and its escape
    // hatch must print identical reports.
    let scratch = constraint_lines(&["--bench", "imec-ram-read-sbuf", "--no-incremental"]);
    assert_eq!(default, scratch);
    let classic = constraint_lines(&[
        "--bench",
        "imec-ram-read-sbuf",
        "--no-incremental-classify",
        "--no-sigma-cold",
    ]);
    assert_eq!(default, classic);

    // Unknown names are runtime errors (2); mixing --bench with paths is
    // a usage error (3).
    let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
        .args(["--bench", "no-such-circuit"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
        .args(["--bench", "fifo", "a.g", "b.eqn"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(3));
}

#[test]
fn check_hazard_bench_mode_runs_corpus_circuits() {
    // `corpus:<seed>` mirrors the fuzz harness derivation exactly: the
    // canonical 12-signal spec for the seed, a synthesized netlist, the
    // corpus-harness relaxation budget. Seed 42 is a hazard-positive
    // circuit whose constraint count the corpus goldens also pin.
    let run = |bench: &str| {
        let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
            .args(["--bench", bench])
            .output()
            .expect("binary runs");
        let lines = String::from_utf8_lossy(&output.stdout)
            .lines()
            .filter(|l| l.contains(" < "))
            .count();
        (output.status.code(), lines)
    };
    let (code, lines) = run("corpus:42");
    assert_eq!(code, Some(1), "seed 42 derives hazards");
    assert_eq!(lines, 18, "generator determinism pins the constraint set");
    // Seed 1000 synthesizes into a constraint-free netlist: exit 0.
    let (code, lines) = run("corpus:1000");
    assert_eq!(code, Some(0));
    assert_eq!(lines, 0);
    // A malformed seed is a runtime error, like an unknown bench name.
    let (code, _) = run("corpus:abc");
    assert_eq!(code, Some(2));
}

#[test]
fn check_hazard_reports_parse_errors() {
    let stg_path = write_temp("bad.g", ".model broken\n.inputs a\n");
    let eqn_path = write_temp("bad.eqn", "a = b;\n");
    let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
        .arg(&stg_path)
        .arg(&eqn_path)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    let _ = std::fs::remove_file(stg_path);
    let _ = std::fs::remove_file(eqn_path);
}

#[test]
fn check_hazard_lint_gate_blocks_defective_specs_with_diagnostics() {
    // Undeclared signal `b` (SI004) plus an unknown section (SI002): the
    // lenient parser recovers past both, so the lint pre-flight reports
    // them together where the strict parser would stop at the first.
    let stg_path = write_temp(
        "dirty.g",
        "\
.model dirty
.inputs a
.weird
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
",
    );
    let eqn_path = write_temp("dirty.eqn", "b = a;\n");
    let output = Command::new(env!("CARGO_BIN_EXE_check_hazard"))
        .arg("--lint")
        .arg(&stg_path)
        .arg(&eqn_path)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error[SI002]"), "stderr: {stderr}");
    assert!(stderr.contains("error[SI004]"), "stderr: {stderr}");
    assert!(stderr.contains("failed the lint pre-flight"), "{stderr}");
    // Nothing was derived.
    assert!(!String::from_utf8_lossy(&output.stdout)
        .contains("The timing constraints for this circuit to work correctly are:"));
    let _ = std::fs::remove_file(stg_path);
    let _ = std::fs::remove_file(eqn_path);
}

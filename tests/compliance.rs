//! Compliance corpus: one S-expression parse-tree dump per bundled
//! benchmark and per pinned generator fixture (`tests/compliance/*.sexp`,
//! grammar in `docs/interchange.md`). Each file is the lossless event
//! stream of the spec — every node, token, span and defect the layered
//! front-end produces — so any drift in the lexer, the event layer or the
//! interchange writer shows up as a reviewable diff here before it
//! reaches a downstream tool.
//!
//! Beyond pinning the bytes, every dump must *round-trip*: reading the
//! committed file back through [`si_stg::sexp::read_events`] and folding
//! the events with [`si_stg::tree_of_events`] has to rebuild the exact
//! same parse (`Stg`, spans, defect list) as parsing the `.g` text
//! directly.
//!
//! To regenerate after an intentional format or front-end change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test compliance
//! ```
//!
//! then review the diff like any other code change.

use std::fs;
use std::path::PathBuf;

use si_redress::corpus::{generate_named, CorpusSpec, MarkingStyle};
use si_stg::sexp::{read_events, write_events};
use si_stg::{parse_astg_lenient, parse_events, tree_of_events};

fn compliance_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/compliance")
        .join(format!("{name}.sexp"))
}

fn header(name: &str) -> String {
    format!(
        "; Compliance dump for `{name}`: the lossless parse-event stream of\n\
         ; the spec in the S-expression interchange format (see\n\
         ; docs/interchange.md). Regenerate with:\n\
         ;   UPDATE_GOLDEN=1 cargo test --test compliance\n"
    )
}

/// Points at the first diverging line of two dumps.
fn first_diff(actual: &str, expected: &str) -> String {
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        if a != e {
            return format!(
                "first difference at line {}:\n  got:      {a}\n  expected: {e}",
                i + 1
            );
        }
    }
    format!(
        "one dump is a prefix of the other ({} vs {} lines)",
        actual.lines().count(),
        expected.lines().count()
    )
}

/// The five pinned generator fixtures of `tests/golden.rs`, duplicated
/// verbatim (same names, specs and seeds) so the compliance corpus covers
/// exactly the circuits the golden conformance suite pins. Keep the two
/// tables in sync.
fn corpus_fixtures() -> Vec<(&'static str, CorpusSpec, u64)> {
    let base = CorpusSpec {
        signals: 6,
        choices: 0,
        or_density: 0,
        max_fork: 1,
        interleave: false,
        marking: MarkingStyle::ImplicitArcs,
    };
    vec![
        ("corpus-two-phase-ring", base, 1),
        (
            "corpus-forked-burst",
            CorpusSpec {
                signals: 10,
                max_fork: 3,
                ..base
            },
            7,
        ),
        (
            "corpus-choice-pair",
            CorpusSpec {
                signals: 8,
                choices: 1,
                max_fork: 2,
                marking: MarkingStyle::ExplicitPlace,
                ..base
            },
            11,
        ),
        (
            "corpus-or-tail",
            CorpusSpec {
                signals: 9,
                choices: 2,
                or_density: 100,
                marking: MarkingStyle::ExplicitPlace,
                ..base
            },
            5,
        ),
        (
            "corpus-mixed",
            CorpusSpec {
                signals: 12,
                choices: 2,
                or_density: 60,
                max_fork: 2,
                marking: MarkingStyle::ExplicitPlace,
                ..base
            },
            42,
        ),
    ]
}

/// Every spec in the compliance corpus: the 13 bundled benchmarks plus
/// the 5 pinned generator fixtures.
fn corpus() -> Vec<(String, String)> {
    let mut specs: Vec<(String, String)> = si_redress::suite::benchmarks()
        .iter()
        .map(|b| (b.name.to_string(), b.stg_text.to_string()))
        .collect();
    for (name, spec, seed) in corpus_fixtures() {
        specs.push((name.to_string(), generate_named(&spec, seed, name).g_text));
    }
    specs
}

/// Pins the dump bytes and the read-back round-trip for every spec.
#[test]
fn compliance_dumps_pin_the_event_stream_for_every_spec() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    for (name, stg_text) in corpus() {
        let dump = format!(
            "{}{}",
            header(&name),
            write_events(&parse_events(&stg_text))
        );
        let path = compliance_path(&name);
        if update {
            fs::write(&path, &dump)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
        let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing compliance dump `{}`: {e}\n\
                 run `UPDATE_GOLDEN=1 cargo test --test compliance` to create it",
                path.display()
            )
        });
        assert_eq!(
            dump,
            expected,
            "compliance dump mismatch for `{name}` ({}).\n{}\n\
             If the format or front-end change is intentional, regenerate\n\
             with `UPDATE_GOLDEN=1 cargo test --test compliance` and review\n\
             the diff; otherwise the lexer/event/interchange layers drifted.",
            path.display(),
            first_diff(&dump, &expected),
        );
        // The committed file must round-trip losslessly: reading it back
        // rebuilds the exact parse the text itself produces.
        let events = read_events(&expected)
            .unwrap_or_else(|e| panic!("committed dump `{name}` must read back: {e}"));
        let rebuilt = tree_of_events(&events);
        let direct = parse_astg_lenient(&stg_text);
        assert_eq!(rebuilt.stg, direct.stg, "round-trip Stg for `{name}`");
        assert_eq!(rebuilt.spans, direct.spans, "round-trip spans for `{name}`");
        assert_eq!(
            rebuilt.errors, direct.errors,
            "round-trip defects for `{name}`"
        );
    }
}

#[test]
fn compliance_directory_has_no_stale_dumps() {
    // Every file in tests/compliance must correspond to a spec in the
    // corpus: a renamed or removed benchmark/fixture must not leave an
    // orphaned dump that silently stops being checked.
    let names: Vec<String> = corpus().into_iter().map(|(name, _)| name).collect();
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/compliance");
    for entry in fs::read_dir(&dir).expect("compliance directory exists") {
        let path = entry.expect("readable entry").path();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        assert!(
            path.extension().is_some_and(|e| e == "sexp"),
            "unexpected file in tests/compliance: {}",
            path.display()
        );
        assert!(
            names.contains(&stem),
            "stale compliance dump `{}`: no bundled benchmark or corpus \
             fixture is named `{stem}`",
            path.display()
        );
    }
}

; Compliance dump for `adfast`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 13, 1, 1] "adfast")
  (inputs [14, 32, 2, 1]
    (name [22, 24, 2, 9] "go")
    (name [25, 28, 2, 12] "cmp")
    (name [29, 32, 2, 16] "rdy"))
  (outputs [33, 55, 3, 1]
    (name [42, 46, 3, 10] "samp")
    (name [47, 50, 3, 15] "cnt")
    (name [51, 55, 3, 19] "done"))
  (graph [56, 62, 4, 1]
    (line [63, 72, 5, 1]
      (node [63, 66, 5, 1] "go+")
      (node [67, 72, 5, 5] "samp+"))
    (line [73, 83, 6, 1]
      (node [73, 78, 6, 1] "samp+")
      (node [79, 83, 6, 7] "cmp+"))
    (line [84, 93, 7, 1]
      (node [84, 88, 7, 1] "cmp+")
      (node [89, 93, 7, 6] "cnt+"))
    (line [94, 103, 8, 1]
      (node [94, 98, 8, 1] "cnt+")
      (node [99, 103, 8, 6] "rdy+"))
    (line [104, 120, 9, 1]
      (node [104, 108, 9, 1] "rdy+")
      (node [109, 114, 9, 6] "samp-")
      (node [115, 120, 9, 12] "done+"))
    (line [121, 131, 10, 1]
      (node [121, 126, 10, 1] "samp-")
      (node [127, 131, 10, 7] "cmp-"))
    (line [132, 141, 11, 1]
      (node [132, 137, 11, 1] "done+")
      (node [138, 141, 11, 7] "go-"))
    (line [142, 151, 12, 1]
      (node [142, 146, 12, 1] "cmp-")
      (node [147, 151, 12, 6] "cnt-"))
    (line [152, 160, 13, 1]
      (node [152, 155, 13, 1] "go-")
      (node [156, 160, 13, 5] "cnt-"))
    (line [161, 170, 14, 1]
      (node [161, 165, 14, 1] "cnt-")
      (node [166, 170, 14, 6] "rdy-"))
    (line [171, 181, 15, 1]
      (node [171, 175, 15, 1] "rdy-")
      (node [176, 181, 15, 6] "done-"))
    (line [182, 191, 16, 1]
      (node [182, 187, 16, 1] "done-")
      (node [188, 191, 16, 7] "go+")))
  (marking [192, 216, 17, 1]
    (entry [203, 214, 17, 12] "<done-,go+>")))

; Compliance dump for `atod`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 11, 1, 1] "atod")
  (inputs [12, 29, 2, 1]
    (name [20, 23, 2, 9] "req")
    (name [24, 27, 2, 13] "eoc")
    (name [28, 29, 2, 17] "d"))
  (outputs [30, 51, 3, 1]
    (name [39, 44, 3, 10] "start")
    (name [45, 47, 3, 16] "la")
    (name [48, 51, 3, 19] "ack"))
  (graph [52, 58, 4, 1]
    (line [59, 70, 5, 1]
      (node [59, 63, 5, 1] "req+")
      (node [64, 70, 5, 6] "start+"))
    (line [71, 82, 6, 1]
      (node [71, 77, 6, 1] "start+")
      (node [78, 82, 6, 8] "eoc+"))
    (line [83, 91, 7, 1]
      (node [83, 87, 7, 1] "eoc+")
      (node [88, 91, 7, 6] "la+"))
    (line [92, 105, 8, 1]
      (node [92, 95, 8, 1] "la+")
      (node [96, 98, 8, 5] "d+")
      (node [99, 105, 8, 8] "start-"))
    (line [106, 117, 9, 1]
      (node [106, 112, 9, 1] "start-")
      (node [113, 117, 9, 8] "eoc-"))
    (line [118, 125, 10, 1]
      (node [118, 120, 10, 1] "d+")
      (node [121, 125, 10, 4] "ack+"))
    (line [126, 135, 11, 1]
      (node [126, 130, 11, 1] "eoc-")
      (node [131, 135, 11, 6] "ack+"))
    (line [136, 145, 12, 1]
      (node [136, 140, 12, 1] "ack+")
      (node [141, 145, 12, 6] "req-"))
    (line [146, 154, 13, 1]
      (node [146, 150, 13, 1] "req-")
      (node [151, 154, 13, 6] "la-"))
    (line [155, 161, 14, 1]
      (node [155, 158, 14, 1] "la-")
      (node [159, 161, 14, 5] "d-"))
    (line [162, 169, 15, 1]
      (node [162, 164, 15, 1] "d-")
      (node [165, 169, 15, 4] "ack-"))
    (line [170, 179, 16, 1]
      (node [170, 174, 16, 1] "ack-")
      (node [175, 179, 16, 6] "req+")))
  (marking [180, 204, 17, 1]
    (entry [191, 202, 17, 12] "<ack-,req+>")))

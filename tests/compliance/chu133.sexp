; Compliance dump for `chu133`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 13, 1, 1] "chu133")
  (inputs [14, 27, 2, 1]
    (name [22, 23, 2, 9] "a")
    (name [24, 25, 2, 11] "b")
    (name [26, 27, 2, 13] "c"))
  (outputs [28, 42, 3, 1]
    (name [37, 38, 3, 10] "x")
    (name [39, 40, 3, 12] "y")
    (name [41, 42, 3, 14] "z"))
  (graph [43, 49, 4, 1]
    (line [50, 55, 5, 1]
      (node [50, 52, 5, 1] "a+")
      (node [53, 55, 5, 4] "x+"))
    (line [56, 61, 6, 1]
      (node [56, 58, 6, 1] "x+")
      (node [59, 61, 6, 4] "b+"))
    (line [62, 67, 7, 1]
      (node [62, 64, 7, 1] "b+")
      (node [65, 67, 7, 4] "y+"))
    (line [68, 73, 8, 1]
      (node [68, 70, 8, 1] "y+")
      (node [71, 73, 8, 4] "c+"))
    (line [74, 79, 9, 1]
      (node [74, 76, 9, 1] "c+")
      (node [77, 79, 9, 4] "z+"))
    (line [80, 85, 10, 1]
      (node [80, 82, 10, 1] "z+")
      (node [83, 85, 10, 4] "a-"))
    (line [86, 91, 11, 1]
      (node [86, 88, 11, 1] "a-")
      (node [89, 91, 11, 4] "x-"))
    (line [92, 100, 12, 1]
      (node [92, 94, 12, 1] "x-")
      (node [95, 97, 12, 4] "b-")
      (node [98, 100, 12, 7] "y-"))
    (line [101, 106, 13, 1]
      (node [101, 103, 13, 1] "y-")
      (node [104, 106, 13, 4] "z-"))
    (line [107, 112, 14, 1]
      (node [107, 109, 14, 1] "z-")
      (node [110, 112, 14, 4] "c-"))
    (line [113, 118, 15, 1]
      (node [113, 115, 15, 1] "c-")
      (node [116, 118, 15, 4] "a+"))
    (line [119, 124, 16, 1]
      (node [119, 121, 16, 1] "b-")
      (node [122, 124, 16, 4] "a+")))
  (marking [125, 153, 17, 1]
    (entry [136, 143, 17, 12] "<c-,a+>")
    (entry [144, 151, 17, 20] "<b-,a+>")))

; Compliance dump for `converta`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 15, 1, 1] "converta")
  (inputs [16, 27, 2, 1]
    (name [24, 25, 2, 9] "a")
    (name [26, 27, 2, 11] "k"))
  (outputs [28, 42, 3, 1]
    (name [37, 38, 3, 10] "b")
    (name [39, 40, 3, 12] "r")
    (name [41, 42, 3, 14] "x"))
  (graph [43, 49, 4, 1]
    (line [50, 55, 5, 1]
      (node [50, 52, 5, 1] "a+")
      (node [53, 55, 5, 4] "r+"))
    (line [56, 61, 6, 1]
      (node [56, 58, 6, 1] "r+")
      (node [59, 61, 6, 4] "k+"))
    (line [62, 67, 7, 1]
      (node [62, 64, 7, 1] "k+")
      (node [65, 67, 7, 4] "b+"))
    (line [68, 73, 8, 1]
      (node [68, 70, 8, 1] "b+")
      (node [71, 73, 8, 4] "a-"))
    (line [74, 79, 9, 1]
      (node [74, 76, 9, 1] "a-")
      (node [77, 79, 9, 4] "x+"))
    (line [80, 85, 10, 1]
      (node [80, 82, 10, 1] "x+")
      (node [83, 85, 10, 4] "r-"))
    (line [86, 91, 11, 1]
      (node [86, 88, 11, 1] "r-")
      (node [89, 91, 11, 4] "k-"))
    (line [92, 97, 12, 1]
      (node [92, 94, 12, 1] "k-")
      (node [95, 97, 12, 4] "x-"))
    (line [98, 103, 13, 1]
      (node [98, 100, 13, 1] "x-")
      (node [101, 103, 13, 4] "b-"))
    (line [104, 109, 14, 1]
      (node [104, 106, 14, 1] "b-")
      (node [107, 109, 14, 4] "a+")))
  (marking [110, 130, 15, 1]
    (entry [121, 128, 15, 12] "<b-,a+>")))

; Compliance dump for `corpus-choice-pair`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 25, 1, 1] "corpus-choice-pair")
  (inputs [26, 45, 2, 1]
    (name [34, 36, 2, 9] "i0")
    (name [37, 39, 2, 12] "i1")
    (name [40, 42, 2, 15] "i2")
    (name [43, 45, 2, 18] "i3"))
  (outputs [46, 66, 3, 1]
    (name [55, 57, 3, 10] "o0")
    (name [58, 60, 3, 13] "o1")
    (name [61, 63, 3, 16] "o2")
    (name [64, 66, 3, 19] "o3"))
  (graph [67, 73, 4, 1]
    (line [74, 81, 5, 1]
      (node [74, 77, 5, 1] "i0+")
      (node [78, 81, 5, 5] "o0+"))
    (line [82, 93, 6, 1]
      (node [82, 85, 6, 1] "o0+")
      (node [86, 89, 6, 5] "i1+")
      (node [90, 93, 6, 9] "o1+"))
    (line [94, 101, 7, 1]
      (node [94, 97, 7, 1] "i1+")
      (node [98, 101, 7, 5] "i0-"))
    (line [102, 109, 8, 1]
      (node [102, 105, 8, 1] "o1+")
      (node [106, 109, 8, 5] "i0-"))
    (line [110, 121, 9, 1]
      (node [110, 113, 9, 1] "i0-")
      (node [114, 117, 9, 5] "o0-")
      (node [118, 121, 9, 9] "o1-"))
    (line [122, 129, 10, 1]
      (node [122, 125, 10, 1] "o0-")
      (node [126, 129, 10, 5] "i1-"))
    (line [130, 137, 11, 1]
      (node [130, 133, 11, 1] "o1-")
      (node [134, 137, 11, 5] "i1-"))
    (line [138, 145, 12, 1]
      (node [138, 141, 12, 1] "i2+")
      (node [142, 145, 12, 5] "o3+"))
    (line [146, 157, 13, 1]
      (node [146, 149, 13, 1] "o3+")
      (node [150, 153, 13, 5] "i3+")
      (node [154, 157, 13, 9] "o2+"))
    (line [158, 165, 14, 1]
      (node [158, 161, 14, 1] "i3+")
      (node [162, 165, 14, 5] "i2-"))
    (line [166, 173, 15, 1]
      (node [166, 169, 15, 1] "o2+")
      (node [170, 173, 15, 5] "i2-"))
    (line [174, 181, 16, 1]
      (node [174, 177, 16, 1] "i2-")
      (node [178, 181, 16, 5] "i3-"))
    (line [182, 189, 17, 1]
      (node [182, 185, 17, 1] "i3-")
      (node [186, 189, 17, 5] "o2-"))
    (line [190, 197, 18, 1]
      (node [190, 193, 18, 1] "o2-")
      (node [194, 197, 18, 5] "o3-"))
    (line [198, 204, 19, 1]
      (node [198, 201, 19, 1] "i1-")
      (node [202, 204, 19, 5] "p0"))
    (line [205, 211, 20, 1]
      (node [205, 208, 20, 1] "o3-")
      (node [209, 211, 20, 5] "p0"))
    (line [212, 222, 21, 1]
      (node [212, 214, 21, 1] "p0")
      (node [215, 218, 21, 4] "i0+")
      (node [219, 222, 21, 8] "i2+")))
  (marking [223, 238, 22, 1]
    (entry [234, 236, 22, 12] "p0")))

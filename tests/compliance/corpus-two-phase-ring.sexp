; Compliance dump for `corpus-two-phase-ring`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 28, 1, 1] "corpus-two-phase-ring")
  (inputs [29, 39, 2, 1]
    (name [37, 39, 2, 9] "i0"))
  (outputs [40, 63, 3, 1]
    (name [49, 51, 3, 10] "o0")
    (name [52, 54, 3, 13] "o1")
    (name [55, 57, 3, 16] "o2")
    (name [58, 60, 3, 19] "o3")
    (name [61, 63, 3, 22] "o4"))
  (graph [64, 70, 4, 1]
    (line [71, 78, 5, 1]
      (node [71, 74, 5, 1] "o0+")
      (node [75, 78, 5, 5] "o4+"))
    (line [79, 86, 6, 1]
      (node [79, 82, 6, 1] "o4+")
      (node [83, 86, 6, 5] "o3+"))
    (line [87, 94, 7, 1]
      (node [87, 90, 7, 1] "o3+")
      (node [91, 94, 7, 5] "o1+"))
    (line [95, 102, 8, 1]
      (node [95, 98, 8, 1] "o1+")
      (node [99, 102, 8, 5] "o2+"))
    (line [103, 110, 9, 1]
      (node [103, 106, 9, 1] "o2+")
      (node [107, 110, 9, 5] "i0+"))
    (line [111, 118, 10, 1]
      (node [111, 114, 10, 1] "i0+")
      (node [115, 118, 10, 5] "o0-"))
    (line [119, 126, 11, 1]
      (node [119, 122, 11, 1] "o0-")
      (node [123, 126, 11, 5] "o3-"))
    (line [127, 134, 12, 1]
      (node [127, 130, 12, 1] "o3-")
      (node [131, 134, 12, 5] "o2-"))
    (line [135, 142, 13, 1]
      (node [135, 138, 13, 1] "o2-")
      (node [139, 142, 13, 5] "o1-"))
    (line [143, 150, 14, 1]
      (node [143, 146, 14, 1] "o1-")
      (node [147, 150, 14, 5] "o4-"))
    (line [151, 158, 15, 1]
      (node [151, 154, 15, 1] "o4-")
      (node [155, 158, 15, 5] "i0-"))
    (line [159, 166, 16, 1]
      (node [159, 162, 16, 1] "i0-")
      (node [163, 166, 16, 5] "o0+")))
  (marking [167, 189, 17, 1]
    (entry [178, 187, 17, 12] "<i0-,o0+>")))

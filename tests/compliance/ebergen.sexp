; Compliance dump for `ebergen`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 14, 1, 1] "ebergen")
  (inputs [15, 26, 2, 1]
    (name [23, 24, 2, 9] "i")
    (name [25, 26, 2, 11] "j"))
  (outputs [27, 41, 3, 1]
    (name [36, 37, 3, 10] "p")
    (name [38, 39, 3, 12] "q")
    (name [40, 41, 3, 14] "r"))
  (graph [42, 48, 4, 1]
    (line [49, 54, 5, 1]
      (node [49, 51, 5, 1] "i+")
      (node [52, 54, 5, 4] "p+"))
    (line [55, 60, 6, 1]
      (node [55, 57, 6, 1] "p+")
      (node [58, 60, 6, 4] "j+"))
    (line [61, 66, 7, 1]
      (node [61, 63, 7, 1] "j+")
      (node [64, 66, 7, 4] "q+"))
    (line [67, 72, 8, 1]
      (node [67, 69, 8, 1] "q+")
      (node [70, 72, 8, 4] "r+"))
    (line [73, 78, 9, 1]
      (node [73, 75, 9, 1] "r+")
      (node [76, 78, 9, 4] "i-"))
    (line [79, 87, 10, 1]
      (node [79, 81, 10, 1] "i-")
      (node [82, 84, 10, 4] "p-")
      (node [85, 87, 10, 7] "r-"))
    (line [88, 93, 11, 1]
      (node [88, 90, 11, 1] "p-")
      (node [91, 93, 11, 4] "q-"))
    (line [94, 99, 12, 1]
      (node [94, 96, 12, 1] "q-")
      (node [97, 99, 12, 4] "j-"))
    (line [100, 105, 13, 1]
      (node [100, 102, 13, 1] "j-")
      (node [103, 105, 13, 4] "i+"))
    (line [106, 111, 14, 1]
      (node [106, 108, 14, 1] "r-")
      (node [109, 111, 14, 4] "i+")))
  (marking [112, 140, 15, 1]
    (entry [123, 130, 15, 12] "<j-,i+>")
    (entry [131, 138, 15, 20] "<r-,i+>")))

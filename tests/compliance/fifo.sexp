; Compliance dump for `fifo`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 11, 1, 1] "fifo")
  (inputs [12, 27, 2, 1]
    (name [20, 22, 2, 9] "ri")
    (name [23, 25, 2, 12] "ao")
    (name [26, 27, 2, 15] "d"))
  (outputs [28, 44, 3, 1]
    (name [37, 39, 3, 10] "ai")
    (name [40, 42, 3, 13] "ro")
    (name [43, 44, 3, 16] "l"))
  (internal [45, 57, 4, 1]
    (name [55, 57, 4, 11] "g0"))
  (graph [58, 64, 5, 1]
    (line [65, 71, 6, 1]
      (node [65, 68, 6, 1] "ri+")
      (node [69, 71, 6, 5] "l+"))
    (line [72, 77, 7, 1]
      (node [72, 74, 7, 1] "l+")
      (node [75, 77, 7, 4] "d+"))
    (line [78, 84, 8, 1]
      (node [78, 80, 8, 1] "d+")
      (node [81, 84, 8, 4] "g0+"))
    (line [85, 92, 9, 1]
      (node [85, 88, 9, 1] "g0+")
      (node [89, 92, 9, 5] "ai+"))
    (line [93, 104, 10, 1]
      (node [93, 96, 10, 1] "ai+")
      (node [97, 100, 10, 5] "ri-")
      (node [101, 104, 10, 9] "ro+"))
    (line [105, 112, 11, 1]
      (node [105, 108, 11, 1] "ro+")
      (node [109, 112, 11, 5] "ao+"))
    (line [113, 119, 12, 1]
      (node [113, 116, 12, 1] "ao+")
      (node [117, 119, 12, 5] "l-"))
    (line [120, 133, 13, 1]
      (node [120, 122, 13, 1] "l-")
      (node [123, 126, 13, 4] "ro-")
      (node [127, 130, 13, 8] "g0-")
      (node [131, 133, 13, 12] "d-"))
    (line [134, 143, 14, 1]
      (node [134, 136, 14, 1] "d-")
      (node [137, 139, 14, 4] "l+")
      (node [140, 143, 14, 7] "ai-"))
    (line [144, 154, 15, 1]
      (node [144, 147, 15, 1] "g0-")
      (node [148, 150, 15, 5] "l+")
      (node [151, 154, 15, 8] "ai-"))
    (line [155, 162, 16, 1]
      (node [155, 158, 16, 1] "ri-")
      (node [159, 162, 16, 5] "ai-"))
    (line [163, 170, 17, 1]
      (node [163, 166, 17, 1] "ro-")
      (node [167, 170, 17, 5] "ai-"))
    (line [171, 178, 18, 1]
      (node [171, 174, 18, 1] "ai-")
      (node [175, 178, 18, 5] "ri+"))
    (line [179, 186, 19, 1]
      (node [179, 182, 19, 1] "ro-")
      (node [183, 186, 19, 5] "ao-"))
    (line [187, 194, 20, 1]
      (node [187, 190, 20, 1] "ao-")
      (node [191, 194, 20, 5] "ro+")))
  (marking [195, 244, 21, 1]
    (entry [206, 215, 21, 12] "<ai-,ri+>")
    (entry [216, 224, 21, 22] "<g0-,l+>")
    (entry [225, 232, 21, 31] "<d-,l+>")
    (entry [233, 242, 21, 39] "<ao-,ro+>")))

; Compliance dump for `imec-nak-pa`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 18, 1, 1] "imec-nak-pa")
  (inputs [19, 40, 2, 1]
    (name [27, 30, 2, 9] "req")
    (name [31, 33, 2, 13] "a0")
    (name [34, 36, 2, 16] "a1")
    (name [37, 40, 2, 19] "nak"))
  (outputs [41, 63, 3, 1]
    (name [50, 52, 3, 10] "r0")
    (name [53, 55, 3, 13] "r1")
    (name [56, 59, 3, 16] "ack")
    (name [60, 61, 3, 20] "g")
    (name [62, 63, 3, 22] "h"))
  (graph [64, 70, 4, 1]
    (line [71, 78, 5, 1]
      (node [71, 75, 5, 1] "req+")
      (node [76, 78, 5, 6] "g+"))
    (line [79, 85, 6, 1]
      (node [79, 81, 6, 1] "g+")
      (node [82, 85, 6, 4] "r0+"))
    (line [86, 93, 7, 1]
      (node [86, 89, 7, 1] "r0+")
      (node [90, 93, 7, 5] "a0+"))
    (line [94, 101, 8, 1]
      (node [94, 97, 8, 1] "a0+")
      (node [98, 101, 8, 5] "r1+"))
    (line [102, 109, 9, 1]
      (node [102, 105, 9, 1] "r1+")
      (node [106, 109, 9, 5] "a1+"))
    (line [110, 116, 10, 1]
      (node [110, 113, 10, 1] "a1+")
      (node [114, 116, 10, 5] "h+"))
    (line [117, 124, 11, 1]
      (node [117, 119, 11, 1] "h+")
      (node [120, 124, 11, 4] "nak+"))
    (line [125, 134, 12, 1]
      (node [125, 129, 12, 1] "nak+")
      (node [130, 134, 12, 6] "ack+"))
    (line [135, 144, 13, 1]
      (node [135, 139, 13, 1] "ack+")
      (node [140, 144, 13, 6] "req-"))
    (line [145, 156, 14, 1]
      (node [145, 149, 14, 1] "req-")
      (node [150, 153, 14, 6] "r0-")
      (node [154, 156, 14, 10] "h-"))
    (line [157, 164, 15, 1]
      (node [157, 160, 15, 1] "r0-")
      (node [161, 164, 15, 5] "a0-"))
    (line [165, 172, 16, 1]
      (node [165, 168, 16, 1] "a0-")
      (node [169, 172, 16, 5] "r1-"))
    (line [173, 180, 17, 1]
      (node [173, 176, 17, 1] "r1-")
      (node [177, 180, 17, 5] "a1-"))
    (line [181, 187, 18, 1]
      (node [181, 184, 18, 1] "a1-")
      (node [185, 187, 18, 5] "g-"))
    (line [188, 195, 19, 1]
      (node [188, 190, 19, 1] "g-")
      (node [191, 195, 19, 4] "nak-"))
    (line [196, 205, 20, 1]
      (node [196, 200, 20, 1] "nak-")
      (node [201, 205, 20, 6] "ack-"))
    (line [206, 213, 21, 1]
      (node [206, 208, 21, 1] "h-")
      (node [209, 213, 21, 4] "ack-"))
    (line [214, 223, 22, 1]
      (node [214, 218, 22, 1] "ack-")
      (node [219, 223, 22, 6] "req+")))
  (marking [224, 248, 23, 1]
    (entry [235, 246, 23, 12] "<ack-,req+>")))

; Compliance dump for `imec-ram-read-sbuf`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 25, 1, 1] "imec-ram-read-sbuf")
  (inputs [26, 69, 2, 1]
    (name [34, 37, 2, 9] "req")
    (name [38, 48, 2, 13] "precharged")
    (name [49, 56, 2, 24] "prnotin")
    (name [57, 62, 2, 32] "wenin")
    (name [63, 69, 2, 38] "wsldin"))
  (outputs [70, 102, 3, 1]
    (name [79, 82, 3, 10] "ack")
    (name [83, 87, 3, 14] "wsen")
    (name [88, 93, 3, 19] "prnot")
    (name [94, 97, 3, 25] "wen")
    (name [98, 102, 3, 29] "wsld"))
  (internal [103, 134, 4, 1]
    (name [113, 117, 4, 11] "csc0")
    (name [118, 122, 4, 16] "map0")
    (name [123, 125, 4, 21] "i0")
    (name [126, 128, 4, 24] "i2")
    (name [129, 131, 4, 27] "i4")
    (name [132, 134, 4, 30] "i8"))
  (graph [135, 141, 5, 1]
    (line [142, 150, 6, 1]
      (node [142, 146, 6, 1] "req+")
      (node [147, 150, 6, 6] "i4+"))
    (line [151, 161, 7, 1]
      (node [151, 154, 7, 1] "i4+")
      (node [155, 161, 7, 5] "prnot+"))
    (line [162, 177, 8, 1]
      (node [162, 168, 8, 1] "prnot+")
      (node [169, 177, 8, 8] "prnotin+"))
    (line [178, 196, 9, 1]
      (node [178, 189, 9, 1] "precharged+")
      (node [190, 196, 9, 13] "prnot+"))
    (line [197, 210, 10, 1]
      (node [197, 205, 10, 1] "prnotin+")
      (node [206, 210, 10, 10] "wen+"))
    (line [211, 234, 11, 1]
      (node [211, 215, 11, 1] "wen+")
      (node [216, 227, 11, 6] "precharged-")
      (node [228, 234, 11, 18] "wenin+"))
    (line [235, 250, 12, 1]
      (node [235, 246, 12, 1] "precharged-")
      (node [247, 250, 12, 13] "i0-"))
    (line [251, 259, 13, 1]
      (node [251, 254, 13, 1] "i0-")
      (node [255, 259, 13, 5] "ack+"))
    (line [260, 270, 14, 1]
      (node [260, 266, 14, 1] "wenin+")
      (node [267, 270, 14, 8] "i0-"))
    (line [271, 280, 15, 1]
      (node [271, 275, 15, 1] "ack+")
      (node [276, 280, 15, 6] "req-"))
    (line [281, 294, 16, 1]
      (node [281, 285, 16, 1] "req-")
      (node [286, 289, 16, 6] "i8+")
      (node [290, 294, 16, 10] "wen-"))
    (line [295, 304, 17, 1]
      (node [295, 298, 17, 1] "i8+")
      (node [299, 304, 17, 5] "csc0-"))
    (line [305, 316, 18, 1]
      (node [305, 309, 18, 1] "wen-")
      (node [310, 316, 18, 6] "wenin-"))
    (line [317, 329, 19, 1]
      (node [317, 322, 19, 1] "wsen-")
      (node [323, 329, 19, 7] "wenin-"))
    (line [330, 350, 20, 1]
      (node [330, 336, 20, 1] "wenin-")
      (node [337, 342, 20, 8] "wsld+")
      (node [343, 346, 20, 14] "i4-")
      (node [347, 350, 20, 18] "i0+"))
    (line [351, 359, 21, 1]
      (node [351, 354, 21, 1] "i0+")
      (node [355, 359, 21, 5] "ack-"))
    (line [360, 370, 22, 1]
      (node [360, 363, 22, 1] "i4-")
      (node [364, 370, 22, 5] "prnot-"))
    (line [371, 396, 23, 1]
      (node [371, 376, 23, 1] "wsld+")
      (node [377, 384, 23, 7] "wsldin+")
      (node [385, 396, 23, 15] "precharged+"))
    (line [397, 410, 24, 1]
      (node [397, 404, 24, 1] "wsldin+")
      (node [405, 410, 24, 9] "csc0+"))
    (line [411, 438, 25, 1]
      (node [411, 417, 25, 1] "prnot-")
      (node [418, 426, 25, 8] "prnotin-")
      (node [427, 438, 25, 17] "precharged+"))
    (line [439, 451, 26, 1]
      (node [439, 447, 26, 1] "prnotin-")
      (node [448, 451, 26, 10] "i8-"))
    (line [452, 461, 27, 1]
      (node [452, 455, 27, 1] "i8-")
      (node [456, 461, 27, 5] "csc0+"))
    (line [462, 475, 28, 1]
      (node [462, 467, 28, 1] "wsld-")
      (node [468, 475, 28, 7] "wsldin-"))
    (line [476, 495, 29, 1]
      (node [476, 483, 29, 1] "wsldin-")
      (node [484, 489, 29, 9] "wsen+")
      (node [490, 495, 29, 15] "map0+"))
    (line [496, 505, 30, 1]
      (node [496, 500, 30, 1] "ack-")
      (node [501, 505, 30, 6] "req+"))
    (line [506, 516, 31, 1]
      (node [506, 511, 31, 1] "wsen+")
      (node [512, 516, 31, 7] "req+"))
    (line [517, 532, 32, 1]
      (node [517, 522, 32, 1] "csc0+")
      (node [523, 528, 32, 7] "wsld-")
      (node [529, 532, 32, 13] "i2-"))
    (line [533, 542, 33, 1]
      (node [533, 536, 33, 1] "i2-")
      (node [537, 542, 33, 5] "wsen+"))
    (line [543, 554, 34, 1]
      (node [543, 548, 34, 1] "csc0-")
      (node [549, 554, 34, 7] "map0-"))
    (line [555, 565, 35, 1]
      (node [555, 560, 35, 1] "map0+")
      (node [561, 565, 35, 7] "ack-"))
    (line [566, 575, 36, 1]
      (node [566, 571, 36, 1] "map0-")
      (node [572, 575, 36, 7] "i2+"))
    (line [576, 585, 37, 1]
      (node [576, 579, 37, 1] "i2+")
      (node [580, 585, 37, 5] "wsen-")))
  (marking [586, 632, 38, 1]
    (entry [597, 609, 38, 12] "<i4+,prnot+>")
    (entry [610, 630, 38, 25] "<precharged+,prnot+>")))

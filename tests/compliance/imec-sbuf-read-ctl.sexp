; Compliance dump for `imec-sbuf-read-ctl`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 25, 1, 1] "imec-sbuf-read-ctl")
  (inputs [26, 42, 2, 1]
    (name [34, 37, 2, 9] "req")
    (name [38, 42, 2, 13] "prin"))
  (outputs [43, 66, 3, 1]
    (name [52, 55, 3, 10] "ack")
    (name [56, 58, 3, 14] "pr")
    (name [59, 61, 3, 17] "en")
    (name [62, 66, 3, 20] "done"))
  (graph [67, 73, 4, 1]
    (line [74, 82, 5, 1]
      (node [74, 78, 5, 1] "req+")
      (node [79, 82, 5, 6] "pr+"))
    (line [83, 92, 6, 1]
      (node [83, 86, 6, 1] "pr+")
      (node [87, 92, 6, 5] "prin+"))
    (line [93, 102, 7, 1]
      (node [93, 98, 7, 1] "prin+")
      (node [99, 102, 7, 7] "en+"))
    (line [103, 110, 8, 1]
      (node [103, 106, 8, 1] "en+")
      (node [107, 110, 8, 5] "pr-"))
    (line [111, 120, 9, 1]
      (node [111, 114, 9, 1] "pr-")
      (node [115, 120, 9, 5] "prin-"))
    (line [121, 132, 10, 1]
      (node [121, 126, 10, 1] "prin-")
      (node [127, 132, 10, 7] "done+"))
    (line [133, 143, 11, 1]
      (node [133, 138, 11, 1] "done+")
      (node [139, 143, 11, 7] "ack+"))
    (line [144, 153, 12, 1]
      (node [144, 148, 12, 1] "ack+")
      (node [149, 153, 12, 6] "req-"))
    (line [154, 162, 13, 1]
      (node [154, 158, 13, 1] "req-")
      (node [159, 162, 13, 6] "en-"))
    (line [163, 172, 14, 1]
      (node [163, 166, 14, 1] "en-")
      (node [167, 172, 14, 5] "done-"))
    (line [173, 183, 15, 1]
      (node [173, 178, 15, 1] "done-")
      (node [179, 183, 15, 7] "ack-"))
    (line [184, 193, 16, 1]
      (node [184, 188, 16, 1] "ack-")
      (node [189, 193, 16, 6] "req+")))
  (marking [194, 218, 17, 1]
    (entry [205, 216, 17, 12] "<ack-,req+>")))

; Compliance dump for `mp-forward-pkt`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 21, 1, 1] "mp-forward-pkt")
  (inputs [22, 39, 2, 1]
    (name [30, 33, 2, 9] "req")
    (name [34, 36, 2, 13] "a0")
    (name [37, 39, 2, 16] "a1"))
  (outputs [40, 62, 3, 1]
    (name [49, 50, 3, 10] "s")
    (name [51, 53, 3, 12] "r0")
    (name [54, 55, 3, 15] "t")
    (name [56, 58, 3, 17] "r1")
    (name [59, 62, 3, 20] "ack"))
  (graph [63, 69, 4, 1]
    (line [70, 77, 5, 1]
      (node [70, 74, 5, 1] "req+")
      (node [75, 77, 5, 6] "s+"))
    (line [78, 84, 6, 1]
      (node [78, 80, 6, 1] "s+")
      (node [81, 84, 6, 4] "r0+"))
    (line [85, 92, 7, 1]
      (node [85, 88, 7, 1] "r0+")
      (node [89, 92, 7, 5] "a0+"))
    (line [93, 99, 8, 1]
      (node [93, 96, 8, 1] "a0+")
      (node [97, 99, 8, 5] "t+"))
    (line [100, 110, 9, 1]
      (node [100, 102, 9, 1] "t+")
      (node [103, 106, 9, 4] "r0-")
      (node [107, 110, 9, 8] "r1+"))
    (line [111, 118, 10, 1]
      (node [111, 114, 10, 1] "r0-")
      (node [115, 118, 10, 5] "a0-"))
    (line [119, 126, 11, 1]
      (node [119, 122, 11, 1] "r1+")
      (node [123, 126, 11, 5] "a1+"))
    (line [127, 135, 12, 1]
      (node [127, 130, 12, 1] "a1+")
      (node [131, 135, 12, 5] "ack+"))
    (line [136, 149, 13, 1]
      (node [136, 140, 13, 1] "ack+")
      (node [141, 144, 13, 6] "r1-")
      (node [145, 149, 13, 10] "req-"))
    (line [150, 157, 14, 1]
      (node [150, 153, 14, 1] "r1-")
      (node [154, 157, 14, 5] "a1-"))
    (line [158, 165, 15, 1]
      (node [158, 162, 15, 1] "req-")
      (node [163, 165, 15, 6] "s-"))
    (line [166, 171, 16, 1]
      (node [166, 168, 16, 1] "s-")
      (node [169, 171, 16, 4] "t-"))
    (line [172, 179, 17, 1]
      (node [172, 174, 17, 1] "t-")
      (node [175, 179, 17, 4] "ack-"))
    (line [180, 189, 18, 1]
      (node [180, 184, 18, 1] "ack-")
      (node [185, 189, 18, 6] "req+"))
    (line [190, 196, 19, 1]
      (node [190, 193, 19, 1] "a0-")
      (node [194, 196, 19, 5] "s-"))
    (line [197, 203, 20, 1]
      (node [197, 200, 20, 1] "a1-")
      (node [201, 203, 20, 5] "t-")))
  (marking [204, 228, 21, 1]
    (entry [215, 226, 21, 12] "<ack-,req+>")))

; Compliance dump for `nowick`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 13, 1, 1] "nowick")
  (inputs [14, 27, 2, 1]
    (name [22, 23, 2, 9] "a")
    (name [24, 25, 2, 11] "b")
    (name [26, 27, 2, 13] "c"))
  (outputs [28, 42, 3, 1]
    (name [37, 38, 3, 10] "x")
    (name [39, 40, 3, 12] "y")
    (name [41, 42, 3, 14] "z"))
  (graph [43, 49, 4, 1]
    (line [50, 58, 5, 1]
      (node [50, 52, 5, 1] "p0")
      (node [53, 55, 5, 4] "a+")
      (node [56, 58, 5, 7] "b+"))
    (line [59, 64, 6, 1]
      (node [59, 61, 6, 1] "a+")
      (node [62, 64, 6, 4] "x+"))
    (line [65, 70, 7, 1]
      (node [65, 67, 7, 1] "x+")
      (node [68, 70, 7, 4] "c+"))
    (line [71, 76, 8, 1]
      (node [71, 73, 8, 1] "c+")
      (node [74, 76, 8, 4] "y+"))
    (line [77, 82, 9, 1]
      (node [77, 79, 9, 1] "y+")
      (node [80, 82, 9, 4] "a-"))
    (line [83, 88, 10, 1]
      (node [83, 85, 10, 1] "a-")
      (node [86, 88, 10, 4] "x-"))
    (line [89, 94, 11, 1]
      (node [89, 91, 11, 1] "x-")
      (node [92, 94, 11, 4] "y-"))
    (line [95, 100, 12, 1]
      (node [95, 97, 12, 1] "y-")
      (node [98, 100, 12, 4] "c-"))
    (line [101, 106, 13, 1]
      (node [101, 103, 13, 1] "c-")
      (node [104, 106, 13, 4] "p0"))
    (line [107, 112, 14, 1]
      (node [107, 109, 14, 1] "b+")
      (node [110, 112, 14, 4] "z+"))
    (line [113, 118, 15, 1]
      (node [113, 115, 15, 1] "z+")
      (node [116, 118, 15, 4] "b-"))
    (line [119, 124, 16, 1]
      (node [119, 121, 16, 1] "b-")
      (node [122, 124, 16, 4] "z-"))
    (line [125, 130, 17, 1]
      (node [125, 127, 17, 1] "z-")
      (node [128, 130, 17, 4] "p0")))
  (marking [131, 146, 18, 1]
    (entry [142, 144, 18, 12] "p0")))

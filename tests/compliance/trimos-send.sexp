; Compliance dump for `trimos-send`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 18, 1, 1] "trimos-send")
  (inputs [19, 36, 2, 1]
    (name [27, 30, 2, 9] "req")
    (name [31, 33, 2, 13] "am")
    (name [34, 36, 2, 16] "ad"))
  (outputs [37, 65, 3, 1]
    (name [46, 48, 3, 10] "g0")
    (name [49, 51, 3, 13] "rm")
    (name [52, 54, 3, 16] "g1")
    (name [55, 57, 3, 19] "rd")
    (name [58, 60, 3, 22] "g2")
    (name [61, 65, 3, 25] "done"))
  (graph [66, 72, 4, 1]
    (line [73, 81, 5, 1]
      (node [73, 77, 5, 1] "req+")
      (node [78, 81, 5, 6] "g0+"))
    (line [82, 89, 6, 1]
      (node [82, 85, 6, 1] "g0+")
      (node [86, 89, 6, 5] "rm+"))
    (line [90, 97, 7, 1]
      (node [90, 93, 7, 1] "rm+")
      (node [94, 97, 7, 5] "am+"))
    (line [98, 105, 8, 1]
      (node [98, 101, 8, 1] "am+")
      (node [102, 105, 8, 5] "g1+"))
    (line [106, 113, 9, 1]
      (node [106, 109, 9, 1] "g1+")
      (node [110, 113, 9, 5] "rd+"))
    (line [114, 121, 10, 1]
      (node [114, 117, 10, 1] "rd+")
      (node [118, 121, 10, 5] "ad+"))
    (line [122, 129, 11, 1]
      (node [122, 125, 11, 1] "ad+")
      (node [126, 129, 11, 5] "g2+"))
    (line [130, 139, 12, 1]
      (node [130, 133, 12, 1] "g2+")
      (node [134, 139, 12, 5] "done+"))
    (line [140, 154, 13, 1]
      (node [140, 145, 13, 1] "done+")
      (node [146, 149, 13, 7] "g0-")
      (node [150, 154, 13, 11] "req-"))
    (line [155, 166, 14, 1]
      (node [155, 158, 14, 1] "g0-")
      (node [159, 162, 14, 5] "rm-")
      (node [163, 166, 14, 9] "g1-"))
    (line [167, 174, 15, 1]
      (node [167, 170, 15, 1] "rm-")
      (node [171, 174, 15, 5] "am-"))
    (line [175, 186, 16, 1]
      (node [175, 178, 16, 1] "g1-")
      (node [179, 182, 16, 5] "rd-")
      (node [183, 186, 16, 9] "g2-"))
    (line [187, 194, 17, 1]
      (node [187, 190, 17, 1] "rd-")
      (node [191, 194, 17, 5] "ad-"))
    (line [195, 204, 18, 1]
      (node [195, 198, 18, 1] "g2-")
      (node [199, 204, 18, 5] "done-"))
    (line [205, 214, 19, 1]
      (node [205, 208, 19, 1] "am-")
      (node [209, 214, 19, 5] "done-"))
    (line [215, 224, 20, 1]
      (node [215, 218, 20, 1] "ad-")
      (node [219, 224, 20, 5] "done-"))
    (line [225, 235, 21, 1]
      (node [225, 229, 21, 1] "req-")
      (node [230, 235, 21, 6] "done-"))
    (line [236, 246, 22, 1]
      (node [236, 241, 22, 1] "done-")
      (node [242, 246, 22, 7] "req+")))
  (marking [247, 272, 23, 1]
    (entry [258, 270, 23, 12] "<done-,req+>")))

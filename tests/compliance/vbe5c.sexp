; Compliance dump for `vbe5c`: the lossless parse-event stream of
; the spec in the S-expression interchange format (see
; docs/interchange.md). Regenerate with:
;   UPDATE_GOLDEN=1 cargo test --test compliance
; si-sexp 1 parse-tree
(document [0, 0, 1, 1]
  (model [0, 12, 1, 1] "vbe5c")
  (inputs [13, 26, 2, 1]
    (name [21, 22, 2, 9] "a")
    (name [23, 24, 2, 11] "b")
    (name [25, 26, 2, 13] "c"))
  (outputs [27, 45, 3, 1]
    (name [36, 37, 3, 10] "x")
    (name [38, 39, 3, 12] "y")
    (name [40, 41, 3, 14] "z")
    (name [42, 43, 3, 16] "w")
    (name [44, 45, 3, 18] "v"))
  (graph [46, 52, 4, 1]
    (line [53, 58, 5, 1]
      (node [53, 55, 5, 1] "a+")
      (node [56, 58, 5, 4] "x+"))
    (line [59, 64, 6, 1]
      (node [59, 61, 6, 1] "x+")
      (node [62, 64, 6, 4] "y+"))
    (line [65, 70, 7, 1]
      (node [65, 67, 7, 1] "y+")
      (node [68, 70, 7, 4] "b+"))
    (line [71, 76, 8, 1]
      (node [71, 73, 8, 1] "b+")
      (node [74, 76, 8, 4] "z+"))
    (line [77, 82, 9, 1]
      (node [77, 79, 9, 1] "z+")
      (node [80, 82, 9, 4] "c+"))
    (line [83, 88, 10, 1]
      (node [83, 85, 10, 1] "c+")
      (node [86, 88, 10, 4] "w+"))
    (line [89, 94, 11, 1]
      (node [89, 91, 11, 1] "w+")
      (node [92, 94, 11, 4] "v+"))
    (line [95, 100, 12, 1]
      (node [95, 97, 12, 1] "v+")
      (node [98, 100, 12, 4] "a-"))
    (line [101, 106, 13, 1]
      (node [101, 103, 13, 1] "a-")
      (node [104, 106, 13, 4] "x-"))
    (line [107, 112, 14, 1]
      (node [107, 109, 14, 1] "x-")
      (node [110, 112, 14, 4] "y-"))
    (line [113, 118, 15, 1]
      (node [113, 115, 15, 1] "y-")
      (node [116, 118, 15, 4] "b-"))
    (line [119, 127, 16, 1]
      (node [119, 121, 16, 1] "b-")
      (node [122, 124, 16, 4] "z-")
      (node [125, 127, 16, 7] "w-"))
    (line [128, 133, 17, 1]
      (node [128, 130, 17, 1] "z-")
      (node [131, 133, 17, 4] "c-"))
    (line [134, 139, 18, 1]
      (node [134, 136, 18, 1] "c-")
      (node [137, 139, 18, 4] "v-"))
    (line [140, 145, 19, 1]
      (node [140, 142, 19, 1] "w-")
      (node [143, 145, 19, 4] "v-"))
    (line [146, 151, 20, 1]
      (node [146, 148, 20, 1] "v-")
      (node [149, 151, 20, 4] "a+")))
  (marking [152, 172, 21, 1]
    (entry [163, 170, 21, 12] "<v-,a+>")))

//! The sharded corpus runner's merge contract, pinned differentially.
//!
//! [`si_suite::run_corpus`] promises that sharding affects wall clock and
//! cache traffic *only*: for any job count, the merged rows come back in
//! manifest order and every row's payload — constraint report, lint
//! findings, error value — is bit-identical to an explicit sequential
//! [`run_corpus_entry`] loop over the same manifest on a fresh engine.
//! This suite pins that for jobs 1, 4 and 8, cold and warm, over a
//! generated manifest that deliberately includes defective rows (parse
//! failures, lint-rejected specs) so the error path is part of the
//! contract too.

use si_redress::core::{Engine, EngineConfig, LintPolicy};
use si_redress::corpus::{corpus_name, generate, harness_config, CorpusSpec};
use si_redress::suite::{run_corpus, run_corpus_entry, CorpusEntry, CorpusOutcome};

/// The comparable payload of one row: everything except wall times and
/// cache counters, which legitimately differ across schedules.
fn payload(outcome: &CorpusOutcome) -> String {
    match outcome {
        Ok(row) => format!("{}|{:?}|{:?}", row.name, row.report.report, row.lint),
        Err(e) => format!("err|{e:?}"),
    }
}

/// A mixed manifest: generated circuits across the seed range, plus two
/// defective rows wedged into the middle so error values must survive
/// the row-order merge in place.
fn manifest(seeds: std::ops::RangeInclusive<u64>, max_signals: usize) -> Vec<CorpusEntry> {
    let mut rows: Vec<CorpusEntry> = seeds
        .map(|seed| {
            let c = generate(&CorpusSpec::from_seed(seed, max_signals), seed);
            CorpusEntry {
                name: corpus_name(seed),
                stg_text: c.g_text,
                eqn_text: None,
            }
        })
        .collect();
    let mid = rows.len() / 2;
    rows.insert(
        mid,
        CorpusEntry {
            name: "defective-parse".into(),
            stg_text: ".model broken\n.inputs a\n.graph\na+ c+\n.marking { }\n.end\n".into(),
            eqn_text: None,
        },
    );
    rows.insert(
        mid / 2,
        CorpusEntry {
            name: "defective-eqn".into(),
            stg_text: generate(&CorpusSpec::from_seed(3, max_signals), 3).g_text,
            eqn_text: Some("this is not an equation".into()),
        },
    );
    rows
}

fn engine() -> Engine {
    // The corpus-harness divergence bail-out, exactly as
    // `si_fuzz`/`corpus_bench` run: pathological relaxation shapes become
    // deterministic `Diverged` errors, which the payload comparison
    // covers like any other row.
    Engine::new(harness_config(EngineConfig::default()))
}

#[test]
fn sharded_runs_match_the_sequential_reference_cold_and_warm() {
    let manifest = manifest(1..=40, 8);
    // Sequential reference: fresh engine, explicit row-order loop.
    let seq_engine = engine();
    let seq: Vec<String> = manifest
        .iter()
        .map(|entry| payload(&run_corpus_entry(&seq_engine, entry)))
        .collect();
    assert!(
        seq.iter().any(|p| p.starts_with("err|")),
        "the manifest must exercise the error path"
    );
    for jobs in [1, 4, 8] {
        let shard_engine = engine();
        for pass in ["cold", "warm"] {
            let rows = run_corpus(&shard_engine, &manifest, jobs);
            assert_eq!(rows.len(), seq.len());
            for (i, (row, reference)) in rows.iter().zip(&seq).enumerate() {
                assert_eq!(
                    &payload(row),
                    reference,
                    "jobs={jobs} {pass}: row {i} (`{}`) diverged from the \
                     sequential reference",
                    manifest[i].name
                );
            }
        }
    }
}

#[test]
fn defective_rows_fail_in_place_under_deny_policy() {
    // Under LintPolicy::Deny the lint pre-flight rejects rows instead of
    // the parser; the merged error values must still match a sequential
    // loop on the same policy.
    let config = harness_config(EngineConfig {
        lint: LintPolicy::Deny,
        ..EngineConfig::default()
    });
    let manifest = manifest(1..=12, 6);
    let seq_engine = Engine::new(config);
    let seq: Vec<String> = manifest
        .iter()
        .map(|entry| payload(&run_corpus_entry(&seq_engine, entry)))
        .collect();
    let shard_engine = Engine::new(config);
    let rows = run_corpus(&shard_engine, &manifest, 4);
    let got: Vec<String> = rows.iter().map(payload).collect();
    assert_eq!(got, seq);
}
